"""Extension — watermarking gradient-boosted ensembles.

The paper's closing future-work item.  Our construction embeds the
signature into per-stage contribution signs (see
``repro.core.boosted``); this bench measures, per dataset: the accuracy
cost against a standard GBDT, embedding effort, and that verification
accepts the true signature while rejecting a fake one.
"""

from conftest import BENCH, emit

from repro.core import random_signature, verify_boosted_ownership, watermark_boosted
from repro.ensemble import GradientBoostingClassifier
from repro.experiments import format_table, prepare_split


def _run():
    rows = []
    for dataset in ("breast-cancer", "ijcnn1"):
        X_train, X_test, y_train, y_test = prepare_split(BENCH, dataset)
        signature = random_signature(12, ones_fraction=0.5, random_state=BENCH.seed)
        model = watermark_boosted(
            X_train,
            y_train,
            signature,
            trigger_size=max(2, BENCH.trigger_size(X_train.shape[0]) // 2),
            max_depth=5,
            random_state=BENCH.seed + 1,
        )
        standard = GradientBoostingClassifier(
            n_estimators=12, learning_rate=0.3, max_depth=5
        ).fit(X_train, y_train)

        accepted, _ = verify_boosted_ownership(
            model.ensemble, model.signature, model.trigger.X, model.trigger.y
        )
        fake = random_signature(12, ones_fraction=0.5, random_state=BENCH.seed + 2)
        fake_accepted, fake_matches = verify_boosted_ownership(
            model.ensemble, fake, model.trigger.X, model.trigger.y
        )
        rows.append(
            [
                dataset,
                model.ensemble.score(X_test, y_test),
                standard.score(X_test, y_test),
                model.rounds,
                accepted,
                f"{int(fake_matches.sum())}/12" if not fake_accepted else "ACCEPTED?!",
            ]
        )
    return rows


def test_extension_boosted_watermark(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    headers = ["Dataset", "WM GBDT acc", "Standard GBDT acc", "rounds",
         "true sig accepted", "fake sig matches"]
    text = format_table(headers, rows)
    emit("ext_boosted_watermark", text, headers=headers, rows=rows)

    for row in rows:
        assert row[4] is True          # true signature verifies
        assert row[5] != "ACCEPTED?!"  # fake signature rejected
        assert row[1] >= row[2] - 0.1  # bounded accuracy cost
