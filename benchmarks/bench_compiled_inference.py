"""Engineering benchmark — node-graph vs compiled flat-array inference.

Not a paper artefact: this benchmark measures the compiled inference
subsystem (:mod:`repro.trees.compiled` / :mod:`repro.ensemble.compiled`)
against the original ``TreeNode`` object-graph traversal across ensemble
sizes and batch sizes.  The headline configuration — a 100-tree forest
answering a 10k-row batch — is the scale the ROADMAP's serving scenarios
target; the acceptance bar is a ≥ 5× speedup on ``predict_all`` there,
with bitwise-identical outputs.

Run (full)::

    PYTHONPATH=src python -m pytest benchmarks/bench_compiled_inference.py -s

Run (smoke mode, seconds)::

    PYTHONPATH=src python -m pytest benchmarks/bench_compiled_inference.py -s --quick

The trees are randomly generated (inference cost depends only on
structure, not on how the trees were learned), which keeps the full
benchmark about inference rather than waiting on pure-Python CART
training of a 100-tree forest.
"""

from __future__ import annotations

import time

import numpy as np
from conftest import emit, is_quick

from repro.ensemble import RandomForestClassifier
from repro.trees import DecisionTreeClassifier, inference_backend
from repro.trees.node import InternalNode, Leaf

#: (n_trees, node depth, leaf probability, batch size) grid.  The leaf
#: probability controls tree size: 0.15 at depth 8 gives small trees
#: (~200 nodes, a heavily capped model); 0.05 at depth 12 matches a
#: forest trained at the repo's benchmark scale (~4k nodes per tree);
#: 0.05 at depth 14 approximates full-scale lightly-pruned trees (~8k
#: nodes per tree, in line with the paper's leaf-count discussion for
#: ijcnn1).  The last row is the acceptance-criterion configuration.
FULL_SCALES = [
    (10, 8, 0.15, 1_000),
    (10, 8, 0.15, 10_000),
    (100, 8, 0.15, 10_000),
    (100, 12, 0.05, 10_000),
    (100, 14, 0.05, 10_000),
]
QUICK_SCALES = [(8, 6, 0.15, 500)]

N_FEATURES = 20
HEADLINE = (100, 14, 0.05, 10_000)
MIN_SPEEDUP = 5.0


def _random_tree(gen: np.random.Generator, depth: int, leaf_p: float):
    """A random tree: splits on random features/thresholds, ±1 leaves."""
    if depth == 0 or gen.uniform() < leaf_p:
        label = int(gen.choice([-1, 1]))
        return Leaf(prediction=label, class_weights={label: float(gen.uniform(1, 9))})
    return InternalNode(
        feature=int(gen.integers(N_FEATURES)),
        threshold=float(gen.normal()),
        left=_random_tree(gen, depth - 1, leaf_p),
        right=_random_tree(gen, depth - 1, leaf_p),
    )


def _random_forest(gen: np.random.Generator, n_trees: int, depth: int, leaf_p: float):
    forest = RandomForestClassifier(n_estimators=n_trees)
    trees = []
    for _ in range(n_trees):
        tree = DecisionTreeClassifier()
        tree.root_ = _random_tree(gen, depth, leaf_p)
        tree.classes_ = np.array([-1, 1])
        tree.n_features_in_ = N_FEATURES
        trees.append(tree)
    forest.trees_ = trees
    forest.feature_subsets_ = [np.arange(N_FEATURES)] * n_trees
    forest.classes_ = np.array([-1, 1])
    forest.n_features_in_ = N_FEATURES
    return forest


def _best_of(fn, repeats: int) -> float:
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_compiled_inference(request):
    quick = is_quick(request.config)
    scales = QUICK_SCALES if quick else FULL_SCALES
    repeats = 2 if quick else 3
    gen = np.random.default_rng(20250729)

    rows = []
    data_rows = []
    speedups = {}
    for n_trees, depth, leaf_p, batch in scales:
        forest = _random_forest(gen, n_trees, depth, leaf_p)
        X = gen.normal(size=(batch, N_FEATURES))

        with inference_backend("object"):
            object_all = forest.predict_all(X)
            t_object_all = _best_of(lambda: forest.predict_all(X), repeats)
            t_object_pred = _best_of(lambda: forest.predict(X), repeats)

        engine = forest.compile()
        compiled_all = engine.predict_all(X)
        assert np.array_equal(compiled_all, object_all), (
            f"compiled predict_all diverged at {n_trees} trees x {batch} rows"
        )
        t_compiled_all = _best_of(lambda: forest.predict_all(X), repeats)
        t_compiled_pred = _best_of(lambda: forest.predict(X), repeats)

        speedup_all = t_object_all / t_compiled_all
        speedups[(n_trees, depth, leaf_p, batch)] = speedup_all
        nodes_per_tree = engine.n_nodes // n_trees
        rows.append(
            f"{n_trees:>6} {nodes_per_tree:>8} {batch:>8} "
            f"{1e3 * t_object_all:>12.1f} {1e3 * t_compiled_all:>12.1f} "
            f"{speedup_all:>9.1f}x "
            f"{1e3 * t_object_pred:>12.1f} {1e3 * t_compiled_pred:>12.1f} "
            f"{t_object_pred / t_compiled_pred:>9.1f}x"
        )
        data_rows.append(
            {
                "trees": n_trees,
                "nodes_per_tree": nodes_per_tree,
                "batch": batch,
                "object_all_ms": round(1e3 * t_object_all, 2),
                "compiled_all_ms": round(1e3 * t_compiled_all, 2),
                "speedup_all": round(speedup_all, 2),
                "object_pred_ms": round(1e3 * t_object_pred, 2),
                "compiled_pred_ms": round(1e3 * t_compiled_pred, 2),
                "speedup_pred": round(t_object_pred / t_compiled_pred, 2),
            }
        )

    header = (
        f"{'trees':>6} {'nodes/t':>8} {'batch':>8} "
        f"{'all/obj ms':>12} {'all/cmp ms':>12} {'speedup':>10} "
        f"{'pred/obj ms':>12} {'pred/cmp ms':>12} {'speedup':>10}"
    )
    mode = "quick" if quick else "full"
    emit(
        "compiled_inference",
        f"mode: {mode} (best of {repeats})\n" + header + "\n" + "\n".join(rows),
        mode=mode,
        rows=data_rows,
        metrics={"headline_speedup": round(speedups.get(HEADLINE, 0.0), 2)},
    )

    if not quick:
        headline = speedups[HEADLINE]
        assert headline >= MIN_SPEEDUP, (
            f"compiled predict_all is only {headline:.1f}x faster than the "
            f"object graph on {HEADLINE[0]} trees x {HEADLINE[3]} rows "
            f"(acceptance bar: {MIN_SPEEDUP}x)"
        )
