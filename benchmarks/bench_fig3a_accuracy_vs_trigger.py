"""Fig. 3a — test accuracy vs trigger-set size.

Sweeps the trigger fraction with a fixed 50%-ones signature and prints
the watermarked-vs-standard accuracy series per dataset.  The paper's
shape to reproduce: the loss is limited everywhere and negligible up to
a 2% trigger set.
"""

import numpy as np
from conftest import BENCH, emit

from repro.experiments import accuracy_vs_trigger_fraction, format_table, rows_to_cells

FRACTIONS = (0.01, 0.02, 0.03, 0.04)


def _run():
    return accuracy_vs_trigger_fraction(BENCH, fractions=FRACTIONS)


def test_fig3a_accuracy_vs_trigger_size(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    headers = ["Dataset", "trigger/train", "WM RF acc", "Standard RF acc", "Loss"]
    cells = [
            [r.dataset, r.x_value, r.watermarked_accuracy, r.standard_accuracy, r.accuracy_loss]
            for r in rows
        ]
    text = format_table(headers, cells)
    emit("fig3a_accuracy_vs_trigger", text, headers=headers, rows=cells)

    # Paper shape: accuracy loss stays small on every dataset.  The
    # tolerance is loose because the bench runs at reduced scale.
    for dataset in {r.dataset for r in rows}:
        losses = [r.accuracy_loss for r in rows if r.dataset == dataset]
        assert np.mean(losses) < 0.08, f"{dataset}: mean loss {np.mean(losses):.3f}"

    # Paper shape: at <=2% triggers the loss is negligible on average.
    small_losses = [r.accuracy_loss for r in rows if r.x_value <= 0.02]
    assert np.mean(small_losses) < 0.06
