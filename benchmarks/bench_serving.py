"""Serving-path throughput: request micro-batching vs naive dispatch.

Drives the :class:`repro.serve.ServingDaemon` with many concurrent
batch-1 clients — the paper's deployment picture, where per-tree
``predict.all`` queries arrive one instance at a time — and compares
the micro-batched daemon (requests coalesce into fused
``predict_all`` calls inside a small flush window) against the naive
baseline (``flush_window=0``: one engine call per request) on the same
forest under the same client load.  Emits req/s plus p50/p99 latency
per variant to ``results/serving.{txt,json}``.
"""

from __future__ import annotations

import asyncio
import json
import sys
import time

import numpy as np
from conftest import emit, is_quick

from repro.datasets import breast_cancer_like
from repro.ensemble import RandomForestClassifier
from repro.experiments import format_table
from repro.serve import BackgroundServer, ModelRegistry


def _build_registry(n_trees: int) -> ModelRegistry:
    ds = breast_cancer_like(400, random_state=23)
    forest = RandomForestClassifier(
        n_estimators=n_trees, max_depth=8, random_state=23
    ).fit(ds.X, ds.y)
    forest.predict_all(ds.X[:64])  # compile outside the timed region
    registry = ModelRegistry()
    registry.add("bench", forest)
    return registry, ds.X


def _requests_for(X: np.ndarray, per_connection: int) -> list[bytes]:
    """Pre-serialized keep-alive batch-1 POSTs (cycled per connection)."""
    payloads = []
    for i in range(8):
        body = json.dumps(
            {"rows": [X[i % len(X)].tolist()]}, allow_nan=False
        ).encode()
        payloads.append(
            b"POST /v1/models/bench/predict_all HTTP/1.1\r\n"
            b"Host: bench\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n"
            b"\r\n" + body
        )
    return [payloads[i % len(payloads)] for i in range(per_connection)]


async def _read_response(reader: asyncio.StreamReader) -> None:
    header = await reader.readuntil(b"\r\n\r\n")
    idx = header.find(b"Content-Length:")
    length = int(header[idx + 15 : header.index(b"\r", idx)]) if idx >= 0 else 0
    body = await reader.readexactly(length)
    if header[9:12] != b"200":
        raise RuntimeError(f"HTTP {header[9:12]!r}: {body[:200]!r}")


async def _connection_load(
    host: str, port: int, requests: list[bytes], latencies: list[float]
) -> None:
    reader, writer = await asyncio.open_connection(host, port)
    try:
        for request in requests:
            start = time.perf_counter()
            writer.write(request)
            await writer.drain()
            await _read_response(reader)
            latencies.append(time.perf_counter() - start)
    finally:
        writer.close()


async def _drive(
    host: str, port: int, X: np.ndarray, connections: int, per_connection: int
) -> dict:
    latencies: list[float] = []
    requests = _requests_for(X, per_connection)
    start = time.perf_counter()
    await asyncio.gather(
        *(
            _connection_load(host, port, requests, latencies)
            for _ in range(connections)
        )
    )
    elapsed = time.perf_counter() - start
    lat = np.asarray(latencies)
    return {
        "n_requests": len(latencies),
        "elapsed": elapsed,
        "req_per_s": len(latencies) / elapsed,
        "p50_ms": float(np.percentile(lat, 50)) * 1e3,
        "p99_ms": float(np.percentile(lat, 99)) * 1e3,
    }


def _serve_and_drive(
    registry: ModelRegistry,
    X: np.ndarray,
    *,
    flush_window: float,
    connections: int,
    per_connection: int,
) -> dict:
    with BackgroundServer(
        registry,
        flush_window=flush_window,
        max_batch_rows=max(connections, 64),
        max_queue_rows=1 << 16,
    ) as server:
        # Warm the executor + socket path outside the timed region.
        asyncio.run(_drive(server.host, server.port, X, 4, 25))
        warmup_calls = server.daemon.batcher("bench").n_calls
        result = asyncio.run(
            _drive(server.host, server.port, X, connections, per_connection)
        )
        result["engine_calls"] = (
            server.daemon.batcher("bench").n_calls - warmup_calls
        )
    return result


def test_serving_throughput(benchmark, quick_mode):
    n_trees = 16 if quick_mode else 100
    connections = 8 if quick_mode else 48
    per_connection = 50 if quick_mode else 700

    registry, X = _build_registry(n_trees)
    variants = [
        ("micro-batched (2ms window)", 0.002),
        ("naive (flush_window=0)", 0.0),
    ]

    def _run():
        # Client loop and daemon loop share the interpreter: a finer GIL
        # slice keeps request turnaround from quantising to the default
        # 5ms switch interval on small machines.
        switch_interval = sys.getswitchinterval()
        sys.setswitchinterval(0.0005)
        try:
            rows = {}
            for label, flush_window in variants:
                rows[label] = _serve_and_drive(
                    registry,
                    X,
                    flush_window=flush_window,
                    connections=connections,
                    per_connection=per_connection,
                )
            return rows
        finally:
            sys.setswitchinterval(switch_interval)

    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    headers = [
        "Variant", "Requests", "Engine calls", "req/s", "p50 (ms)", "p99 (ms)",
    ]
    cells = [
        [
            label,
            r["n_requests"],
            r["engine_calls"],
            f"{r['req_per_s']:,.0f}",
            f"{r['p50_ms']:.2f}",
            f"{r['p99_ms']:.2f}",
        ]
        for label, r in rows.items()
    ]
    batched = rows["micro-batched (2ms window)"]
    naive = rows["naive (flush_window=0)"]
    text = format_table(headers, cells)
    text += (
        f"\n\n{n_trees}-tree forest, {connections} keep-alive connections, "
        f"batch-1 requests"
        f"\nmicro-batching fuses {batched['n_requests']} requests into "
        f"{batched['engine_calls']} engine calls "
        f"({batched['n_requests'] / batched['engine_calls']:.1f} rows/call)"
        f"\nthroughput vs naive: {batched['req_per_s'] / naive['req_per_s']:.2f}x"
    )
    emit(
        "serving",
        text,
        headers=headers,
        rows=cells,
        metrics={
            "n_trees": n_trees,
            "connections": connections,
            "batched_req_per_s": batched["req_per_s"],
            "naive_req_per_s": naive["req_per_s"],
            "batched_p50_ms": batched["p50_ms"],
            "batched_p99_ms": batched["p99_ms"],
            "naive_p50_ms": naive["p50_ms"],
            "naive_p99_ms": naive["p99_ms"],
            "speedup": batched["req_per_s"] / naive["req_per_s"],
        },
    )

    # Micro-batching must actually coalesce under concurrent batch-1 load.
    assert batched["engine_calls"] < batched["n_requests"]
    if not quick_mode:
        # Acceptance: ≥5k req/s through the daemon at batch-1 client load.
        assert batched["req_per_s"] >= 5000
