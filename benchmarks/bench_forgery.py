"""Engineering benchmark — the shared-encoding, parallel forgery engine.

Not a paper artefact: this benchmark measures the forgery solver sweep
(:func:`repro.attacks.forge_trigger_set` over the Fig. 4 ε grid) in its
four operating modes:

- **fresh** — the pre-engine behaviour: rebuild the forest's
  path/threshold encoding for every instance, serially
  (``reuse_encoding=False``);
- **reuse** — layer 1: compile the encoding once per signature pattern
  and re-solve it per instance with assumption-style incremental SAT
  (the default);
- **fresh+par** — layer 2 alone: per-instance rebuilds fanned out over
  ``n_jobs=4`` worker processes;
- **reuse+par** — both layers: the compiled encoding shared with every
  fork worker copy-on-write.

The determinism contract is asserted on every run, in both modes:
all four modes must return **byte-identical** forged sets, source
indices and status counts.  The acceptance bar (full mode) is a ≥ 3×
end-to-end speedup of ``reuse+par`` (``n_jobs=4``) over the fresh
serial baseline; on a single-core machine — where process fan-out
cannot pay for itself — the bar falls to layer 1 alone (``reuse``),
which carries the same contract.

Run (full)::

    PYTHONPATH=src python -m pytest benchmarks/bench_forgery.py -s

Run (smoke mode, seconds)::

    PYTHONPATH=src python -m pytest benchmarks/bench_forgery.py -s --quick
"""

from __future__ import annotations

import os
import time

from conftest import BENCH, emit, is_quick

from repro.attacks import forge_trigger_set
from repro.core import random_signature
from repro.experiments import format_table
from repro.experiments.detection import build_watermarked_model

FULL_EPSILONS = (0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9)
QUICK_EPSILONS = (0.1, 0.5)

FULL_INSTANCES = 30
QUICK_INSTANCES = 6

PARALLEL_JOBS = 4
MIN_SPEEDUP = 3.0

MODES = [
    ("fresh", dict(reuse_encoding=False)),
    ("reuse", dict(reuse_encoding=True)),
    ("fresh+par", dict(reuse_encoding=False, n_jobs=PARALLEL_JOBS)),
    ("reuse+par", dict(reuse_encoding=True, n_jobs=PARALLEL_JOBS)),
]


def _sweep(model, X_test, y_test, fake, epsilons, max_instances, **mode):
    """One timed Fig. 4-style ε sweep; returns (results, seconds)."""
    start = time.perf_counter()
    results = [
        forge_trigger_set(
            model.ensemble,
            fake,
            X_test,
            y_test,
            epsilon=eps,
            max_instances=max_instances,
            solver_budget=60_000,
            random_state=97,
            **mode,
        )
        for eps in epsilons
    ]
    return results, time.perf_counter() - start


def _fingerprint(results):
    return [
        (
            r.n_attempted,
            r.forged_X.tobytes(),
            tuple(int(i) for i in r.source_index),
            tuple(sorted(r.statuses.items())),
        )
        for r in results
    ]


def test_forgery_engine_speedup(quick_mode):
    epsilons = QUICK_EPSILONS if quick_mode else FULL_EPSILONS
    max_instances = QUICK_INSTANCES if quick_mode else FULL_INSTANCES

    model, (_X_train, X_test, _y_train, y_test) = build_watermarked_model(
        BENCH, "mnist26"
    )
    fake = random_signature(BENCH.n_estimators, ones_fraction=0.5, random_state=96)

    timings: dict[str, float] = {}
    fingerprints: dict[str, list] = {}
    forged_totals: dict[str, int] = {}
    for name, mode in MODES:
        results, seconds = _sweep(
            model, X_test, y_test, fake, epsilons, max_instances, **mode
        )
        timings[name] = seconds
        fingerprints[name] = _fingerprint(results)
        forged_totals[name] = sum(r.n_forged for r in results)

    baseline = timings["fresh"]
    rows = [
        [
            name,
            f"{timings[name]:.2f}",
            f"{baseline / timings[name]:.2f}x",
            forged_totals[name],
        ]
        for name, _mode in MODES
    ]
    headers = ["mode", "seconds", "speedup", "forged total"]
    text = format_table(headers, rows) + (
        f"\nmode: {'quick' if quick_mode else 'full'}"
        f" | {len(epsilons)} eps x {max_instances} instances"
        f" | cpus: {os.cpu_count()}"
    )
    emit("forgery_engine", text, headers=headers, rows=rows)

    # Determinism contract: every mode forges byte-identical sets.
    for name, _mode in MODES[1:]:
        assert fingerprints[name] == fingerprints["fresh"], (
            f"mode {name!r} diverged from the serial fresh baseline"
        )
    assert forged_totals["fresh"] > 0, "benchmark forged nothing — not measuring"

    if quick_mode:
        return  # smoke: exercise all modes + contract, skip the perf bar

    # Acceptance: both layers together beat the serial baseline 3x.  A
    # single-core runner cannot amortise process fan-out, so the same
    # bar applies to the encoding-reuse layer alone there.
    headline = "reuse+par" if (os.cpu_count() or 1) >= 2 else "reuse"
    speedup = baseline / timings[headline]
    assert speedup >= MIN_SPEEDUP, (
        f"{headline} speedup {speedup:.2f}x below the {MIN_SPEEDUP}x bar "
        f"(timings: { {k: round(v, 2) for k, v in timings.items()} })"
    )
