"""Engineering benchmark — adversarial traffic simulation throughput.

Not a paper artefact: this benchmark measures the :mod:`repro.traffic`
red-team/blue-team harness end to end.  Two questions:

1. **Throughput** — how many queries/second stream through a
   ``MixedStream`` (generation), the compiled inference engine
   (serving) and both online defenders (monitoring) at once.  The
   full-mode headline drives **one million queries** through the
   ``verification-probe`` scenario; the acceptance bar is simply that
   the pipeline sustains the full million (the compiled engine, not
   the stream machinery, must dominate the cost).
2. **Detection latency** — for every named scenario, how many queries
   the deployment had served when each defender fired (``-`` = stayed
   silent), at the defenders' default ``alpha = 0.05``.

Run (full)::

    PYTHONPATH=src python -m pytest benchmarks/bench_traffic.py -s

Run (smoke mode, seconds)::

    PYTHONPATH=src python -m pytest benchmarks/bench_traffic.py -s --quick
"""

from __future__ import annotations

from conftest import emit, is_quick

from repro.experiments import SMALL
from repro.experiments.scenarios import build_attack_target
from repro.traffic import replay_scenario, traffic_scenarios

DATASET = "breast-cancer"
SEED = 20250808
BATCH = 1024

HEADLINE_SCENARIO = "verification-probe"
FULL_HEADLINE_QUERIES = 1_000_000
FULL_SCENARIO_QUERIES = 100_000
QUICK_HEADLINE_QUERIES = 40_000
QUICK_SCENARIO_QUERIES = 4_000


def _fired_at(report, defender):
    verdict = report.verdict(defender)
    return verdict.fired_at if verdict.fired else None


def test_bench_traffic(request):
    quick = is_quick(request.config)
    headline_queries = QUICK_HEADLINE_QUERIES if quick else FULL_HEADLINE_QUERIES
    scenario_queries = QUICK_SCENARIO_QUERIES if quick else FULL_SCENARIO_QUERIES

    config = SMALL.with_overrides(seed=SEED)
    target = build_attack_target(config, DATASET)
    model, X_pool = target.model, target.X_train

    # -- detection latency per scenario ---------------------------------
    rows, data_rows, reports = [], [], {}
    for name in traffic_scenarios():
        report = replay_scenario(
            name,
            model,
            X_pool,
            n_queries=scenario_queries,
            batch_size=BATCH,
            random_state=SEED + 1,
        )
        reports[name] = report
        latency = {
            defender: _fired_at(report, defender)
            for defender in ("suppression-distinguisher", "extraction-monitor")
        }
        rows.append(
            f"{name:>20} {report.n_queries:>9} "
            f"{report.queries_per_second:>12,.0f} "
            f"{report.n_trigger_queries:>9} "
            f"{str(latency['suppression-distinguisher'] or '-'):>12} "
            f"{str(latency['extraction-monitor'] or '-'):>12}"
        )
        data_rows.append(
            {
                "scenario": name,
                "queries": report.n_queries,
                "queries_per_second": round(report.queries_per_second),
                "trigger_queries": report.n_trigger_queries,
                "suppression_fired_at": latency["suppression-distinguisher"],
                "extraction_fired_at": latency["extraction-monitor"],
            }
        )

    # -- the million-query headline -------------------------------------
    headline = replay_scenario(
        HEADLINE_SCENARIO,
        model,
        X_pool,
        n_queries=headline_queries,
        batch_size=BATCH,
        random_state=SEED + 2,
    )

    header = (
        f"{'scenario':>20} {'queries':>9} {'queries/s':>12} "
        f"{'triggers':>9} {'suppr@':>12} {'extract@':>12}"
    )
    mode = "quick" if quick else "full"
    emit(
        "bench_traffic",
        f"mode: {mode}  ({model.ensemble.n_trees_}-tree deployment, "
        f"batch {BATCH})\n"
        + header
        + "\n"
        + "\n".join(rows)
        + f"\n\nheadline: {headline.n_queries:,} queries through "
        f"'{HEADLINE_SCENARIO}' + both defenders at "
        f"{headline.queries_per_second:,.0f} queries/s "
        f"({headline.elapsed_seconds:.2f} s)",
        mode=mode,
        rows=data_rows,
        metrics={
            "headline_queries": headline.n_queries,
            "headline_queries_per_second": round(headline.queries_per_second),
            "headline_elapsed_seconds": round(headline.elapsed_seconds, 3),
        },
    )

    # Sanity on the red/blue match-ups at any scale: benign traffic
    # never alarms, probing always gets caught.
    assert not any(v.fired for v in reports["legit"].verdicts)
    assert reports[HEADLINE_SCENARIO].verdict("suppression-distinguisher").fired
    assert reports["suppression-evasion"].verdict("suppression-distinguisher").fired

    if not quick:
        assert headline.n_queries >= FULL_HEADLINE_QUERIES, (
            f"headline replay served only {headline.n_queries:,} of the "
            f"{FULL_HEADLINE_QUERIES:,} queries the acceptance bar demands"
        )
