"""Shared benchmark infrastructure.

Every benchmark regenerates one table or figure of the paper at the
``BENCH`` scale (laptop-sized stand-in datasets, see DESIGN.md §2).
Rendered tables are printed (visible with ``pytest -s``) and written to
``benchmarks/results/<name>.txt``; alongside each table, ``emit`` (see
``benchmarks/_emit.py``) also writes ``results/<name>.json`` with the
run mode and the structured rows/metrics, so the perf trajectory is
machine-readable from this PR on.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from _emit import RESULTS_DIR, emit  # noqa: F401  (re-exported for benchmarks)
from repro.experiments import SMALL


def pytest_configure(config):
    # Mirror --quick into the environment so helper modules (and any
    # worker processes) see the same mode without a pytest config.
    if config.getoption("--quick", default=False):
        os.environ["REPRO_BENCH_QUICK"] = "1"


def is_quick(config=None) -> bool:
    """Smoke mode: ``--quick`` on the command line or REPRO_BENCH_QUICK=1.

    In smoke mode benchmarks shrink their workloads so the whole file
    runs in seconds under pytest (CI sanity check); full mode produces
    the committed figures.
    """
    if os.environ.get("REPRO_BENCH_QUICK", "").strip().lower() in ("1", "true", "yes"):
        return True
    if config is not None:
        return bool(config.getoption("--quick", default=False))
    return False


@pytest.fixture(scope="session")
def quick_mode(request) -> bool:
    return is_quick(request.config)

#: The benchmark-scale configuration: large enough for the paper's
#: qualitative shapes, small enough for the whole suite to run in
#: minutes on a laptop.
BENCH = SMALL.with_overrides(
    name="bench",
    dataset_sizes={"mnist26": 480, "breast-cancer": 300, "ijcnn1": 700},
    n_estimators=16,
    tree_feature_fraction=0.35,
    escalation_factor=2.0,
)


@pytest.fixture(scope="session")
def bench_config():
    return BENCH
