"""Shared benchmark infrastructure.

Every benchmark regenerates one table or figure of the paper at the
``BENCH`` scale (laptop-sized stand-in datasets, see DESIGN.md §2).
Rendered tables are printed (visible with ``pytest -s``) and also
written to ``benchmarks/results/<name>.txt`` so the artefacts survive
output capture.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import SMALL

RESULTS_DIR = Path(__file__).parent / "results"

#: The benchmark-scale configuration: large enough for the paper's
#: qualitative shapes, small enough for the whole suite to run in
#: minutes on a laptop.
BENCH = SMALL.with_overrides(
    name="bench",
    dataset_sizes={"mnist26": 480, "breast-cancer": 300, "ijcnn1": 700},
    n_estimators=16,
    tree_feature_fraction=0.35,
    escalation_factor=2.0,
)


def emit(name: str, text: str) -> None:
    """Print a rendered table and persist it under benchmarks/results/."""
    banner = f"\n=== {name} ===\n{text}\n"
    print(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


@pytest.fixture(scope="session")
def bench_config():
    return BENCH
