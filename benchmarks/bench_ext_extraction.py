"""Extension — model-extraction (surrogate) attacker.

A thief distils the stolen model into a surrogate via black-box
queries.  Expected outcome: fidelity rises with the query budget, but
the watermark never transfers (it lives in per-tree alignment the
surrogate cannot inherit) — an honest limitation of the scheme under
attackers outside the paper's threat model.
"""

from conftest import BENCH, emit

from repro.experiments import extraction_table, format_table


def _run():
    return extraction_table(BENCH, dataset="breast-cancer", query_budgets=(50, 100, 200))


def test_extension_extraction_attack(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    headers = ["Query budget", "Surrogate accuracy", "WM match rate", "WM accepted"]
    cells = [[int(r.strength), r.accuracy, r.watermark_match_rate, r.watermark_accepted] for r in rows]
    text = format_table(headers, cells)
    emit("ext_extraction_attack", text, headers=headers, rows=cells)

    # The watermark must never survive extraction.
    assert all(not r.watermark_accepted for r in rows)
