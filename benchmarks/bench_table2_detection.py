"""Table 2 — watermark detection via structural statistics.

Runs both attacker strategies (mean±std bands in the paper's red rows,
sharp mean threshold in the blue rows) on both per-tree statistics and
prints #correct / #wrong / #uncertain, with the statistic's (mean, std)
as in the paper's brackets.  Shape to reproduce: neither strategy
recovers the signature.
"""

from conftest import BENCH, emit

from repro.experiments import detection_table, format_table


def _run():
    return detection_table(BENCH)


def test_table2_watermark_detection(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    headers = ["Dataset", "Hyper-Parameter", "Strategy", "(mean - std)", "#correct", "#wrong", "#uncertain"]
    cells = [
            [
                r.dataset,
                r.statistic,
                r.strategy,
                f"({r.mean:.2f} - {r.std:.2f})",
                r.n_correct,
                r.n_wrong,
                r.n_uncertain,
            ]
            for r in rows
        ]
    text = format_table(headers, cells)
    emit("table2_detection", text, headers=headers, rows=cells)

    m = BENCH.n_estimators
    for r in rows:
        assert r.n_correct + r.n_wrong + r.n_uncertain == m
        # Paper shape: the attack never recovers (nearly) the whole
        # signature — correct guesses stay well below m.
        assert r.n_correct < m, f"{r.dataset}/{r.statistic}/{r.strategy} fully recovered"

    # The bands strategy must produce uncertain trees somewhere (the
    # paper reports a huge number of uncertain cases).
    bands = [r for r in rows if r.strategy == "bands"]
    assert sum(r.n_uncertain for r in bands) > 0
