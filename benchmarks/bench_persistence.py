"""Engineering benchmark — model persistence: JSON vs binary vs mmap.

Not a paper artefact: this benchmark measures the zero-copy binary
model format (:mod:`repro.persistence.exporters.binary`) against the
JSON escape hatch on the serving-scale configuration the ROADMAP
targets — a 100-tree forest answering 10k-row batches.  Three things
are measured:

- **cold-start latency**: time from artefact on disk to a loaded model
  (the binary+mmap column is the one a serving fleet restarts pay);
- **round-trip wall time**: ``save`` + ``load`` per format;
- **per-worker memory**: unique (non-shared) RSS of each process in a
  4-worker pool serving predictions, with the model shipped either as
  a pickle (the pre-PR behaviour) or as an mmap reopen handle — the
  node tables then live once in the page cache, not once per worker.

Acceptance (full mode): the mmap load is ≥ 50× faster than the JSON
load on the headline forest, and pooled workers sharing the artefact
carry less unique memory than pickled ones.

Run (full)::

    PYTHONPATH=src python -m pytest benchmarks/bench_persistence.py -s

Run (smoke mode, seconds)::

    PYTHONPATH=src python -m pytest benchmarks/bench_persistence.py -s --quick

The trees are randomly generated (persistence cost depends only on
structure, not on how the trees were learned).
"""

from __future__ import annotations

import re
import time

import numpy as np
from conftest import emit, is_quick

from repro.ensemble import RandomForestClassifier
from repro.parallel import fork_available, open_model_handle, run_batches
from repro.persistence import load, save
from repro.trees import DecisionTreeClassifier
from repro.trees.node import InternalNode, Leaf

N_FEATURES = 20
MIN_MMAP_SPEEDUP = 50.0
POOL_WORKERS = 4

#: (n_trees, depth, leaf probability, batch size); the full headline row
#: matches bench_compiled_inference's serving scale.
FULL_SCALES = [
    (10, 8, 0.15, 1_000),
    (100, 12, 0.05, 10_000),
    (100, 14, 0.05, 10_000),
]
QUICK_SCALES = [(8, 6, 0.15, 500)]
HEADLINE_INDEX = -1  # last row of whichever grid runs


def _random_tree(gen: np.random.Generator, depth: int, leaf_p: float):
    if depth == 0 or gen.uniform() < leaf_p:
        label = int(gen.choice([-1, 1]))
        return Leaf(prediction=label, class_weights={label: float(gen.uniform(1, 9))})
    return InternalNode(
        feature=int(gen.integers(N_FEATURES)),
        threshold=float(gen.normal()),
        left=_random_tree(gen, depth - 1, leaf_p),
        right=_random_tree(gen, depth - 1, leaf_p),
    )


def _random_forest(gen: np.random.Generator, n_trees: int, depth: int, leaf_p: float):
    forest = RandomForestClassifier(n_estimators=n_trees)
    trees = []
    for _ in range(n_trees):
        tree = DecisionTreeClassifier()
        tree.root_ = _random_tree(gen, depth, leaf_p)
        tree.classes_ = np.array([-1, 1])
        tree.n_features_in_ = N_FEATURES
        trees.append(tree)
    forest.trees_ = trees
    forest.feature_subsets_ = [np.arange(N_FEATURES)] * n_trees
    forest.classes_ = np.array([-1, 1])
    forest.n_features_in_ = N_FEATURES
    return forest


def _best_of(fn, repeats: int) -> float:
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _unique_rss_kb() -> int:
    """This process's non-shared resident memory (Private_* of
    ``smaps_rollup``), i.e. what the process costs *beyond* pages it
    shares with siblings — exactly the number mmap sharing improves."""
    try:
        text = open("/proc/self/smaps_rollup").read()
    except OSError:  # pragma: no cover - non-Linux fallback
        return -1
    total = 0
    for key in ("Private_Clean", "Private_Dirty"):
        match = re.search(rf"^{key}:\s+(\d+) kB", text, re.MULTILINE)
        total += int(match.group(1)) if match else 0
    return total


def _serve_pickled(model, X):
    model.predict_all(X)
    return _unique_rss_kb()


def _serve_from_handle(handle, X):
    model = open_model_handle(handle)
    model.predict_all(X)
    return _unique_rss_kb()


def _pool_memory(forest, path, X) -> tuple[float, float]:
    """Mean unique RSS (MB) per worker: pickled model vs shared mmap."""
    chunks = [(c,) for c in np.array_split(X, POOL_WORKERS)]
    pickled = run_batches(
        _serve_pickled, [(forest, c) for (c,) in chunks], n_workers=POOL_WORKERS
    )
    handle = (str(path), "binary", "r")
    shared = run_batches(
        _serve_from_handle, [(handle, c) for (c,) in chunks], n_workers=POOL_WORKERS
    )
    to_mb = lambda kbs: float(np.mean([kb for kb in kbs if kb >= 0]) / 1024.0)
    return to_mb(pickled), to_mb(shared)


def test_bench_persistence(request, tmp_path):
    quick = is_quick(request.config)
    scales = QUICK_SCALES if quick else FULL_SCALES
    repeats = 2 if quick else 3
    gen = np.random.default_rng(20250808)

    rows = []
    data_rows = []
    headline_speedup = 0.0
    pool_pickled_mb = pool_shared_mb = None
    for index, (n_trees, depth, leaf_p, batch) in enumerate(scales):
        forest = _random_forest(gen, n_trees, depth, leaf_p)
        X = gen.normal(size=(batch, N_FEATURES))
        expected = forest.predict_all(X)

        json_path = tmp_path / f"forest_{index}.json"
        bin_path = tmp_path / f"forest_{index}.rfbin"

        t_json_save = _best_of(lambda: save(forest, json_path, format="json"), repeats)
        t_bin_save = _best_of(lambda: save(forest, bin_path, format="binary"), repeats)

        t_json_load = _best_of(lambda: load(json_path), repeats)
        t_bin_load = _best_of(lambda: load(bin_path), repeats)
        t_mmap_load = _best_of(lambda: load(bin_path, mmap_mode="r"), repeats)

        # Loaded models answer identically, whatever the format.
        for restored in (load(json_path), load(bin_path), load(bin_path, mmap_mode="r")):
            assert np.array_equal(restored.predict_all(X), expected)

        speedup = t_json_load / t_mmap_load
        if index == len(scales) + HEADLINE_INDEX:
            headline_speedup = speedup
            if fork_available():
                pool_pickled_mb, pool_shared_mb = _pool_memory(forest, bin_path, X)

        json_kb = json_path.stat().st_size // 1024
        bin_kb = bin_path.stat().st_size // 1024
        rows.append(
            f"{n_trees:>6} {depth:>6} {json_kb:>9} {bin_kb:>9} "
            f"{1e3 * t_json_load:>12.1f} {1e3 * t_bin_load:>12.1f} "
            f"{1e3 * t_mmap_load:>12.2f} {speedup:>9.0f}x "
            f"{1e3 * (t_json_save + t_json_load):>13.1f} "
            f"{1e3 * (t_bin_save + t_bin_load):>13.1f}"
        )
        data_rows.append(
            {
                "trees": n_trees,
                "depth": depth,
                "json_kb": json_kb,
                "rfbin_kb": bin_kb,
                "json_load_ms": round(1e3 * t_json_load, 2),
                "binary_load_ms": round(1e3 * t_bin_load, 2),
                "mmap_load_ms": round(1e3 * t_mmap_load, 3),
                "mmap_vs_json": round(speedup, 1),
                "json_roundtrip_ms": round(1e3 * (t_json_save + t_json_load), 2),
                "binary_roundtrip_ms": round(1e3 * (t_bin_save + t_bin_load), 2),
            }
        )

    header = (
        f"{'trees':>6} {'depth':>6} {'json kB':>9} {'rfbin kB':>9} "
        f"{'json ld ms':>12} {'bin ld ms':>12} {'mmap ld ms':>12} {'speedup':>10} "
        f"{'json rt ms':>13} {'bin rt ms':>13}"
    )
    lines = [header] + rows
    metrics = {"mmap_vs_json_load": round(headline_speedup, 1)}
    if pool_pickled_mb is not None:
        lines.append(
            f"\n{POOL_WORKERS}-worker pool, unique RSS per worker: "
            f"pickled model {pool_pickled_mb:.1f} MB, "
            f"shared mmap artefact {pool_shared_mb:.1f} MB"
        )
        metrics["pool_worker_unique_mb_pickled"] = round(pool_pickled_mb, 2)
        metrics["pool_worker_unique_mb_mmap"] = round(pool_shared_mb, 2)

    mode = "quick" if quick else "full"
    emit(
        "persistence",
        f"mode: {mode} (best of {repeats})\n" + "\n".join(lines),
        mode=mode,
        rows=data_rows,
        metrics=metrics,
    )

    if not quick:
        assert headline_speedup >= MIN_MMAP_SPEEDUP, (
            f"mmap load is only {headline_speedup:.0f}x faster than JSON on the "
            f"headline forest (acceptance bar: {MIN_MMAP_SPEEDUP:.0f}x)"
        )
        if pool_shared_mb is not None:
            assert pool_shared_mb < pool_pickled_mb, (
                f"pooled workers sharing the mmap artefact should carry less "
                f"unique memory ({pool_shared_mb:.1f} MB) than pickled ones "
                f"({pool_pickled_mb:.1f} MB)"
            )
