"""Theorem 1 — the 3SAT → watermark forgery reduction, constructively.

Not a table in the paper, but the proof's machinery is executable:
random 3CNF formulas are converted to ensembles and the forgery solver
must agree with a brute-force 3SAT oracle, while solver effort grows
with formula size (the empirical face of NP-hardness).
"""

import numpy as np
from conftest import emit

from repro.experiments import format_table
from repro.hardness import (
    brute_force_3sat,
    forgery_problem_from_formula,
    instance_to_assignment,
    random_3cnf,
)
from repro.solver import solve_pattern_smt


def _run():
    rng = np.random.default_rng(0)
    rows = []
    for n_vars, n_clauses in [(6, 20), (8, 33), (10, 42), (12, 51)]:
        agreements = 0
        conflicts = []
        trials = 12
        for _ in range(trials):
            formula = random_3cnf(n_vars, n_clauses, random_state=int(rng.integers(2**31 - 1)))
            problem = forgery_problem_from_formula(formula)
            outcome = solve_pattern_smt(problem)
            truth = brute_force_3sat(formula) is not None
            if outcome.is_sat == truth:
                agreements += 1
            if outcome.is_sat:
                assert formula.evaluate(instance_to_assignment(outcome.instance))
            conflicts.append(outcome.stats.get("conflicts", 0))
        rows.append([n_vars, n_clauses, f"{agreements}/{trials}", float(np.mean(conflicts))])
    return rows


def test_theorem1_reduction_roundtrip(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    headers = ["n_vars", "n_clauses", "solver==oracle", "mean conflicts"]
    text = format_table(headers, rows)
    emit("hardness_reduction", text, headers=headers, rows=rows)
    for row in rows:
        agreements, trials = row[2].split("/")
        assert agreements == trials  # solver always agrees with the oracle
