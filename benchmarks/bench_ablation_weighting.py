"""Ablation A2 — convergence of the re-weighting loop.

Algorithm 1 bumps trigger weights additively (+1) until every tree fits
the trigger set.  This ablation measures rounds-to-converge and final
trigger weight as the trigger set grows, for the paper's additive
schedule and our geometric escalation.
"""

import numpy as np
from conftest import BENCH, emit

from repro.core import random_signature, watermark
from repro.experiments import format_table, prepare_split


def _run():
    X_train, _X_test, y_train, _y_test = prepare_split(BENCH, "breast-cancer")
    rows = []
    for escalation, label in ((1.0, "additive (+1)"), (2.0, "geometric (x2)")):
        for fraction in (0.01, 0.02, 0.04):
            k = max(1, int(round(fraction * X_train.shape[0])))
            model = watermark(
                X_train,
                y_train,
                random_signature(BENCH.n_estimators, random_state=7),
                trigger_size=k,
                base_params=BENCH.base_params,
                tree_feature_fraction=BENCH.tree_feature_fraction,
                escalation_factor=escalation,
                max_rounds=60,
                random_state=8,
            )
            rows.append(
                [
                    label,
                    fraction,
                    k,
                    model.report.rounds_t0 + model.report.rounds_t1,
                    max(model.report.trigger_weight_t0, model.report.trigger_weight_t1),
                ]
            )
    return rows


def test_ablation_reweighting_schedule(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    headers = ["Schedule", "trigger frac", "k", "total rounds", "max trigger weight"]
    text = format_table(headers, rows)
    emit("ablation_weighting", text, headers=headers, rows=rows)

    # Embedding must converge everywhere within the round budget.
    assert all(row[3] < 60 for row in rows)
    # Geometric escalation never needs more rounds than additive.
    additive = {(row[1]): row[3] for row in rows if row[0].startswith("additive")}
    geometric = {(row[1]): row[3] for row in rows if row[0].startswith("geometric")}
    for fraction in additive:
        assert geometric[fraction] <= additive[fraction] + 1
