"""Engineering benchmark — incremental + parallel watermark embedding.

Not a paper artefact: this benchmark measures the embedding engine
(:func:`repro.core.embedding.watermark` / ``train_with_trigger``) in its
three operating modes:

- **full** — the paper's literal loop: every re-weighting round refits
  all ``m`` trees from scratch (``incremental=False``), the behaviour
  the repo shipped before the incremental engine;
- **incremental** — trigger-compliant trees are kept across rounds and
  only the stubborn ones refit (the default);
- **incremental+parallel** — the same, with tree fits fanned out over
  a process pool (``n_jobs=-1``).

The headline configuration embeds a 32-tree watermark with the paper's
additive re-weighting schedule; the acceptance bar is a ≥ 3× wall-clock
speedup of incremental+parallel over the full-retrain loop, with the
resulting model accepted by ``verify_ownership`` in strict mode and
bitwise-reproducible under a fixed ``random_state``.

Run (full)::

    PYTHONPATH=src python -m pytest benchmarks/bench_embedding.py -s

Run (smoke mode, seconds)::

    PYTHONPATH=src python -m pytest benchmarks/bench_embedding.py -s --quick
"""

from __future__ import annotations

import time

from conftest import emit, is_quick

from repro.core import random_signature, verify_ownership, watermark
from repro.datasets import breast_cancer_like
from repro.model_selection import train_test_split
from repro.persistence import forest_to_dict

#: Headline scale: 32 trees (the acceptance-criterion configuration)
#: after a warm-up size, on the breast-cancer stand-in.
FULL_SIGNATURE_BITS = [16, 32]
QUICK_SIGNATURE_BITS = [6]

HEADLINE_BITS = 32
MIN_SPEEDUP = 3.0

BASE_PARAMS = {"max_depth": 8, "min_samples_leaf": 1}

MODES = [
    ("full", dict(incremental=False)),
    ("incremental", dict(incremental=True)),
    ("incr+parallel", dict(incremental=True, n_jobs=-1)),
]


def _split(n_samples: int):
    ds = breast_cancer_like(n_samples, random_state=5)
    return train_test_split(ds.X, ds.y, test_size=0.3, random_state=6)


def _embed(X_train, y_train, signature, **extra):
    """One timed watermark embedding; returns (model, seconds)."""
    start = time.perf_counter()
    model = watermark(
        X_train,
        y_train,
        signature,
        trigger_size=8,
        base_params=BASE_PARAMS,
        tree_feature_fraction=0.5,
        random_state=8,  # paper's additive schedule: escalation_factor=1
        **extra,
    )
    return model, time.perf_counter() - start


def test_embedding_benchmark(request):
    quick = is_quick(request.config)
    bits_grid = QUICK_SIGNATURE_BITS if quick else FULL_SIGNATURE_BITS
    n_samples = 200 if quick else 400
    X_train, X_test, y_train, y_test = _split(n_samples)

    lines = [
        f"mode: {'quick' if quick else 'full'}",
        f"{'bits':>5} {'mode':>14} {'wall s':>8} {'rounds':>7} "
        f"{'speedup':>8} {'accepted':>9}",
    ]
    data_rows = []
    headline_speedup = None
    for bits in bits_grid:
        signature = random_signature(bits, ones_fraction=0.5, random_state=7)
        baseline = None
        model = None
        for label, extra in MODES:
            model, seconds = _embed(X_train, y_train, signature, **extra)
            report = verify_ownership(
                model.ensemble,
                model.signature,
                model.trigger.X,
                model.trigger.y,
                mode="strict",
            )
            assert report.accepted, f"{label} embedding must carry the watermark"
            if baseline is None:
                baseline = seconds
            speedup = baseline / seconds
            rounds = model.report.rounds_t0 + model.report.rounds_t1
            lines.append(
                f"{bits:>5} {label:>14} {seconds:>8.2f} {rounds:>7} "
                f"{speedup:>7.1f}x {str(report.accepted):>9}"
            )
            data_rows.append(
                {"bits": bits, "mode": label, "seconds": round(seconds, 3),
                 "rounds": rounds, "speedup": round(speedup, 2),
                 "accepted": bool(report.accepted)}
            )
            if bits == HEADLINE_BITS and label == "incr+parallel":
                headline_speedup = speedup

        # Determinism contract: the incremental+parallel engine is
        # bitwise-reproducible under a fixed random_state.  ``model``
        # is the incr+parallel embed from the loop above.
        again, _ = _embed(X_train, y_train, signature, **MODES[-1][1])
        assert forest_to_dict(model.ensemble) == forest_to_dict(again.ensemble), (
            "embedding must be bitwise-reproducible for a fixed random_state"
        )

    emit(
        "bench_embedding",
        "\n".join(lines),
        mode="quick" if quick else "full",
        rows=data_rows,
        metrics={"headline_speedup": round(headline_speedup or 0.0, 2)},
    )

    if not quick:
        assert headline_speedup is not None
        assert headline_speedup >= MIN_SPEEDUP, (
            f"incremental+parallel embedding must be >= {MIN_SPEEDUP}x faster "
            f"than the full-retrain loop at {HEADLINE_BITS} trees, got "
            f"{headline_speedup:.1f}x"
        )
