"""Ablation A3 — the two forgery engines against each other.

Benchmarks the eager-SMT engine (CDCL over threshold atoms) and the
box-DPLL engine on identical forgery instances of growing ensemble
size, asserting they agree on every status — the library's substitute
for trusting a single solver implementation (the paper trusts Z3).
"""

import time

import numpy as np
from conftest import BENCH, emit

from repro.core import random_signature
from repro.experiments import format_table, prepare_split
from repro.ensemble import RandomForestClassifier
from repro.solver import PatternProblem, required_labels, solve_pattern

SIZES = (4, 8, 16)
TRIALS = 8


def _run():
    X_train, X_test, y_train, y_test = prepare_split(BENCH, "breast-cancer")
    rng = np.random.default_rng(0)
    rows = []
    for m in SIZES:
        forest = RandomForestClassifier(
            n_estimators=m,
            max_depth=8,
            tree_feature_fraction=0.6,
            random_state=int(rng.integers(2**31 - 1)),
        ).fit(X_train, y_train)
        timings = {"smt": 0.0, "boxes": 0.0}
        agreements = 0
        sat_count = 0
        for _ in range(TRIALS):
            signature = random_signature(m, random_state=int(rng.integers(2**31 - 1)))
            row = int(rng.integers(X_test.shape[0]))
            problem = PatternProblem(
                roots=forest.roots(),
                required=required_labels(signature, int(y_test[row])),
                n_features=X_test.shape[1],
                center=X_test[row],
                epsilon=0.4,
            )
            statuses = {}
            for engine in ("smt", "boxes"):
                started = time.perf_counter()
                outcome = solve_pattern(problem, engine)
                timings[engine] += time.perf_counter() - started
                statuses[engine] = outcome.status
            agreements += statuses["smt"] == statuses["boxes"]
            sat_count += statuses["smt"] == "sat"
        rows.append(
            [
                m,
                forest.total_leaves(),
                f"{agreements}/{TRIALS}",
                sat_count,
                timings["smt"] / TRIALS,
                timings["boxes"] / TRIALS,
            ]
        )
    return rows


def test_ablation_solver_engines(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    headers = ["m (trees)", "total leaves", "agree", "#sat", "smt s/query", "boxes s/query"]
    text = format_table(headers, rows)
    emit("ablation_solvers", text, headers=headers, rows=rows)
    for row in rows:
        agreements, trials = row[2].split("/")
        assert agreements == trials
