"""Extension — suppression distinguishers, quantified.

The paper argues suppression fails *by construction* because triggers
come from the training distribution.  This bench measures that claim
(input-distance AUC ≈ chance) and also the stronger model-behaviour
attacker our analysis adds (vote-disagreement AUC, typically high) —
per dataset.
"""

from conftest import BENCH, emit

from repro.attacks import suppression_analysis
from repro.experiments import build_watermarked_model, format_table


def _run():
    rows = []
    for dataset in ("breast-cancer", "ijcnn1"):
        model, (X_train, X_test, _y_train, _y_test) = build_watermarked_model(
            BENCH, dataset
        )
        analysis = suppression_analysis(
            model.ensemble, model.trigger.X, X_test, X_train
        )
        rows.append([dataset, analysis.input_auc, analysis.disagreement_auc])
    return rows


def test_extension_suppression_distinguishers(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    headers = ["Dataset", "input-distance AUC", "vote-disagreement AUC"]
    text = format_table(headers, rows)
    emit("ext_suppression", text, headers=headers, rows=rows)

    for _dataset, input_auc, disagreement_auc in rows:
        # Paper's claim: inputs alone carry little signal.
        assert input_auc < 0.9
        # Our extension: per-tree outputs leak trigger identity strongly.
        assert disagreement_auc > 0.7
