"""Fig. 5 — distortion of forged instances and their detectability.

The paper renders forged MNIST digits at ε ∈ {0.3, 0.5, 0.7} and notes
that a standard ensemble's accuracy drops from 0.99 on the original
trigger instances to 0.62 on the forged ones.  Without a display we
report the quantitative analogue: mean L∞/L2 distortion plus the
standard-ensemble accuracy on original vs forged instances.
"""

import math

from conftest import BENCH, emit

from repro.experiments import forged_instance_study, format_table

EPSILONS = (0.3, 0.5, 0.7)


def _run():
    return forged_instance_study(
        BENCH,
        dataset="mnist26",
        epsilons=EPSILONS,
        max_instances=20,
        solver_budget=60_000,
    )


def test_fig5_forged_instance_distortion(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    headers = ["eps", "#forged", "mean Linf", "mean L2", "std acc (orig)", "std acc (forged)"]
    cells = [
            [
                r.epsilon,
                r.n_forged,
                r.mean_linf,
                r.mean_l2,
                r.standard_accuracy_on_original,
                r.standard_accuracy_on_forged,
            ]
            for r in rows
        ]
    text = format_table(headers, cells)
    emit("fig5_forged_instances", text, headers=headers, rows=cells)

    for r in rows:
        if r.n_forged:
            # Distortion bounded by budget and grows (weakly) with it.
            assert r.mean_linf <= r.epsilon + 1e-6
    forged = [r for r in rows if r.n_forged > 0 and not math.isnan(r.standard_accuracy_on_forged)]
    if forged:
        # Paper shape: the standard ensemble performs worse on forged
        # instances than on the originals at the largest distortion.
        last = forged[-1]
        assert last.standard_accuracy_on_forged <= last.standard_accuracy_on_original + 1e-9
