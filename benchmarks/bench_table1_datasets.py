"""Table 1 — dataset statistics of the three stand-ins.

Regenerates the instances / features / class-distribution rows.  The
stand-ins are generated at the paper's full sizes here (this is the one
experiment where full scale is cheap except for MNIST2-6, which uses
its real 13,866 x 784 shape).
"""

from conftest import emit

from repro.datasets import dataset_statistics, load_dataset
from repro.experiments import format_table


def _rows():
    rows = []
    for name in ("mnist26", "breast-cancer", "ijcnn1"):
        dataset = load_dataset(name, random_state=0)
        stats = dataset_statistics(dataset)
        rows.append(
            [stats["dataset"], stats["instances"], stats["features"], stats["distribution"]]
        )
    return rows


def test_table1_dataset_statistics(benchmark):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    headers = ["Dataset", "Instances", "Features", "Distribution"]
    text = format_table(headers, rows)
    emit("table1_datasets", text, headers=headers, rows=rows)

    # Shape assertions against the paper's Table 1.
    by_name = {row[0]: row for row in rows}
    assert by_name["mnist26"][1] == 13866 and by_name["mnist26"][2] == 784
    assert by_name["breast-cancer"][1] == 569 and by_name["breast-cancer"][2] == 30
    assert by_name["ijcnn1"][1] == 10000 and by_name["ijcnn1"][2] == 22
    assert by_name["ijcnn1"][3] == "90%/10%"
