"""Fig. 3b — test accuracy vs fraction of signature bits set to 1.

Sweeps the 1-bit share (forced prediction errors) with a fixed 2%
trigger set.  Paper shape: the loss grows mildly with the 1-share and
the largest drop is around two accuracy points.
"""

import numpy as np
from conftest import BENCH, emit

from repro.experiments import accuracy_vs_ones_fraction, format_table

PERCENTS = (10, 30, 50, 60)


def _run():
    return accuracy_vs_ones_fraction(BENCH, percents=PERCENTS)


def test_fig3b_accuracy_vs_one_bits(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    headers = ["Dataset", "% bits = 1", "WM RF acc", "Standard RF acc", "Loss"]
    cells = [
            [r.dataset, r.x_value, r.watermarked_accuracy, r.standard_accuracy, r.accuracy_loss]
            for r in rows
        ]
    text = format_table(headers, cells)
    emit("fig3b_accuracy_vs_bits", text, headers=headers, rows=cells)

    # Paper shape: the accuracy cost stays small across the sweep.
    losses = [r.accuracy_loss for r in rows]
    assert np.mean(losses) < 0.08
    assert max(losses) < 0.2
