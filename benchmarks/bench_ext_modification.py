"""Extension — model-modification attackers (the paper's future work).

The paper assumes the stolen model is served unmodified and defers
stronger attackers to future work.  This bench quantifies them: depth
truncation, random leaf flipping and cost-complexity pruning, each
sweeping strength and reporting the attacker's accuracy cost against
the watermark damage.
"""

from conftest import BENCH, emit

from repro.experiments import format_table, modification_table, pruning_table


def _run():
    modification = modification_table(
        BENCH,
        dataset="breast-cancer",
        truncate_depths=(6, 4, 2),
        flip_probabilities=(0.05, 0.15, 0.3),
    )
    pruning = pruning_table(BENCH, dataset="breast-cancer", alphas=(0.0, 1.0, 4.0))
    return modification + pruning


def test_extension_modification_attacks(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    headers = ["Attack", "Strength", "Accuracy after", "WM match rate", "WM accepted"]
    cells = [
            [r.attack, r.strength, r.accuracy, r.watermark_match_rate, r.watermark_accepted]
            for r in rows
        ]
    text = format_table(headers, cells)
    emit("ext_modification_attacks", text, headers=headers, rows=cells)

    for r in rows:
        assert 0.0 <= r.watermark_match_rate <= 1.0
    # The stronger the flip attack, the less of the watermark survives.
    flips = [r for r in rows if r.attack == "flip"]
    rates = [r.watermark_match_rate for r in flips]
    assert rates == sorted(rates, reverse=True)
