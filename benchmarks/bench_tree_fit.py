"""Engineering benchmark — presorted, weight-only-refresh tree training.

Not a paper artefact: this benchmark measures the split-search engine
behind every ``fit`` in the repo, layer by layer:

- **seed** (``splitter="local"``) — the node-local engine the repo
  shipped before the presorted engine: one Python iteration per
  candidate feature per node, each re-running ``np.argsort``;
- **presorted, cold cache** — the default engine with the presort cache
  cleared first, so the measurement includes building the per-dataset
  sort tables once (this is what a fresh ``fit`` pays);
- **presorted, warm cache** — ``TrainWithTrigger``-style weight
  escalation: the training matrix never changes between rounds, so
  selective refits reuse the cached presort outright.

Acceptance bars (full mode, Table-1-scale data: 10k rows x 22
features): the presorted engine fits a 100-tree forest >= 5x faster
than the seed splitter, and a 5-round weight-escalation refit loop
gains >= 1.5x more from presort-cache reuse alone (warm vs cold).  In
every measured configuration the produced forests are verified
**bitwise-identical** to the seed path (serialised trees and
``predict_all``).

Run (full)::

    PYTHONPATH=src python -m pytest benchmarks/bench_tree_fit.py -s

Run (smoke mode, seconds)::

    PYTHONPATH=src python -m pytest benchmarks/bench_tree_fit.py -s --quick
"""

from __future__ import annotations

import time

import numpy as np
from conftest import emit, is_quick

from repro.datasets import correlated_gaussian_classes
from repro.ensemble import RandomForestClassifier
from repro.persistence import forest_to_dict
from repro.trees import clear_presort_cache

MIN_FIT_SPEEDUP = 5.0
MIN_REUSE_SPEEDUP = 1.5

#: Headline scale (full mode): a 100-tree forest on >= 10k rows and
#: >= 20 features, grown to purity like sklearn's defaults.
FULL = dict(
    n_samples=10_000,
    n_features=22,
    n_estimators=100,
    fit_params=dict(max_depth=None, min_samples_leaf=1, tree_feature_fraction=0.7),
    # Escalation-round shape: Adjust-capped shallow trees on per-tree
    # feature subspaces (the paper's trees see a fraction of the
    # features), one stubborn slot refitting per round — the typical
    # late-round state of the incremental embedding loop.
    refit_trees=1,
    refit_rounds=5,
    refit_params=dict(max_depth=3, min_samples_leaf=1, tree_feature_fraction=0.35),
)
QUICK = dict(
    n_samples=600,
    n_features=8,
    n_estimators=8,
    fit_params=dict(max_depth=8, min_samples_leaf=1, tree_feature_fraction=0.7),
    refit_trees=2,
    refit_rounds=2,
    refit_params=dict(max_depth=3, min_samples_leaf=1, tree_feature_fraction=0.7),
)


def _dataset(cfg):
    rng = np.random.default_rng(17)
    X, y = correlated_gaussian_classes(
        cfg["n_samples"], cfg["n_features"], positive_fraction=0.45,
        separation=0.9, rng=rng,
    )
    # Trigger-style weighting: a few rows carry overwhelming mass, the
    # shape TrainWithTrigger produces after a couple of rounds.
    weights = np.ones(cfg["n_samples"])
    trigger = rng.choice(cfg["n_samples"], size=max(4, cfg["n_samples"] // 500),
                         replace=False)
    weights[trigger] = 25.0
    X_test = rng.normal(0.5, 0.25, size=(512, cfg["n_features"]))
    return X, y, weights, trigger, X_test


def _forest(cfg, params, splitter, seed=23):
    return RandomForestClassifier(
        n_estimators=cfg["n_estimators"], splitter=splitter, random_state=seed,
        **params,
    )


def _identical(a, b) -> bool:
    da, db = forest_to_dict(a), forest_to_dict(b)
    da["params"].pop("splitter")
    db["params"].pop("splitter")
    return da == db


def _timed_fit(cfg, splitter, X, y, weights):
    """One cold-cache forest fit; returns (forest, wall_s, cpu_s).

    Both clocks are recorded: training is pure single-process compute,
    so CPU seconds measure the engine itself while wall seconds also
    absorb whatever else the machine is doing.  The speedup bars are
    asserted on CPU time for that reason.
    """
    clear_presort_cache()
    forest = _forest(cfg, cfg["fit_params"], splitter)
    wall = time.perf_counter()
    cpu = time.process_time()
    forest.fit(X, y, sample_weight=weights)
    return forest, time.perf_counter() - wall, time.process_time() - cpu


def _timed_refit_loop(cfg, splitter, X, y, weights, trigger, cold_cache):
    """A TrainWithTrigger-style escalation loop; returns (forest, wall_s, cpu_s).

    Each round escalates the trigger weights and selectively refits a
    fixed slice of tree slots on the unchanged ``X`` — exactly the
    weight-only-refresh shape of Algorithm 1's retraining.  With
    ``cold_cache`` the presort cache is dropped before every round, so
    the difference to the warm run is cache reuse and nothing else.
    """
    clear_presort_cache()
    forest = _forest(cfg, cfg["refit_params"], splitter)
    forest.fit(X, y, sample_weight=weights)  # warm-up fit, untimed
    round_weights = weights.copy()
    slots = np.arange(cfg["refit_trees"])
    wall_elapsed = 0.0
    cpu_elapsed = 0.0
    for _ in range(cfg["refit_rounds"]):
        round_weights = round_weights.copy()
        round_weights[trigger] += 10.0
        if cold_cache:
            clear_presort_cache()
        wall = time.perf_counter()
        cpu = time.process_time()
        forest.refit_trees(slots, X, y, sample_weight=round_weights)
        wall_elapsed += time.perf_counter() - wall
        cpu_elapsed += time.process_time() - cpu
    return forest, wall_elapsed, cpu_elapsed


def test_tree_fit_benchmark(request):
    quick = is_quick(request.config)
    cfg = QUICK if quick else FULL
    X, y, weights, trigger, X_test = _dataset(cfg)

    rows = []

    # ------------------------------------------------------------------
    # Layer 1+2: full forest fit, seed vs presorted (cold cache).
    # ------------------------------------------------------------------
    seed_forest, seed_wall, seed_cpu = _timed_fit(cfg, "local", X, y, weights)
    presorted_forest, presorted_wall, presorted_cpu = _timed_fit(
        cfg, "presorted", X, y, weights
    )
    fit_speedup = seed_cpu / presorted_cpu
    assert _identical(seed_forest, presorted_forest), (
        "presorted forest must be bitwise-identical to the seed forest"
    )
    assert np.array_equal(
        seed_forest.predict_all(X_test), presorted_forest.predict_all(X_test)
    )
    rows.append(
        {"stage": "fit", "mode": "seed", "wall_s": round(seed_wall, 3),
         "cpu_s": round(seed_cpu, 3), "speedup": 1.0, "identical": True}
    )
    rows.append(
        {"stage": "fit", "mode": "presorted-cold",
         "wall_s": round(presorted_wall, 3), "cpu_s": round(presorted_cpu, 3),
         "speedup": round(fit_speedup, 2), "identical": True}
    )

    # ------------------------------------------------------------------
    # Layer 3: escalation refit loop — cache reuse alone (cold vs warm).
    # ------------------------------------------------------------------
    cold_forest, cold_wall, cold_cpu = _timed_refit_loop(
        cfg, "presorted", X, y, weights, trigger, cold_cache=True
    )
    warm_forest, warm_wall, warm_cpu = _timed_refit_loop(
        cfg, "presorted", X, y, weights, trigger, cold_cache=False
    )
    seed_loop_forest, seed_loop_wall, seed_loop_cpu = _timed_refit_loop(
        cfg, "local", X, y, weights, trigger, cold_cache=True
    )
    reuse_speedup = cold_cpu / warm_cpu
    assert _identical(cold_forest, warm_forest)
    assert _identical(seed_loop_forest, warm_forest), (
        "escalation-refit forests must match the seed path bit for bit"
    )
    assert np.array_equal(
        seed_loop_forest.predict_all(X_test), warm_forest.predict_all(X_test)
    )
    rows.append(
        {"stage": "refit-loop", "mode": "seed",
         "wall_s": round(seed_loop_wall, 3), "cpu_s": round(seed_loop_cpu, 3),
         "speedup": round(seed_loop_cpu / warm_cpu, 2), "identical": True}
    )
    rows.append(
        {"stage": "refit-loop", "mode": "presorted-cold",
         "wall_s": round(cold_wall, 3), "cpu_s": round(cold_cpu, 3),
         "speedup": 1.0, "identical": True}
    )
    rows.append(
        {"stage": "refit-loop", "mode": "presorted-warm",
         "wall_s": round(warm_wall, 3), "cpu_s": round(warm_cpu, 3),
         "speedup": round(reuse_speedup, 2), "identical": True}
    )

    lines = [
        f"mode: {'quick' if quick else 'full'}  "
        f"({cfg['n_samples']} rows, {cfg['n_features']} features, "
        f"{cfg['n_estimators']} trees; refit loop: {cfg['refit_rounds']} rounds "
        f"x {cfg['refit_trees']} trees; speedups on cpu time)",
        f"{'stage':>11} {'engine':>15} {'wall s':>8} {'cpu s':>8} "
        f"{'speedup':>8} {'identical':>10}",
    ]
    for row in rows:
        lines.append(
            f"{row['stage']:>11} {row['mode']:>15} {row['wall_s']:>8.3f} "
            f"{row['cpu_s']:>8.3f} {row['speedup']:>7.2f}x "
            f"{str(row['identical']):>10}"
        )
    emit(
        "bench_tree_fit",
        "\n".join(lines),
        mode="quick" if quick else "full",
        rows=rows,
        metrics={
            "fit_speedup": round(fit_speedup, 2),
            "refit_reuse_speedup": round(reuse_speedup, 2),
        },
    )

    if not quick:
        assert fit_speedup >= MIN_FIT_SPEEDUP, (
            f"presorted engine must fit a {cfg['n_estimators']}-tree forest "
            f">= {MIN_FIT_SPEEDUP}x faster than the seed splitter, got "
            f"{fit_speedup:.1f}x"
        )
        assert reuse_speedup >= MIN_REUSE_SPEEDUP, (
            f"presort-cache reuse must speed the escalation refit loop by "
            f">= {MIN_REUSE_SPEEDUP}x (cold {cold_cpu:.2f}s vs warm "
            f"{warm_cpu:.2f}s cpu), got {reuse_speedup:.1f}x"
        )
