"""Benchmark result emission: rendered text + machine-readable JSON.

Every benchmark funnels its output through :func:`emit`, which

- prints the rendered table (visible with ``pytest -s``),
- persists it to ``benchmarks/results/<name>.txt`` (the historical
  artefact format), and
- writes ``benchmarks/results/<name>.json`` with the run mode and any
  structured rows/metrics the benchmark supplies, so the perf
  trajectory is tracked across PRs and uploadable as a CI artifact
  without scraping ASCII tables.

JSON payload shape::

    {
      "name":    "bench_tree_fit",
      "mode":    "quick" | "full",
      "rows":    [{"col": value, ...}, ...],   # tabular results
      "metrics": {"headline_speedup": 6.1},     # scalar summaries
      "text":    "rendered table"
    }

``rows`` accepts either a list of dicts or a ``headers`` list plus
row-lists (the shape :func:`repro.experiments.format_table` consumes),
which keeps the per-benchmark changes one-line.  Numpy scalars are
converted to plain Python numbers.
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def _env_quick() -> bool:
    return os.environ.get("REPRO_BENCH_QUICK", "").strip().lower() in (
        "1",
        "true",
        "yes",
    )


def _plain(value):
    """Coerce numpy scalars (and anything item()-able) to plain Python.

    Non-finite floats become ``None``: the JSON artefact is consumed by
    strict parsers, and ``Infinity``/``NaN`` are not valid JSON.
    """
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):
        try:
            value = value.item()
        except (AttributeError, ValueError):  # pragma: no cover - defensive
            return str(value)
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


def _normalise_rows(rows, headers):
    if rows is None:
        return []
    normalised = []
    for row in rows:
        if isinstance(row, dict):
            normalised.append({str(k): _plain(v) for k, v in row.items()})
        elif headers is not None:
            normalised.append(
                {str(h): _plain(v) for h, v in zip(headers, row)}
            )
        else:
            normalised.append([_plain(v) for v in row])
    return normalised


def emit(
    name: str,
    text: str,
    *,
    mode: str | None = None,
    headers: list[str] | None = None,
    rows=None,
    metrics: dict | None = None,
) -> None:
    """Print a rendered table and persist it as both text and JSON."""
    banner = f"\n=== {name} ===\n{text}\n"
    print(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    payload = {
        "name": name,
        "mode": mode if mode is not None else ("quick" if _env_quick() else "full"),
        "rows": _normalise_rows(rows, headers),
        "metrics": {str(k): _plain(v) for k, v in (metrics or {}).items()},
        "text": text,
    }
    (RESULTS_DIR / f"{name}.json").write_text(
        json.dumps(payload, indent=2, allow_nan=False) + "\n", encoding="utf-8"
    )
