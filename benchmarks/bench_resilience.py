"""Resilience under seeded chaos: availability, retries, verdict integrity.

Hosts a watermarked forest behind the daemon with a seeded
:class:`repro.faults.FaultPlan` injecting engine errors, latency
spikes, connection resets and slow writes, then drives it with the
resilient :class:`repro.serve.ServeClient` (retries + idempotency keys).
Reports the request ledger (success / typed error / transport), attempt
amplification, and latency percentiles — and *asserts* the two chaos
invariants: the ledger balances, and the served ``/verify`` verdict is
bit-for-bit the offline ``detect_bits`` answer (retries never
double-count the suppression statistic).  Emits
``results/resilience.{txt,json}``.
"""

from __future__ import annotations

import time

import numpy as np
from conftest import emit, is_quick

from repro.attacks.detection import behavioural_rates, detect_bits
from repro.core import random_signature, watermark
from repro.datasets import breast_cancer_like
from repro.experiments import format_table
from repro.faults import FaultPlan
from repro.serve import (
    BackgroundServer,
    ModelRegistry,
    RetryPolicy,
    ServeClientError,
    ServeConnectionError,
    ServeTimeout,
)

SEED = 20260808


def _build_model(m_bits: int):
    ds = breast_cancer_like(300, random_state=23)
    signature = random_signature(m_bits, ones_fraction=0.5, random_state=24)
    model = watermark(
        ds.X,
        ds.y,
        signature,
        trigger_size=6,
        base_params={"max_depth": 8, "min_samples_leaf": 1},
        tree_feature_fraction=0.5,
        escalation_factor=2.0,
        random_state=25,
    )
    return model, ds.X


def _chaos_run(model, X, *, rate: float, n_requests: int, rows_per: int):
    injector = FaultPlan.chaos(SEED, rate=rate).compile()
    registry = ModelRegistry(fault_injector=injector, max_failures=10**6)
    registry.add("wm", model)
    retry = RetryPolicy(max_attempts=8, base_delay=0.005, max_delay=0.02)

    ledger = {"ok": 0, "typed_4xx": 0, "typed_5xx": 0, "transport": 0}
    latencies = []
    with BackgroundServer(
        registry, flush_window=0.0, fault_injector=injector
    ) as server:
        with server.client(timeout=5.0, retry=retry, retry_seed=SEED) as client:
            for i in range(n_requests):
                start = (i * rows_per) % (len(X) - rows_per)
                rows = X[start : start + rows_per]
                t0 = time.perf_counter()
                try:
                    client.predict_all("wm", rows)
                except ServeClientError as exc:
                    ledger["typed_4xx" if exc.status < 500 else "typed_5xx"] += 1
                except (ServeTimeout, ServeConnectionError):
                    ledger["transport"] += 1
                else:
                    ledger["ok"] += 1
                latencies.append(time.perf_counter() - t0)
            verdict = client.verify(
                "wm", model.signature.to_string(), strategy="bands"
            )
            attempts, retries = client.n_attempts, client.n_retries
        n_queries = registry.get("wm").n_queries

    # -- invariants -----------------------------------------------------
    # Ledger balances: every request landed in exactly one bucket.
    assert sum(ledger.values()) == n_requests
    # Verdict integrity: rows served exactly once per successful logical
    # request, and the served verdict equals the offline detection over
    # those same queries.
    assert n_queries == ledger["ok"] * rows_per
    served_rows = [
        X[(i * rows_per) % (len(X) - rows_per) :][:rows_per]
        for i in range(n_requests)
    ]
    # Reconstruct which requests succeeded, in order, for the offline run.
    # The ledger does not record per-request outcomes, so recompute from
    # the observer: with every success counted once, comparing against
    # the all-success offline stream is only valid when nothing failed.
    traffic = verdict.get("traffic")
    if ledger["ok"] == n_requests:
        offline = detect_bits(
            behavioural_rates(
                model.ensemble.predict_all(np.concatenate(served_rows))
            ),
            model.signature.bits,
            "bands",
        )
        assert traffic["n_correct"] == offline.n_correct
        assert traffic["n_wrong"] == offline.n_wrong
        assert traffic["predicted"] == list(offline.predicted)

    lat = np.asarray(latencies)
    counts = injector.counts()
    return {
        "rate": rate,
        "n_requests": n_requests,
        "ok": ledger["ok"],
        "typed_4xx": ledger["typed_4xx"],
        "typed_5xx": ledger["typed_5xx"],
        "transport": ledger["transport"],
        "availability": ledger["ok"] / n_requests,
        "attempts": attempts,
        "retries": retries,
        "amplification": attempts / max(1, n_requests + 1),
        "p50_ms": float(np.percentile(lat, 50)) * 1e3,
        "p99_ms": float(np.percentile(lat, 99)) * 1e3,
        "faults_fired": sum(c["fired"] for c in counts.values()),
    }


def test_resilience_under_chaos(benchmark, quick_mode):
    m_bits = 10 if quick_mode else 16
    n_requests = 60 if quick_mode else 400
    rows_per = 4
    rates = [0.0, 0.1, 0.3] if quick_mode else [0.0, 0.1, 0.2, 0.3]

    model, X = _build_model(m_bits)
    model.ensemble.predict_all(X[:8])  # compile outside the timed region

    def _run():
        return [
            _chaos_run(
                model, X, rate=rate, n_requests=n_requests, rows_per=rows_per
            )
            for rate in rates
        ]

    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    headers = [
        "Fault rate", "Requests", "OK", "5xx", "Transport",
        "Availability", "Attempts", "p50 (ms)", "p99 (ms)", "Faults fired",
    ]
    cells = [
        [
            f"{r['rate']:.0%}",
            r["n_requests"],
            r["ok"],
            r["typed_5xx"],
            r["transport"],
            f"{r['availability']:.1%}",
            r["attempts"],
            f"{r['p50_ms']:.2f}",
            f"{r['p99_ms']:.2f}",
            r["faults_fired"],
        ]
        for r in rows
    ]
    clean, worst = rows[0], rows[-1]
    text = format_table(headers, cells)
    text += (
        f"\n\n{m_bits}-bit watermark, {n_requests} logical requests of "
        f"{rows_per} rows, retry budget 8 attempts"
        f"\nledger balances at every rate; verdict checked bit-for-bit "
        f"against offline detect_bits on all-success runs"
        f"\navailability at {worst['rate']:.0%} faults: "
        f"{worst['availability']:.1%} "
        f"(attempt amplification {worst['attempts'] / clean['attempts']:.2f}x)"
    )
    emit(
        "resilience",
        text,
        headers=headers,
        rows=cells,
        metrics={
            "m_bits": m_bits,
            "n_requests": n_requests,
            "rates": [r["rate"] for r in rows],
            "availability": [r["availability"] for r in rows],
            "attempts": [r["attempts"] for r in rows],
            "p50_ms": [r["p50_ms"] for r in rows],
            "p99_ms": [r["p99_ms"] for r in rows],
            "faults_fired": [r["faults_fired"] for r in rows],
        },
    )

    # A clean run is fully available; retries keep availability high
    # even at the worst injected rate.
    assert clean["availability"] == 1.0
    assert clean["faults_fired"] == 0
    assert worst["faults_fired"] > 0
    assert worst["availability"] >= 0.5
