"""§4.2.2 text results — forgery on the tabular datasets.

Paper shape: on breast-cancer the forged set stays a small fraction of
the original even for generous ε; on ijcnn1 (far more leaves, harder
formulas) forging at small ε yields ~1% of the original size.
"""

from conftest import BENCH, emit

from repro.experiments import forgery_tabular_results, format_table


def _run():
    return forgery_tabular_results(
        BENCH,
        datasets=("breast-cancer", "ijcnn1"),
        epsilons=(0.1, 0.3),
        n_signatures=2,
        max_instances=25,
        solver_budget=60_000,
    )


def test_sec422_forgery_on_tabular_datasets(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    headers = ["Dataset", "eps", "forged (mean)", "original k", "forged/original", "mean s"]
    cells = [
            [
                r.dataset,
                r.epsilon,
                r.mean_forged_size,
                r.original_trigger_size,
                r.mean_forged_size / max(r.original_trigger_size, 1),
                r.mean_seconds,
            ]
            for r in rows
        ]
    text = format_table(headers, cells)
    emit("sec422_forgery_tabular", text, headers=headers, rows=cells)

    # Paper shape: at small eps the forged set is a small fraction of
    # the original trigger set on both tabular datasets.
    for r in rows:
        if r.epsilon <= 0.1:
            ratio = r.mean_forged_size / max(r.original_trigger_size, 1)
            assert ratio <= 0.75, f"{r.dataset} at eps={r.epsilon}: ratio {ratio:.2f}"
