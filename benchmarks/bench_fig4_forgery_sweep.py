"""Fig. 4 — forged trigger-set size vs distortion budget ε (MNIST2-6).

The attacker tries random fake signatures and forges instances within
an L∞ ball of each test point.  Paper shape: forging approaches the
original trigger-set size only at large ε (>= 0.7), i.e. only with
distortions large enough to be detected.
"""

from conftest import BENCH, emit

from repro.experiments import forgery_epsilon_sweep, format_table

EPSILONS = (0.05, 0.1, 0.15, 0.2, 0.3, 0.5, 0.7, 0.9)


def _run():
    return forgery_epsilon_sweep(
        BENCH,
        dataset="mnist26",
        epsilons=EPSILONS,
        n_signatures=2,
        max_instances=30,
        solver_budget=60_000,
    )


def test_fig4_forgery_vs_epsilon(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    headers = ["eps", "|D'_trigger| (mean)", "|D'_trigger| (max)", "|D_trigger|", "mean s"]
    cells = [
            [r.epsilon, r.mean_forged_size, r.max_forged_size, r.original_trigger_size, r.mean_seconds]
            for r in rows
        ]
    text = format_table(headers, cells)
    emit("fig4_forgery_sweep", text, headers=headers, rows=cells)

    # Monotone shape: more distortion budget never shrinks the forged set.
    sizes = [r.mean_forged_size for r in rows]
    assert all(b >= a - 1e-9 for a, b in zip(sizes, sizes[1:]))

    # Paper shape: small eps forges (almost) nothing; large eps forges
    # substantially more.
    assert sizes[0] <= 0.6 * max(sizes[-1], 1.0)
