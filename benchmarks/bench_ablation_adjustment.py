"""Ablation A1 — does the Adjust heuristic actually hide the watermark?

Runs the Table 2 detection attack twice: with the paper's Adjust
heuristic (default) and without it.  Expected shape: without Adjust the
T1 trees are free to overfit and grow larger, so the structural attack
gains signal (higher recovery, or visibly separated statistics), which
is exactly why the heuristic exists.
"""

from conftest import BENCH, emit

from repro.experiments import detection_table, format_table


def _run():
    adjusted = detection_table(BENCH, datasets=("breast-cancer", "ijcnn1"))
    unadjusted = detection_table(
        BENCH, datasets=("breast-cancer", "ijcnn1"), adjust=False
    )
    return adjusted, unadjusted


def _recovery(rows):
    """Correct-guess fraction over decided trees, pooled over rows."""
    correct = sum(r.n_correct for r in rows)
    decided = sum(r.n_correct + r.n_wrong for r in rows)
    return correct / decided if decided else 0.0


def test_ablation_adjust_heuristic(benchmark):
    adjusted, unadjusted = benchmark.pedantic(_run, rounds=1, iterations=1)
    cells = []
    for label, rows in (("with Adjust", adjusted), ("without Adjust", unadjusted)):
        for r in rows:
            cells.append(
                [label, r.dataset, r.statistic, r.strategy,
                 f"({r.mean:.2f} - {r.std:.2f})", r.n_correct, r.n_wrong, r.n_uncertain]
            )
    headers = ["Variant", "Dataset", "Statistic", "Strategy", "(mean - std)", "#correct", "#wrong", "#uncertain"]
    text = format_table(headers, cells)
    text += (
        f"\n\npooled recovery with Adjust:    {_recovery(adjusted):.3f}"
        f"\npooled recovery without Adjust: {_recovery(unadjusted):.3f}"
    )
    emit("ablation_adjustment", text, headers=headers, rows=cells)

    # The adjusted model must never let the attack fully recover sigma.
    m = BENCH.n_estimators
    for r in adjusted:
        assert r.n_correct < m
