"""Corrupted-artefact battery for the binary format.

Every damaged artefact must raise :class:`SerializationError` with a
message naming the problem — never a crash, never a silently wrong
model.  The judge of an ownership dispute has to be able to trust that
a loaded model is exactly what was written.
"""

import struct

import numpy as np
import pytest

from repro.exceptions import SerializationError
from repro.persistence import load, save
from repro.persistence.exporters.binary import _HEADER, _SECTION, MAGIC


@pytest.fixture()
def artifact(bc_forest, tmp_path):
    path = tmp_path / "forest.rfbin"
    save(bc_forest, path)
    return path


def _header_fields(path):
    return list(_HEADER.unpack(path.read_bytes()[: _HEADER.size]))


def _rewrite_header(path, fields):
    blob = bytearray(path.read_bytes())
    blob[: _HEADER.size] = _HEADER.pack(*fields)
    path.write_bytes(bytes(blob))


def _section_records(blob):
    n_sections = _HEADER.unpack(blob[: _HEADER.size])[5]
    return [
        _SECTION.unpack(
            blob[_HEADER.size + i * _SECTION.size : _HEADER.size + (i + 1) * _SECTION.size]
        )
        for i in range(n_sections)
    ]


def _largest_section(blob):
    """(offset, nbytes) of the biggest payload section — a guaranteed
    CRC-covered target (alignment padding between sections is not)."""
    return max(((r[5], r[6]) for r in _section_records(blob)), key=lambda t: t[1])


class TestTruncation:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.rfbin"
        path.write_bytes(b"")
        with pytest.raises(SerializationError, match="truncated"):
            load(path, format="binary")

    def test_header_only(self, artifact):
        artifact.write_bytes(artifact.read_bytes()[: _HEADER.size])
        with pytest.raises(SerializationError, match="truncated|corrupt"):
            load(artifact)

    def test_payload_cut_short(self, artifact):
        blob = artifact.read_bytes()
        artifact.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(SerializationError, match="truncated|corrupt"):
            load(artifact)

    def test_trailer_missing(self, artifact):
        fields = _header_fields(artifact)
        trailer_offset = fields[7]
        artifact.write_bytes(artifact.read_bytes()[:trailer_offset])
        with pytest.raises(SerializationError, match="trailer"):
            load(artifact)


class TestBitFlips:
    def test_flipped_payload_byte_caught_by_crc(self, artifact):
        # Flip one bit in the middle of the largest section payload; the
        # header and table stay intact so only the per-section CRC can
        # notice.
        blob = bytearray(artifact.read_bytes())
        offset, nbytes = _largest_section(blob)
        blob[offset + nbytes // 2] ^= 0x40
        artifact.write_bytes(bytes(blob))
        with pytest.raises(SerializationError, match="CRC mismatch"):
            load(artifact)

    def test_every_section_is_covered(self, artifact):
        # Flip a byte inside each declared section in turn: every single
        # one must be caught, not just the big ones.
        blob = artifact.read_bytes()
        for record in _section_records(blob):
            offset, nbytes = record[5], record[6]
            if nbytes == 0:
                continue
            damaged = bytearray(blob)
            damaged[offset] ^= 0x01
            artifact.write_bytes(bytes(damaged))
            with pytest.raises(SerializationError, match="CRC mismatch"):
                load(artifact)
        artifact.write_bytes(blob)  # restore for hygiene

    def test_flipped_section_table_caught(self, artifact):
        blob = bytearray(artifact.read_bytes())
        blob[_HEADER.size + 4] ^= 0x10  # inside the first section record
        artifact.write_bytes(bytes(blob))
        with pytest.raises(SerializationError, match="section table CRC"):
            load(artifact)

    def test_flipped_trailer_caught(self, artifact):
        fields = _header_fields(artifact)
        trailer_offset = fields[7]
        blob = bytearray(artifact.read_bytes())
        blob[trailer_offset + 2] ^= 0x20
        artifact.write_bytes(bytes(blob))
        with pytest.raises(SerializationError, match="trailer CRC"):
            load(artifact)

    def test_mmap_verify_flag_checks_payload(self, artifact):
        # mmap loads skip payload CRCs by default (that is the point of
        # zero-copy) but verify=True must still catch the damage.
        blob = bytearray(artifact.read_bytes())
        offset, nbytes = _largest_section(blob)
        blob[offset + nbytes // 2] ^= 0x04
        artifact.write_bytes(bytes(blob))
        with pytest.raises(SerializationError, match="CRC mismatch"):
            load(artifact, mmap_mode="r", verify=True)


class TestWrongMagic:
    def test_not_an_rfbin_file(self, artifact):
        blob = bytearray(artifact.read_bytes())
        blob[:8] = b"NOTMAGIC"
        artifact.write_bytes(bytes(blob))
        with pytest.raises(SerializationError, match="bad magic"):
            load(artifact, format="binary")

    def test_json_fed_to_binary_loader(self, bc_forest, tmp_path):
        path = tmp_path / "forest.json"
        save(bc_forest, path, format="json")
        with pytest.raises(SerializationError, match="bad magic"):
            load(path, format="binary")


class TestEndianness:
    def test_byte_swapped_artifact_refused(self, artifact):
        fields = _header_fields(artifact)
        fields[3] = b">" if fields[3] == b"<" else b"<"
        _rewrite_header(artifact, fields)
        with pytest.raises(SerializationError, match="endian"):
            load(artifact)

    def test_foreign_endian_section_dtype_refused(self, artifact):
        blob = bytearray(artifact.read_bytes())
        record = _SECTION.unpack(
            bytes(blob[_HEADER.size : _HEADER.size + _SECTION.size])
        )
        dtype = record[1].rstrip(b"\x00")
        swapped = (b">" + dtype[1:]).ljust(8, b"\x00")
        fixed = _SECTION.pack(record[0], swapped, *record[2:])
        blob[_HEADER.size : _HEADER.size + _SECTION.size] = fixed
        # Recompute the table CRC so only the dtype check can fire.
        fields = list(_HEADER.unpack(bytes(blob[: _HEADER.size])))
        n_sections = fields[5]
        import zlib

        table = bytes(blob[_HEADER.size : _HEADER.size + _SECTION.size * n_sections])
        fields[10] = zlib.crc32(table)
        blob[: _HEADER.size] = _HEADER.pack(*fields)
        artifact.write_bytes(bytes(blob))
        with pytest.raises(SerializationError, match="endian"):
            load(artifact)


class TestVersioning:
    def test_version_from_the_future(self, artifact):
        fields = _header_fields(artifact)
        fields[1] = 99  # ver_major
        _rewrite_header(artifact, fields)
        with pytest.raises(SerializationError, match="newer than the supported"):
            load(artifact)

    def test_future_minor_version_also_refused(self, artifact):
        fields = _header_fields(artifact)
        fields[2] = 99  # ver_minor
        _rewrite_header(artifact, fields)
        with pytest.raises(SerializationError, match="newer than the supported"):
            load(artifact)


class TestStructuralDamage:
    def test_section_pointing_past_payload(self, artifact):
        import zlib

        blob = bytearray(artifact.read_bytes())
        record = list(
            _SECTION.unpack(bytes(blob[_HEADER.size : _HEADER.size + _SECTION.size]))
        )
        record[5] = 2**40  # offset way outside the file (keeps alignment)
        blob[_HEADER.size : _HEADER.size + _SECTION.size] = _SECTION.pack(*record)
        fields = list(_HEADER.unpack(bytes(blob[: _HEADER.size])))
        table = bytes(
            blob[_HEADER.size : _HEADER.size + _SECTION.size * fields[5]]
        )
        fields[10] = zlib.crc32(table)
        blob[: _HEADER.size] = _HEADER.pack(*fields)
        artifact.write_bytes(bytes(blob))
        with pytest.raises(SerializationError, match="truncated or corrupt"):
            load(artifact)

    def test_resigned_invalid_tables_rejected(self, artifact):
        # Defence in depth beyond CRCs: an attacker who *re-signs* a
        # tampered section passes every checksum, but structurally
        # invalid node tables (a child index outside the table) are
        # still refused by table validation at load time.
        import zlib

        blob = bytearray(artifact.read_bytes())
        fields = list(_HEADER.unpack(bytes(blob[: _HEADER.size])))
        n_sections = fields[5]
        for index in range(n_sections):
            start = _HEADER.size + index * _SECTION.size
            record = list(_SECTION.unpack(bytes(blob[start : start + _SECTION.size])))
            if record[0].rstrip(b"\x00") == b"left":
                arr = np.frombuffer(
                    bytes(blob[record[5] : record[5] + record[6]]), dtype=np.int64
                ).copy()
                arr[0] = arr.shape[0] + 1000  # point outside the table
                payload = arr.tobytes()
                blob[record[5] : record[5] + record[6]] = payload
                record[7] = zlib.crc32(payload)
                blob[start : start + _SECTION.size] = _SECTION.pack(*record)
        table = bytes(blob[_HEADER.size : _HEADER.size + _SECTION.size * n_sections])
        fields[10] = zlib.crc32(table)
        blob[: _HEADER.size] = _HEADER.pack(*fields)
        artifact.write_bytes(bytes(blob))
        with pytest.raises(SerializationError, match="outside the node table"):
            load(artifact)


class TestCrashSafeWrites:
    """A crash mid-save must never corrupt the published artefact."""

    @pytest.fixture()
    def crash_on_publish(self, monkeypatch):
        """Make the atomic rename explode — simulating a crash after the
        temp file was written but before it replaced the destination."""
        import repro.persistence.atomic as atomic_mod

        def boom(src, dst):
            raise OSError("simulated crash at publish time")

        monkeypatch.setattr(atomic_mod.os, "replace", boom)

    @pytest.mark.parametrize("suffix", [".rfbin", ".json", ".npz"])
    def test_crash_leaves_previous_artifact_intact(
        self, bc_forest, tmp_path, crash_on_publish, suffix
    ):
        path = tmp_path / f"model{suffix}"
        original = b"previous complete artefact"
        path.write_bytes(original)
        with pytest.raises(OSError, match="simulated crash"):
            save(bc_forest, path)
        assert path.read_bytes() == original

    @pytest.mark.parametrize("suffix", [".rfbin", ".json", ".npz"])
    def test_crash_leaves_no_temp_litter(
        self, bc_forest, tmp_path, crash_on_publish, suffix
    ):
        path = tmp_path / f"model{suffix}"
        with pytest.raises(OSError, match="simulated crash"):
            save(bc_forest, path)
        assert not path.exists()
        assert list(tmp_path.iterdir()) == []

    def test_crash_during_write_leaves_destination_untouched(
        self, bc_forest, tmp_path, monkeypatch
    ):
        # Crash *inside* the write (before fsync): np.savez raising is
        # representative of any mid-body failure.
        path = tmp_path / "model.rfbin"
        original = b"previous complete artefact"
        path.write_bytes(original)

        import repro.persistence.exporters.binary as binary_mod

        def boom(*args, **kwargs):
            raise RuntimeError("simulated crash mid-body")

        monkeypatch.setattr(binary_mod, "_model_sections", boom)
        with pytest.raises(RuntimeError, match="mid-body"):
            save(bc_forest, path, format="binary")
        assert path.read_bytes() == original
        assert list(tmp_path.iterdir()) == [path]

    def test_successful_save_is_atomic_replacement(self, bc_forest, tmp_path):
        path = tmp_path / "model.rfbin"
        path.write_bytes(b"stale bytes")
        save(bc_forest, path)
        loaded = load(path)
        assert loaded.predict(np.zeros((1, bc_forest.n_features_in_))) is not None
        assert list(tmp_path.iterdir()) == [path]
