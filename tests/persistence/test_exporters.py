"""Tests for the pluggable exporter family (binary / json / sklearn)."""

import json
import pickle

import numpy as np
import pytest

from repro.core import WatermarkedModel
from repro.ensemble import GradientBoostingClassifier
from repro.exceptions import SerializationError
from repro.persistence import (
    available_formats,
    detect_format,
    forest_to_dict,
    get_exporter,
    load,
    save,
    save_json,
    watermarked_to_dict,
)


@pytest.fixture(scope="module")
def gb_model(bc_data):
    X_train, _, y_train, _ = bc_data
    return GradientBoostingClassifier(
        n_estimators=8, max_depth=3, learning_rate=0.2
    ).fit(X_train, y_train)


class TestRegistry:
    def test_builtin_formats_registered(self):
        assert {"binary", "json", "sklearn"} <= set(available_formats())

    def test_unknown_format_rejected(self):
        with pytest.raises(SerializationError, match="unknown persistence format"):
            get_exporter("carrier-pigeon")

    def test_save_needs_format_or_known_extension(self, bc_forest, tmp_path):
        with pytest.raises(SerializationError, match="cannot infer"):
            save(bc_forest, tmp_path / "model.xyz")

    def test_detection_ignores_extension(self, bc_forest, tmp_path):
        # A binary artefact with a lying .json extension still loads as
        # binary: dispatch is on content, not name.
        path = tmp_path / "model.json"
        save(bc_forest, path, format="binary")
        assert detect_format(path).name == "binary"
        restored = load(path)
        assert restored.n_trees_ == bc_forest.n_trees_

    def test_unrecognised_content_rejected(self, tmp_path):
        path = tmp_path / "noise.bin"
        path.write_bytes(b"\x00\x01\x02\x03 not a model")
        with pytest.raises(SerializationError, match="format magic"):
            load(path)


class TestForestRoundtrip:
    @pytest.mark.parametrize("fmt,ext", [
        ("binary", "rfbin"), ("json", "json"), ("sklearn", "npz"),
    ])
    def test_predictions_bitwise_identical(self, bc_forest, bc_data, tmp_path, fmt, ext):
        _, X_test, _, _ = bc_data
        path = tmp_path / f"forest.{ext}"
        save(bc_forest, path, format=fmt)
        restored = load(path)
        assert np.array_equal(
            restored.predict_all(X_test), bc_forest.predict_all(X_test)
        )
        assert np.array_equal(restored.predict(X_test), bc_forest.predict(X_test))
        np.testing.assert_array_equal(
            restored.predict_proba(X_test), bc_forest.predict_proba(X_test)
        )

    @pytest.mark.parametrize("mmap_mode", [None, "r"])
    def test_binary_object_graph_identical(self, bc_forest, tmp_path, mmap_mode):
        path = tmp_path / "forest.rfbin"
        save(bc_forest, path)
        restored = load(path, mmap_mode=mmap_mode)
        # Materialising the lazy forest rebuilds the exact object graph.
        assert json.dumps(forest_to_dict(restored), sort_keys=True) == json.dumps(
            forest_to_dict(bc_forest), sort_keys=True
        )

    def test_binary_load_is_lazy(self, bc_forest, bc_data, tmp_path):
        _, X_test, _, _ = bc_data
        path = tmp_path / "forest.rfbin"
        save(bc_forest, path)
        restored = load(path, mmap_mode="r")
        # Predictions flow through the engine without rebuilding trees.
        assert restored._trees_ is None
        assert np.array_equal(
            restored.predict_all(X_test), bc_forest.predict_all(X_test)
        )
        assert restored._trees_ is None
        assert restored.n_trees_ == bc_forest.n_trees_
        assert restored._trees_ is None
        # Structure inspection materialises.
        assert np.array_equal(
            restored.structure()["depth"], bc_forest.structure()["depth"]
        )
        assert restored._trees_ is not None

    def test_json_exporter_byte_compatible(self, bc_forest, tmp_path):
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        save_json(forest_to_dict(bc_forest), old)  # the pre-exporter path
        save(bc_forest, new, format="json")
        assert old.read_bytes() == new.read_bytes()

    def test_pre_exporter_artifact_loads(self, bc_forest, bc_data, tmp_path):
        _, X_test, _, _ = bc_data
        path = tmp_path / "legacy.json"
        save_json(forest_to_dict(bc_forest), path)
        restored = load(path)
        assert np.array_equal(
            restored.predict_all(X_test), bc_forest.predict_all(X_test)
        )

    def test_binary_reexport_roundtrip(self, bc_forest, bc_data, tmp_path):
        # binary -> load -> json -> load: the chain preserves everything.
        _, X_test, _, _ = bc_data
        p1, p2 = tmp_path / "a.rfbin", tmp_path / "b.json"
        save(bc_forest, p1)
        save(load(p1, mmap_mode="r"), p2)
        assert np.array_equal(
            load(p2).predict_all(X_test), bc_forest.predict_all(X_test)
        )


class TestBoostedRoundtrip:
    @pytest.mark.parametrize("fmt,ext", [
        ("binary", "rfbin"), ("json", "json"), ("sklearn", "npz"),
    ])
    def test_margins_bitwise_identical(self, gb_model, bc_data, tmp_path, fmt, ext):
        _, X_test, _, _ = bc_data
        path = tmp_path / f"gb.{ext}"
        save(gb_model, path, format=fmt)
        restored = load(path)
        np.testing.assert_array_equal(
            restored.decision_function(X_test), gb_model.decision_function(X_test)
        )
        assert np.array_equal(restored.predict(X_test), gb_model.predict(X_test))

    def test_binary_mmap_load(self, gb_model, bc_data, tmp_path):
        _, X_test, _, _ = bc_data
        path = tmp_path / "gb.rfbin"
        save(gb_model, path)
        restored = load(path, mmap_mode="r")
        assert restored._trees_ is None
        np.testing.assert_array_equal(
            restored.decision_function(X_test), gb_model.decision_function(X_test)
        )


class TestWatermarkedRoundtrip:
    @pytest.mark.parametrize("fmt,ext", [("binary", "rfbin"), ("json", "json")])
    def test_full_roundtrip(self, wm_model, bc_data, tmp_path, fmt, ext):
        _, X_test, _, _ = bc_data
        path = tmp_path / f"wm.{ext}"
        wm_model.save(path, format=fmt)
        restored = WatermarkedModel.load(path)
        assert np.array_equal(
            restored.ensemble.predict_all(X_test),
            wm_model.ensemble.predict_all(X_test),
        )
        assert restored.signature == wm_model.signature
        assert np.array_equal(restored.trigger.X, wm_model.trigger.X)
        assert np.array_equal(restored.trigger.y, wm_model.trigger.y)
        assert np.array_equal(restored.trigger.indices, wm_model.trigger.indices)
        assert restored.report == wm_model.report
        assert json.dumps(watermarked_to_dict(restored), sort_keys=True) == json.dumps(
            watermarked_to_dict(wm_model), sort_keys=True
        )

    def test_restored_model_verifies(self, wm_model, tmp_path):
        from repro.core import verify_ownership

        path = tmp_path / "wm.rfbin"
        wm_model.save(path)
        restored = WatermarkedModel.load(path, mmap_mode="r")
        report = verify_ownership(
            restored.ensemble,
            restored.signature,
            restored.trigger.X,
            restored.trigger.y,
        )
        assert report.accepted

    def test_load_wrong_kind_rejected(self, bc_forest, tmp_path):
        path = tmp_path / "forest.rfbin"
        save(bc_forest, path)
        with pytest.raises(SerializationError, match="not a WatermarkedModel"):
            WatermarkedModel.load(path)

    def test_sklearn_refuses_watermarked(self, wm_model, tmp_path):
        with pytest.raises(SerializationError, match="secret"):
            save(wm_model, tmp_path / "wm.npz", format="sklearn")

    def test_binary_trailer_is_secrets_free(self, wm_model, tmp_path):
        # The greppable JSON trailer must never leak the signature or
        # trigger labels; they live in binary sections only.
        from repro.persistence.exporters.binary import _HEADER

        path = tmp_path / "wm.rfbin"
        wm_model.save(path)
        blob = path.read_bytes()
        fields = _HEADER.unpack(blob[: _HEADER.size])
        trailer_offset, trailer_nbytes = fields[7], fields[8]
        meta = json.loads(blob[trailer_offset : trailer_offset + trailer_nbytes])
        assert "signature" not in json.dumps(meta)
        assert meta["kind"] == "watermarked"


class TestPickleByPath:
    def test_lazy_mmap_forest_pickles_small(self, bc_forest, bc_data, tmp_path):
        _, X_test, _, _ = bc_data
        path = tmp_path / "forest.rfbin"
        save(bc_forest, path)
        restored = load(path, mmap_mode="r")
        blob = pickle.dumps(restored)
        # The pickle is a file handle, not the node tables.
        assert len(blob) < 1024
        clone = pickle.loads(blob)
        assert np.array_equal(
            clone.predict_all(X_test), bc_forest.predict_all(X_test)
        )

    def test_materialised_forest_still_pickles(self, bc_forest, bc_data, tmp_path):
        _, X_test, _, _ = bc_data
        path = tmp_path / "forest.rfbin"
        save(bc_forest, path)
        restored = load(path, mmap_mode="r")
        restored.structure()  # force materialisation
        clone = pickle.loads(pickle.dumps(restored))
        assert np.array_equal(
            clone.predict_all(X_test), bc_forest.predict_all(X_test)
        )

    def test_shared_model_handle(self, bc_forest, bc_data, tmp_path):
        from repro.parallel import open_model_handle, shared_model_handle

        _, X_test, _, _ = bc_data
        path = tmp_path / "forest.rfbin"
        save(bc_forest, path)
        assert shared_model_handle(bc_forest) is None  # never touched disk
        restored = load(path, mmap_mode="r")
        handle = shared_model_handle(restored)
        assert handle == (str(path), "binary", "r")
        reopened = open_model_handle(handle)
        assert np.array_equal(
            reopened.predict_all(X_test), bc_forest.predict_all(X_test)
        )

    def test_worker_pool_shares_artifact(self, bc_forest, bc_data, tmp_path):
        from repro.parallel import fork_available, run_batches

        if not fork_available():
            pytest.skip("fork start method unavailable")
        _, X_test, _, _ = bc_data
        path = tmp_path / "forest.rfbin"
        save(bc_forest, path)
        restored = load(path, mmap_mode="r")
        chunks = np.array_split(X_test, 4)
        results = run_batches(
            _predict_chunk, [(restored, c) for c in chunks], n_workers=2
        )
        assert np.array_equal(
            np.concatenate(results, axis=1), bc_forest.predict_all(X_test)
        )


def _predict_chunk(model, X):
    return model.predict_all(X)


class TestSklearnInterop:
    def test_arrays_follow_sklearn_convention(self, bc_forest, tmp_path):
        path = tmp_path / "forest.npz"
        save(bc_forest, path)
        with np.load(path, allow_pickle=False) as archive:
            left = archive["est0_children_left"]
            right = archive["est0_children_right"]
            feature = archive["est0_feature"]
            threshold = archive["est0_threshold"]
            value = archive["est0_value"]
        leaves = left == -1
        assert np.array_equal(leaves, right == -1)
        assert (feature[leaves] == -2).all()
        assert (threshold[leaves] == -2.0).all()
        assert value.ndim == 3 and value.shape[1] == 1
        assert value.shape[2] == bc_forest.classes_.shape[0]

    def test_feature_subsets_preserved(self, bc_forest, tmp_path):
        path = tmp_path / "forest.npz"
        save(bc_forest, path)
        restored = load(path)
        for ours, theirs in zip(
            bc_forest.feature_subsets_, restored.feature_subsets_
        ):
            assert np.array_equal(ours, theirs)
