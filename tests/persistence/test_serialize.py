"""Tests for JSON persistence of models and secrets."""

import numpy as np
import pytest

from repro.core import WatermarkSecret
from repro.exceptions import SerializationError
from repro.persistence import (
    forest_from_dict,
    forest_to_dict,
    load_json,
    node_from_dict,
    node_to_dict,
    save_json,
    secret_from_dict,
    secret_to_dict,
)
from repro.trees.node import InternalNode, Leaf


class TestNodeRoundtrip:
    def test_leaf(self):
        leaf = Leaf(prediction=-1, class_weights={-1: 2.5, 1: 0.5})
        restored = node_from_dict(node_to_dict(leaf))
        assert restored == leaf

    def test_nested_tree(self):
        tree = InternalNode(
            0, 0.5,
            InternalNode(1, 0.25, Leaf(-1), Leaf(1)),
            Leaf(1, {1: 3.0}),
        )
        restored = node_from_dict(node_to_dict(tree))
        assert restored == tree

    def test_malformed_data_raises(self):
        with pytest.raises(SerializationError):
            node_from_dict({"kind": "banana"})
        with pytest.raises(SerializationError):
            node_from_dict({"kind": "node", "feature": 0})  # missing children


class TestForestRoundtrip:
    def test_predictions_preserved(self, bc_forest, bc_data):
        _, X_test, _, _ = bc_data
        restored = forest_from_dict(forest_to_dict(bc_forest))
        assert np.array_equal(
            restored.predict_all(X_test), bc_forest.predict_all(X_test)
        )
        assert np.array_equal(restored.predict(X_test), bc_forest.predict(X_test))

    def test_structure_preserved(self, bc_forest):
        restored = forest_from_dict(forest_to_dict(bc_forest))
        original = bc_forest.structure()
        after = restored.structure()
        assert np.array_equal(original["depth"], after["depth"])
        assert np.array_equal(original["n_leaves"], after["n_leaves"])

    def test_json_safe(self, bc_forest, tmp_path):
        path = tmp_path / "forest.json"
        save_json(forest_to_dict(bc_forest), path)
        restored = forest_from_dict(load_json(path))
        assert restored.n_trees_ == bc_forest.n_trees_

    def test_unfitted_forest_rejected(self):
        from repro.ensemble import RandomForestClassifier

        with pytest.raises(SerializationError, match="unfitted"):
            forest_to_dict(RandomForestClassifier())


class TestCompiledRoundtrip:
    def test_compiled_arrays_roundtrip(self, bc_forest, bc_data):
        import json

        from repro.persistence import compiled_from_dict, compiled_to_dict

        _, X_test, _, _ = bc_data
        engine = bc_forest.compile()
        data = json.loads(json.dumps(compiled_to_dict(engine)))
        restored = compiled_from_dict(data)
        assert restored.depth == engine.depth
        assert np.array_equal(restored.predict_all(X_test), engine.predict_all(X_test))
        np.testing.assert_allclose(
            restored.predict_proba(X_test), engine.predict_proba(X_test), atol=0
        )

    def test_forest_dict_carries_compiled_table(self, bc_forest, bc_data, tmp_path):
        _, X_test, _, _ = bc_data
        path = tmp_path / "forest.json"
        save_json(forest_to_dict(bc_forest, include_compiled=True), path)
        restored = forest_from_dict(load_json(path))
        # The engine was adopted as-is: predictions match without recompiling.
        engine = restored._compiled_
        assert engine is not None
        assert np.array_equal(restored.predict_all(X_test), bc_forest.predict_all(X_test))
        assert restored._compiled_ is engine

    def test_forest_dict_without_compiled_still_loads(self, bc_forest):
        data = forest_to_dict(bc_forest)
        assert "compiled" not in data
        restored = forest_from_dict(data)
        assert restored._compiled_ is None

    def test_malformed_compiled_rejected(self, bc_forest):
        from repro.persistence import compiled_from_dict, compiled_to_dict

        data = compiled_to_dict(bc_forest.compile())
        data["left"] = [10**6] * len(data["left"])
        with pytest.raises(SerializationError, match="outside the node table"):
            compiled_from_dict(data)

    def test_wrong_depth_rejected(self, bc_forest):
        from repro.persistence import compiled_from_dict, compiled_to_dict

        data = compiled_to_dict(bc_forest.compile())
        data["depth"] = 0
        with pytest.raises(SerializationError, match="depth"):
            compiled_from_dict(data)

    def test_misshaped_leaf_proba_rejected(self, bc_forest):
        from repro.persistence import compiled_from_dict, compiled_to_dict

        data = compiled_to_dict(bc_forest.compile())
        data["leaf_proba"] = data["leaf_proba"][:-1]
        with pytest.raises(SerializationError, match="leaf_proba"):
            compiled_from_dict(data)

    def test_tampered_compiled_table_not_adopted(self, bc_forest):
        """A compiled table disagreeing with the trees must be refused:
        verification would otherwise serve the tampered predictions."""
        data = forest_to_dict(bc_forest, include_compiled=True)
        # Flip every leaf label in the compiled table only.
        data["compiled"]["leaf_value"] = [
            -v for v in data["compiled"]["leaf_value"]
        ]
        with pytest.raises(SerializationError, match="disagrees with the serialized trees"):
            forest_from_dict(data)

    def test_bad_version_rejected(self, bc_forest):
        data = forest_to_dict(bc_forest)
        data["format_version"] = 999
        with pytest.raises(SerializationError, match="version"):
            forest_from_dict(data)

    def test_generator_random_state_serialisable(self, bc_data):
        # Forests fitted inside the pipeline hold a shared Generator;
        # serialisation must not choke on it.
        from repro.ensemble import RandomForestClassifier

        X_train, _, y_train, _ = bc_data
        forest = RandomForestClassifier(
            n_estimators=2, max_depth=3, random_state=np.random.default_rng(0)
        ).fit(X_train, y_train)
        data = forest_to_dict(forest)
        assert data["params"]["random_state"] is None
        forest_from_dict(data)  # must not raise


class TestSecretRoundtrip:
    def test_roundtrip(self, wm_model, tmp_path):
        secret = WatermarkSecret(
            signature=wm_model.signature,
            trigger_X=wm_model.trigger.X,
            trigger_y=wm_model.trigger.y,
        )
        path = tmp_path / "secret.json"
        save_json(secret_to_dict(secret), path)
        restored = secret_from_dict(load_json(path))
        assert restored.signature == secret.signature
        assert np.array_equal(restored.trigger_X, secret.trigger_X)
        assert np.array_equal(restored.trigger_y, secret.trigger_y)

    def test_restored_secret_verifies(self, wm_model):
        from repro.core import verify_ownership

        restored = secret_from_dict(
            secret_to_dict(
                WatermarkSecret(
                    signature=wm_model.signature,
                    trigger_X=wm_model.trigger.X,
                    trigger_y=wm_model.trigger.y,
                )
            )
        )
        report = verify_ownership(
            wm_model.ensemble, restored.signature, restored.trigger_X, restored.trigger_y
        )
        assert report.accepted

    def test_malformed_secret_raises(self):
        with pytest.raises(SerializationError):
            secret_from_dict({"signature": "01"})

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(SerializationError, match="invalid JSON"):
            load_json(path)


class TestDeepTrees:
    """The serializers must be iterative — a pathological chain tree far
    past Python's recursion limit goes through round-trip unharmed."""

    DEPTH = 5000

    @staticmethod
    def _chain(depth):
        node = Leaf(prediction=1)
        for level in reversed(range(depth)):
            node = InternalNode(
                feature=0,
                threshold=float(level),
                left=node,
                right=Leaf(prediction=-1),
            )
        return node

    def test_depth_5000_roundtrip(self):
        import sys

        root = self._chain(self.DEPTH)
        assert self.DEPTH > sys.getrecursionlimit()
        restored = node_from_dict(node_to_dict(root))
        # Verify iteratively: identical structure down the left spine.
        ours, theirs = root, restored
        depth = 0
        while not ours.is_leaf:
            assert not theirs.is_leaf
            assert theirs.feature == ours.feature
            assert theirs.threshold == ours.threshold
            assert theirs.right.prediction == ours.right.prediction
            ours, theirs = ours.left, theirs.left
            depth += 1
        assert theirs.is_leaf
        assert theirs.prediction == ours.prediction
        assert depth == self.DEPTH

    def test_depth_5000_regression_tree(self):
        from repro.persistence.serialize import (
            regression_node_from_dict,
            regression_node_to_dict,
        )
        from repro.trees.regression import _RegLeaf, _RegNode

        node = _RegLeaf(value=0.5)
        for level in reversed(range(self.DEPTH)):
            node = _RegNode(
                feature=0,
                threshold=float(level),
                left=node,
                right=_RegLeaf(value=-0.5),
            )
        restored = regression_node_from_dict(regression_node_to_dict(node))
        depth = 0
        while isinstance(restored, _RegNode):
            assert restored.right.value == -0.5
            restored = restored.left
            depth += 1
        assert restored.value == 0.5
        assert depth == self.DEPTH


class TestVectorisedThresholds:
    """compiled_to_dict's threshold column is vectorised; its output must
    be element-for-element identical to the per-node reference loop."""

    def test_exact_equivalence_with_reference_loop(self, bc_forest):
        from repro.ensemble.compiled import compile_forest
        from repro.persistence.serialize import compiled_to_dict

        engine = compile_forest(bc_forest)
        payload = compiled_to_dict(engine)
        reference = [
            None if not np.isfinite(value) else float(value)
            for value in engine.threshold
        ]
        assert payload["threshold"] == reference
        # Finite entries keep exact float identity (no rounding drift).
        finite = [v for v in payload["threshold"] if v is not None]
        assert all(isinstance(v, float) for v in finite)
