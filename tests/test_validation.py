"""Tests for the shared validation helpers."""

import numpy as np
import pytest

from repro._validation import (
    check_binary_labels,
    check_random_state,
    check_sample_weight,
    check_X,
    check_X_y,
)
from repro.exceptions import ValidationError


class TestCheckX:
    def test_accepts_lists(self):
        out = check_X([[1, 2], [3, 4]])
        assert out.dtype == np.float64
        assert out.shape == (2, 2)

    def test_rejects_1d(self):
        with pytest.raises(ValidationError, match="2-dimensional"):
            check_X([1, 2, 3])

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            check_X(np.empty((0, 3)))
        with pytest.raises(ValidationError):
            check_X(np.empty((3, 0)))

    def test_rejects_nan_inf(self):
        with pytest.raises(ValidationError, match="NaN"):
            check_X([[np.nan]])
        with pytest.raises(ValidationError, match="NaN"):
            check_X([[np.inf]])

    def test_rejects_strings(self):
        with pytest.raises(ValidationError, match="numeric"):
            check_X([["a"]])

    def test_custom_name_in_message(self):
        with pytest.raises(ValidationError, match="my_matrix"):
            check_X([1], name="my_matrix")


class TestCheckXY:
    def test_matching_lengths(self):
        X, y = check_X_y([[1.0], [2.0]], [0, 1])
        assert X.shape == (2, 1)
        assert y.shape == (2,)

    def test_length_mismatch(self):
        with pytest.raises(ValidationError, match="disagree"):
            check_X_y([[1.0], [2.0]], [0])

    def test_2d_y_rejected(self):
        with pytest.raises(ValidationError):
            check_X_y([[1.0]], [[0]])


class TestSampleWeight:
    def test_default_uniform(self):
        assert np.array_equal(check_sample_weight(None, 3), np.ones(3))

    def test_shape_checked(self):
        with pytest.raises(ValidationError):
            check_sample_weight([1.0, 2.0], 3)

    def test_negative_rejected(self):
        with pytest.raises(ValidationError, match="non-negative"):
            check_sample_weight([-1.0, 1.0], 2)

    def test_zero_mass_rejected(self):
        with pytest.raises(ValidationError, match="positive total"):
            check_sample_weight([0.0, 0.0], 2)

    def test_nan_rejected(self):
        with pytest.raises(ValidationError):
            check_sample_weight([np.nan, 1.0], 2)


class TestRandomState:
    def test_none_gives_generator(self):
        assert isinstance(check_random_state(None), np.random.Generator)

    def test_int_is_deterministic(self):
        a = check_random_state(5).integers(1000)
        b = check_random_state(5).integers(1000)
        assert a == b

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert check_random_state(gen) is gen

    def test_invalid_type(self):
        with pytest.raises(ValidationError):
            check_random_state("seed")


class TestBinaryLabels:
    def test_accepts_pm1(self):
        out = check_binary_labels([1, -1, 1])
        assert out.dtype == np.int64

    def test_rejects_01(self):
        with pytest.raises(ValidationError, match=r"\{-1, \+1\}"):
            check_binary_labels([0, 1])

    def test_rejects_single_class(self):
        with pytest.raises(ValidationError, match="both classes"):
            check_binary_labels([1, 1, 1])
