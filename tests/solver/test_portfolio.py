"""Tests for the cross-checking portfolio engine."""

import numpy as np
import pytest

from repro.core import random_signature
from repro.exceptions import SolverError
from repro.solver import (
    PatternProblem,
    required_labels,
    solve_pattern,
    solve_pattern_portfolio,
)
from repro.trees.node import InternalNode, Leaf


def _stump(feature=0, threshold=0.5):
    return InternalNode(feature, threshold, Leaf(-1), Leaf(+1))


class TestPortfolio:
    def test_sat_instance(self):
        problem = PatternProblem(roots=[_stump()], required=[+1], n_features=1)
        outcome = solve_pattern_portfolio(problem)
        assert outcome.is_sat
        assert problem.check_solution(outcome.instance)
        assert outcome.stats["agreement"] is True

    def test_unsat_instance(self):
        problem = PatternProblem(
            roots=[_stump(), _stump()], required=[+1, -1], n_features=1
        )
        outcome = solve_pattern_portfolio(problem)
        assert outcome.is_unsat
        assert outcome.stats["agreement"] is True

    def test_dispatch_via_engine_name(self):
        problem = PatternProblem(roots=[_stump()], required=[+1], n_features=1)
        assert solve_pattern(problem, engine="portfolio").is_sat

    def test_one_engine_budget_exhausted_other_decides(self, forge_problem):
        # Starve the box engine; SMT should still decide.
        outcome = solve_pattern_portfolio(forge_problem, max_nodes=1)
        assert outcome.status in ("sat", "unsat")

    def test_both_budgets_exhausted_is_unknown(self, forge_problem):
        outcome = solve_pattern_portfolio(
            forge_problem, max_conflicts=1, max_nodes=1
        )
        assert outcome.status in ("unknown", "sat", "unsat")

    def test_agreement_on_random_forgeries(self, wm_model, bc_data):
        _, X_test, _, y_test = bc_data
        rng = np.random.default_rng(2)
        for _ in range(10):
            signature = random_signature(
                wm_model.ensemble.n_trees_, random_state=int(rng.integers(1e9))
            )
            row = int(rng.integers(X_test.shape[0]))
            problem = PatternProblem(
                roots=wm_model.ensemble.roots(),
                required=required_labels(signature, int(y_test[row])),
                n_features=X_test.shape[1],
                center=X_test[row],
                epsilon=float(rng.uniform(0.1, 0.9)),
            )
            # Must never raise SolverError (engine disagreement).
            outcome = solve_pattern_portfolio(problem)
            assert outcome.status in ("sat", "unsat")
