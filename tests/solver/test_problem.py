"""Tests for the pattern-problem definition (Definition 1)."""

import numpy as np
import pytest

from repro.core import Signature
from repro.exceptions import ValidationError
from repro.solver import PatternProblem, required_labels
from repro.trees.node import InternalNode, Leaf


def _stump(feature=0, threshold=0.5, left=-1, right=+1):
    return InternalNode(feature, threshold, Leaf(left), Leaf(right))


class TestRequiredLabels:
    def test_bit_semantics(self):
        sig = Signature.from_string("011")
        assert required_labels(sig, +1) == [+1, -1, -1]
        assert required_labels(sig, -1) == [-1, +1, +1]

    def test_invalid_label(self):
        with pytest.raises(ValidationError):
            required_labels(Signature.from_string("0"), 2)


class TestPatternProblem:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            PatternProblem(roots=[_stump()], required=[1, -1], n_features=1)

    def test_ball_requires_both_parts(self):
        with pytest.raises(ValidationError):
            PatternProblem(
                roots=[_stump()], required=[1], n_features=1, center=np.zeros(1)
            )
        with pytest.raises(ValidationError):
            PatternProblem(roots=[_stump()], required=[1], n_features=1, epsilon=0.1)

    def test_center_shape_checked(self):
        with pytest.raises(ValidationError):
            PatternProblem(
                roots=[_stump()],
                required=[1],
                n_features=2,
                center=np.zeros(3),
                epsilon=0.1,
            )

    def test_feature_bounds_ball_and_domain(self):
        problem = PatternProblem(
            roots=[_stump()],
            required=[1],
            n_features=1,
            center=np.array([0.9]),
            epsilon=0.2,
            domain=(0.0, 1.0),
        )
        lo, hi = problem.feature_bounds()
        assert lo[0] == pytest.approx(0.7)
        assert hi[0] == pytest.approx(1.0)  # clipped by the domain

    def test_candidate_boxes_filters_labels(self):
        problem = PatternProblem(roots=[_stump()], required=[+1], n_features=1)
        candidates = problem.candidate_boxes()
        assert candidates is not None
        assert len(candidates) == 1
        assert len(candidates[0]) == 1  # only the right leaf is +1

    def test_candidate_boxes_none_when_label_missing(self):
        # A tree whose leaves are all -1 cannot output +1.
        all_negative = InternalNode(0, 0.5, Leaf(-1), Leaf(-1))
        problem = PatternProblem(roots=[all_negative], required=[+1], n_features=1)
        assert problem.candidate_boxes() is None

    def test_candidate_boxes_none_when_ball_excludes(self):
        problem = PatternProblem(
            roots=[_stump()],
            required=[+1],  # needs x0 > 0.5
            n_features=1,
            center=np.array([0.1]),
            epsilon=0.2,  # ball is [0, 0.3]
        )
        assert problem.candidate_boxes() is None

    def test_check_solution(self):
        problem = PatternProblem(
            roots=[_stump()],
            required=[+1],
            n_features=1,
            center=np.array([0.8]),
            epsilon=0.2,
        )
        assert problem.check_solution(np.array([0.7]))
        assert not problem.check_solution(np.array([0.4]))  # wrong leaf
        assert not problem.check_solution(np.array([1.5]))  # outside domain

    def test_check_solution_multiple_trees(self):
        roots = [_stump(0), _stump(1)]
        problem = PatternProblem(roots=roots, required=[+1, -1], n_features=2)
        assert problem.check_solution(np.array([0.9, 0.1]))
        assert not problem.check_solution(np.array([0.9, 0.9]))
