"""Tests for CNF preprocessing and DIMACS interchange."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SolverError
from repro.solver import CNF, parse_dimacs, simplify_cnf, solve_cnf


def _random_cnf(gen, n_max=10, ratio=4.0):
    n = int(gen.integers(2, n_max))
    m = int(gen.integers(1, int(ratio * n)))
    cnf = CNF()
    cnf.new_vars(n)
    for _ in range(m):
        width = int(gen.integers(1, 4))
        cnf.add_clause(
            [int(gen.choice([-1, 1])) * int(gen.integers(1, n + 1)) for _ in range(width)]
        )
    return cnf


class TestSimplify:
    def test_unit_propagation_fixes_variables(self):
        cnf = CNF()
        cnf.new_vars(3)
        cnf.add_clause([1])
        cnf.add_clause([-1, 2])
        cnf.add_clause([-2, 3])
        simplified = simplify_cnf(cnf)
        assert not simplified.unsat
        assert simplified.forced == {1: True, 2: True, 3: True}
        assert len(simplified.cnf) == 0

    def test_contradiction_detected(self):
        cnf = CNF()
        cnf.new_var()
        cnf.add_clause([1])
        cnf.add_clause([-1])
        assert simplify_cnf(cnf).unsat

    def test_pure_literal_elimination(self):
        cnf = CNF()
        cnf.new_vars(2)
        cnf.add_clause([1, 2])
        cnf.add_clause([1, -2])
        simplified = simplify_cnf(cnf)
        # Variable 1 is pure positive: both clauses vanish.
        assert simplified.forced.get(1) is True
        assert len(simplified.cnf) == 0

    def test_subsumption(self):
        cnf = CNF()
        cnf.new_vars(3)
        cnf.add_clause([1, -2])
        cnf.add_clause([1, -2, 3])  # subsumed by the first
        cnf.add_clause([-1, 2])     # keeps both polarities alive
        cnf.add_clause([2, -1, -3])
        simplified = simplify_cnf(cnf)
        clause_sets = [frozenset(c) for c in simplified.cnf.clauses]
        assert frozenset({1, -2, 3}) not in clause_sets

    def test_restore_builds_full_model(self):
        cnf = CNF()
        cnf.new_vars(3)
        cnf.add_clause([1])
        cnf.add_clause([2, 3])
        simplified = simplify_cnf(cnf)
        result = solve_cnf(simplified.cnf)
        model = simplified.restore(result.model, cnf.n_vars)
        assert model is not None
        assert cnf.evaluate(model)

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_equisatisfiable(self, seed):
        gen = np.random.default_rng(seed)
        cnf = _random_cnf(gen)
        simplified = simplify_cnf(cnf)
        original = solve_cnf(cnf)
        if simplified.unsat:
            assert original.is_unsat
        else:
            reduced = solve_cnf(simplified.cnf)
            assert reduced.is_sat == original.is_sat
            if reduced.is_sat:
                model = simplified.restore(reduced.model, cnf.n_vars)
                assert cnf.evaluate(model)

    def test_empty_clause_short_circuit(self):
        cnf = CNF()
        cnf.add_clause([])
        assert simplify_cnf(cnf).unsat


class TestDimacs:
    def test_roundtrip(self):
        cnf = CNF()
        cnf.new_vars(3)
        cnf.add_clause([1, -2])
        cnf.add_clause([3])
        parsed = parse_dimacs(cnf.to_dimacs())
        assert parsed.n_vars == 3
        assert parsed.clauses == cnf.clauses

    def test_comments_and_blank_lines(self):
        text = "c a comment\n\np cnf 2 1\nc another\n1 -2 0\n"
        parsed = parse_dimacs(text)
        assert parsed.clauses == [[1, -2]]

    def test_multiline_clause(self):
        text = "p cnf 3 1\n1 2\n3 0\n"
        parsed = parse_dimacs(text)
        assert parsed.clauses == [[1, 2, 3]]

    def test_missing_header_rejected(self):
        with pytest.raises(SolverError, match="header"):
            parse_dimacs("1 2 0\n")

    def test_unterminated_clause_rejected(self):
        with pytest.raises(SolverError, match="unterminated"):
            parse_dimacs("p cnf 2 1\n1 2\n")

    def test_malformed_header_rejected(self):
        with pytest.raises(SolverError, match="malformed"):
            parse_dimacs("p dnf 2 1\n1 0\n")
