"""Tests for the CDCL SAT solver."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solver import CNF, solve_cnf


def _brute_force(cnf: CNF) -> bool:
    for bits in itertools.product([False, True], repeat=cnf.n_vars):
        if cnf.evaluate({i + 1: bits[i] for i in range(cnf.n_vars)}):
            return True
    return False


def _pigeonhole(holes: int) -> CNF:
    """PHP(holes+1, holes): classic UNSAT family."""
    pigeons = holes + 1
    cnf = CNF()
    var = {}
    for p in range(pigeons):
        for h in range(holes):
            var[(p, h)] = cnf.new_var()
    for p in range(pigeons):
        cnf.add_clause([var[(p, h)] for h in range(holes)])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                cnf.add_clause([-var[(p1, h)], -var[(p2, h)]])
    return cnf


class TestBasicCases:
    def test_empty_formula_is_sat(self):
        assert solve_cnf(CNF()).is_sat

    def test_single_unit(self):
        cnf = CNF()
        cnf.new_var()
        cnf.add_clause([1])
        result = solve_cnf(cnf)
        assert result.is_sat
        assert result.model[1] is True

    def test_contradicting_units(self):
        cnf = CNF()
        cnf.new_var()
        cnf.add_clause([1])
        cnf.add_clause([-1])
        assert solve_cnf(cnf).is_unsat

    def test_empty_clause_unsat(self):
        cnf = CNF()
        cnf.new_var()
        cnf.add_clause([])
        assert solve_cnf(cnf).is_unsat

    def test_implication_chain(self):
        n = 30
        cnf = CNF()
        cnf.new_vars(n)
        cnf.add_clause([1])
        for i in range(1, n):
            cnf.add_clause([-i, i + 1])
        result = solve_cnf(cnf)
        assert result.is_sat
        assert all(result.model[v] for v in range(1, n + 1))

    def test_xor_constraint(self):
        # x XOR y: (x|y) & (-x|-y)
        cnf = CNF()
        cnf.new_vars(2)
        cnf.add_clause([1, 2])
        cnf.add_clause([-1, -2])
        result = solve_cnf(cnf)
        assert result.is_sat
        assert result.model[1] != result.model[2]


class TestUnsatFamilies:
    @pytest.mark.parametrize("holes", [2, 3, 4])
    def test_pigeonhole(self, holes):
        assert solve_cnf(_pigeonhole(holes)).is_unsat

    def test_conflict_budget_returns_unknown(self):
        result = solve_cnf(_pigeonhole(7), max_conflicts=5)
        assert result.status in ("unknown", "unsat")
        # With 5 conflicts PHP(8,7) cannot be refuted by this solver.
        assert result.status == "unknown"


class TestRandomisedAgainstBruteForce:
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_agrees_with_brute_force(self, seed):
        gen = np.random.default_rng(seed)
        n = int(gen.integers(2, 10))
        m = int(gen.integers(1, 4 * n))
        cnf = CNF()
        cnf.new_vars(n)
        for _ in range(m):
            width = int(gen.integers(1, 4))
            clause = [
                int(gen.choice([-1, 1])) * int(gen.integers(1, n + 1))
                for _ in range(width)
            ]
            cnf.add_clause(clause)
        result = solve_cnf(cnf)
        assert result.is_sat == _brute_force(cnf)
        if result.is_sat:
            assert cnf.evaluate(result.model)

    def test_statistics_populated(self):
        result = solve_cnf(_pigeonhole(4))
        assert result.conflicts > 0
        assert result.propagations > 0
