"""Tests for the CDCL SAT solver."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solver import CNF, SATSolver, solve_cnf


def _brute_force(cnf: CNF) -> bool:
    for bits in itertools.product([False, True], repeat=cnf.n_vars):
        if cnf.evaluate({i + 1: bits[i] for i in range(cnf.n_vars)}):
            return True
    return False


def _pigeonhole(holes: int) -> CNF:
    """PHP(holes+1, holes): classic UNSAT family."""
    pigeons = holes + 1
    cnf = CNF()
    var = {}
    for p in range(pigeons):
        for h in range(holes):
            var[(p, h)] = cnf.new_var()
    for p in range(pigeons):
        cnf.add_clause([var[(p, h)] for h in range(holes)])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                cnf.add_clause([-var[(p1, h)], -var[(p2, h)]])
    return cnf


class TestBasicCases:
    def test_empty_formula_is_sat(self):
        assert solve_cnf(CNF()).is_sat

    def test_single_unit(self):
        cnf = CNF()
        cnf.new_var()
        cnf.add_clause([1])
        result = solve_cnf(cnf)
        assert result.is_sat
        assert result.model[1] is True

    def test_contradicting_units(self):
        cnf = CNF()
        cnf.new_var()
        cnf.add_clause([1])
        cnf.add_clause([-1])
        assert solve_cnf(cnf).is_unsat

    def test_empty_clause_unsat(self):
        cnf = CNF()
        cnf.new_var()
        cnf.add_clause([])
        assert solve_cnf(cnf).is_unsat

    def test_implication_chain(self):
        n = 30
        cnf = CNF()
        cnf.new_vars(n)
        cnf.add_clause([1])
        for i in range(1, n):
            cnf.add_clause([-i, i + 1])
        result = solve_cnf(cnf)
        assert result.is_sat
        assert all(result.model[v] for v in range(1, n + 1))

    def test_xor_constraint(self):
        # x XOR y: (x|y) & (-x|-y)
        cnf = CNF()
        cnf.new_vars(2)
        cnf.add_clause([1, 2])
        cnf.add_clause([-1, -2])
        result = solve_cnf(cnf)
        assert result.is_sat
        assert result.model[1] != result.model[2]


class TestUnsatFamilies:
    @pytest.mark.parametrize("holes", [2, 3, 4])
    def test_pigeonhole(self, holes):
        assert solve_cnf(_pigeonhole(holes)).is_unsat

    def test_conflict_budget_returns_unknown(self):
        result = solve_cnf(_pigeonhole(7), max_conflicts=5)
        assert result.status in ("unknown", "unsat")
        # With 5 conflicts PHP(8,7) cannot be refuted by this solver.
        assert result.status == "unknown"


class TestAssumptionsAndReset:
    def _xor_chain(self, n=6):
        """x1 XOR x2, x2 XOR x3, ...: satisfiable with alternating bits."""
        cnf = CNF()
        cnf.new_vars(n)
        for i in range(1, n):
            cnf.add_clause([i, i + 1])
            cnf.add_clause([-i, -(i + 1)])
        return cnf

    def test_assumptions_steer_the_model(self):
        solver = SATSolver(self._xor_chain())
        result = solver.solve(assumptions=[1])
        assert result.is_sat
        assert result.model[1] is True and result.model[2] is False
        solver.reset()
        result = solver.solve(assumptions=[-1])
        assert result.is_sat
        assert result.model[1] is False and result.model[2] is True

    def test_conflicting_assumptions_are_unsat(self):
        solver = SATSolver(self._xor_chain())
        assert solver.solve(assumptions=[1, 2]).is_unsat
        solver.reset()
        assert solver.solve(assumptions=[1, -1]).is_unsat
        # The base formula is still satisfiable after a reset.
        solver.reset()
        assert solver.solve().is_sat

    def test_reset_restores_fresh_solver_behaviour(self):
        """A reset solver must behave bit-for-bit like a fresh one —
        same model, same statistics — even after an intervening search
        that learned clauses and mutated watch order."""
        cnf = _pigeonhole(4)
        solver = SATSolver(cnf)
        first = solver.solve()
        solver.reset()
        second = solver.solve()
        fresh = SATSolver(cnf).solve()
        for result in (second, fresh):
            assert result.status == first.status
            assert result.conflicts == first.conflicts
            assert result.decisions == first.decisions
            assert result.propagations == first.propagations

    def test_reset_discards_assumption_consequences(self):
        cnf = CNF()
        cnf.new_vars(2)
        cnf.add_clause([-1, 2])  # 1 -> 2
        solver = SATSolver(cnf)
        result = solver.solve(assumptions=[1])
        assert result.is_sat and result.model[2] is True
        solver.reset()
        result = solver.solve(assumptions=[-2])
        assert result.is_sat
        assert result.model[1] is False  # 1 would force 2

    def test_assumption_budget_counts_per_call(self):
        solver = SATSolver(_pigeonhole(7), max_conflicts=5)
        assert solver.solve().status == "unknown"
        solver.reset()
        # The second call gets its own budget, not the leftovers.
        assert solver.solve().status == "unknown"

    def test_assumptions_on_unsat_base_formula(self):
        cnf = CNF()
        cnf.new_var()
        cnf.add_clause([])
        solver = SATSolver(cnf)
        assert solver.solve(assumptions=[1]).is_unsat


class TestRandomisedAgainstBruteForce:
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_agrees_with_brute_force(self, seed):
        gen = np.random.default_rng(seed)
        n = int(gen.integers(2, 10))
        m = int(gen.integers(1, 4 * n))
        cnf = CNF()
        cnf.new_vars(n)
        for _ in range(m):
            width = int(gen.integers(1, 4))
            clause = [
                int(gen.choice([-1, 1])) * int(gen.integers(1, n + 1))
                for _ in range(width)
            ]
            cnf.add_clause(clause)
        result = solve_cnf(cnf)
        assert result.is_sat == _brute_force(cnf)
        if result.is_sat:
            assert cnf.evaluate(result.model)

    def test_statistics_populated(self):
        result = solve_cnf(_pigeonhole(4))
        assert result.conflicts > 0
        assert result.propagations > 0
