"""Differential fuzzing of the pattern-solving engines.

The portfolio's online cross-check (eager SMT vs box DPLL — two
independent implementations of the same decision procedure) promoted
to a standing regression test: hundreds of seeded random
:class:`PatternProblem` instances with varying tree counts, depths,
``ε`` budgets and required-label patterns.  On every decided instance
the engines must agree — a disagreement means one of them is buggy and
fails the suite with the offending seed in the assertion message.
Every ``sat`` witness is additionally replayed through the ensemble's
real prediction path (``predict_all``, i.e. the compiled inference
engine) and must realise the required per-tree pattern exactly.

The compiled encoding (:mod:`repro.solver.compiled_encoding`) joins
the differential as a third implementation: its status must match the
one-shot engines, and its reuse path must be bit-identical to its
rebuild-per-instance path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ensemble import RandomForestClassifier
from repro.solver import (
    PatternProblem,
    compile_pattern_encoding,
    solve_pattern_boxes,
    solve_pattern_smt,
)
from repro.trees.node import InternalNode, Leaf

N_CASES = 220
MASTER_SEED = 20250729

#: Thresholds drawn from a coarse grid so distinct trees share atoms —
#: the interesting regime for the ordering axioms and bound units.
THRESHOLD_GRID = np.linspace(0.1, 0.9, 9)


def _random_tree(rng: np.random.Generator, n_features: int, depth: int):
    """A random (possibly unbalanced) decision tree over [0, 1]^d."""
    if depth == 0 or rng.random() < 0.2:
        return Leaf(int(rng.choice([-1, 1])))
    feature = int(rng.integers(n_features))
    threshold = float(rng.choice(THRESHOLD_GRID))
    return InternalNode(
        feature,
        threshold,
        _random_tree(rng, n_features, depth - 1),
        _random_tree(rng, n_features, depth - 1),
    )


def _random_problem(rng: np.random.Generator) -> PatternProblem:
    n_trees = int(rng.integers(1, 6))
    n_features = int(rng.integers(1, 5))
    depth = int(rng.integers(1, 5))
    roots = [_random_tree(rng, n_features, depth) for _ in range(n_trees)]
    required = [int(label) for label in rng.choice([-1, 1], size=n_trees)]
    if rng.random() < 0.75:
        center = rng.uniform(size=n_features)
        epsilon = float(rng.choice([0.05, 0.1, 0.2, 0.4, 0.7, 0.95]))
    else:
        center, epsilon = None, None
    return PatternProblem(
        roots=roots,
        required=required,
        n_features=n_features,
        center=center,
        epsilon=epsilon,
    )


@pytest.fixture(scope="module")
def replay_forests():
    """Fitted forests (per tree count) whose roots get swapped per case.

    ``with_roots`` grafts each fuzz case's hand-built trees onto a real
    fitted forest, so the witness replay exercises the actual
    ``predict_all`` path (compiled inference engine included).
    """
    rng = np.random.default_rng(7)
    X = rng.uniform(size=(40, 5))
    y = np.where(rng.random(40) < 0.5, -1, 1)
    y[0], y[1] = -1, 1  # both classes present
    forests = {}
    for n_trees in range(1, 6):
        forests[n_trees] = RandomForestClassifier(
            n_estimators=n_trees, max_depth=2, random_state=n_trees
        ).fit(X, y)
    return forests


class TestEngineDifferential:
    def test_engines_never_disagree_and_sat_models_replay(self, replay_forests):
        rng = np.random.default_rng(MASTER_SEED)
        case_seeds = rng.integers(2**31 - 1, size=N_CASES)
        decided = 0
        sat_cases = 0
        for seed in case_seeds:
            case_rng = np.random.default_rng(int(seed))
            problem = _random_problem(case_rng)

            smt = solve_pattern_smt(problem, max_conflicts=None)
            boxes = solve_pattern_boxes(problem, max_nodes=None)
            compiled = compile_pattern_encoding(
                problem.roots, problem.required, problem.n_features, problem.domain
            )
            reused = compiled.solve(
                center=problem.center, epsilon=problem.epsilon, reuse=True
            )
            rebuilt = compiled.solve(
                center=problem.center, epsilon=problem.epsilon, reuse=False
            )

            statuses = {
                "smt": smt.status,
                "boxes": boxes.status,
                "compiled": reused.status,
            }
            assert len(set(statuses.values())) == 1, (
                f"engine disagreement on seed {int(seed)}: {statuses}"
            )
            decided += 1
            # Reuse flag must not even change the witness bit for bit.
            assert rebuilt.status == reused.status
            if reused.is_sat:
                assert np.array_equal(reused.instance, rebuilt.instance), (
                    f"reuse flag changed the witness on seed {int(seed)}"
                )

            if smt.is_sat:
                sat_cases += 1
                forest = replay_forests[len(problem.roots)].with_roots(problem.roots)
                for outcome in (smt, boxes, reused):
                    witness = outcome.instance
                    assert problem.check_solution(witness), (
                        f"non-verifying witness on seed {int(seed)}"
                    )
                    # Pad the witness into the replay forest's feature
                    # space (hand-built trees only read the first
                    # problem.n_features coordinates).
                    padded = np.zeros((1, forest.n_features_in_))
                    padded[0, : problem.n_features] = witness
                    replayed = forest.predict_all(padded)[:, 0]
                    assert np.array_equal(replayed, np.asarray(problem.required)), (
                        f"sat model does not replay through predict_all on "
                        f"seed {int(seed)}"
                    )

        assert decided == N_CASES
        # The generator must exercise both verdicts, not fuzz one branch.
        assert 0 < sat_cases < N_CASES