"""Tests for minimum-distortion forgery search."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.solver.optimize import minimal_forgery_distortion
from repro.trees.node import InternalNode, Leaf


def _stump(feature=0, threshold=0.5):
    return InternalNode(feature, threshold, Leaf(-1), Leaf(+1))


class TestMinimalDistortion:
    def test_exact_threshold_single_stump(self):
        # Center at 0.3; requiring +1 needs x0 > 0.5, so the minimal
        # L-inf distortion is 0.2.
        result = minimal_forgery_distortion(
            roots=[_stump()],
            required=[+1],
            center=np.array([0.3]),
            n_features=1,
            tolerance=0.002,
        )
        assert result.feasible
        assert result.epsilon == pytest.approx(0.2, abs=0.005)
        assert result.instance[0] > 0.5

    def test_zero_distortion_when_already_matching(self):
        result = minimal_forgery_distortion(
            roots=[_stump()],
            required=[-1],
            center=np.array([0.3]),
            n_features=1,
            tolerance=0.002,
        )
        assert result.feasible
        assert result.epsilon <= 0.01

    def test_infeasible_pattern(self):
        # Same stump required to output both labels simultaneously.
        result = minimal_forgery_distortion(
            roots=[_stump(), _stump()],
            required=[+1, -1],
            center=np.array([0.3]),
            n_features=1,
        )
        assert not result.feasible
        assert result.epsilon is None

    def test_max_over_trees(self):
        # Tree A needs x0 > 0.5 (distance 0.2 from 0.3); tree B needs
        # x1 <= 0.2 (distance 0.3 from 0.5): minimal L-inf is 0.3.
        roots = [_stump(0, 0.5), _stump(1, 0.2)]
        result = minimal_forgery_distortion(
            roots=roots,
            required=[+1, -1],
            center=np.array([0.3, 0.5]),
            n_features=2,
            tolerance=0.002,
        )
        assert result.feasible
        assert result.epsilon == pytest.approx(0.3, abs=0.005)

    def test_witness_verifies_on_real_forest(self, bc_forest, bc_data):
        from repro.core import random_signature
        from repro.solver import PatternProblem, required_labels

        _, X_test, _, y_test = bc_data
        signature = random_signature(bc_forest.n_trees_, random_state=80)
        required = required_labels(signature, int(y_test[0]))
        result = minimal_forgery_distortion(
            roots=bc_forest.roots(),
            required=required,
            center=X_test[0],
            n_features=X_test.shape[1],
            tolerance=0.01,
        )
        if result.feasible:
            problem = PatternProblem(
                roots=bc_forest.roots(),
                required=required,
                n_features=X_test.shape[1],
                center=X_test[0],
                epsilon=result.epsilon + 1e-9,
            )
            assert problem.check_solution(result.instance)

    def test_engines_agree_on_threshold(self):
        roots = [_stump(0, 0.5), _stump(1, 0.7)]
        kwargs = dict(
            roots=roots,
            required=[+1, +1],
            center=np.array([0.2, 0.2]),
            n_features=2,
            tolerance=0.002,
        )
        smt = minimal_forgery_distortion(engine="smt", **kwargs)
        boxes = minimal_forgery_distortion(engine="boxes", **kwargs)
        assert smt.feasible == boxes.feasible
        assert smt.epsilon == pytest.approx(boxes.epsilon, abs=0.01)

    def test_validation(self):
        with pytest.raises(ValidationError):
            minimal_forgery_distortion(
                [_stump()], [+1], np.array([0.3]), 1, epsilon_max=0.0
            )
        with pytest.raises(ValidationError):
            minimal_forgery_distortion(
                [_stump()], [+1], np.array([0.3]), 1, tolerance=0.0
            )
