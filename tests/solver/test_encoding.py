"""Tests for the eager SMT encoding internals."""

import numpy as np
import pytest

from repro.solver import PatternProblem, encode_pattern_problem, solve_cnf
from repro.solver.encoding import decode_model
from repro.trees.node import InternalNode, Leaf


def _stump(feature=0, threshold=0.5):
    return InternalNode(feature, threshold, Leaf(-1), Leaf(+1))


class TestEncoding:
    def test_trivially_unsat_flag(self):
        all_negative = InternalNode(0, 0.5, Leaf(-1), Leaf(-1))
        problem = PatternProblem(roots=[all_negative], required=[+1], n_features=1)
        encoding = encode_pattern_problem(problem)
        assert encoding.trivially_unsat

    def test_atoms_deduplicated_across_trees(self):
        # Two stumps on the same (feature, threshold) share one atom.
        problem = PatternProblem(
            roots=[_stump(), _stump()], required=[+1, +1], n_features=1
        )
        encoding = encode_pattern_problem(problem)
        assert len(encoding.atom_vars) == 1

    def test_ordering_axioms_present(self):
        # Two thresholds on the same feature: the encoding must contain
        # the chain clause (x<=0.3) -> (x<=0.7).
        roots = [_stump(0, 0.3), _stump(0, 0.7)]
        problem = PatternProblem(roots=roots, required=[+1, +1], n_features=1)
        encoding = encode_pattern_problem(problem)
        small = encoding.atom_vars[(0, 0.3)]
        large = encoding.atom_vars[(0, 0.7)]
        assert [-small, large] in encoding.cnf.clauses

    def test_ball_implied_constraints_create_no_atoms(self):
        # Ball [0.8, 1.0] already implies x > 0.5, so the leaf's lower
        # bound needs no atom at all — the encoding elides it.
        problem = PatternProblem(
            roots=[_stump(0, 0.5)],
            required=[+1],
            n_features=1,
            center=np.array([0.9]),
            epsilon=0.1,
        )
        encoding = encode_pattern_problem(problem)
        assert (0, 0.5) not in encoding.atom_vars
        result = solve_cnf(encoding.cnf)
        assert result.is_sat
        x = decode_model(encoding, result.model, 1, problem.center)
        assert problem.check_solution(x)

    def test_bound_units_forced_when_atom_partially_useful(self):
        # Two trees: one needs x <= 0.3 (left leaf), impossible inside
        # the ball [0.8, 1.0] -> the 0.3 atom is forced false and the
        # whole instance is UNSAT.
        problem = PatternProblem(
            roots=[_stump(0, 0.3)],
            required=[-1],
            n_features=1,
            center=np.array([0.9]),
            epsilon=0.1,
        )
        encoding = encode_pattern_problem(problem)
        if encoding.trivially_unsat:
            return  # pruned before encoding — equally correct
        atom = encoding.atom_vars[(0, 0.3)]
        assert [-atom] in encoding.cnf.clauses
        assert solve_cnf(encoding.cnf).is_unsat

    def test_decode_produces_consistent_instance(self):
        problem = PatternProblem(
            roots=[_stump(0, 0.5), _stump(1, 0.2)],
            required=[+1, -1],
            n_features=2,
        )
        encoding = encode_pattern_problem(problem)
        result = solve_cnf(encoding.cnf)
        assert result.is_sat
        x = decode_model(encoding, result.model, 2, None)
        assert problem.check_solution(x)

    def test_decode_prefers_center(self):
        problem = PatternProblem(
            roots=[_stump(0, 0.5)],
            required=[+1],
            n_features=2,
            center=np.array([0.8, 0.33]),
            epsilon=0.3,
        )
        encoding = encode_pattern_problem(problem)
        result = solve_cnf(encoding.cnf)
        x = decode_model(encoding, result.model, 2, problem.center)
        # Feature 0 must exceed 0.5 but stay as close to 0.8 as possible;
        # feature 1 is unconstrained by the trees -> exactly the center.
        assert x[0] == pytest.approx(0.8)
        assert x[1] == pytest.approx(0.33)

    def test_encoding_size_scales_with_leaves(self, bc_forest, forge_problem):
        encoding = encode_pattern_problem(forge_problem)
        assert encoding.cnf.n_vars > bc_forest.n_trees_
        assert len(encoding.cnf) > 0
