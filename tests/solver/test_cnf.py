"""Tests for the CNF container."""

import pytest

from repro.exceptions import SolverError
from repro.solver import CNF


class TestCNF:
    def test_variable_allocation(self):
        cnf = CNF()
        assert cnf.new_var() == 1
        assert cnf.new_var() == 2
        assert cnf.new_vars(3) == [3, 4, 5]
        assert cnf.n_vars == 5

    def test_add_clause(self):
        cnf = CNF()
        cnf.new_vars(3)
        cnf.add_clause([1, -2, 3])
        assert cnf.clauses == [[1, -2, 3]]

    def test_duplicate_literals_collapsed(self):
        cnf = CNF()
        cnf.new_vars(2)
        cnf.add_clause([1, 1, -2])
        assert cnf.clauses == [[1, -2]]

    def test_tautology_dropped(self):
        cnf = CNF()
        cnf.new_vars(2)
        cnf.add_clause([1, -1, 2])
        assert cnf.clauses == []

    def test_zero_literal_rejected(self):
        cnf = CNF()
        cnf.new_var()
        with pytest.raises(SolverError):
            cnf.add_clause([0])

    def test_unallocated_variable_rejected(self):
        cnf = CNF()
        cnf.new_var()
        with pytest.raises(SolverError, match="allocate"):
            cnf.add_clause([2])

    def test_empty_clause_allowed(self):
        cnf = CNF()
        cnf.add_clause([])
        assert cnf.clauses == [[]]

    def test_evaluate(self):
        cnf = CNF()
        cnf.new_vars(2)
        cnf.add_clause([1, 2])
        cnf.add_clause([-1])
        assert cnf.evaluate({1: False, 2: True})
        assert not cnf.evaluate({1: True, 2: True})

    def test_evaluate_missing_variable_raises(self):
        cnf = CNF()
        cnf.new_vars(2)
        cnf.add_clause([1, 2])
        with pytest.raises(SolverError, match="missing"):
            cnf.evaluate({1: False})

    def test_dimacs_output(self):
        cnf = CNF()
        cnf.new_vars(2)
        cnf.add_clause([1, -2])
        text = cnf.to_dimacs()
        assert text.splitlines() == ["p cnf 2 1", "1 -2 0"]

    def test_len_and_repr(self):
        cnf = CNF()
        cnf.new_var()
        cnf.add_clause([1])
        assert len(cnf) == 1
        assert "n_vars=1" in repr(cnf)
