"""Tests for the compiled (instance-independent) pattern encoding."""

import numpy as np
import pytest

from repro.core import random_signature
from repro.exceptions import ValidationError
from repro.solver import (
    EncodingCache,
    PatternProblem,
    compile_pattern_encoding,
    required_labels,
    solve_pattern_boxes,
    solve_pattern_smt,
)
from repro.trees.node import InternalNode, Leaf


def _stump(feature=0, threshold=0.5):
    return InternalNode(feature, threshold, Leaf(-1), Leaf(+1))


class TestCompiledStatuses:
    def test_matches_one_shot_engines_across_epsilons(self, bc_forest, bc_data):
        _, X_test, _, _ = bc_data
        signature = random_signature(bc_forest.n_trees_, random_state=21)
        required = required_labels(signature, +1)
        compiled = compile_pattern_encoding(
            bc_forest.roots(), required, bc_forest.n_features_in_
        )
        for i, epsilon in enumerate((0.05, 0.2, 0.5, 0.9)):
            center = X_test[i]
            problem = PatternProblem(
                roots=bc_forest.roots(),
                required=required,
                n_features=bc_forest.n_features_in_,
                center=center,
                epsilon=epsilon,
            )
            smt = solve_pattern_smt(problem)
            boxes = solve_pattern_boxes(problem)
            compiled_smt = compiled.solve(center=center, epsilon=epsilon)
            compiled_boxes = compiled.solve(
                center=center, epsilon=epsilon, engine="boxes"
            )
            assert compiled_smt.status == smt.status
            assert compiled_boxes.status == boxes.status
            if compiled_smt.is_sat:
                assert problem.check_solution(compiled_smt.instance)
            if compiled_boxes.is_sat:
                assert problem.check_solution(compiled_boxes.instance)
                # Same clipped candidates, same search: the box witness
                # is bit-identical to the one-shot solver's.
                assert np.array_equal(compiled_boxes.instance, boxes.instance)

    def test_reuse_and_rebuild_identical_across_a_sweep(self, bc_forest, bc_data):
        _, X_test, _, _ = bc_data
        signature = random_signature(bc_forest.n_trees_, random_state=22)
        required = required_labels(signature, -1)
        compiled = compile_pattern_encoding(
            bc_forest.roots(), required, bc_forest.n_features_in_
        )
        for i in range(6):
            reused = compiled.solve(center=X_test[i], epsilon=0.4, reuse=True)
            rebuilt = compiled.solve(center=X_test[i], epsilon=0.4, reuse=False)
            assert reused.status == rebuilt.status
            if reused.is_sat:
                assert np.array_equal(reused.instance, rebuilt.instance)

    def test_portfolio_engine_cross_checks(self):
        encoding = compile_pattern_encoding([_stump()], [+1], 1)
        outcome = encoding.solve(
            center=np.array([0.8]), epsilon=0.3, engine="portfolio"
        )
        assert outcome.is_sat
        assert outcome.stats["agreement"] is True

    def test_unknown_engine_rejected(self):
        encoding = compile_pattern_encoding([_stump()], [+1], 1)
        with pytest.raises(ValidationError, match="unknown engine"):
            encoding.solve(engine="z3")


class TestCompiledStructure:
    def test_always_unsat_without_required_leaves(self):
        all_negative = InternalNode(0, 0.5, Leaf(-1), Leaf(-1))
        encoding = compile_pattern_encoding([all_negative], [+1], 1)
        assert encoding.always_unsat
        outcome = encoding.solve()
        assert outcome.is_unsat
        assert outcome.stats["trivial"] is True

    def test_prescreen_detects_ball_incompatibility(self):
        encoding = compile_pattern_encoding([_stump()], [+1], 1)
        # +1 needs x > 0.5; the ball [0.0, 0.2] keeps no compatible box.
        outcome = encoding.solve(center=np.array([0.1]), epsilon=0.1)
        assert outcome.is_unsat
        assert outcome.stats["trivial"] is True

    def test_atoms_shared_across_trees(self):
        encoding = compile_pattern_encoding([_stump(), _stump()], [+1, +1], 1)
        assert len(encoding.atom_vars) == 1
        assert encoding.atom_features.shape == (1,)

    def test_bound_assumptions_match_bound_units(self):
        # Atoms at 0.3 and 0.7; bounds [0.4, 0.6] decide both: the 0.3
        # atom is forced false, the 0.7 atom forced true.
        encoding = compile_pattern_encoding(
            [_stump(0, 0.3), _stump(0, 0.7)], [+1, +1], 1
        )
        lo, hi = np.array([0.4]), np.array([0.6])
        literals = encoding.bound_assumptions(lo, hi)
        var_03 = encoding.atom_vars[(0, 0.3)]
        var_07 = encoding.atom_vars[(0, 0.7)]
        assert set(literals) == {-var_03, var_07}

    def test_mismatched_required_length_rejected(self):
        with pytest.raises(ValidationError, match="required"):
            compile_pattern_encoding([_stump()], [+1, -1], 1)

    def test_domain_none_supported(self):
        encoding = compile_pattern_encoding([_stump()], [-1], 1, domain=None)
        outcome = encoding.solve()
        assert outcome.is_sat
        assert outcome.instance[0] <= 0.5


class TestEncodingCache:
    def test_same_pattern_returns_same_object(self, bc_forest):
        cache = EncodingCache(bc_forest.roots(), bc_forest.n_features_in_)
        signature = random_signature(bc_forest.n_trees_, random_state=23)
        first = cache.for_required(required_labels(signature, +1))
        again = cache.for_required(required_labels(signature, +1))
        other = cache.for_required(required_labels(signature, -1))
        assert first is again
        assert other is not first

    def test_warm_prebuilds_persistent_solver(self):
        encoding = compile_pattern_encoding([_stump()], [+1], 1)
        assert encoding._solver is None
        encoding.warm()
        solver = encoding._solver
        assert solver is not None
        encoding.warm()
        assert encoding._solver is solver  # idempotent
        assert encoding.solve(center=np.array([0.8]), epsilon=0.3).is_sat
