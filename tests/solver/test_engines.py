"""Tests for the two pattern-solving engines and their agreement.

The box-DPLL solver is an independent implementation of the same
decision problem as the eager SMT encoding; random cross-checking is
the library's substitute for "trust Z3".
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import random_signature
from repro.ensemble import RandomForestClassifier
from repro.exceptions import ValidationError
from repro.solver import (
    PatternProblem,
    required_labels,
    solve_pattern,
    solve_pattern_boxes,
    solve_pattern_smt,
)
from repro.trees.node import InternalNode, Leaf


def _stump(feature=0, threshold=0.5):
    return InternalNode(feature, threshold, Leaf(-1), Leaf(+1))


class TestSimpleInstances:
    def test_single_stump_sat(self):
        problem = PatternProblem(roots=[_stump()], required=[+1], n_features=1)
        for solve in (solve_pattern_smt, solve_pattern_boxes):
            outcome = solve(problem)
            assert outcome.is_sat
            assert problem.check_solution(outcome.instance)

    def test_conflicting_trees_unsat(self):
        # Same stump required to output both labels: impossible.
        roots = [_stump(), _stump()]
        problem = PatternProblem(roots=roots, required=[+1, -1], n_features=1)
        assert solve_pattern_smt(problem).is_unsat
        assert solve_pattern_boxes(problem).is_unsat

    def test_ball_makes_instance_unsat(self):
        problem = PatternProblem(
            roots=[_stump()],
            required=[+1],
            n_features=1,
            center=np.array([0.1]),
            epsilon=0.1,
        )
        assert solve_pattern_smt(problem).is_unsat
        assert solve_pattern_boxes(problem).is_unsat

    def test_solution_respects_ball(self):
        problem = PatternProblem(
            roots=[_stump()],
            required=[+1],
            n_features=1,
            center=np.array([0.45]),
            epsilon=0.1,
        )
        for solve in (solve_pattern_smt, solve_pattern_boxes):
            outcome = solve(problem)
            assert outcome.is_sat
            assert abs(outcome.instance[0] - 0.45) <= 0.1 + 1e-9
            assert outcome.instance[0] > 0.5

    def test_paper_figure1_example(self):
        """The worked example of §3.3: signature 01, label +1, solution
        x = (4, 3, 5) exists."""
        tree1 = InternalNode(
            0, 5.0,
            InternalNode(1, 3.0, Leaf(+1), Leaf(-1)),
            InternalNode(2, 7.0, Leaf(-1), Leaf(+1)),
        )
        tree2 = InternalNode(
            0, 2.0,
            InternalNode(1, 4.0, Leaf(+1), Leaf(-1)),
            InternalNode(2, 6.0, Leaf(-1), Leaf(+1)),
        )
        sig = random_signature(2, random_state=0)  # placeholder, we set explicitly
        from repro.core import Signature

        sig = Signature.from_string("01")
        problem = PatternProblem(
            roots=[tree1, tree2],
            required=required_labels(sig, +1),
            n_features=3,
            domain=(0.0, 10.0),
        )
        for solve in (solve_pattern_smt, solve_pattern_boxes):
            outcome = solve(problem)
            assert outcome.is_sat
            # The paper's own witness must satisfy the problem too.
            assert problem.check_solution(np.array([4.0, 3.0, 5.0]))


class TestEngineDispatch:
    def test_unknown_engine_rejected(self):
        problem = PatternProblem(roots=[_stump()], required=[+1], n_features=1)
        with pytest.raises(ValidationError, match="unknown engine"):
            solve_pattern(problem, engine="z3")

    def test_dispatch_works(self):
        problem = PatternProblem(roots=[_stump()], required=[+1], n_features=1)
        assert solve_pattern(problem, "smt").is_sat
        assert solve_pattern(problem, "boxes").is_sat


class TestCrossCheck:
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_engines_agree_on_random_forest_patterns(self, seed):
        gen = np.random.default_rng(seed)
        X = gen.uniform(size=(60, 4))
        y = gen.choice([-1, 1], size=60)
        if len(np.unique(y)) < 2:
            y[0] = -y[0]
        forest = RandomForestClassifier(
            n_estimators=4, max_depth=3, tree_feature_fraction=0.8, random_state=seed % 1000
        ).fit(X, y)
        signature = random_signature(4, ones_fraction=0.5, random_state=seed % 997)
        label = int(gen.choice([-1, 1]))
        center = X[int(gen.integers(60))]
        epsilon = float(gen.uniform(0.05, 0.8))
        problem = PatternProblem(
            roots=forest.roots(),
            required=required_labels(signature, label),
            n_features=4,
            center=center,
            epsilon=epsilon,
        )
        smt = solve_pattern_smt(problem)
        boxes = solve_pattern_boxes(problem)
        assert smt.status == boxes.status
        for outcome in (smt, boxes):
            if outcome.is_sat:
                assert problem.check_solution(outcome.instance)

    def test_unbounded_problem_engines_agree(self, forge_problem):
        smt = solve_pattern_smt(forge_problem)
        boxes = solve_pattern_boxes(forge_problem)
        assert smt.status == boxes.status

    def test_budget_exhaustion_reports_unknown(self, forge_problem):
        outcome = solve_pattern_boxes(forge_problem, max_nodes=1)
        assert outcome.status in ("unknown", "unsat", "sat")  # tiny budget
