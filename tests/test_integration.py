"""End-to-end integration tests: the full ownership-dispute story.

Alice watermarks and deploys a model; Bob steals it; Charlie the judge
verifies Alice's claim and rejects Mallory's forgeries — using only the
public API, with persistence round-trips in the middle, as a real
deployment would.
"""

import numpy as np
import pytest

import repro
from repro import Judge, OwnershipClaim, WatermarkSecret, random_signature, watermark
from repro.attacks import forge_trigger_set
from repro.core import false_claim_log10_probability
from repro.datasets import breast_cancer_like
from repro.model_selection import train_test_split
from repro.persistence import (
    forest_from_dict,
    forest_to_dict,
    secret_from_dict,
    secret_to_dict,
)


@pytest.fixture(scope="module")
def dispute():
    """The full scenario state shared by the tests below."""
    ds = breast_cancer_like(320, random_state=100)
    X_train, X_test, y_train, y_test = train_test_split(
        ds.X, ds.y, test_size=0.3, random_state=101
    )
    signature = random_signature(12, ones_fraction=0.5, random_state=102)
    model = watermark(
        X_train,
        y_train,
        signature,
        trigger_size=7,
        base_params={"max_depth": 8},
        escalation_factor=2.0,
        random_state=103,
    )
    return {
        "model": model,
        "X_train": X_train,
        "X_test": X_test,
        "y_train": y_train,
        "y_test": y_test,
    }


class TestOwnershipDispute:
    def test_deployed_model_is_accurate(self, dispute):
        model = dispute["model"]
        assert model.ensemble.score(dispute["X_test"], dispute["y_test"]) > 0.85

    def test_alice_claim_accepted_after_persistence_roundtrip(self, dispute, tmp_path):
        model = dispute["model"]
        # Bob "steals" the model: simulate via serialisation round-trip
        # (exactly what exfiltrating a model file looks like).
        stolen = forest_from_dict(forest_to_dict(model.ensemble))

        # Alice's secret also survives storage.
        secret = secret_from_dict(
            secret_to_dict(
                WatermarkSecret(
                    signature=model.signature,
                    trigger_X=model.trigger.X,
                    trigger_y=model.trigger.y,
                )
            )
        )
        X_disclosed = np.vstack([dispute["X_test"], secret.trigger_X])
        y_disclosed = np.concatenate([dispute["y_test"], secret.trigger_y])
        claim = OwnershipClaim("alice", secret, X_disclosed, y_disclosed)
        report = Judge().verify_claim(stolen, claim)
        assert report.accepted
        assert report.n_matching == 12

    def test_false_claim_probability_is_negligible(self, dispute):
        model = dispute["model"]
        log_p = false_claim_log10_probability(
            test_accuracy=0.95,
            trigger_size=model.trigger.size,
            signature=model.signature,
        )
        assert log_p < -8  # far below any plausible coincidence

    def test_mallory_cannot_forge_cheaply(self, dispute):
        """Mallory invents a signature and tries to forge triggers with
        small distortion — the paper's §4.2.2 scenario."""
        model = dispute["model"]
        fake = random_signature(12, ones_fraction=0.5, random_state=999)
        result = forge_trigger_set(
            model.ensemble,
            fake,
            dispute["X_test"],
            dispute["y_test"],
            epsilon=0.05,
            max_instances=10,
            random_state=998,
        )
        assert result.n_forged <= max(1, result.n_attempted // 3)

    def test_mallory_random_triggers_rejected(self, dispute, rng):
        """Claiming with random data as a trigger set fails."""
        model = dispute["model"]
        fake_trigger_X = rng.uniform(size=(7, 30))
        fake_trigger_y = rng.choice([-1, 1], size=7)
        secret = WatermarkSecret(
            signature=model.signature,  # even knowing σ does not help
            trigger_X=fake_trigger_X,
            trigger_y=fake_trigger_y,
        )
        X_disclosed = np.vstack([dispute["X_test"], fake_trigger_X])
        y_disclosed = np.concatenate([dispute["y_test"], fake_trigger_y])
        claim = OwnershipClaim("mallory", secret, X_disclosed, y_disclosed)
        report = Judge().verify_claim(model.ensemble, claim)
        assert not report.accepted

    def test_unrelated_model_rejected(self, dispute):
        """Alice's secret must not match an independently trained model."""
        from repro.core import train_standard_forest

        model = dispute["model"]
        independent = train_standard_forest(
            dispute["X_train"],
            dispute["y_train"],
            n_estimators=12,
            params={"max_depth": 8},
            random_state=555,
        )
        secret = WatermarkSecret(
            signature=model.signature,
            trigger_X=model.trigger.X,
            trigger_y=model.trigger.y,
        )
        X_disclosed = np.vstack([dispute["X_test"], secret.trigger_X])
        y_disclosed = np.concatenate([dispute["y_test"], secret.trigger_y])
        claim = OwnershipClaim("alice", secret, X_disclosed, y_disclosed)
        report = Judge().verify_claim(independent, claim)
        assert not report.accepted


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "1.1.0"

    def test_top_level_exports(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name
