"""Property tests for the streaming query generators.

The seeding contract of :mod:`repro.traffic.base` in executable form:
same seed ⇒ byte-identical streams; the stream never depends on how a
consumer chunks it; ``reset`` replays exactly; mixture components draw
from private sub-streams (changing one rate re-paces, never re-draws,
the others); mixing rates converge to what was asked.
"""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.traffic import (
    ExtractionHarvestGenerator,
    LegitTrafficGenerator,
    MixedStream,
    QueryStream,
    SuppressionEvasionGenerator,
    TriggerProbeGenerator,
    child_seed,
    concat_batches,
)

ROOT = 424242


@pytest.fixture(scope="module")
def pool():
    rng = np.random.default_rng(99)
    return rng.uniform(size=(64, 5))


@pytest.fixture(scope="module")
def triggers():
    rng = np.random.default_rng(100)
    return rng.uniform(size=(6, 5))


def _make(kind, pool, triggers, seed=ROOT, **kwargs):
    if kind == "legit":
        return LegitTrafficGenerator(pool, seed=seed, **kwargs)
    if kind == "probe":
        return TriggerProbeGenerator(triggers, seed=seed, **kwargs)
    if kind == "harvest":
        return ExtractionHarvestGenerator(pool.shape[1], seed=seed, **kwargs)
    if kind == "mixed":
        root = np.random.SeedSequence(seed)
        return MixedStream(
            (
                LegitTrafficGenerator(pool, seed=child_seed(root, 0)),
                TriggerProbeGenerator(triggers, seed=child_seed(root, 1)),
            ),
            (0.9, 0.1),
            seed=child_seed(root, 4),
            **kwargs,
        )
    raise AssertionError(kind)


KINDS = ("legit", "probe", "harvest", "mixed")


class TestDeterminism:
    @pytest.mark.parametrize("kind", KINDS)
    def test_same_seed_byte_identical(self, kind, pool, triggers):
        a = _make(kind, pool, triggers).take(3000)
        b = _make(kind, pool, triggers).take(3000)
        assert a.X.tobytes() == b.X.tobytes()
        assert a.is_trigger.tobytes() == b.is_trigger.tobytes()
        assert a.source.tobytes() == b.source.tobytes()

    @pytest.mark.parametrize("kind", KINDS)
    def test_different_seeds_differ(self, kind, pool, triggers):
        a = _make(kind, pool, triggers, seed=1).take(2000)
        b = _make(kind, pool, triggers, seed=2).take(2000)
        assert a.X.tobytes() != b.X.tobytes()

    @pytest.mark.parametrize("kind", KINDS)
    def test_chunking_invariance(self, kind, pool, triggers):
        """take(7) × many == take(whole) once: blocks, not consumers,
        position the RNG."""
        whole = _make(kind, pool, triggers).take(2100)
        chunked = _make(kind, pool, triggers)
        parts = [chunked.take(7) for _ in range(300)]
        rebuilt = concat_batches(parts)
        assert rebuilt.X.tobytes() == whole.X.tobytes()
        assert rebuilt.is_trigger.tobytes() == whole.is_trigger.tobytes()
        assert rebuilt.source.tobytes() == whole.source.tobytes()

    @pytest.mark.parametrize("kind", KINDS)
    def test_reset_replays_exactly(self, kind, pool, triggers):
        gen = _make(kind, pool, triggers)
        first = gen.take(1500)
        gen.reset()
        replay = gen.take(1500)
        assert replay.X.tobytes() == first.X.tobytes()
        assert replay.is_trigger.tobytes() == first.is_trigger.tobytes()

    @pytest.mark.parametrize("kind", KINDS)
    def test_batches_equals_take(self, kind, pool, triggers):
        via_batches = concat_batches(
            _make(kind, pool, triggers).batches(1800, batch_size=256)
        )
        via_take = _make(kind, pool, triggers).take(1800)
        assert via_batches.X.tobytes() == via_take.X.tobytes()

    @pytest.mark.parametrize("kind", KINDS)
    def test_satisfies_stream_protocol(self, kind, pool, triggers):
        assert isinstance(_make(kind, pool, triggers), QueryStream)


class TestGeneratorShapes:
    def test_legit_rows_come_from_pool(self, pool, triggers):
        batch = LegitTrafficGenerator(pool, seed=ROOT).take(500)
        assert not batch.is_trigger.any()
        # every emitted row is literally a pool row (jitter=0)
        matches = (batch.X[:, None, :] == pool[None, :, :]).all(axis=2)
        assert matches.any(axis=1).all()

    def test_probe_rows_are_triggers(self, pool, triggers):
        batch = TriggerProbeGenerator(triggers, seed=ROOT).take(500)
        assert batch.is_trigger.all()
        matches = (batch.X[:, None, :] == triggers[None, :, :]).all(axis=2)
        assert matches.any(axis=1).all()

    def test_jitter_moves_off_rows_but_stays_clipped(self, pool, triggers):
        batch = LegitTrafficGenerator(pool, seed=ROOT, jitter=0.05).take(500)
        matches = (batch.X[:, None, :] == pool[None, :, :]).all(axis=2)
        assert not matches.any(axis=1).all()
        assert batch.X.min() >= 0.0 and batch.X.max() <= 1.0

    def test_harvest_fills_the_feature_box(self, pool, triggers):
        batch = ExtractionHarvestGenerator(3, seed=ROOT, low=-1.0, high=2.0).take(
            4000
        )
        assert batch.X.shape == (4000, 3)
        assert batch.X.min() >= -1.0 and batch.X.max() <= 2.0
        assert batch.X.min() < -0.5 and batch.X.max() > 1.5  # actually spreads

    def test_harvest_anchored_stays_near_pool(self, pool, triggers):
        gen = ExtractionHarvestGenerator(
            pool.shape[1], seed=ROOT, X_pool=pool, spread=0.1
        )
        batch = gen.take(1000)
        dist = np.abs(batch.X[:, None, :] - pool[None, :, :]).max(axis=2).min(axis=1)
        assert dist.max() <= 0.1 + 1e-12

    def test_validation(self, pool, triggers):
        with pytest.raises(ValidationError):
            LegitTrafficGenerator(pool, seed=ROOT, jitter=-0.1)
        with pytest.raises(ValidationError):
            ExtractionHarvestGenerator(0, seed=ROOT)
        with pytest.raises(ValidationError):
            ExtractionHarvestGenerator(3, seed=ROOT, low=1.0, high=1.0)
        with pytest.raises(ValidationError):
            LegitTrafficGenerator(pool, seed=ROOT).take(0)
        with pytest.raises(ValidationError):
            LegitTrafficGenerator(pool, seed=np.random.default_rng(0))


class TestMixedStream:
    def test_rates_converge(self, pool, triggers):
        root = np.random.SeedSequence(ROOT)
        mix = MixedStream(
            (
                LegitTrafficGenerator(pool, seed=child_seed(root, 0)),
                TriggerProbeGenerator(triggers, seed=child_seed(root, 1)),
                ExtractionHarvestGenerator(
                    pool.shape[1], seed=child_seed(root, 2)
                ),
            ),
            (0.7, 0.2, 0.1),
            seed=child_seed(root, 4),
        )
        batch = mix.take(20_000)
        observed = np.bincount(batch.source, minlength=3) / batch.n_queries
        assert np.abs(observed - np.array([0.7, 0.2, 0.1])).max() < 0.02

    def test_sub_streams_independent_of_rates(self, pool, triggers):
        """Changing one component's rate re-paces the other's
        consumption but never changes the sequence it emits (prefix
        property): the probe rows seen under rates (0.9, 0.1) are a
        prefix of the probe stream, identical to what the same-seeded
        probe generator emits standalone."""
        root = np.random.SeedSequence(ROOT)

        def probe_rows(rates, n):
            mix = _mix_with(pool, triggers, root, rates)
            batch = mix.take(n)
            return batch.X[batch.source == 1]

        standalone = TriggerProbeGenerator(triggers, seed=child_seed(root, 1))
        low = probe_rows((0.9, 0.1), 4000)
        high = probe_rows((0.5, 0.5), 4000)
        ref = standalone.take(max(len(low), len(high))).X
        assert low.tobytes() == ref[: len(low)].tobytes()
        assert high.tobytes() == ref[: len(high)].tobytes()

    def test_source_labels_match_emitters(self, pool, triggers):
        root = np.random.SeedSequence(ROOT)
        mix = _mix_with(pool, triggers, root, (0.8, 0.2))
        batch = mix.take(2000)
        assert batch.sources == ("legit", "probe")
        assert batch.is_trigger[batch.source == 1].all()
        assert not batch.is_trigger[batch.source == 0].any()

    def test_validation(self, pool, triggers):
        root = np.random.SeedSequence(ROOT)
        legit = LegitTrafficGenerator(pool, seed=child_seed(root, 0))
        with pytest.raises(ValidationError, match="at least one"):
            MixedStream((), (), seed=ROOT)
        with pytest.raises(ValidationError, match="unique"):
            MixedStream(
                (legit, LegitTrafficGenerator(pool, seed=child_seed(root, 1))),
                (0.5, 0.5),
                seed=ROOT,
            )
        with pytest.raises(ValidationError, match="one rate per component"):
            MixedStream((legit,), (0.5, 0.5), seed=ROOT)
        with pytest.raises(ValidationError, match="non-negative"):
            MixedStream((legit,), (-1.0,), seed=ROOT)


def _mix_with(pool, triggers, root, rates):
    return MixedStream(
        (
            LegitTrafficGenerator(pool, seed=child_seed(root, 0)),
            TriggerProbeGenerator(triggers, seed=child_seed(root, 1)),
        ),
        rates,
        seed=child_seed(root, 4),
    )


class TestSuppressionEvasionGenerator:
    def test_deterministic_and_resettable(self, wm_model, bc_data):
        X_train = bc_data[0]

        def make():
            return SuppressionEvasionGenerator(
                wm_model.ensemble,
                X_train,
                wm_model.trigger.X,
                seed=ROOT,
                block_size=256,
            )

        a, b = make().take(700), make().take(700)
        assert a.X.tobytes() == b.X.tobytes()
        assert a.y_override.tobytes() == b.y_override.tobytes()
        gen = make()
        first = gen.take(700)
        gen.reset()
        assert gen.take(700).y_override.tobytes() == first.y_override.tobytes()

    def test_overrides_destroy_trigger_answers_only(self, wm_model, bc_data):
        X_train = bc_data[0]
        gen = SuppressionEvasionGenerator(
            wm_model.ensemble,
            X_train,
            wm_model.trigger.X,
            seed=ROOT,
            probe_rate=0.3,
            block_size=512,
        )
        batch = gen.take(512)
        assert batch.override_mask.all()
        honest = wm_model.ensemble.predict_all(batch.X)
        changed = (batch.y_override != honest).any(axis=0)
        # served answers differ somewhere (the thief suppressed), and
        # almost exclusively on flagged high-disagreement queries
        assert changed.any()
        assert batch.is_trigger[changed].mean() > 0.5
