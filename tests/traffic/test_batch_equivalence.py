"""Streaming statistic ≡ batch statistic, bit for bit.

The :class:`~repro.traffic.defenders.OnlineSuppressionDistinguisher`
accumulates exact int64 disagreement counts — integer addition is
associative, so folding *any* chunking of a finite stream and dividing
once must equal the one-shot batch computation
(:func:`repro.attacks.detection.behavioural_rates`) on the
concatenated queries, to the last bit.  No tolerance anywhere in this
module: every comparison is on raw bytes or exact equality.
"""

import numpy as np
import pytest

from repro.attacks.detection import behavioural_rates, detect_bits
from repro.traffic import LegitTrafficGenerator, OnlineSuppressionDistinguisher


@pytest.fixture(scope="module")
def served(wm_model, bc_data):
    """One fixed 3000-query traffic slice and its per-tree answers."""
    X_train = bc_data[0]
    model = wm_model.ensemble
    model.compile()
    X = LegitTrafficGenerator(X_train, seed=8).take(3000).X
    return model, X, model.predict_all(X)


def _chunkings(n):
    rng = np.random.default_rng(1234)
    cuts = np.sort(rng.choice(np.arange(1, n), size=17, replace=False))
    random_sizes = np.diff(np.concatenate([[0], cuts, [n]]))
    return {
        "one-by-one": [1] * n,
        "sevens": [7] * (n // 7) + ([n % 7] if n % 7 else []),
        "pow2": [256] * (n // 256) + ([n % 256] if n % 256 else []),
        "whole": [n],
        "random": random_sizes.tolist(),
    }


def _stream_rates(model, X, y_pred, sizes):
    defender = OnlineSuppressionDistinguisher.calibrate(model, X[:50])
    offset = 0
    for size in sizes:
        defender.observe(X[offset : offset + size], y_pred[:, offset : offset + size])
        offset += size
    assert offset == X.shape[0]
    return defender


@pytest.mark.parametrize("chunking", ["one-by-one", "sevens", "pow2", "whole", "random"])
def test_rates_bitwise_equal_under_any_chunking(served, chunking):
    model, X, y_pred = served
    # "one-by-one" over 3000 queries is slow-ish; trim it.
    if chunking == "one-by-one":
        X, y_pred = X[:400], y_pred[:, :400]
    sizes = _chunkings(X.shape[0])[chunking]
    streamed = _stream_rates(model, X, y_pred, sizes).rates()
    batch = behavioural_rates(y_pred)
    assert streamed.dtype == batch.dtype
    assert streamed.tobytes() == batch.tobytes()


def test_all_chunkings_agree_with_each_other(served):
    model, X, y_pred = served
    fingerprints = {
        name: _stream_rates(model, X, y_pred, sizes).rates().tobytes()
        for name, sizes in _chunkings(X.shape[0]).items()
        if name != "one-by-one"
    }
    assert len(set(fingerprints.values())) == 1


@pytest.mark.parametrize("strategy", ["bands", "mean"])
def test_detection_decision_identical(served, wm_model, strategy):
    """Identical rates ⇒ the downstream Table-2 decision is identical —
    the full DetectionResult, not just the headline counts."""
    model, X, y_pred = served
    sizes = _chunkings(X.shape[0])["random"]
    streamed = _stream_rates(model, X, y_pred, sizes)
    via_stream = streamed.detection_result(wm_model.signature, strategy=strategy)
    via_batch = detect_bits(behavioural_rates(y_pred), wm_model.signature, strategy)
    assert via_stream.predicted == via_batch.predicted
    assert via_stream.mean == via_batch.mean
    assert via_stream.std == via_batch.std
    assert (via_stream.n_correct, via_stream.n_wrong, via_stream.n_uncertain) == (
        via_batch.n_correct,
        via_batch.n_wrong,
        via_batch.n_uncertain,
    )


def test_behavioural_rates_matches_naive_definition(served):
    """The batch reference itself: per-tree fraction of disagreement
    with the ensemble's majority vote."""
    from repro.ensemble.voting import majority_vote

    _, _, y_pred = served
    majority = majority_vote(y_pred, np.array([-1, 1]))
    naive = np.array(
        [np.mean(tree_answers != majority) for tree_answers in y_pred]
    )
    assert behavioural_rates(y_pred).tobytes() == naive.tobytes()
