"""Statistical guarantees of the online defenders.

Three properties the docstrings promise, measured rather than assumed:

- **false-alarm control** — on pure benign traffic, over many seeded
  trials, the fraction of trials where a defender fires stays within
  its ``alpha`` budget (the alpha-spending checkpoint schedule at
  work);
- **power** — under the adversarial scenarios at paper strength the
  defenders fire within a bounded query budget;
- **O(1) memory** — defender state does not grow with the stream.
"""

import numpy as np
import pytest

from repro.attacks.detection import detect_bits
from repro.exceptions import ValidationError
from repro.traffic import (
    ExtractionRateMonitor,
    LegitTrafficGenerator,
    OnlineSuppressionDistinguisher,
    SuppressionEvasionGenerator,
    TriggerProbeGenerator,
    MixedStream,
    child_seed,
    replay,
)

ALPHA = 0.05
N_TRIALS = 200
TRIAL_QUERIES = 2048
BATCH = 512


@pytest.fixture(scope="module")
def deployment(wm_model, bc_data):
    """Compiled deployment + calibrated defenders (calibration reused
    across trials; ``reset`` forgets the stream, keeps calibration)."""
    X_train = bc_data[0]
    model = wm_model.ensemble
    model.compile()
    distinguisher = OnlineSuppressionDistinguisher.calibrate(
        model, X_train, alpha=ALPHA, min_queries=256
    )
    monitor = ExtractionRateMonitor.calibrate(
        model, X_train, alpha=ALPHA, min_queries=256
    )
    return model, X_train, distinguisher, monitor


def _run_trial(defender, model, stream, n_queries=TRIAL_QUERIES):
    defender.reset()
    for batch in stream.batches(n_queries, BATCH):
        y_pred = (
            batch.y_override
            if batch.y_override is not None and batch.override_mask.all()
            else model.predict_all(batch.X)
        )
        verdict = defender.observe(batch.X, y_pred)
        if verdict.fired:
            break
    return defender.verdict()


class TestFalseAlarmControl:
    @pytest.mark.parametrize("threshold", ["hoeffding", "clt"])
    def test_distinguisher_false_alarms_within_alpha(
        self, deployment, threshold
    ):
        model, X_train, _, _ = deployment
        defender = OnlineSuppressionDistinguisher.calibrate(
            model, X_train, alpha=ALPHA, min_queries=256, threshold=threshold
        )
        fired = sum(
            _run_trial(
                defender, model, LegitTrafficGenerator(X_train, seed=trial)
            ).fired
            for trial in range(N_TRIALS)
        )
        # alpha bounds the *per-trial* firing probability; allow two
        # binomial standard deviations of slack on the empirical rate.
        slack = 2.0 * np.sqrt(ALPHA * (1 - ALPHA) / N_TRIALS)
        assert fired / N_TRIALS <= ALPHA + slack

    def test_monitor_false_alarms_within_alpha(self, deployment):
        model, X_train, _, monitor = deployment
        fired = sum(
            _run_trial(
                monitor, model, LegitTrafficGenerator(X_train, seed=trial)
            ).fired
            for trial in range(N_TRIALS)
        )
        slack = 2.0 * np.sqrt(ALPHA * (1 - ALPHA) / N_TRIALS)
        assert fired / N_TRIALS <= ALPHA + slack


class TestPower:
    def test_distinguisher_fires_on_probe_traffic(self, deployment, wm_model):
        """A judge probing at rate 0.1 shifts the per-tree rates enough
        to fire within a small budget, across seeds."""
        model, X_train, distinguisher, _ = deployment
        for trial in range(20):
            root = np.random.SeedSequence(1000 + trial)
            stream = MixedStream(
                (
                    LegitTrafficGenerator(X_train, seed=child_seed(root, 0)),
                    TriggerProbeGenerator(
                        wm_model.trigger.X, seed=child_seed(root, 1)
                    ),
                ),
                (0.9, 0.1),
                seed=child_seed(root, 4),
            )
            verdict = _run_trial(distinguisher, model, stream, n_queries=8192)
            assert verdict.fired, f"trial {trial} never fired"
            assert verdict.fired_at <= 8192

    def test_distinguisher_fires_on_evasive_server(self, deployment, wm_model):
        model, X_train, distinguisher, _ = deployment
        for trial in range(20):
            stream = SuppressionEvasionGenerator(
                model,
                X_train,
                wm_model.trigger.X,
                seed=2000 + trial,
                probe_rate=0.1,
            )
            verdict = _run_trial(distinguisher, model, stream, n_queries=8192)
            assert verdict.fired, f"trial {trial} never fired"

    def test_monitor_fires_on_probe_traffic(self, deployment, wm_model):
        """Trigger probes sit in maximally-contested regions, shifting
        the disagreement-score mean the monitor watches."""
        model, X_train, _, monitor = deployment
        root = np.random.SeedSequence(3000)
        stream = MixedStream(
            (
                LegitTrafficGenerator(X_train, seed=child_seed(root, 0)),
                TriggerProbeGenerator(
                    wm_model.trigger.X, seed=child_seed(root, 1)
                ),
            ),
            (0.9, 0.1),
            seed=child_seed(root, 4),
        )
        assert _run_trial(monitor, model, stream, n_queries=8192).fired

    def test_verdict_latches(self, deployment, wm_model):
        model, X_train, distinguisher, _ = deployment
        distinguisher.reset()
        stream = SuppressionEvasionGenerator(
            model, X_train, wm_model.trigger.X, seed=5, probe_rate=0.2
        )
        fired_at = None
        for batch in stream.batches(8192, BATCH):
            verdict = distinguisher.observe(batch.X, batch.y_override)
            if verdict.fired and fired_at is None:
                fired_at = verdict.fired_at
        final = distinguisher.verdict()
        assert final.fired and final.fired_at == fired_at
        assert final.n_queries == 8192


class TestConstantMemory:
    def test_state_does_not_grow_with_stream(self, deployment):
        model, X_train, distinguisher, monitor = deployment
        stream = LegitTrafficGenerator(X_train, seed=77)
        for defender in (distinguisher, monitor):
            defender.reset()
        sizes, nbytes = [], []
        for batch in stream.batches(16 * BATCH, BATCH):
            y_pred = model.predict_all(batch.X)
            for defender in (distinguisher, monitor):
                defender.observe(batch.X, y_pred)
            sizes.append(
                (distinguisher.state_size(), monitor.state_size())
            )
            nbytes.append(
                sum(a.nbytes for a in distinguisher._state_arrays())
            )
        assert len(set(sizes)) == 1
        assert len(set(nbytes)) == 1
        # and the footprint is tiny: scalars plus two length-m vectors
        assert distinguisher.state_size() == 7 + 2 * model.n_trees_
        assert monitor.state_size() == 7


class TestStreamedDetectionResult:
    def test_detection_result_matches_detect_bits(self, deployment, wm_model):
        model, X_train, distinguisher, _ = deployment
        distinguisher.reset()
        stream = LegitTrafficGenerator(X_train, seed=11)
        for batch in stream.batches(2048, BATCH):
            distinguisher.observe(batch.X, model.predict_all(batch.X))
        for strategy in ("bands", "mean"):
            streamed = distinguisher.detection_result(
                wm_model.signature, strategy=strategy
            )
            direct = detect_bits(
                distinguisher.rates(), wm_model.signature, strategy
            )
            assert streamed.predicted == direct.predicted
            assert streamed.n_correct == direct.n_correct
            assert streamed.n_wrong == direct.n_wrong
            assert streamed.n_uncertain == direct.n_uncertain


class TestValidation:
    def test_bad_parameters(self, deployment):
        model, X_train, *_ = deployment
        with pytest.raises(ValidationError, match="alpha"):
            ExtractionRateMonitor(0.5, 0.1, alpha=1.5)
        with pytest.raises(ValidationError, match="min_queries"):
            ExtractionRateMonitor(0.5, 0.1, min_queries=0)
        with pytest.raises(ValidationError, match="baseline_var"):
            ExtractionRateMonitor(0.5, -1.0)
        with pytest.raises(ValidationError, match="threshold"):
            OnlineSuppressionDistinguisher(np.array([0.1]), threshold="bogus")
        with pytest.raises(ValidationError, match="non-empty"):
            OnlineSuppressionDistinguisher(np.zeros((2, 2)))

    def test_observe_shape_mismatches(self, deployment):
        model, X_train, distinguisher, _ = deployment
        distinguisher.reset()
        X = X_train[:4]
        with pytest.raises(ValidationError, match="2-D"):
            distinguisher.observe(X, np.ones(4))
        with pytest.raises(ValidationError, match="batch size"):
            distinguisher.observe(X, np.ones((model.n_trees_, 3)))
        with pytest.raises(ValidationError, match="trees"):
            distinguisher.observe(X, np.ones((model.n_trees_ + 1, 4)))
        with pytest.raises(ValidationError, match="no queries"):
            OnlineSuppressionDistinguisher(np.array([0.1])).rates()


class TestReplayHarness:
    def test_replay_reports_and_verdicts(self, deployment, wm_model):
        model, X_train, distinguisher, monitor = deployment
        distinguisher.reset()
        monitor.reset()
        stream = LegitTrafficGenerator(X_train, seed=21)
        report = replay(
            stream,
            model,
            (distinguisher, monitor),
            n_queries=1024,
            batch_size=256,
        )
        assert report.n_queries == 1024
        assert report.n_batches == 4
        assert report.source_counts == {"legit": 1024}
        assert report.n_trigger_queries == 0
        assert report.verdict("suppression-distinguisher").n_queries == 1024
        with pytest.raises(ValidationError, match="no defender"):
            report.verdict("nonexistent")

    def test_replay_serves_evasive_overrides(self, deployment, wm_model):
        """Under a full override the defender must see the *served*
        labels, not the honest model's."""
        model, X_train, distinguisher, _ = deployment
        distinguisher.reset()
        stream = SuppressionEvasionGenerator(
            model, X_train, wm_model.trigger.X, seed=31, probe_rate=0.3
        )
        report = replay(
            stream, model, (distinguisher,), n_queries=4096, batch_size=512
        )
        assert report.verdict("suppression-distinguisher").fired
