"""Shared fixtures.

Expensive artefacts (trained forests, watermarked models) are
session-scoped so the suite stays fast; tests must treat them as
read-only.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import random_signature, watermark
from repro.datasets import breast_cancer_like, ijcnn1_like, mnist26_like
from repro.ensemble import RandomForestClassifier
from repro.model_selection import train_test_split

BASE_PARAMS = {"max_depth": 8, "min_samples_leaf": 1}


@pytest.fixture(scope="session")
def bc_data():
    """Small breast-cancer stand-in split (deterministic)."""
    ds = breast_cancer_like(260, random_state=11)
    return train_test_split(ds.X, ds.y, test_size=0.3, random_state=12)


@pytest.fixture(scope="session")
def ij_data():
    """Small ijcnn1 stand-in split (imbalanced)."""
    ds = ijcnn1_like(500, random_state=13)
    return train_test_split(ds.X, ds.y, test_size=0.3, random_state=14)


@pytest.fixture(scope="session")
def mnist_data():
    """Tiny mnist26 stand-in split (high-dimensional)."""
    ds = mnist26_like(160, random_state=15)
    return train_test_split(ds.X, ds.y, test_size=0.3, random_state=16)


@pytest.fixture(scope="session")
def bc_forest(bc_data):
    """A standard (non-watermarked) forest on the bc split."""
    X_train, _X_test, y_train, _y_test = bc_data
    forest = RandomForestClassifier(
        n_estimators=9,
        max_depth=8,
        tree_feature_fraction=0.6,
        random_state=17,
    )
    return forest.fit(X_train, y_train)


@pytest.fixture(scope="session")
def wm_model(bc_data):
    """A watermarked model on the bc split (m=10, 50% ones)."""
    X_train, _X_test, y_train, _y_test = bc_data
    signature = random_signature(10, ones_fraction=0.5, random_state=18)
    return watermark(
        X_train,
        y_train,
        signature,
        trigger_size=6,
        base_params=BASE_PARAMS,
        tree_feature_fraction=0.6,
        escalation_factor=2.0,
        random_state=19,
    )


@pytest.fixture()
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)
