"""Shared fixtures.

Expensive artefacts (trained forests, watermarked models, forged
trigger sets, solver problems) are session-scoped so the suite stays
fast; tests must treat them as read-only.  That contract is *enforced*:
the fitted-model fixtures register a serialised snapshot with
``fixture_guard``, and the guard re-serialises them at session teardown
— any test that mutated a shared model fails the whole session loudly.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.attacks import forge_trigger_set
from repro.core import random_signature, watermark
from repro.datasets import breast_cancer_like, ijcnn1_like, mnist26_like
from repro.ensemble import RandomForestClassifier
from repro.model_selection import train_test_split
from repro.persistence import forest_to_dict
from repro.solver import PatternProblem, required_labels

BASE_PARAMS = {"max_depth": 8, "min_samples_leaf": 1}


@pytest.fixture(scope="session")
def bc_data():
    """Small breast-cancer stand-in split (deterministic)."""
    ds = breast_cancer_like(260, random_state=11)
    return train_test_split(ds.X, ds.y, test_size=0.3, random_state=12)


@pytest.fixture(scope="session")
def ij_data():
    """Small ijcnn1 stand-in split (imbalanced)."""
    ds = ijcnn1_like(500, random_state=13)
    return train_test_split(ds.X, ds.y, test_size=0.3, random_state=14)


@pytest.fixture(scope="session")
def mnist_data():
    """Tiny mnist26 stand-in split (high-dimensional)."""
    ds = mnist26_like(160, random_state=15)
    return train_test_split(ds.X, ds.y, test_size=0.3, random_state=16)


# -- fixture-immutability guard -----------------------------------------


def _forest_state(forest: RandomForestClassifier) -> str:
    """Canonical serialised state of a fitted forest (no compiled cache)."""
    return json.dumps(forest_to_dict(forest), sort_keys=True)


@pytest.fixture(scope="session")
def fixture_guard():
    """Registry asserting shared fixtures come out as they went in.

    Fixtures call ``register(name, obj, snapshot_fn)`` right after
    building their artefact.  Because this fixture is a dependency of
    theirs it tears down *after* them — at session end — and re-runs
    every snapshot function, failing if any test mutated a shared
    model in place.
    """
    registry: list[tuple] = []  # (name, baseline, snapshot_fn, obj)

    def register(name, obj, snapshot_fn):
        registry.append((name, snapshot_fn(obj), snapshot_fn, obj))

    yield register

    mutated = [
        name
        for name, baseline, snapshot_fn, obj in registry
        if snapshot_fn(obj) != baseline
    ]
    assert not mutated, (
        f"session-scoped fixtures mutated by the test run: {mutated} — "
        "tests must treat shared models as read-only (clone via "
        "with_roots or refit instead)"
    )


@pytest.fixture(scope="session")
def bc_forest(bc_data, fixture_guard):
    """A standard (non-watermarked) forest on the bc split."""
    X_train, _X_test, y_train, _y_test = bc_data
    forest = RandomForestClassifier(
        n_estimators=9,
        max_depth=8,
        tree_feature_fraction=0.6,
        random_state=17,
    )
    forest.fit(X_train, y_train)
    fixture_guard("bc_forest", forest, _forest_state)
    return forest


@pytest.fixture(scope="session")
def wm_model(bc_data, fixture_guard):
    """A watermarked model on the bc split (m=10, 50% ones)."""
    X_train, _X_test, y_train, _y_test = bc_data
    signature = random_signature(10, ones_fraction=0.5, random_state=18)
    model = watermark(
        X_train,
        y_train,
        signature,
        trigger_size=6,
        base_params=BASE_PARAMS,
        tree_feature_fraction=0.6,
        escalation_factor=2.0,
        random_state=19,
    )

    def state(m):
        return json.dumps(
            {
                "ensemble": forest_to_dict(m.ensemble),
                "signature": list(m.signature),
                "trigger_X": m.trigger.X.tolist(),
                "trigger_y": m.trigger.y.tolist(),
            },
            sort_keys=True,
        )

    fixture_guard("wm_model", model, state)
    return model


# -- shared solver / attack artefacts ------------------------------------


@pytest.fixture(scope="session")
def forge_problem(bc_forest):
    """A ready-made pattern problem over ``bc_forest`` (read-only).

    Solver test modules share this instead of re-deriving the same
    problem per test; it carries no ball constraint so individual tests
    can clone-and-restrict via ``dataclasses.replace``.
    """
    signature = random_signature(bc_forest.n_trees_, random_state=0)
    return PatternProblem(
        roots=bc_forest.roots(),
        required=required_labels(signature, +1),
        n_features=bc_forest.n_features_in_,
    )


@pytest.fixture(scope="session")
def forged_result(wm_model, bc_data):
    """One completed forgery run against ``wm_model`` (read-only).

    A generous ε so the run actually forges instances; attack tests
    assert properties of this single shared result instead of each
    re-running the solver sweep.
    """
    _, X_test, _, y_test = bc_data
    fake = random_signature(len(wm_model.signature), random_state=50)
    result = forge_trigger_set(
        wm_model.ensemble,
        fake,
        X_test,
        y_test,
        epsilon=0.8,
        max_instances=15,
        random_state=51,
    )
    return fake, result


@pytest.fixture()
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)
