"""FaultPlan / FaultInjector determinism and validation battery.

The fault harness is only useful if a chaos run is replayable from
``(plan parameters, seed)`` alone — these tests pin that contract the
same way ``tests/traffic`` pins it for the query generators.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.faults import (
    SITES,
    FaultDecision,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    corrupted_copy,
)


def chaos_plan(seed=123, rate=0.3, **kwargs):
    return FaultPlan.chaos(seed, rate=rate, **kwargs)


class TestSpecValidation:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValidationError, match="unknown fault site"):
            FaultSpec(site="engine.warp", rate=0.1)

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(ValidationError, match="rate"):
            FaultSpec(site="engine.call", rate=1.5)
        with pytest.raises(ValidationError, match="rate"):
            FaultSpec(site="engine.call", rate=-0.1)

    def test_kind_must_match_site(self):
        with pytest.raises(ValidationError, match="not valid at site"):
            FaultSpec(site="conn.reset", rate=0.1, kinds=("latency",))

    def test_kinds_default_to_site_alphabet(self):
        spec = FaultSpec(site="engine.call", rate=0.1)
        assert spec.kinds == SITES["engine.call"]

    def test_nonpositive_delay_rejected(self):
        with pytest.raises(ValidationError, match="max_delay"):
            FaultSpec(site="engine.call", rate=0.1, max_delay=0.0)

    def test_duplicate_sites_rejected(self):
        specs = [
            FaultSpec(site="engine.call", rate=0.1),
            FaultSpec(site="engine.call", rate=0.2),
        ]
        with pytest.raises(ValidationError, match="duplicate"):
            FaultPlan(specs, seed=1)

    def test_bad_block_size_rejected(self):
        with pytest.raises(ValidationError, match="block_size"):
            FaultPlan([], seed=1, block_size=0)


class TestDeterminism:
    def test_same_seed_same_decisions(self):
        a = chaos_plan(seed=42)
        b = chaos_plan(seed=42)
        for site in a.specs:
            assert a.preview(site, 500) == b.preview(site, 500)

    def test_different_seeds_differ(self):
        a, b = chaos_plan(seed=1), chaos_plan(seed=2)
        assert any(
            a.preview(site, 200) != b.preview(site, 200) for site in a.specs
        )

    def test_sites_are_independent_streams(self):
        """Dropping a site leaves every other site's stream untouched."""
        full = chaos_plan(seed=7)
        partial = FaultPlan(
            [FaultSpec(site="conn.reset", rate=0.3)], seed=7
        )
        assert full.preview("conn.reset", 300) == partial.preview(
            "conn.reset", 300
        )

    def test_decision_is_pure_and_order_free(self):
        plan = chaos_plan(seed=11)
        forward = [plan.decision("engine.call", i) for i in range(200)]
        backward = [
            plan.decision("engine.call", i) for i in reversed(range(200))
        ]
        assert forward == list(reversed(backward))

    def test_block_size_is_part_of_identity(self):
        a = chaos_plan(seed=3, block_size=64)
        b = chaos_plan(seed=3, block_size=1024)
        assert a.preview("engine.call", 300) != b.preview("engine.call", 300)

    def test_decisions_cross_block_boundaries(self):
        plan = chaos_plan(seed=5, block_size=16)
        events = plan.preview("engine.call", 100)
        fired = [d for d in events if d is not None]
        assert fired, "rate 0.3 over 100 events must fire at least once"
        assert any(d.index >= 16 for d in fired)

    def test_rate_extremes(self):
        never = FaultPlan(
            [FaultSpec(site="engine.call", rate=0.0)], seed=1
        )
        always = FaultPlan(
            [FaultSpec(site="engine.call", rate=1.0)], seed=1
        )
        assert all(d is None for d in never.preview("engine.call", 100))
        assert all(d is not None for d in always.preview("engine.call", 100))

    def test_uncovered_site_never_fires(self):
        plan = FaultPlan([FaultSpec(site="conn.slow", rate=1.0)], seed=1)
        assert plan.decision("engine.call", 0) is None

    def test_observed_rate_tracks_spec(self):
        plan = FaultPlan([FaultSpec(site="engine.call", rate=0.25)], seed=9)
        fired = sum(
            d is not None for d in plan.preview("engine.call", 4000)
        )
        assert 0.2 < fired / 4000 < 0.3

    def test_delays_bounded_and_positive(self):
        plan = FaultPlan(
            [
                FaultSpec(
                    site="conn.slow", rate=1.0, max_delay=0.01
                )
            ],
            seed=2,
        )
        for decision in plan.preview("conn.slow", 200):
            assert 0.0 < decision.delay <= 0.01

    def test_describe_is_json_safe(self):
        import json

        plan = chaos_plan(seed=1)
        round_tripped = json.loads(json.dumps(plan.describe()))
        assert round_tripped["block_size"] == plan.block_size
        assert set(round_tripped["sites"]) == set(plan.specs)


class TestInjector:
    def test_counters_advance_and_reset_replays(self):
        injector = chaos_plan(seed=21).compile()
        first = [injector.decide("engine.call") for _ in range(50)]
        counts = injector.counts()
        assert counts["engine.call"]["events"] == 50
        assert counts["engine.call"]["fired"] == sum(
            d is not None for d in first
        )
        injector.reset()
        second = [injector.decide("engine.call") for _ in range(50)]
        assert first == second

    def test_fire_raises_typed_error(self):
        plan = FaultPlan(
            [FaultSpec(site="engine.call", rate=1.0, kinds=("error",))],
            seed=4,
        )
        injector = plan.compile()
        with pytest.raises(InjectedFault) as excinfo:
            injector.fire("engine.call")
        assert excinfo.value.decision.site == "engine.call"
        assert excinfo.value.decision.kind == "error"

    def test_fire_on_uncovered_site_is_noop(self):
        injector = FaultPlan([], seed=1).compile()
        injector.fire("engine.call")  # must not raise
        assert injector.counts() == {}

    def test_injector_matches_plan_preview(self):
        plan = chaos_plan(seed=33)
        injector = plan.compile()
        consumed = [injector.decide("conn.reset") for _ in range(100)]
        assert consumed == plan.preview("conn.reset", 100)

    def test_thread_safety_counts_every_event(self):
        import threading

        injector = chaos_plan(seed=8).compile()

        def spin():
            for _ in range(500):
                injector.decide("engine.call")

        threads = [threading.Thread(target=spin) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert injector.counts()["engine.call"]["events"] == 2000


class TestCorruptedCopy:
    def decision(self, salt=12345):
        return FaultDecision(
            site="artefact.corrupt", index=0, kind="corrupt", salt=salt
        )

    def test_flips_exactly_one_bit_after_magic(self, tmp_path):
        path = tmp_path / "artefact.bin"
        original = bytes(range(256)) * 4
        path.write_bytes(original)
        target = corrupted_copy(path, self.decision())
        corrupted = target.read_bytes()
        assert len(corrupted) == len(original)
        assert corrupted[:16] == original[:16]
        diff = [
            i for i, (a, b) in enumerate(zip(original, corrupted)) if a != b
        ]
        assert len(diff) == 1
        assert bin(original[diff[0]] ^ corrupted[diff[0]]).count("1") == 1

    def test_deterministic_per_salt(self, tmp_path):
        path = tmp_path / "artefact.bin"
        path.write_bytes(np.arange(512, dtype=np.uint8).tobytes())
        (tmp_path / "a").mkdir()
        (tmp_path / "b").mkdir()
        a = corrupted_copy(path, self.decision(), target_dir=tmp_path / "a")
        b = corrupted_copy(path, self.decision(), target_dir=tmp_path / "b")
        assert a.read_bytes() == b.read_bytes()

    def test_tiny_artefact_refused(self, tmp_path):
        from repro.exceptions import ReproError

        path = tmp_path / "tiny.bin"
        path.write_bytes(b"0123456789")
        with pytest.raises(ReproError, match="too small"):
            corrupted_copy(path, self.decision())
