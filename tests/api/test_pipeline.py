"""Tests for the composable pipeline layer (`repro.api.pipeline`).

The load-bearing contract: the legacy ``watermark(...)`` shim and a
directly-constructed :class:`Watermarker` produce **bitwise-identical**
models — serialised trees, trigger sets and per-tree predictions.
"""

import json

import numpy as np
import pytest

from repro.api import EmbeddingSchedule, TrainerConfig, TriggerPolicy, Watermarker
from repro.core import random_signature, watermark
from repro.exceptions import ValidationError
from repro.persistence import forest_to_dict

BASE_PARAMS = {"max_depth": 8, "min_samples_leaf": 1}


def _model_state(model) -> str:
    """Canonical serialised state: forest + signature + trigger set."""
    return json.dumps(
        {
            "forest": forest_to_dict(model.ensemble),
            "signature": model.signature.to_string(),
            "trigger_X": model.trigger.X.tolist(),
            "trigger_y": model.trigger.y.tolist(),
            "trigger_indices": model.trigger.indices.tolist(),
        },
        sort_keys=True,
    )


class TestLegacyShimEquivalence:
    @pytest.fixture(scope="class")
    def paths(self, bc_data):
        X_train, X_test, y_train, _y_test = bc_data
        signature = random_signature(8, ones_fraction=0.5, random_state=41)
        legacy = watermark(
            X_train,
            y_train,
            signature,
            trigger_size=5,
            base_params=BASE_PARAMS,
            tree_feature_fraction=0.6,
            escalation_factor=2.0,
            random_state=42,
        )
        pipeline = Watermarker(
            signature=signature,
            trigger=TriggerPolicy(size=5),
            schedule=EmbeddingSchedule(escalation_factor=2.0),
            trainer=TrainerConfig(
                base_params=BASE_PARAMS, tree_feature_fraction=0.6
            ),
            random_state=42,
        ).fit(X_train, y_train)
        return legacy, pipeline, X_test

    def test_serialized_forests_identical(self, paths):
        legacy, pipeline, _X_test = paths
        assert _model_state(legacy) == _model_state(pipeline)

    def test_predict_all_identical(self, paths):
        legacy, pipeline, X_test = paths
        assert np.array_equal(
            legacy.ensemble.predict_all(X_test),
            pipeline.ensemble.predict_all(X_test),
        )

    def test_reports_identical(self, paths):
        legacy, pipeline, _X_test = paths
        assert legacy.report == pipeline.report

    def test_refit_is_deterministic(self, paths, bc_data):
        _legacy, pipeline, _X_test = paths
        X_train, _X_test, y_train, _y_test = bc_data
        signature = random_signature(8, ones_fraction=0.5, random_state=41)
        again = Watermarker(
            signature=signature,
            trigger=TriggerPolicy(size=5),
            schedule=EmbeddingSchedule(escalation_factor=2.0),
            trainer=TrainerConfig(
                base_params=BASE_PARAMS, tree_feature_fraction=0.6
            ),
            random_state=42,
        ).fit(X_train, y_train)
        assert _model_state(again) == _model_state(pipeline)


class TestTriggerPolicy:
    def test_requires_exactly_one_of_size_and_fraction(self):
        with pytest.raises(ValidationError, match="exactly one"):
            TriggerPolicy()
        with pytest.raises(ValidationError, match="exactly one"):
            TriggerPolicy(size=4, fraction=0.02)

    def test_rejects_bad_values(self):
        with pytest.raises(ValidationError):
            TriggerPolicy(size=0)
        with pytest.raises(ValidationError):
            TriggerPolicy(fraction=0.0)
        with pytest.raises(ValidationError):
            TriggerPolicy(fraction=0.7)

    def test_resolve_fraction(self):
        assert TriggerPolicy(fraction=0.02).resolve(500) == 10
        assert TriggerPolicy(fraction=0.001).resolve(100) == 1  # floor of 1

    def test_resolve_enforces_small_k(self):
        with pytest.raises(ValidationError, match="small"):
            TriggerPolicy(size=80).resolve(100)

    def test_fraction_fit_matches_equivalent_size(self, bc_data):
        X_train, _X_test, y_train, _y_test = bc_data
        signature = random_signature(6, ones_fraction=0.5, random_state=51)
        k = TriggerPolicy(fraction=0.03).resolve(X_train.shape[0])
        by_fraction = Watermarker(
            signature=signature,
            trigger=TriggerPolicy(fraction=0.03),
            trainer=TrainerConfig(base_params=BASE_PARAMS),
            schedule=EmbeddingSchedule(escalation_factor=2.0),
            random_state=52,
        ).fit(X_train, y_train)
        by_size = Watermarker(
            signature=signature,
            trigger=TriggerPolicy(size=k),
            trainer=TrainerConfig(base_params=BASE_PARAMS),
            schedule=EmbeddingSchedule(escalation_factor=2.0),
            random_state=52,
        ).fit(X_train, y_train)
        assert by_fraction.trigger.size == k
        assert _model_state(by_fraction) == _model_state(by_size)


class TestConfigValidation:
    def test_embedding_schedule_rejects_bad_values(self):
        with pytest.raises(ValidationError):
            EmbeddingSchedule(weight_increment=0.0)
        with pytest.raises(ValidationError):
            EmbeddingSchedule(escalation_factor=0.5)
        with pytest.raises(ValidationError):
            EmbeddingSchedule(max_rounds=0)

    def test_trainer_config_rejects_bad_fraction(self):
        with pytest.raises(ValidationError):
            TrainerConfig(tree_feature_fraction=0.0)

    def test_configs_are_frozen(self):
        policy = TriggerPolicy(size=4)
        with pytest.raises(AttributeError):
            policy.size = 8
