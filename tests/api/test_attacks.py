"""Tests for the uniform Attack protocol, registry and reports."""

import json

import numpy as np
import pytest

from repro.api import (
    Attack,
    AttackReport,
    AttackTarget,
    ChainedAttack,
    LeafFlipAttack,
    PruneAttack,
    TruncateAttack,
    available_attacks,
    make_attack,
)
from repro.exceptions import ValidationError

ALL_ATTACKS = (
    "chain",
    "detection",
    "extract",
    "flip",
    "forgery",
    "prune",
    "suppression",
    "truncate",
)

#: Cheap, test-sized parameters per registry attack.
FAST_PARAMS = {
    "extract": {"query_budget": 60},
    "forgery": {"epsilon": 0.5, "max_instances": 2, "solver_budget": 5_000},
}


@pytest.fixture(scope="module")
def target(wm_model, bc_data):
    return AttackTarget.from_split(wm_model, bc_data)


class TestRegistry:
    def test_all_five_modules_plus_composite_registered(self):
        assert available_attacks() == ALL_ATTACKS

    def test_unknown_name_rejected_with_listing(self):
        with pytest.raises(ValidationError, match="truncate"):
            make_attack("nope")

    def test_bad_params_rejected(self):
        with pytest.raises(ValidationError, match="flip"):
            make_attack("flip", probabiliy=0.1)  # typo'd kwarg

    def test_instances_satisfy_protocol(self):
        for name in available_attacks():
            assert isinstance(make_attack(name), Attack)


class TestUniformReports:
    @pytest.mark.parametrize("name", ALL_ATTACKS)
    def test_every_attack_reports_uniformly(self, name, target):
        attack = make_attack(name, **FAST_PARAMS.get(name, {}))
        report = attack.run(target, np.random.default_rng(7))
        assert isinstance(report, AttackReport)
        assert report.attack == name
        assert 0.0 <= report.baseline_accuracy <= 1.0
        assert 0.0 <= report.attacked_accuracy <= 1.0
        assert 0.0 <= report.watermark_match_rate <= 1.0
        assert isinstance(report.succeeded, bool)
        assert report.cost["elapsed_seconds"] >= 0.0
        assert report.accuracy_delta == pytest.approx(
            report.attacked_accuracy - report.baseline_accuracy
        )
        assert report.attack in report.summary()

    @pytest.mark.parametrize("name", ALL_ATTACKS)
    def test_to_dict_is_json_serialisable(self, name, target):
        attack = make_attack(name, **FAST_PARAMS.get(name, {}))
        report = attack.run(target, np.random.default_rng(7))
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["attack"] == name
        assert set(payload) == {
            "attack", "params", "baseline_accuracy", "attacked_accuracy",
            "accuracy_delta", "watermark_accepted", "watermark_match_rate",
            "succeeded", "cost", "details",
        }

    def test_identity_edit_keeps_watermark(self, target):
        report = LeafFlipAttack(probability=0.0).run(
            target, np.random.default_rng(3)
        )
        assert report.watermark_accepted
        assert report.watermark_match_rate == 1.0
        assert not report.succeeded
        assert report.attacked_accuracy == pytest.approx(
            report.baseline_accuracy
        )

    def test_deterministic_given_rng_seed(self, target):
        first = LeafFlipAttack(probability=0.3).run(
            target, np.random.default_rng(11)
        )
        second = LeafFlipAttack(probability=0.3).run(
            target, np.random.default_rng(11)
        )
        assert first.to_dict()["details"] == second.to_dict()["details"]
        assert first.attacked_accuracy == second.attacked_accuracy
        assert first.watermark_match_rate == second.watermark_match_rate


class TestChainedAttack:
    def test_chain_equals_sequential_edits(self, target):
        rng = np.random.default_rng(5)
        chain = ChainedAttack(
            stages=(TruncateAttack(depth=5), LeafFlipAttack(probability=0.2),
                    PruneAttack(alpha=0.5))
        )
        chained = chain.edit(target.model.ensemble, np.random.default_rng(5))
        manual = target.model.ensemble
        for stage in chain.stages:
            manual = stage.edit(manual, rng)
        assert np.array_equal(
            chained.predict_all(target.X_test), manual.predict_all(target.X_test)
        )

    def test_chain_report_names_stages(self, target):
        report = make_attack("chain").run(target, np.random.default_rng(9))
        assert [s["name"] for s in report.params["stages"]] == [
            "truncate", "flip", "prune",
        ]

    def test_chain_damages_at_least_as_much_as_first_stage(self, target):
        rng_a = np.random.default_rng(13)
        rng_b = np.random.default_rng(13)
        truncate_only = TruncateAttack(depth=4).run(target, rng_a)
        chained = ChainedAttack(
            stages=(TruncateAttack(depth=4), PruneAttack(alpha=2.0))
        ).run(target, rng_b)
        assert (
            chained.watermark_match_rate
            <= truncate_only.watermark_match_rate + 1e-9
        )

    def test_rejects_empty_and_non_edit_stages(self):
        with pytest.raises(ValidationError, match="at least one"):
            ChainedAttack(stages=())
        with pytest.raises(ValidationError, match="compose"):
            ChainedAttack(stages=(make_attack("extract"),))


class TestAttackValidation:
    def test_strength_bounds_enforced(self):
        with pytest.raises(ValidationError):
            TruncateAttack(depth=-1)
        with pytest.raises(ValidationError):
            LeafFlipAttack(probability=1.5)
        with pytest.raises(ValidationError):
            PruneAttack(alpha=-0.1)
        with pytest.raises(ValidationError):
            make_attack("extract", query_budget=0)

    def test_extraction_budget_bounded_by_pool(self, target):
        attack = make_attack("extract", query_budget=10**6)
        with pytest.raises(ValidationError, match="pool"):
            attack.run(target, np.random.default_rng(1))
