"""Public-API surface snapshot.

Pins ``repro.__all__`` and the ``repro.api`` exports so accidental
breaks of the public surface (a removed re-export, a renamed class, a
new symbol nobody reviewed) fail tier-1 instead of shipping silently.
When a change here is *intentional*, update the snapshot in the same
commit that changes the surface.
"""

import repro
import repro.api

REPRO_ALL = [
    "Attack",
    "AttackReport",
    "AttackTarget",
    "ConvergenceError",
    "DecisionTreeClassifier",
    "EmbeddingSchedule",
    "GradientBoostingClassifier",
    "Judge",
    "NotFittedError",
    "OwnershipClaim",
    "RandomForestClassifier",
    "ReproError",
    "ResourceLimitError",
    "SerializationError",
    "Signature",
    "SolverError",
    "TrainerConfig",
    "TriggerPolicy",
    "ValidationError",
    "VerificationError",
    "WatermarkSecret",
    "WatermarkedModel",
    "Watermarker",
    "api",
    "attacks",
    "available_attacks",
    "core",
    "datasets",
    "ensemble",
    "experiments",
    "hardness",
    "make_attack",
    "model_selection",
    "persistence",
    "random_signature",
    "run_scenario_matrix",
    "signature_from_identity",
    "solver",
    "traffic",
    "trees",
    "verify_ownership",
    "watermark",
]

API_ALL = [
    "Attack",
    "AttackReport",
    "AttackTarget",
    "ChainedAttack",
    "DetectionAttack",
    "EmbeddingSchedule",
    "ExtractionAttack",
    "ForgeryAttack",
    "LeafFlipAttack",
    "ModelEditAttack",
    "PruneAttack",
    "ScenarioCell",
    "SuppressionAttack",
    "TrainerConfig",
    "TriggerPolicy",
    "TruncateAttack",
    "Watermarker",
    "attack_params",
    "available_attacks",
    "build_attack_target",
    "make_attack",
    "register_attack",
    "run_scenario_matrix",
]

REGISTERED_ATTACKS = (
    "chain",
    "detection",
    "extract",
    "flip",
    "forgery",
    "prune",
    "suppression",
    "truncate",
)


class TestTopLevelSurface:
    def test_all_is_pinned(self):
        assert sorted(repro.__all__) == repro.__all__  # kept sorted
        assert repro.__all__ == REPRO_ALL

    def test_every_export_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None


class TestApiSurface:
    def test_all_is_pinned(self):
        assert sorted(repro.api.__all__) == repro.api.__all__
        assert repro.api.__all__ == API_ALL

    def test_every_export_resolves(self):
        # Includes the lazily-bound scenario-layer names (PEP 562).
        for name in repro.api.__all__:
            assert getattr(repro.api, name) is not None

    def test_dir_covers_all(self):
        assert set(repro.api.__all__) <= set(dir(repro.api))

    def test_attack_registry_is_pinned(self):
        assert repro.api.available_attacks() == REGISTERED_ATTACKS
