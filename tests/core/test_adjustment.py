"""Tests for the Adjust anti-detection heuristic."""

import pytest

from repro.core import adjust_hyperparameters
from repro.ensemble import RandomForestClassifier


class TestAdjust:
    def test_caps_below_probe_mean(self, bc_data):
        X_train, _, y_train, _ = bc_data
        adjusted = adjust_hyperparameters(
            X_train,
            y_train,
            n_estimators=6,
            base_params={"max_depth": 12},
            random_state=0,
        )
        assert adjusted.max_depth <= adjusted.probe_depth_mean
        assert adjusted.max_leaf_nodes <= adjusted.probe_leaves_mean
        # mean - std, floored (subject to structural minimums).
        assert adjusted.max_depth >= 2
        assert adjusted.max_leaf_nodes >= 4

    def test_exact_formula_when_above_minimums(self, bc_data):
        import numpy as np

        X_train, _, y_train, _ = bc_data
        adjusted = adjust_hyperparameters(
            X_train,
            y_train,
            n_estimators=6,
            base_params={"max_depth": 12},
            random_state=0,
        )
        expected_depth = max(2, int(np.floor(adjusted.probe_depth_mean - adjusted.probe_depth_std)))
        expected_leaves = max(4, int(np.floor(adjusted.probe_leaves_mean - adjusted.probe_leaves_std)))
        assert adjusted.max_depth == expected_depth
        assert adjusted.max_leaf_nodes == expected_leaves

    def test_adjusted_forest_matches_caps(self, bc_data):
        X_train, _, y_train, _ = bc_data
        adjusted = adjust_hyperparameters(
            X_train, y_train, n_estimators=5, base_params={"max_depth": 10}, random_state=1
        )
        forest = RandomForestClassifier(
            n_estimators=5,
            max_depth=adjusted.max_depth,
            max_leaf_nodes=adjusted.max_leaf_nodes,
            random_state=2,
        ).fit(X_train, y_train)
        structure = forest.structure()
        assert (structure["depth"] <= adjusted.max_depth).all()
        assert (structure["n_leaves"] <= adjusted.max_leaf_nodes).all()

    def test_determinism(self, bc_data):
        X_train, _, y_train, _ = bc_data
        kwargs = dict(n_estimators=4, base_params={"max_depth": 8}, random_state=7)
        a = adjust_hyperparameters(X_train, y_train, **kwargs)
        b = adjust_hyperparameters(X_train, y_train, **kwargs)
        assert a == b
