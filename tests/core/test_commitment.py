"""Tests for watermark-secret commitments."""

import numpy as np
import pytest

from repro.core import (
    Signature,
    WatermarkSecret,
    commit_secret,
    verify_commitment,
)
from repro.exceptions import ValidationError, VerificationError


@pytest.fixture()
def secret():
    return WatermarkSecret(
        signature=Signature.from_string("0110"),
        trigger_X=np.array([[0.1, 0.9], [0.4, 0.2]]),
        trigger_y=np.array([1, -1]),
    )


class TestCommitment:
    def test_commit_and_verify(self, secret):
        commitment = commit_secret(secret)
        assert verify_commitment(commitment.digest, secret, commitment.salt)

    def test_fixed_salt_reproducible(self, secret):
        salt = bytes(range(32))
        a = commit_secret(secret, salt=salt)
        b = commit_secret(secret, salt=salt)
        assert a.digest == b.digest

    def test_random_salts_hide(self, secret):
        a = commit_secret(secret)
        b = commit_secret(secret)
        assert a.digest != b.digest  # hiding: same secret, fresh salt

    def test_binding_to_signature(self, secret):
        commitment = commit_secret(secret)
        tampered = WatermarkSecret(
            signature=Signature.from_string("1001"),
            trigger_X=secret.trigger_X,
            trigger_y=secret.trigger_y,
        )
        assert not verify_commitment(commitment.digest, tampered, commitment.salt)

    def test_binding_to_trigger_data(self, secret):
        commitment = commit_secret(secret)
        tampered = WatermarkSecret(
            signature=secret.signature,
            trigger_X=secret.trigger_X + 1e-12,  # even tiny float edits break it
            trigger_y=secret.trigger_y,
        )
        assert not verify_commitment(commitment.digest, tampered, commitment.salt)

    def test_wrong_salt_fails(self, secret):
        commitment = commit_secret(secret)
        other_salt = bytes(32).hex()
        assert not verify_commitment(commitment.digest, secret, other_salt)

    def test_bad_salt_length_rejected(self, secret):
        with pytest.raises(ValidationError):
            commit_secret(secret, salt=b"short")
        commitment = commit_secret(secret)
        with pytest.raises(VerificationError, match="32 bytes"):
            verify_commitment(commitment.digest, secret, "ab" * 3)

    def test_non_hex_salt_rejected(self, secret):
        commitment = commit_secret(secret)
        with pytest.raises(VerificationError, match="hex"):
            verify_commitment(commitment.digest, secret, "zz" * 32)

    def test_public_part_is_digest_only(self, secret):
        commitment = commit_secret(secret)
        assert commitment.public_part() == commitment.digest
