"""Tests for trigger-set sampling."""

import numpy as np
import pytest

from repro.core import sample_trigger_set
from repro.core.trigger import TriggerSet
from repro.exceptions import ValidationError


class TestSampleTriggerSet:
    def test_size_and_provenance(self, bc_data):
        X_train, _, y_train, _ = bc_data
        trigger = sample_trigger_set(X_train, y_train, 8, random_state=0)
        assert trigger.size == 8
        assert np.array_equal(trigger.X, X_train[trigger.indices])
        assert np.array_equal(trigger.y, y_train[trigger.indices])

    def test_no_duplicates(self, bc_data):
        X_train, _, y_train, _ = bc_data
        trigger = sample_trigger_set(X_train, y_train, 20, random_state=1)
        assert len(set(trigger.indices.tolist())) == 20

    def test_flipped_labels(self, bc_data):
        X_train, _, y_train, _ = bc_data
        trigger = sample_trigger_set(X_train, y_train, 5, random_state=2)
        assert np.array_equal(trigger.flipped_y, -trigger.y)
        assert set(np.unique(trigger.flipped_y)) <= {-1, 1}

    def test_membership_mask(self, bc_data):
        X_train, _, y_train, _ = bc_data
        trigger = sample_trigger_set(X_train, y_train, 5, random_state=3)
        mask = trigger.membership_mask(X_train.shape[0])
        assert mask.sum() == 5
        assert mask[trigger.indices].all()

    def test_determinism(self, bc_data):
        X_train, _, y_train, _ = bc_data
        a = sample_trigger_set(X_train, y_train, 6, random_state=4)
        b = sample_trigger_set(X_train, y_train, 6, random_state=4)
        assert np.array_equal(a.indices, b.indices)

    def test_invalid_k(self, bc_data):
        X_train, _, y_train, _ = bc_data
        with pytest.raises(ValidationError):
            sample_trigger_set(X_train, y_train, 0)
        with pytest.raises(ValidationError):
            sample_trigger_set(X_train, y_train, X_train.shape[0] + 1)

    def test_non_binary_labels_rejected(self, rng):
        X = rng.uniform(size=(10, 2))
        with pytest.raises(ValidationError):
            sample_trigger_set(X, np.arange(10), 2)

    def test_copy_isolated_from_training_data(self, bc_data):
        X_train, _, y_train, _ = bc_data
        trigger = sample_trigger_set(X_train, y_train, 3, random_state=5)
        original = trigger.X.copy()
        X_train_view = X_train.copy()  # do not mutate the session fixture
        trigger.X[0, 0] = 123.0
        assert X_train_view[trigger.indices[0], 0] != 123.0 or original[0, 0] != 123.0
        trigger.X[0, 0] = original[0, 0]


class TestTriggerSetValidation:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            TriggerSet(
                indices=np.array([0]),
                X=np.zeros((2, 2)),
                y=np.array([1, -1]),
            )

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            TriggerSet(
                indices=np.array([], dtype=np.int64),
                X=np.zeros((0, 2)),
                y=np.array([], dtype=np.int64),
            )
