"""Tests for the Alice/Bob/Charlie dispute protocol."""

import numpy as np
import pytest

from repro.core import Judge, OwnershipClaim, WatermarkSecret, random_signature
from repro.exceptions import ValidationError, VerificationError


@pytest.fixture()
def claim(wm_model, bc_data):
    _, X_test, _, y_test = bc_data
    # The disclosed test set must contain the trigger rows.
    X_disclosed = np.vstack([X_test, wm_model.trigger.X])
    y_disclosed = np.concatenate([y_test, wm_model.trigger.y])
    secret = WatermarkSecret(
        signature=wm_model.signature,
        trigger_X=wm_model.trigger.X,
        trigger_y=wm_model.trigger.y,
    )
    return OwnershipClaim("alice", secret, X_disclosed, y_disclosed)


class TestJudge:
    def test_legitimate_claim_accepted(self, wm_model, claim):
        report = Judge().verify_claim(wm_model.ensemble, claim)
        assert report.accepted

    def test_trigger_rows_shuffled_into_test_set(self, wm_model, claim, rng):
        # Order of the disclosed test set must not matter.
        order = rng.permutation(claim.X_test.shape[0])
        shuffled = OwnershipClaim(
            "alice",
            claim.secret,
            claim.X_test[order],
            claim.y_test[order],
        )
        report = Judge().verify_claim(wm_model.ensemble, shuffled)
        assert report.accepted

    def test_missing_trigger_rows_raise(self, wm_model, bc_data):
        _, X_test, _, y_test = bc_data
        secret = WatermarkSecret(
            signature=wm_model.signature,
            trigger_X=wm_model.trigger.X + 10.0,  # not present in X_test
            trigger_y=wm_model.trigger.y,
        )
        bad_claim = OwnershipClaim("mallory", secret, X_test, y_test)
        with pytest.raises(VerificationError, match="does not appear"):
            Judge().verify_claim(wm_model.ensemble, bad_claim)

    def test_fake_signature_claim_rejected(self, wm_model, claim):
        fake_sig = random_signature(len(wm_model.signature), random_state=1234)
        if fake_sig == wm_model.signature:
            pytest.skip("improbable signature collision")
        fake_secret = WatermarkSecret(
            signature=fake_sig,
            trigger_X=claim.secret.trigger_X,
            trigger_y=claim.secret.trigger_y,
        )
        fake_claim = OwnershipClaim("bob", fake_secret, claim.X_test, claim.y_test)
        report = Judge().verify_claim(wm_model.ensemble, fake_claim)
        assert not report.accepted

    def test_judge_mode_validation(self):
        with pytest.raises(ValidationError):
            Judge(mode="fuzzy")

    def test_bad_suspect_interface_raises(self, claim):
        class BadModel:
            def predict_all(self, X):
                return np.zeros(3)  # wrong shape

        with pytest.raises(VerificationError, match="predict_all"):
            Judge().verify_claim(BadModel(), claim)


class TestWatermarkSecret:
    def test_shape_validation(self, wm_model):
        with pytest.raises(ValidationError):
            WatermarkSecret(
                signature=wm_model.signature,
                trigger_X=np.zeros((3, 2)),
                trigger_y=np.zeros(4),
            )
        with pytest.raises(ValidationError):
            WatermarkSecret(
                signature=wm_model.signature,
                trigger_X=np.zeros(3),
                trigger_y=np.zeros(3),
            )
