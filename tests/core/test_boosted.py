"""Tests for the gradient-boosting watermark extension."""

import numpy as np
import pytest

from repro.core import (
    random_signature,
    required_directions,
    verify_boosted_ownership,
    watermark_boosted,
)
from repro.core.signature import Signature
from repro.exceptions import ValidationError


@pytest.fixture(scope="module")
def boosted_model(bc_data):
    X_train, _, y_train, _ = bc_data
    signature = random_signature(8, ones_fraction=0.5, random_state=30)
    return watermark_boosted(
        X_train,
        y_train,
        signature,
        trigger_size=4,
        max_depth=5,
        random_state=31,
    )


class TestRequiredDirections:
    def test_shape_and_values(self):
        sig = Signature.from_string("01")
        trigger_y = np.array([1, -1])
        directions = required_directions(sig, trigger_y)
        assert directions.shape == (2, 2)
        assert np.array_equal(directions[0], [1, -1])  # bit 0: push true label
        assert np.array_equal(directions[1], [-1, 1])  # bit 1: push flipped


class TestWatermarkBoosted:
    def test_sign_pattern_embedded(self, boosted_model):
        contributions = boosted_model.ensemble.stage_contributions(
            boosted_model.trigger.X
        )
        directions = required_directions(
            boosted_model.signature, boosted_model.trigger.y
        )
        assert (np.sign(contributions) == directions).all()

    def test_verification_accepts(self, boosted_model):
        accepted, matches = verify_boosted_ownership(
            boosted_model.ensemble,
            boosted_model.signature,
            boosted_model.trigger.X,
            boosted_model.trigger.y,
        )
        assert accepted
        assert matches.all()

    def test_fake_signature_rejected(self, boosted_model):
        fake = random_signature(len(boosted_model.signature), random_state=77)
        if fake == boosted_model.signature:
            pytest.skip("improbable collision")
        accepted, _ = verify_boosted_ownership(
            boosted_model.ensemble,
            fake,
            boosted_model.trigger.X,
            boosted_model.trigger.y,
        )
        assert not accepted

    def test_model_still_learns(self, boosted_model, bc_data):
        _, X_test, _, y_test = bc_data
        assert boosted_model.ensemble.score(X_test, y_test) > 0.8

    def test_stage_count_mismatch_raises(self, boosted_model):
        short = random_signature(3, random_state=0)
        with pytest.raises(ValidationError, match="stages"):
            verify_boosted_ownership(
                boosted_model.ensemble,
                short,
                boosted_model.trigger.X,
                boosted_model.trigger.y,
            )

    def test_oversized_trigger_rejected(self, bc_data):
        X_train, _, y_train, _ = bc_data
        with pytest.raises(ValidationError, match="small"):
            watermark_boosted(
                X_train,
                y_train,
                random_signature(4, random_state=0),
                trigger_size=X_train.shape[0],
            )
