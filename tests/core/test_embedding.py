"""Tests for watermark creation (Algorithm 1)."""

import numpy as np
import pytest

from repro.core import (
    Signature,
    random_signature,
    train_with_trigger,
    verify_ownership,
    watermark,
)
from repro.exceptions import ConvergenceError, ValidationError
from repro.persistence import node_to_dict

BASE_PARAMS = {"max_depth": 8, "min_samples_leaf": 1}


class TestTrainWithTrigger:
    def test_all_trees_fit_trigger(self, bc_data):
        X_train, _, y_train, _ = bc_data
        trigger_indices = np.array([0, 5, 10])
        forest, rounds, weight = train_with_trigger(
            X_train,
            y_train,
            trigger_indices,
            n_estimators=4,
            params=BASE_PARAMS,
            random_state=0,
        )
        predictions = forest.predict_all(X_train[trigger_indices])
        assert (predictions == y_train[trigger_indices][None, :]).all()
        assert rounds >= 0
        assert weight >= 1.0

    def test_flipped_labels_fit(self, bc_data):
        X_train, _, y_train, _ = bc_data
        trigger_indices = np.array([1, 7])
        y_flipped = y_train.copy()
        y_flipped[trigger_indices] = -y_flipped[trigger_indices]
        forest, _, _ = train_with_trigger(
            X_train,
            y_flipped,
            trigger_indices,
            n_estimators=3,
            params=BASE_PARAMS,
            escalation_factor=2.0,
            random_state=1,
        )
        predictions = forest.predict_all(X_train[trigger_indices])
        assert (predictions == y_flipped[trigger_indices][None, :]).all()

    @pytest.mark.parametrize("incremental", [True, False])
    def test_convergence_error_when_impossible(self, rng, incremental):
        # Two identical instances with opposite required labels cannot
        # both be fitted by any tree — on either retraining strategy.
        X = rng.uniform(size=(40, 3))
        X[1] = X[0]
        y = rng.choice([-1, 1], size=40)
        y[0], y[1] = 1, -1
        with pytest.raises(ConvergenceError) as excinfo:
            train_with_trigger(
                X,
                y,
                np.array([0, 1]),
                n_estimators=2,
                params=BASE_PARAMS,
                max_rounds=3,
                incremental=incremental,
                random_state=2,
            )
        assert excinfo.value.rounds == 3

    def test_escalation_schedule_weights(self, bc_data):
        # The final trigger weight is a pure function of the failed-round
        # count: additive (1 + rounds) by default, geometric (2^rounds)
        # at escalation_factor=2.
        X_train, _, y_train, _ = bc_data
        trigger_indices = np.arange(8)
        y_flipped = y_train.copy()
        y_flipped[trigger_indices] = -y_flipped[trigger_indices]
        # Shallow trees cannot isolate eight flipped triggers in one
        # round, forcing the re-weighting schedule to actually run.
        params = {"max_depth": 3, "min_samples_leaf": 1}

        _, rounds_add, weight_add = train_with_trigger(
            X_train, y_flipped, trigger_indices, n_estimators=3,
            params=params, random_state=1,
        )
        assert weight_add == pytest.approx(1.0 + rounds_add)

        _, rounds_esc, weight_esc = train_with_trigger(
            X_train, y_flipped, trigger_indices, n_estimators=3,
            params=params, escalation_factor=2.0, random_state=1,
        )
        assert weight_esc == pytest.approx(2.0**rounds_esc)
        # The forced-misclassification task needs at least one
        # re-weighting round here, so the schedules actually differ.
        assert rounds_esc >= 1

    def test_full_retrain_equivalent_to_incremental(self, bc_data):
        # Selective retraining must preserve Algorithm 1's postcondition:
        # both strategies produce forests whose every tree fits the
        # required trigger labels (the trees themselves may differ).
        X_train, _, y_train, _ = bc_data
        trigger_indices = np.array([0, 5, 10])
        for incremental in (True, False):
            forest, _, _ = train_with_trigger(
                X_train,
                y_train,
                trigger_indices,
                n_estimators=4,
                params=BASE_PARAMS,
                escalation_factor=2.0,
                incremental=incremental,
                random_state=3,
            )
            predictions = forest.predict_all(X_train[trigger_indices])
            assert (predictions == y_train[trigger_indices][None, :]).all()

    def test_parallel_matches_serial_bitwise(self, bc_data):
        X_train, _, y_train, _ = bc_data
        trigger_indices = np.array([2, 9])
        forests = []
        for n_jobs in (None, 2):
            forest, rounds, weight = train_with_trigger(
                X_train,
                y_train,
                trigger_indices,
                n_estimators=4,
                params=BASE_PARAMS,
                escalation_factor=2.0,
                n_jobs=n_jobs,
                random_state=4,
            )
            forests.append((forest, rounds, weight))
        (serial, r1, w1), (pooled, r2, w2) = forests
        assert (r1, w1) == (r2, w2)
        assert [node_to_dict(r) for r in serial.roots()] == [
            node_to_dict(r) for r in pooled.roots()
        ]

    def test_invalid_parameters(self, bc_data):
        X_train, _, y_train, _ = bc_data
        with pytest.raises(ValidationError):
            train_with_trigger(X_train, y_train, np.array([0]), 0, BASE_PARAMS)
        with pytest.raises(ValidationError):
            train_with_trigger(
                X_train, y_train, np.array([0]), 2, BASE_PARAMS, weight_increment=0
            )
        with pytest.raises(ValidationError):
            train_with_trigger(
                X_train, y_train, np.array([0]), 2, BASE_PARAMS, escalation_factor=0.5
            )
        with pytest.raises(ValidationError):
            train_with_trigger(
                X_train, y_train, np.array([0]), 2, BASE_PARAMS, max_rounds=0
            )


class TestWatermark:
    def test_embedded_pattern_holds(self, wm_model):
        predictions = wm_model.ensemble.predict_all(wm_model.trigger.X)
        for i, bit in enumerate(wm_model.signature):
            correct = predictions[i] == wm_model.trigger.y
            if bit == 0:
                assert correct.all(), f"tree {i} (bit 0) must be perfect on triggers"
            else:
                assert (~correct).all(), f"tree {i} (bit 1) must miss all triggers"

    def test_ensemble_size_matches_signature(self, wm_model):
        assert wm_model.ensemble.n_trees_ == len(wm_model.signature)

    def test_report_contents(self, wm_model):
        report = wm_model.report
        assert report.rounds_t0 >= 0 and report.rounds_t1 >= 0
        assert report.adjusted is not None
        assert report.base_params == {"max_depth": 8, "min_samples_leaf": 1}

    def test_adjust_false_skips_probe(self, bc_data):
        X_train, _, y_train, _ = bc_data
        model = watermark(
            X_train,
            y_train,
            random_signature(6, random_state=0),
            trigger_size=4,
            base_params=BASE_PARAMS,
            adjust=False,
            escalation_factor=2.0,
            random_state=1,
        )
        assert model.report.adjusted is None

    def test_all_zero_signature(self, bc_data):
        X_train, _, y_train, _ = bc_data
        model = watermark(
            X_train,
            y_train,
            Signature.from_string("000000"),
            trigger_size=4,
            base_params=BASE_PARAMS,
            escalation_factor=2.0,
            random_state=2,
        )
        predictions = model.ensemble.predict_all(model.trigger.X)
        assert (predictions == model.trigger.y[None, :]).all()

    def test_all_one_signature(self, bc_data):
        X_train, _, y_train, _ = bc_data
        model = watermark(
            X_train,
            y_train,
            Signature.from_string("1111"),
            trigger_size=3,
            base_params=BASE_PARAMS,
            escalation_factor=2.0,
            random_state=3,
        )
        predictions = model.ensemble.predict_all(model.trigger.X)
        assert (predictions == -model.trigger.y[None, :]).all()

    def test_oversized_trigger_rejected(self, bc_data):
        X_train, _, y_train, _ = bc_data
        with pytest.raises(ValidationError, match="small"):
            watermark(
                X_train,
                y_train,
                random_signature(4, random_state=0),
                trigger_size=X_train.shape[0],
                base_params=BASE_PARAMS,
            )

    def test_accuracy_cost_is_bounded(self, wm_model, bc_data, bc_forest):
        _, X_test, _, y_test = bc_data
        watermarked = wm_model.ensemble.score(X_test, y_test)
        standard = bc_forest.score(X_test, y_test)
        # The paper reports losses of at most a couple points; allow a
        # generous margin at this tiny scale.
        assert watermarked >= standard - 0.12

    def test_determinism(self, bc_data):
        X_train, _, y_train, _ = bc_data
        kwargs = dict(
            trigger_size=4,
            base_params=BASE_PARAMS,
            escalation_factor=2.0,
            random_state=21,
        )
        sig = random_signature(6, random_state=20)
        a = watermark(X_train, y_train, sig, **kwargs)
        b = watermark(X_train, y_train, sig, **kwargs)
        assert np.array_equal(a.trigger.indices, b.trigger.indices)
        assert np.array_equal(
            a.ensemble.predict_all(X_train[:20]), b.ensemble.predict_all(X_train[:20])
        )

    def test_incremental_and_full_both_accepted(self, bc_data):
        # The engine-level equivalence contract at the watermark level:
        # either retraining strategy yields a model the verification
        # protocol accepts in strict mode on the synthetic dataset.
        X_train, _, y_train, _ = bc_data
        sig = random_signature(6, ones_fraction=0.5, random_state=30)
        for incremental in (True, False):
            model = watermark(
                X_train,
                y_train,
                sig,
                trigger_size=4,
                base_params=BASE_PARAMS,
                escalation_factor=2.0,
                incremental=incremental,
                random_state=31,
            )
            report = verify_ownership(
                model.ensemble, model.signature, model.trigger.X,
                model.trigger.y, mode="strict",
            )
            assert report.accepted

    def test_watermark_parallel_determinism(self, bc_data):
        X_train, _, y_train, _ = bc_data
        sig = random_signature(4, random_state=40)
        kwargs = dict(
            trigger_size=3,
            base_params=BASE_PARAMS,
            escalation_factor=2.0,
            random_state=41,
        )
        serial = watermark(X_train, y_train, sig, **kwargs)
        pooled = watermark(X_train, y_train, sig, n_jobs=2, **kwargs)
        assert [node_to_dict(r) for r in serial.ensemble.roots()] == [
            node_to_dict(r) for r in pooled.ensemble.roots()
        ]

    def test_grid_search_path(self, bc_data):
        # base_params=None exercises line 12 of Algorithm 1.
        X_train, _, y_train, _ = bc_data
        model = watermark(
            X_train,
            y_train,
            random_signature(4, random_state=1),
            trigger_size=3,
            base_params=None,
            param_grid={"max_depth": [6, 10]},
            escalation_factor=2.0,
            random_state=4,
        )
        assert model.report.base_params["max_depth"] in (6, 10)
