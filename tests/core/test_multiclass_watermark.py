"""Tests for multi-class watermarking via binary decomposition."""

import numpy as np
import pytest

from repro.core import Signature
from repro.core.multiclass import (
    MulticlassWatermarkedModel,
    verify_multiclass_ownership,
    watermark_multiclass,
)
from repro.ensemble import OneVsRestForest
from repro.exceptions import ValidationError


def _three_class_data(rng, n=240):
    centers = np.array([[0.2, 0.2, 0.5], [0.8, 0.2, 0.5], [0.5, 0.8, 0.5]])
    labels = rng.integers(0, 3, size=n)
    X = np.clip(centers[labels] + rng.normal(scale=0.08, size=(n, 3)), 0, 1)
    return X, labels.astype(np.int64)


@pytest.fixture(scope="module")
def mc_model():
    rng = np.random.default_rng(70)
    X, y = _three_class_data(rng)
    model = watermark_multiclass(
        X,
        y,
        m=6,
        trigger_size=4,
        base_params={"max_depth": 7},
        random_state=71,
    )
    return model, X, y


class TestWatermarkMulticlass:
    def test_one_forest_per_class(self, mc_model):
        model, _X, _y = mc_model
        assert model.classes == [0, 1, 2]
        assert set(model.per_class) == {0, 1, 2}
        assert model.total_signature_bits() == 18

    def test_ensemble_still_classifies(self, mc_model):
        model, X, y = mc_model
        assert model.ensemble.score(X, y) > 0.85

    def test_per_class_patterns_embedded(self, mc_model):
        model, _X, _y = mc_model
        for label, wm in model.per_class.items():
            predictions = wm.ensemble.predict_all(wm.trigger.X)
            for i, bit in enumerate(wm.signature):
                correct = predictions[i] == wm.trigger.y
                assert correct.all() if bit == 0 else (~correct).all()

    def test_explicit_signatures_respected(self):
        rng = np.random.default_rng(72)
        X, y = _three_class_data(rng, n=200)
        fixed = {0: Signature.from_string("0101")}
        model = watermark_multiclass(
            X, y, m=4, trigger_size=3,
            signatures=fixed,
            base_params={"max_depth": 7},
            random_state=73,
        )
        assert model.per_class[0].signature == fixed[0]

    def test_wrong_signature_length_rejected(self):
        rng = np.random.default_rng(74)
        X, y = _three_class_data(rng, n=150)
        with pytest.raises(ValidationError, match="bits"):
            watermark_multiclass(
                X, y, m=4, trigger_size=3,
                signatures={0: Signature.from_string("01")},
                base_params={"max_depth": 7},
            )

    def test_single_class_rejected(self, rng):
        X = rng.uniform(size=(20, 3))
        with pytest.raises(ValidationError, match="two classes"):
            watermark_multiclass(X, np.zeros(20, dtype=np.int64), m=4, trigger_size=2)


class TestVerifyMulticlass:
    def test_all_classes_accepted_on_own_model(self, mc_model):
        model, _X, _y = mc_model
        reports = verify_multiclass_ownership(model.ensemble, model)
        assert set(reports) == {0, 1, 2}
        assert all(report.accepted for report in reports.values())

    def test_independent_model_rejected(self, mc_model):
        from repro.ensemble import RandomForestClassifier

        model, X, y = mc_model
        independent = OneVsRestForest(
            forest_factory=lambda: RandomForestClassifier(n_estimators=6, max_depth=7),
            random_state=75,
        ).fit(X, y)
        reports = verify_multiclass_ownership(independent, model)
        assert not all(report.accepted for report in reports.values())

    def test_unfitted_suspect_rejected(self, mc_model):
        model, _X, _y = mc_model
        with pytest.raises(ValidationError, match="not fitted"):
            verify_multiclass_ownership(OneVsRestForest(), model)
