"""Tests for multi-bit signatures."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Signature, random_signature, signature_from_identity
from repro.exceptions import ValidationError


class TestSignature:
    def test_roundtrip_string(self):
        sig = Signature.from_string("0110")
        assert sig.to_string() == "0110"
        assert len(sig) == 4
        assert list(sig) == [0, 1, 1, 0]
        assert sig[2] == 1

    def test_counts_and_positions(self):
        sig = Signature.from_string("0110")
        assert sig.n_zeros == 2
        assert sig.n_ones == 2
        assert sig.zero_positions() == [0, 3]
        assert sig.one_positions() == [1, 2]

    def test_as_array(self):
        assert np.array_equal(Signature.from_string("101").as_array(), [1, 0, 1])

    def test_hamming_distance(self):
        a = Signature.from_string("0011")
        b = Signature.from_string("0101")
        assert a.hamming_distance(b) == 2
        assert a.hamming_distance(a) == 0

    def test_hamming_length_mismatch(self):
        with pytest.raises(ValidationError):
            Signature.from_string("01").hamming_distance(Signature.from_string("011"))

    def test_invalid_inputs(self):
        with pytest.raises(ValidationError):
            Signature.from_string("01a")
        with pytest.raises(ValidationError):
            Signature.from_string("")
        with pytest.raises(ValidationError):
            Signature.from_iterable([0, 2])
        with pytest.raises(ValidationError):
            Signature(bits=())

    def test_immutability(self):
        sig = Signature.from_string("01")
        with pytest.raises(AttributeError):
            sig.bits = (1, 1)


class TestRandomSignature:
    def test_exact_ones_count(self):
        for m, fraction, expected in [(10, 0.5, 5), (16, 0.25, 4), (7, 0.5, 4)]:
            sig = random_signature(m, ones_fraction=fraction, random_state=0)
            assert len(sig) == m
            assert sig.n_ones == expected

    def test_extremes(self):
        assert random_signature(8, 0.0, random_state=0).n_ones == 0
        assert random_signature(8, 1.0, random_state=0).n_ones == 8

    def test_determinism(self):
        a = random_signature(32, random_state=5)
        b = random_signature(32, random_state=5)
        assert a == b

    def test_different_seeds_differ(self):
        # 2^-32-ish collision chance; effectively deterministic.
        a = random_signature(64, random_state=1)
        b = random_signature(64, random_state=2)
        assert a != b

    def test_invalid_params(self):
        with pytest.raises(ValidationError):
            random_signature(0)
        with pytest.raises(ValidationError):
            random_signature(4, ones_fraction=1.5)

    @given(st.integers(min_value=1, max_value=128), st.floats(min_value=0, max_value=1))
    @settings(max_examples=30, deadline=None)
    def test_ones_count_matches_rounding(self, m, fraction):
        sig = random_signature(m, ones_fraction=fraction, random_state=9)
        assert sig.n_ones == int(round(fraction * m))


class TestIdentitySignature:
    def test_deterministic(self):
        a = signature_from_identity("alice@example.com", 64)
        b = signature_from_identity("alice@example.com", 64)
        assert a == b

    def test_identities_differ(self):
        a = signature_from_identity("alice", 64)
        b = signature_from_identity("bob", 64)
        assert a != b

    def test_any_length(self):
        for m in (1, 7, 63, 64, 65, 300):
            assert len(signature_from_identity("alice", m)) == m

    def test_prefix_stability(self):
        # Longer signatures extend shorter ones (counter-mode property).
        short = signature_from_identity("alice", 32)
        long = signature_from_identity("alice", 64)
        assert list(long)[:32] == list(short)

    def test_invalid_inputs(self):
        with pytest.raises(ValidationError):
            signature_from_identity("", 8)
        with pytest.raises(ValidationError):
            signature_from_identity("alice", 0)
