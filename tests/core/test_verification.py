"""Tests for black-box verification and the false-claim probability bound."""

import numpy as np
import pytest

from repro.core import (
    Signature,
    false_claim_log10_probability,
    match_signature,
    random_signature,
    verify_ownership,
)
from repro.exceptions import ValidationError


def _pattern_predictions(signature, trigger_y):
    """Per-tree predictions that exactly realise the signature."""
    bits = signature.as_array()[:, None]
    return np.where(bits == 0, trigger_y[None, :], -trigger_y[None, :])


class TestMatchSignature:
    def test_exact_pattern_accepted(self):
        sig = Signature.from_string("0101")
        trigger_y = np.array([1, -1, 1])
        predictions = _pattern_predictions(sig, trigger_y)
        for mode in ("strict", "iff"):
            report = match_signature(predictions, trigger_y, sig, mode=mode)
            assert report.accepted
            assert report.n_matching == 4
            assert report.recovered_bits == [0, 1, 0, 1]

    def test_wrong_signature_rejected(self):
        sig = Signature.from_string("0101")
        trigger_y = np.array([1, -1, 1])
        predictions = _pattern_predictions(sig, trigger_y)
        wrong = Signature.from_string("1010")
        report = match_signature(predictions, trigger_y, wrong)
        assert not report.accepted
        assert report.n_matching == 0

    def test_match_uses_exact_boolean_reductions(self):
        # Regression: the all-correct / all-wrong decision must come
        # from exact boolean reductions over the comparison matrix, not
        # from float equality on the accuracy mean.  A tree that misses
        # exactly one of k triggers is neither, for any k.
        trigger_y = np.repeat(np.array([1, -1]), 24)  # k = 48
        sig = Signature.from_string("01")
        predictions = _pattern_predictions(sig, trigger_y)
        report = match_signature(predictions, trigger_y, sig)
        assert report.accepted
        predictions[0, -1] = -predictions[0, -1]
        predictions[1, 0] = -predictions[1, 0]
        report = match_signature(predictions, trigger_y, sig)
        assert not report.accepted
        assert report.recovered_bits == [None, None]
        # Accuracy stays reported for diagnostics.
        assert report.per_tree_accuracy[0] == pytest.approx(47 / 48)
        assert report.per_tree_accuracy[1] == pytest.approx(1 / 48)

    def test_partial_tree_failure_rejected(self):
        sig = Signature.from_string("00")
        trigger_y = np.array([1, -1, 1])
        predictions = _pattern_predictions(sig, trigger_y)
        predictions[1, 0] = -predictions[1, 0]  # tree 1 slips on one trigger
        report = match_signature(predictions, trigger_y, sig)
        assert not report.accepted
        assert report.matches[0]
        assert not report.matches[1]
        assert report.recovered_bits[1] is None

    def test_strict_vs_iff_semantics(self):
        # A bit-1 tree that is wrong on only *some* triggers: iff accepts,
        # strict does not.
        sig = Signature.from_string("1")
        trigger_y = np.array([1, -1])
        predictions = np.array([[-1, -1]])  # wrong on first, right on second
        assert not match_signature(predictions, trigger_y, sig, mode="strict").accepted
        assert match_signature(predictions, trigger_y, sig, mode="iff").accepted

    def test_per_tree_accuracy(self):
        sig = Signature.from_string("0")
        trigger_y = np.array([1, 1, -1, -1])
        predictions = np.array([[1, 1, -1, 1]])
        report = match_signature(predictions, trigger_y, sig)
        assert report.per_tree_accuracy[0] == pytest.approx(0.75)

    def test_validation_errors(self):
        sig = Signature.from_string("01")
        with pytest.raises(ValidationError):
            match_signature(np.zeros(3), np.zeros(3), sig)
        with pytest.raises(ValidationError):
            match_signature(np.zeros((2, 3)), np.zeros(2), sig)
        with pytest.raises(ValidationError):
            match_signature(np.zeros((3, 2)), np.zeros(2), sig)
        with pytest.raises(ValidationError):
            match_signature(np.zeros((2, 2)), np.zeros(2), sig, mode="loose")

    def test_summary_text(self):
        sig = Signature.from_string("0")
        trigger_y = np.array([1])
        report = match_signature(np.array([[1]]), trigger_y, sig)
        assert "ACCEPTED" in report.summary()


class TestVerifyOwnership:
    def test_watermarked_model_accepted(self, wm_model):
        report = verify_ownership(
            wm_model.ensemble, wm_model.signature, wm_model.trigger.X, wm_model.trigger.y
        )
        assert report.accepted

    def test_fake_signature_rejected(self, wm_model):
        fake = random_signature(len(wm_model.signature), random_state=999)
        if fake == wm_model.signature:  # vanishing chance, but be safe
            fake = Signature.from_iterable([1 - b for b in fake])
        report = verify_ownership(
            wm_model.ensemble, fake, wm_model.trigger.X, wm_model.trigger.y
        )
        assert not report.accepted

    def test_standard_model_rejected(self, bc_forest, wm_model):
        # A non-watermarked forest of the wrong size raises; same-size
        # comparison is covered via the fake-signature test above.
        sig = random_signature(bc_forest.n_trees_, random_state=3)
        report = verify_ownership(
            bc_forest, sig, wm_model.trigger.X, wm_model.trigger.y
        )
        assert not report.accepted


class TestFalseClaimProbability:
    def test_decreases_with_trigger_size(self):
        sig = random_signature(16, random_state=0)
        p_small = false_claim_log10_probability(0.95, 2, sig)
        p_large = false_claim_log10_probability(0.95, 20, sig)
        assert p_large < p_small < 0

    def test_strict_harder_than_iff(self):
        sig = random_signature(16, random_state=1)
        strict = false_claim_log10_probability(0.95, 5, sig, mode="strict")
        iff = false_claim_log10_probability(0.95, 5, sig, mode="iff")
        assert strict <= iff

    def test_known_value(self):
        # One 0-bit, one 1-bit, k=1, a=0.9: p = 0.9 * 0.1 = 0.09.
        sig = Signature.from_string("01")
        log_p = false_claim_log10_probability(0.9, 1, sig, mode="strict")
        assert 10**log_p == pytest.approx(0.09)

    def test_validation(self):
        sig = Signature.from_string("01")
        with pytest.raises(ValidationError):
            false_claim_log10_probability(1.0, 1, sig)
        with pytest.raises(ValidationError):
            false_claim_log10_probability(0.9, 0, sig)
        with pytest.raises(ValidationError):
            false_claim_log10_probability(0.9, 1, sig, mode="x")
