"""Cross-module property-based tests.

These encode invariants that tie the substrates together — the kind of
properties a reviewer would want machine-checked rather than asserted
in prose.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Signature, random_signature, signature_from_identity
from repro.core.embedding import watermark
from repro.core.verification import match_signature, verify_ownership
from repro.ensemble import RandomForestClassifier, majority_vote
from repro.solver import PatternProblem, required_labels, solve_pattern_smt
from repro.trees import DecisionTreeClassifier, leaf_boxes
from repro.trees.node import predict_one

seeds = st.integers(min_value=0, max_value=2**31 - 1)


class TestWeightDuplicationEquivalence:
    """CART invariant: integer sample weights behave exactly like row
    duplication (same impurities, hence same splits and predictions)."""

    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_weighted_equals_duplicated(self, seed):
        gen = np.random.default_rng(seed)
        n = 40
        X = gen.uniform(size=(n, 3))
        y = gen.choice([-1, 1], size=n)
        if len(np.unique(y)) < 2:
            y[0] = -y[0]
        weights = gen.integers(1, 4, size=n).astype(np.float64)

        duplicated_X = np.repeat(X, weights.astype(int), axis=0)
        duplicated_y = np.repeat(y, weights.astype(int))

        weighted = DecisionTreeClassifier(max_depth=4).fit(X, y, sample_weight=weights)
        duplicated = DecisionTreeClassifier(max_depth=4).fit(duplicated_X, duplicated_y)

        probe = gen.uniform(size=(50, 3))
        assert np.array_equal(weighted.predict(probe), duplicated.predict(probe))


class TestForestVotingConsistency:
    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_predict_is_vote_of_predict_all(self, seed):
        gen = np.random.default_rng(seed)
        X = gen.uniform(size=(60, 4))
        y = gen.choice([-1, 1], size=60)
        if len(np.unique(y)) < 2:
            y[0] = -y[0]
        forest = RandomForestClassifier(
            n_estimators=int(gen.integers(1, 7)),
            max_depth=4,
            tree_feature_fraction=0.8,
            random_state=seed % 10_000,
        ).fit(X, y)
        probe = gen.uniform(size=(30, 4))
        assert np.array_equal(
            forest.predict(probe),
            majority_vote(forest.predict_all(probe), forest.classes_),
        )


class TestIncrementalEmbeddingInvariant:
    """Algorithm 1's postcondition survives the incremental engine: for
    any seed, every tree of the embedded forest fits its required
    trigger labels (bit 0 → all correct, bit 1 → all wrong) and the
    strict verification protocol accepts the claim."""

    @given(seeds)
    @settings(max_examples=5, deadline=None)
    def test_incremental_embedding_accepted(self, seed):
        gen = np.random.default_rng(seed)
        n = 90
        X = gen.uniform(size=(n, 6))
        y = np.where(X[:, 0] + gen.normal(scale=0.3, size=n) > 0.5, 1, -1)
        if len(np.unique(y)) < 2:
            y[0] = -y[0]
        signature = random_signature(
            4, ones_fraction=0.5, random_state=int(gen.integers(2**31 - 1))
        )
        model = watermark(
            X,
            y,
            signature,
            trigger_size=3,
            base_params={"max_depth": 8, "min_samples_leaf": 1},
            adjust=False,
            escalation_factor=2.0,
            random_state=int(gen.integers(2**31 - 1)),
        )
        predictions = model.ensemble.predict_all(model.trigger.X)
        correct = predictions == model.trigger.y[None, :]
        for i, bit in enumerate(model.signature):
            assert correct[i].all() if bit == 0 else (~correct[i]).all()
        report = verify_ownership(
            model.ensemble, model.signature, model.trigger.X,
            model.trigger.y, mode="strict",
        )
        assert report.accepted


class TestBoxesMatchRouting:
    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_leaf_boxes_partition_probe_points(self, seed):
        gen = np.random.default_rng(seed)
        X = gen.uniform(size=(50, 3))
        y = gen.choice([-1, 1], size=50)
        if len(np.unique(y)) < 2:
            y[0] = -y[0]
        tree = DecisionTreeClassifier(max_depth=5).fit(X, y)
        pairs = leaf_boxes(tree.root_)
        for x in gen.uniform(size=(20, 3)):
            containing = [leaf for leaf, box in pairs if box.contains(x)]
            assert len(containing) == 1
            assert containing[0].prediction == predict_one(tree.root_, x)


class TestForgerySolverSoundness:
    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_sat_witnesses_always_verify(self, seed):
        gen = np.random.default_rng(seed)
        X = gen.uniform(size=(50, 3))
        y = gen.choice([-1, 1], size=50)
        if len(np.unique(y)) < 2:
            y[0] = -y[0]
        forest = RandomForestClassifier(
            n_estimators=3, max_depth=3, tree_feature_fraction=1.0,
            random_state=seed % 10_000,
        ).fit(X, y)
        signature = random_signature(3, random_state=seed % 9973)
        problem = PatternProblem(
            roots=forest.roots(),
            required=required_labels(signature, int(gen.choice([-1, 1]))),
            n_features=3,
            center=X[int(gen.integers(50))],
            epsilon=float(gen.uniform(0.05, 0.95)),
        )
        outcome = solve_pattern_smt(problem)
        if outcome.is_sat:
            assert problem.check_solution(outcome.instance)


class TestSignatureCodecs:
    @given(st.text(min_size=1, max_size=40), st.integers(min_value=1, max_value=200))
    @settings(max_examples=30, deadline=None)
    def test_identity_signature_total_and_deterministic(self, identity, m):
        a = signature_from_identity(identity, m)
        b = signature_from_identity(identity, m)
        assert a == b
        assert len(a) == m

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=64))
    @settings(max_examples=30, deadline=None)
    def test_string_roundtrip(self, bits):
        signature = Signature.from_iterable(bits)
        assert Signature.from_string(signature.to_string()) == signature
        assert signature.n_zeros + signature.n_ones == len(bits)


class TestVerificationSemantics:
    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_exact_pattern_always_accepted_and_unique(self, seed):
        gen = np.random.default_rng(seed)
        m = int(gen.integers(2, 10))
        k = int(gen.integers(1, 6))
        signature = random_signature(m, ones_fraction=float(gen.uniform(0, 1)),
                                     random_state=seed % 99991)
        trigger_y = gen.choice([-1, 1], size=k)
        bits = signature.as_array()[:, None]
        predictions = np.where(bits == 0, trigger_y[None, :], -trigger_y[None, :])

        report = match_signature(predictions, trigger_y, signature, mode="strict")
        assert report.accepted

        # Any other signature is rejected against the same behaviour.
        flipped = Signature.from_iterable(
            [1 - b if i == int(gen.integers(m)) else b for i, b in enumerate(signature)]
        )
        if flipped != signature:
            assert not match_signature(predictions, trigger_y, flipped).accepted
