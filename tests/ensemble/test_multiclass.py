"""Tests for one-vs-rest multi-class decomposition."""

import numpy as np
import pytest

from repro.ensemble import OneVsRestForest, RandomForestClassifier
from repro.exceptions import NotFittedError, ValidationError


def _three_blob_data(rng, n=180):
    centers = np.array([[0.2, 0.2], [0.8, 0.2], [0.5, 0.8]])
    labels = rng.integers(0, 3, size=n)
    X = centers[labels] + rng.normal(scale=0.07, size=(n, 2))
    return np.clip(X, 0, 1), labels.astype(np.int64)


class TestOneVsRest:
    def test_learns_three_blobs(self, rng):
        X, y = _three_blob_data(rng)
        model = OneVsRestForest(
            forest_factory=lambda: RandomForestClassifier(
                n_estimators=7, max_depth=5, tree_feature_fraction=1.0
            ),
            random_state=0,
        ).fit(X, y)
        assert model.score(X, y) > 0.9
        assert set(model.forests_) == {0, 1, 2}

    def test_decision_matrix_shape(self, rng):
        X, y = _three_blob_data(rng, n=90)
        model = OneVsRestForest(random_state=1).fit(X, y)
        matrix = model.decision_matrix(X[:10])
        assert matrix.shape == (10, 3)
        assert np.all(matrix >= 0) and np.all(matrix <= 1)

    def test_each_binary_forest_uses_pm1(self, rng):
        X, y = _three_blob_data(rng, n=90)
        model = OneVsRestForest(random_state=2).fit(X, y)
        for forest in model.forests_.values():
            assert set(forest.classes_.tolist()) == {-1, 1}

    def test_single_class_rejected(self, rng):
        X = rng.uniform(size=(10, 2))
        with pytest.raises(ValidationError, match="two classes"):
            OneVsRestForest().fit(X, np.zeros(10, dtype=np.int64))

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            OneVsRestForest().predict(np.zeros((1, 2)))

    def test_bad_factory_rejected(self, rng):
        X, y = _three_blob_data(rng, n=60)
        with pytest.raises(ValidationError, match="factory"):
            OneVsRestForest(forest_factory=lambda: "nope").fit(X, y)
