"""Concurrency stress tests for the lazy compile/materialize paths.

The serving daemon answers queries from executor threads, so the first
concurrent batches on a freshly-loaded model all race into lazy
compilation (fitted models) or tree materialisation (mmap restores).
These tests hammer those first-touch paths from 8 threads and assert
the double-checked locking contract: exactly one compile / one
materialisation / one presort, with every thread seeing bitwise-equal
outputs.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

import repro.ensemble.forest as forest_mod
import repro.trees.presort as presort_mod
from repro.datasets import breast_cancer_like
from repro.ensemble import RandomForestClassifier
from repro.persistence import load, save
from repro.trees.presort import clear_presort_cache, presorted_dataset

N_THREADS = 8


def _hammer(worker, n_threads: int = N_THREADS) -> list:
    """Run ``worker(slot)`` on ``n_threads`` barrier-synchronised threads."""
    barrier = threading.Barrier(n_threads)
    results: list = [None] * n_threads
    errors: list = []

    def run(slot: int) -> None:
        try:
            barrier.wait(timeout=30)
            results[slot] = worker(slot)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=run, args=(i,)) for i in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert not errors, f"worker raised: {errors[0]!r}"
    return results


@pytest.fixture()
def fitted_forest():
    ds = breast_cancer_like(220, random_state=7)
    return RandomForestClassifier(
        n_estimators=8, max_depth=6, random_state=7
    ).fit(ds.X, ds.y), ds.X


class TestConcurrentLazyCompile:
    def test_first_predict_all_compiles_exactly_once(
        self, fitted_forest, monkeypatch
    ):
        forest, X = fitted_forest
        calls: list[int] = []
        real_compile = forest_mod.compile_forest

        def counting(model):
            calls.append(1)
            return real_compile(model)

        monkeypatch.setattr(forest_mod, "compile_forest", counting)
        results = _hammer(lambda slot: forest.predict_all(X))

        assert len(calls) == 1
        for result in results[1:]:
            assert np.array_equal(result, results[0])

    def test_mixed_predict_predict_proba_single_compile(
        self, fitted_forest, monkeypatch
    ):
        forest, X = fitted_forest
        calls: list[int] = []
        real_compile = forest_mod.compile_forest

        def counting(model):
            calls.append(1)
            return real_compile(model)

        monkeypatch.setattr(forest_mod, "compile_forest", counting)

        def worker(slot: int):
            if slot % 2:
                return ("proba", forest.predict_proba(X))
            return ("labels", forest.predict(X))

        results = _hammer(worker)
        assert len(calls) == 1
        labels = [r[1] for r in results if r[0] == "labels"]
        probas = [r[1] for r in results if r[0] == "proba"]
        for other in labels[1:]:
            assert np.array_equal(other, labels[0])
        for other in probas[1:]:
            assert np.array_equal(other, probas[0])


class TestConcurrentLazyMaterialize:
    @pytest.fixture()
    def lazy_forest(self, fitted_forest, tmp_path):
        forest, X = fitted_forest
        path = tmp_path / "forest.rfbin"
        save(forest, path, format="binary")
        restored = load(path, mmap_mode="r")
        assert restored._trees_ is None and restored._lazy_key_ is not None
        return restored, X

    def test_first_touch_materialises_exactly_once(self, lazy_forest, monkeypatch):
        restored, X = lazy_forest
        builds: list[int] = []
        real_build = RandomForestClassifier._trees_from_engine

        def counting(self, engine):
            builds.append(1)
            return real_build(self, engine)

        monkeypatch.setattr(
            RandomForestClassifier, "_trees_from_engine", counting
        )
        expected_all = restored._compiled_.predict_all(X)

        def worker(slot: int):
            # Threads mix engine-served queries with object-tree access:
            # every trees_ touch funnels through _materialize_trees.
            if slot % 2:
                assert restored.trees_ is not None
            return restored.predict_all(X), restored.predict_proba(X)

        results = _hammer(worker)
        assert len(builds) == 1
        assert restored._trees_ is not None and restored._lazy_key_ is None
        for y_all, proba in results:
            assert np.array_equal(y_all, expected_all)
            assert np.array_equal(proba, results[0][1])

    def test_materialised_forest_still_serves_same_engine(self, lazy_forest):
        restored, X = lazy_forest
        engine = restored._compiled_
        _hammer(lambda slot: restored.trees_)
        # Losers adopted the winner's engine: same object, re-pinned.
        assert restored._compiled_ is engine


class TestConcurrentPresort:
    def test_concurrent_first_fit_presorts_once(self, monkeypatch):
        clear_presort_cache()
        builds: list[int] = []
        real_init = presort_mod.SortedDataset.__init__

        def counting(self, X):
            builds.append(1)
            real_init(self, X)

        monkeypatch.setattr(presort_mod.SortedDataset, "__init__", counting)
        rng = np.random.default_rng(3)
        X = rng.standard_normal((300, 12))
        try:
            results = _hammer(lambda slot: presorted_dataset(X))
            assert len(builds) == 1
            for entry in results[1:]:
                assert entry is results[0]
        finally:
            clear_presort_cache()
