"""Tests for the gradient-boosting substrate."""

import numpy as np
import pytest

from repro.ensemble import GradientBoostingClassifier
from repro.exceptions import NotFittedError, ValidationError


class TestFitPredict:
    def test_learns_separable_data(self, rng):
        X = rng.uniform(size=(200, 3))
        y = np.where(X[:, 0] + X[:, 1] > 1.0, 1, -1)
        model = GradientBoostingClassifier(n_estimators=20, max_depth=2).fit(X, y)
        assert model.score(X, y) > 0.95

    def test_generalises(self, bc_data):
        X_train, X_test, y_train, y_test = bc_data
        model = GradientBoostingClassifier(n_estimators=25, max_depth=3).fit(
            X_train, y_train
        )
        assert model.score(X_test, y_test) > 0.85

    def test_more_stages_fit_train_better(self, rng):
        X = rng.uniform(size=(150, 4))
        y = rng.choice([-1, 1], size=150)
        few = GradientBoostingClassifier(n_estimators=3, max_depth=2).fit(X, y)
        many = GradientBoostingClassifier(n_estimators=40, max_depth=2).fit(X, y)
        assert many.score(X, y) >= few.score(X, y)

    def test_decision_function_additivity(self, bc_data):
        X_train, X_test, y_train, _ = bc_data
        model = GradientBoostingClassifier(n_estimators=6, max_depth=2).fit(
            X_train, y_train
        )
        contributions = model.stage_contributions(X_test)
        assert contributions.shape == (6, X_test.shape[0])
        rebuilt = model.init_score_ + contributions.sum(axis=0)
        assert np.allclose(rebuilt, model.decision_function(X_test))

    def test_predict_proba_valid(self, bc_data):
        X_train, X_test, y_train, _ = bc_data
        model = GradientBoostingClassifier(n_estimators=5).fit(X_train, y_train)
        proba = model.predict_proba(X_test)
        assert np.all(proba >= 0) and np.all(proba <= 1)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_stage_label_overrides_hook(self, rng):
        X = rng.uniform(size=(60, 2))
        y = rng.choice([-1, 1], size=60)
        if len(np.unique(y)) < 2:
            y[0] = -y[0]
        calls = []

        def overrides(stage, labels):
            calls.append(stage)
            return labels

        GradientBoostingClassifier(n_estimators=4).fit(
            X, y, stage_label_overrides=overrides
        )
        assert calls == [0, 1, 2, 3]


class TestValidation:
    def test_non_binary_labels_rejected(self, rng):
        X = rng.uniform(size=(10, 2))
        with pytest.raises(ValidationError):
            GradientBoostingClassifier().fit(X, np.arange(10))

    def test_bad_learning_rate(self):
        with pytest.raises(ValidationError):
            GradientBoostingClassifier(learning_rate=0.0)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            GradientBoostingClassifier().predict(np.zeros((1, 2)))
