"""Tests for the no-bootstrap random forest."""

import numpy as np
import pytest

from repro.ensemble import RandomForestClassifier
from repro.exceptions import NotFittedError, ValidationError


class TestFit:
    def test_number_of_trees(self, bc_data):
        X_train, _, y_train, _ = bc_data
        forest = RandomForestClassifier(n_estimators=5, max_depth=4, random_state=0)
        forest.fit(X_train, y_train)
        assert forest.n_trees_ == 5
        assert len(forest.feature_subsets_) == 5

    def test_feature_subspace_sizes(self, bc_data):
        X_train, _, y_train, _ = bc_data
        forest = RandomForestClassifier(
            n_estimators=4, tree_feature_fraction=0.5, max_depth=3, random_state=0
        ).fit(X_train, y_train)
        expected = max(1, round(0.5 * X_train.shape[1]))
        for subset in forest.feature_subsets_:
            assert subset.shape[0] == expected
            assert np.array_equal(subset, np.unique(subset))  # sorted, distinct

    def test_trees_use_only_their_subspace(self, bc_data):
        X_train, _, y_train, _ = bc_data
        forest = RandomForestClassifier(
            n_estimators=4, tree_feature_fraction=0.3, max_depth=5, random_state=1
        ).fit(X_train, y_train)
        for tree, subset in zip(forest.trees_, forest.feature_subsets_):
            assert tree.used_features_() <= set(subset.tolist())

    def test_no_bootstrap_every_tree_sees_all_data(self, rng):
        # Without bootstrap and with the full feature set, all trees of
        # an unconstrained forest fit the training data perfectly.
        X = rng.uniform(size=(60, 4))
        y = rng.choice([-1, 1], size=60)
        forest = RandomForestClassifier(
            n_estimators=3, tree_feature_fraction=1.0, random_state=2
        ).fit(X, y)
        assert (forest.predict_all(X) == y[None, :]).all()

    def test_determinism(self, bc_data):
        X_train, X_test, y_train, _ = bc_data
        a = RandomForestClassifier(n_estimators=4, max_depth=4, random_state=9).fit(
            X_train, y_train
        )
        b = RandomForestClassifier(n_estimators=4, max_depth=4, random_state=9).fit(
            X_train, y_train
        )
        assert np.array_equal(a.predict_all(X_test), b.predict_all(X_test))

    def test_invalid_params(self, bc_data):
        X_train, _, y_train, _ = bc_data
        with pytest.raises(ValidationError):
            RandomForestClassifier(n_estimators=0).fit(X_train, y_train)
        with pytest.raises(ValidationError):
            RandomForestClassifier(tree_feature_fraction=0.0).fit(X_train, y_train)
        with pytest.raises(ValidationError):
            RandomForestClassifier(tree_feature_fraction=1.5).fit(X_train, y_train)


class TestPredict:
    def test_predict_all_shape(self, bc_forest, bc_data):
        _, X_test, _, _ = bc_data
        all_predictions = bc_forest.predict_all(X_test)
        assert all_predictions.shape == (9, X_test.shape[0])
        assert set(np.unique(all_predictions)) <= {-1, 1}

    def test_predict_is_majority_of_predict_all(self, bc_forest, bc_data):
        _, X_test, _, _ = bc_data
        all_predictions = bc_forest.predict_all(X_test)
        votes = (all_predictions == 1).sum(axis=0)
        expected = np.where(votes * 2 > 9, 1, -1)  # 9 trees, odd: no ties
        assert np.array_equal(bc_forest.predict(X_test), expected)

    def test_predict_proba_rows_sum_to_one(self, bc_forest, bc_data):
        _, X_test, _, _ = bc_data
        proba = bc_forest.predict_proba(X_test)
        assert proba.shape == (X_test.shape[0], 2)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_score_reasonable(self, bc_forest, bc_data):
        _, X_test, _, y_test = bc_data
        assert bc_forest.score(X_test, y_test) > 0.8

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            RandomForestClassifier().predict(np.zeros((1, 2)))
        with pytest.raises(NotFittedError):
            RandomForestClassifier().predict_all(np.zeros((1, 2)))


class TestStructure:
    def test_structure_arrays(self, bc_forest):
        structure = bc_forest.structure()
        assert structure["depth"].shape == (9,)
        assert structure["n_leaves"].shape == (9,)
        assert (structure["depth"] <= 8).all()

    def test_total_leaves(self, bc_forest):
        assert bc_forest.total_leaves() == int(bc_forest.structure()["n_leaves"].sum())

    def test_roots_are_tree_roots(self, bc_forest):
        roots = bc_forest.roots()
        assert len(roots) == 9
        assert all(root is tree.root_ for root, tree in zip(roots, bc_forest.trees_))


class TestCloneWith:
    def test_overrides_apply(self):
        forest = RandomForestClassifier(n_estimators=7, max_depth=3)
        clone = forest.clone_with(n_estimators=2)
        assert clone.n_estimators == 2
        assert clone.max_depth == 3
        assert clone.trees_ is None  # unfitted

    def test_unknown_override_raises(self):
        with pytest.raises(ValidationError, match="unknown"):
            RandomForestClassifier().clone_with(bogus=1)
