"""Tests for the no-bootstrap random forest."""

import numpy as np
import pytest

from repro.ensemble import RandomForestClassifier
from repro.exceptions import NotFittedError, ValidationError
from repro.persistence import node_to_dict


def _forest_fingerprint(forest):
    """Bitwise-comparable snapshot of the fitted trees and subspaces."""
    return (
        [node_to_dict(root) for root in forest.roots()],
        [subset.tolist() for subset in forest.feature_subsets_],
    )


class TestFit:
    def test_number_of_trees(self, bc_data):
        X_train, _, y_train, _ = bc_data
        forest = RandomForestClassifier(n_estimators=5, max_depth=4, random_state=0)
        forest.fit(X_train, y_train)
        assert forest.n_trees_ == 5
        assert len(forest.feature_subsets_) == 5

    def test_feature_subspace_sizes(self, bc_data):
        X_train, _, y_train, _ = bc_data
        forest = RandomForestClassifier(
            n_estimators=4, tree_feature_fraction=0.5, max_depth=3, random_state=0
        ).fit(X_train, y_train)
        expected = max(1, round(0.5 * X_train.shape[1]))
        for subset in forest.feature_subsets_:
            assert subset.shape[0] == expected
            assert np.array_equal(subset, np.unique(subset))  # sorted, distinct

    def test_trees_use_only_their_subspace(self, bc_data):
        X_train, _, y_train, _ = bc_data
        forest = RandomForestClassifier(
            n_estimators=4, tree_feature_fraction=0.3, max_depth=5, random_state=1
        ).fit(X_train, y_train)
        for tree, subset in zip(forest.trees_, forest.feature_subsets_):
            assert tree.used_features_() <= set(subset.tolist())

    def test_no_bootstrap_every_tree_sees_all_data(self, rng):
        # Without bootstrap and with the full feature set, all trees of
        # an unconstrained forest fit the training data perfectly.
        X = rng.uniform(size=(60, 4))
        y = rng.choice([-1, 1], size=60)
        forest = RandomForestClassifier(
            n_estimators=3, tree_feature_fraction=1.0, random_state=2
        ).fit(X, y)
        assert (forest.predict_all(X) == y[None, :]).all()

    def test_determinism(self, bc_data):
        X_train, X_test, y_train, _ = bc_data
        a = RandomForestClassifier(n_estimators=4, max_depth=4, random_state=9).fit(
            X_train, y_train
        )
        b = RandomForestClassifier(n_estimators=4, max_depth=4, random_state=9).fit(
            X_train, y_train
        )
        assert np.array_equal(a.predict_all(X_test), b.predict_all(X_test))

    def test_invalid_params(self, bc_data):
        X_train, _, y_train, _ = bc_data
        with pytest.raises(ValidationError):
            RandomForestClassifier(n_estimators=0).fit(X_train, y_train)
        with pytest.raises(ValidationError):
            RandomForestClassifier(tree_feature_fraction=0.0).fit(X_train, y_train)
        with pytest.raises(ValidationError):
            RandomForestClassifier(tree_feature_fraction=1.5).fit(X_train, y_train)


class TestPredict:
    def test_predict_all_shape(self, bc_forest, bc_data):
        _, X_test, _, _ = bc_data
        all_predictions = bc_forest.predict_all(X_test)
        assert all_predictions.shape == (9, X_test.shape[0])
        assert set(np.unique(all_predictions)) <= {-1, 1}

    def test_predict_is_majority_of_predict_all(self, bc_forest, bc_data):
        _, X_test, _, _ = bc_data
        all_predictions = bc_forest.predict_all(X_test)
        votes = (all_predictions == 1).sum(axis=0)
        expected = np.where(votes * 2 > 9, 1, -1)  # 9 trees, odd: no ties
        assert np.array_equal(bc_forest.predict(X_test), expected)

    def test_predict_proba_rows_sum_to_one(self, bc_forest, bc_data):
        _, X_test, _, _ = bc_data
        proba = bc_forest.predict_proba(X_test)
        assert proba.shape == (X_test.shape[0], 2)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_score_reasonable(self, bc_forest, bc_data):
        _, X_test, _, y_test = bc_data
        assert bc_forest.score(X_test, y_test) > 0.8

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            RandomForestClassifier().predict(np.zeros((1, 2)))
        with pytest.raises(NotFittedError):
            RandomForestClassifier().predict_all(np.zeros((1, 2)))


class TestStructure:
    def test_structure_arrays(self, bc_forest):
        structure = bc_forest.structure()
        assert structure["depth"].shape == (9,)
        assert structure["n_leaves"].shape == (9,)
        assert (structure["depth"] <= 8).all()

    def test_total_leaves(self, bc_forest):
        assert bc_forest.total_leaves() == int(bc_forest.structure()["n_leaves"].sum())

    def test_roots_are_tree_roots(self, bc_forest):
        roots = bc_forest.roots()
        assert len(roots) == 9
        assert all(root is tree.root_ for root, tree in zip(roots, bc_forest.trees_))


class TestParallelFit:
    def test_n_jobs_bitwise_identical(self, bc_data):
        X_train, _, y_train, _ = bc_data
        serial = RandomForestClassifier(
            n_estimators=5, max_depth=5, random_state=3
        ).fit(X_train, y_train)
        pooled = RandomForestClassifier(
            n_estimators=5, max_depth=5, random_state=3, n_jobs=2
        ).fit(X_train, y_train)
        assert _forest_fingerprint(serial) == _forest_fingerprint(pooled)

    def test_n_jobs_minus_one_runs(self, bc_data):
        X_train, _, y_train, _ = bc_data
        forest = RandomForestClassifier(
            n_estimators=3, max_depth=4, random_state=4, n_jobs=-1
        ).fit(X_train, y_train)
        assert forest.n_trees_ == 3

    def test_invalid_n_jobs_rejected(self, bc_data):
        X_train, _, y_train, _ = bc_data
        for bad in (0, -2, 1.5, True):
            with pytest.raises(ValidationError):
                RandomForestClassifier(
                    n_estimators=2, max_depth=3, n_jobs=bad
                ).fit(X_train, y_train)


class TestRefitTrees:
    def test_only_selected_slots_change(self, bc_data):
        X_train, _, y_train, _ = bc_data
        forest = RandomForestClassifier(
            n_estimators=5, max_depth=5, random_state=6
        ).fit(X_train, y_train)
        before = _forest_fingerprint(forest)
        forest.refit_trees([1, 3], X_train, y_train)
        after = _forest_fingerprint(forest)
        for slot in (0, 2, 4):
            assert after[0][slot] == before[0][slot]
            assert after[1][slot] == before[1][slot]
        # Refitted slots get a fresh draw from their private stream.
        assert after[0][1] != before[0][1] or after[1][1] != before[1][1]

    def test_refit_order_independent(self, bc_data):
        X_train, _, y_train, _ = bc_data

        def fresh():
            return RandomForestClassifier(
                n_estimators=5, max_depth=5, random_state=6
            ).fit(X_train, y_train)

        together = fresh().refit_trees([1, 3], X_train, y_train)
        separately = fresh().refit_trees([3], X_train, y_train).refit_trees(
            [1], X_train, y_train
        )
        assert _forest_fingerprint(together) == _forest_fingerprint(separately)

    def test_refit_with_weights_changes_fit(self, bc_data):
        X_train, _, y_train, _ = bc_data
        forest = RandomForestClassifier(
            n_estimators=3, max_depth=4, tree_feature_fraction=1.0, random_state=7
        ).fit(X_train, y_train)
        weights = np.ones(X_train.shape[0])
        weights[:5] = 100.0
        forest.refit_trees([0], X_train, y_train, sample_weight=weights)
        assert forest.trees_[0].predict(X_train[:5]).tolist() == y_train[:5].tolist()

    def test_refit_invalidates_compiled_cache(self, bc_data):
        X_train, X_test, y_train, _ = bc_data
        forest = RandomForestClassifier(
            n_estimators=3, max_depth=4, random_state=8
        ).fit(X_train, y_train)
        forest.compile()
        forest.refit_trees([2], X_train, y_train)
        assert forest._compiled_ is None
        # Predictions after refit come from the new trees.
        expected = np.stack([t.predict(X_test) for t in forest.trees_])
        assert np.array_equal(forest.predict_all(X_test), expected)

    def test_out_of_range_indices_rejected(self, bc_data):
        X_train, _, y_train, _ = bc_data
        forest = RandomForestClassifier(
            n_estimators=3, max_depth=3, random_state=9
        ).fit(X_train, y_train)
        with pytest.raises(ValidationError):
            forest.refit_trees([3], X_train, y_train)
        with pytest.raises(ValidationError):
            forest.refit_trees([-1], X_train, y_train)

    def test_empty_indices_noop(self, bc_data):
        X_train, _, y_train, _ = bc_data
        forest = RandomForestClassifier(
            n_estimators=3, max_depth=3, random_state=10
        ).fit(X_train, y_train)
        before = _forest_fingerprint(forest)
        forest.refit_trees([], X_train, y_train)
        assert _forest_fingerprint(forest) == before

    def test_unfitted_raises(self, bc_data):
        X_train, _, y_train, _ = bc_data
        with pytest.raises(NotFittedError):
            RandomForestClassifier().refit_trees([0], X_train, y_train)


class TestWithRoots:
    def test_clone_shares_metadata_not_caches(self, bc_forest, bc_data):
        _, X_test, _, _ = bc_data
        bc_forest.compile()
        clone = bc_forest.with_roots([t.root_ for t in bc_forest.trees_])
        assert clone._compiled_ is None
        assert all(t._compiled_ is None for t in clone.trees_)
        assert all(t._compiled_sources_ is None for t in clone.trees_)
        assert np.array_equal(clone.predict_all(X_test), bc_forest.predict_all(X_test))
        assert clone.classes_ is bc_forest.classes_
        assert clone.n_features_in_ == bc_forest.n_features_in_

    def test_donor_unaffected(self, bc_forest):
        from repro.trees.node import Leaf

        roots_before = bc_forest.roots()
        clone = bc_forest.with_roots([Leaf(1, {1: 1.0})] * bc_forest.n_trees_)
        assert bc_forest.roots() == roots_before
        assert all(root.is_leaf for root in clone.roots())

    def test_wrong_root_count_rejected(self, bc_forest):
        with pytest.raises(ValidationError, match="roots"):
            bc_forest.with_roots([bc_forest.trees_[0].root_])

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            RandomForestClassifier().with_roots([])


class TestCloneWith:
    def test_overrides_apply(self):
        forest = RandomForestClassifier(n_estimators=7, max_depth=3)
        clone = forest.clone_with(n_estimators=2)
        assert clone.n_estimators == 2
        assert clone.max_depth == 3
        assert clone.trees_ is None  # unfitted

    def test_unknown_override_raises(self):
        with pytest.raises(ValidationError, match="unknown"):
            RandomForestClassifier().clone_with(bogus=1)
