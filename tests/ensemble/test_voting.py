"""Tests for vote aggregation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ensemble import majority_vote, vote_margin
from repro.exceptions import ValidationError

CLASSES = np.array([-1, 1])


class TestMajorityVote:
    def test_unanimous(self):
        preds = np.array([[1, -1], [1, -1], [1, -1]])
        assert np.array_equal(majority_vote(preds, CLASSES), [1, -1])

    def test_simple_majority(self):
        preds = np.array([[1], [1], [-1]])
        assert majority_vote(preds, CLASSES)[0] == 1

    def test_tie_breaks_to_smallest_label(self):
        preds = np.array([[1], [-1]])
        assert majority_vote(preds, CLASSES)[0] == -1

    def test_multiclass(self):
        preds = np.array([[0, 2], [2, 2], [2, 1]])
        out = majority_vote(preds, np.array([0, 1, 2]))
        assert np.array_equal(out, [2, 2])

    def test_rejects_non_2d(self):
        with pytest.raises(ValidationError, match="2-D"):
            majority_vote(np.array([1, -1]), CLASSES)

    def test_rejects_unknown_labels(self):
        with pytest.raises(ValidationError, match="outside"):
            majority_vote(np.array([[7]]), CLASSES)

    @given(
        st.integers(min_value=1, max_value=9),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_winner_has_weak_plurality(self, n_trees, n_samples, seed):
        gen = np.random.default_rng(seed)
        preds = gen.choice([-1, 1], size=(n_trees, n_samples))
        winners = majority_vote(preds, CLASSES)
        for j, winner in enumerate(winners):
            wins = (preds[:, j] == winner).sum()
            losses = n_trees - wins
            assert wins >= losses or (wins == losses and winner == -1)


class TestVoteMargin:
    def test_fractions(self):
        preds = np.array([[1, -1], [1, 1], [-1, -1], [1, -1]])
        margin = vote_margin(preds)
        assert margin[0] == pytest.approx(0.75)
        assert margin[1] == pytest.approx(0.25)

    def test_custom_positive_label(self):
        preds = np.array([[2], [2], [0]])
        assert vote_margin(preds, positive_label=2)[0] == pytest.approx(2 / 3)

    def test_rejects_non_2d(self):
        with pytest.raises(ValidationError):
            vote_margin(np.array([1, 2, 3]))
