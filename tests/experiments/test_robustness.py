"""Smoke tests for the robustness (future-work attacker) drivers."""

import pytest

from repro.experiments import (
    SMALL,
    extraction_table,
    modification_table,
    pruning_table,
)

TINY = SMALL.with_overrides(
    dataset_sizes={"mnist26": 120, "breast-cancer": 200, "ijcnn1": 260},
    n_estimators=6,
    base_params={"max_depth": 7, "min_samples_leaf": 1},
    escalation_factor=3.0,
)


class TestModificationTable:
    def test_rows_and_monotone_damage(self):
        rows = modification_table(
            TINY, truncate_depths=(5, 1), flip_probabilities=(0.0, 0.5)
        )
        assert len(rows) == 4
        truncate = [r for r in rows if r.attack == "truncate"]
        # Harsher truncation cannot preserve more of the watermark.
        assert truncate[1].watermark_match_rate <= truncate[0].watermark_match_rate + 1e-9
        flip = [r for r in rows if r.attack == "flip"]
        assert flip[0].watermark_accepted  # p=0 is the identity attack
        assert flip[0].watermark_match_rate == 1.0


class TestPruningTable:
    def test_rows(self):
        rows = pruning_table(TINY, alphas=(0.0, 5.0))
        assert [r.strength for r in rows] == [0.0, 5.0]
        for r in rows:
            assert 0.0 <= r.watermark_match_rate <= 1.0
            assert 0.0 <= r.accuracy <= 1.0
        # Heavy pruning hurts the watermark at least as much as none.
        assert rows[1].watermark_match_rate <= rows[0].watermark_match_rate + 1e-9


class TestExtractionTable:
    def test_watermark_never_survives(self):
        rows = extraction_table(TINY, query_budgets=(60,))
        assert len(rows) == 1
        assert not rows[0].watermark_accepted
