"""Tests for the generic scenario-matrix runner."""

import json

import numpy as np
import pytest

from repro.api import LeafFlipAttack, make_attack
from repro.exceptions import ValidationError
from repro.experiments import (
    SMALL,
    build_attack_target,
    run_scenario_matrix,
)

TINY = SMALL.with_overrides(
    dataset_sizes={"mnist26": 120, "breast-cancer": 200, "ijcnn1": 260},
    n_estimators=6,
    base_params={"max_depth": 7, "min_samples_leaf": 1},
    escalation_factor=3.0,
)


class TestBuildAttackTarget:
    def test_bundles_model_and_split(self):
        target = build_attack_target(TINY, "breast-cancer")
        assert target.model.ensemble.n_trees_ == TINY.n_estimators
        assert target.X_test.shape[0] == target.y_test.shape[0]
        assert 0.0 <= target.baseline_accuracy <= 1.0


class TestRunScenarioMatrix:
    def test_cell_grid_shape_and_order(self):
        cells = run_scenario_matrix(
            TINY,
            attacks=("truncate", "flip"),
            strengths={"truncate": (5, 1), "flip": (0.0, 0.5)},
            datasets=("breast-cancer",),
        )
        assert [(c.attack, c.strength) for c in cells] == [
            ("truncate", 5.0), ("truncate", 1.0), ("flip", 0.0), ("flip", 0.5),
        ]
        assert all(c.dataset == "breast-cancer" for c in cells)

    def test_same_seed_couples_flip_strengths_monotonically(self):
        cells = run_scenario_matrix(
            TINY,
            attacks=("flip",),
            strengths={"flip": (0.05, 0.15, 0.3)},
            datasets=("breast-cancer",),
        )
        rates = [c.report.watermark_match_rate for c in cells]
        assert rates == sorted(rates, reverse=True)

    def test_accepts_configured_instances(self):
        cells = run_scenario_matrix(
            TINY,
            attacks=(LeafFlipAttack(probability=0.0),),
            datasets=("breast-cancer",),
        )
        assert len(cells) == 1
        assert cells[0].strength is None
        assert cells[0].report.watermark_match_rate == 1.0

    def test_composite_attack_runs_through_matrix(self):
        cells = run_scenario_matrix(
            TINY, attacks=("chain",), datasets=("breast-cancer",)
        )
        assert cells[0].attack == "chain"
        assert [s["name"] for s in cells[0].report.params["stages"]] == [
            "truncate", "flip", "prune",
        ]

    def test_cells_serialise_to_json(self):
        cells = run_scenario_matrix(
            TINY,
            attacks=("truncate",),
            strengths={"truncate": (3,)},
            datasets=("breast-cancer",),
        )
        payload = json.loads(json.dumps([c.to_dict() for c in cells]))
        assert payload[0]["dataset"] == "breast-cancer"
        assert payload[0]["report"]["attack"] == "truncate"

    def test_deterministic_across_runs(self):
        kwargs = dict(
            attacks=("flip",),
            strengths={"flip": (0.4,)},
            datasets=("breast-cancer",),
        )
        first = run_scenario_matrix(TINY, **kwargs)[0].report.to_dict()
        second = run_scenario_matrix(TINY, **kwargs)[0].report.to_dict()
        first.pop("cost"), second.pop("cost")  # wall-clock timings differ
        assert first == second

    def test_traffic_axis_cross_product(self):
        cells = run_scenario_matrix(
            TINY,
            attacks=("truncate",),
            strengths={"truncate": (5, 3)},
            datasets=("breast-cancer",),
            traffic=("legit", "verification-probe"),
            traffic_queries=1024,
            traffic_batch_size=256,
        )
        # 2 strengths × 2 traffic scenarios, traffic-minor order
        assert [(c.strength, c.traffic) for c in cells] == [
            (5.0, "legit"), (5.0, "verification-probe"),
            (3.0, "legit"), (3.0, "verification-probe"),
        ]
        # one replay per (dataset, scenario), shared across attack cells
        assert cells[0].traffic_report is cells[2].traffic_report
        legit = cells[0].traffic_report
        probe = cells[1].traffic_report
        assert legit.n_queries == probe.n_queries == 1024
        assert not any(v.fired for v in legit.verdicts)
        assert probe.n_trigger_queries > 0
        # the attack report is the same object regardless of traffic
        assert cells[0].report is cells[1].report
        payload = json.loads(json.dumps([c.to_dict() for c in cells]))
        assert payload[1]["traffic"] == "verification-probe"
        assert payload[1]["traffic_report"]["stream"] == "mixed"

    def test_no_traffic_axis_keeps_legacy_shape(self):
        cells = run_scenario_matrix(
            TINY,
            attacks=("truncate",),
            strengths={"truncate": (5,)},
            datasets=("breast-cancer",),
        )
        assert len(cells) == 1
        assert cells[0].traffic is None
        assert cells[0].traffic_report is None
        assert cells[0].to_dict()["traffic_report"] is None

    def test_rejects_bad_specs(self):
        with pytest.raises(ValidationError, match="at least one attack"):
            run_scenario_matrix(TINY, attacks=(), datasets=("breast-cancer",))
        with pytest.raises(ValidationError, match="unknown attack"):
            run_scenario_matrix(
                TINY, attacks=("nope",), datasets=("breast-cancer",)
            )
        with pytest.raises(ValidationError, match="no strength"):
            run_scenario_matrix(
                TINY,
                attacks=("chain",),
                strengths={"chain": (1, 2)},
                datasets=("breast-cancer",),
            )
        with pytest.raises(ValidationError, match="Attack instances"):
            run_scenario_matrix(
                TINY, attacks=(object(),), datasets=("breast-cancer",)
            )
