"""Tests for the table renderer."""

import pytest

from repro.exceptions import ValidationError
from repro.experiments import format_table, rows_to_cells


class TestFormatTable:
    def test_basic_rendering(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["x", "y"]])
        lines = text.splitlines()
        assert lines[0].split() == ["a", "bb"]
        assert set(lines[1]) <= {"-", " "}
        assert lines[2].split() == ["1", "2.5"]

    def test_empty_rows_ok(self):
        text = format_table(["only"], [])
        assert "only" in text

    def test_column_alignment(self):
        text = format_table(["name", "v"], [["longvalue", 1], ["s", 22]])
        lines = text.splitlines()
        # All data lines place column 2 at the same offset.
        offset1 = lines[2].index("1")
        offset2 = lines[3].index("22")
        assert offset1 == offset2

    def test_float_formatting(self):
        text = format_table(["x"], [[0.123456789]])
        assert "0.1235" in text

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            format_table(["a"], [[1, 2]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ValidationError):
            format_table([], [])


class TestRowsToCells:
    def test_extracts_fields(self):
        from dataclasses import dataclass

        @dataclass
        class Row:
            a: int
            b: str

        rows = [Row(1, "x"), Row(2, "y")]
        assert rows_to_cells(rows, ["b", "a"]) == [["x", 1], ["y", 2]]
