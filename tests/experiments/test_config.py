"""Tests for experiment configuration."""

import pytest

from repro.experiments import FULL, MEDIUM, SMALL, ExperimentConfig, prepare_split


class TestConfig:
    def test_presets_cover_all_datasets(self):
        for config in (SMALL, MEDIUM, FULL):
            assert set(config.dataset_sizes) == {"mnist26", "breast-cancer", "ijcnn1"}

    def test_full_matches_paper_sizes(self):
        assert FULL.dataset_sizes == {
            "mnist26": 13866,
            "breast-cancer": 569,
            "ijcnn1": 10000,
        }
        assert FULL.n_estimators == 100
        assert FULL.base_params is None  # real grid search

    def test_with_overrides(self):
        config = SMALL.with_overrides(n_estimators=4)
        assert config.n_estimators == 4
        assert config.dataset_sizes == SMALL.dataset_sizes
        assert SMALL.n_estimators != 4  # original untouched

    def test_with_overrides_names_unknown_fields(self):
        from repro.exceptions import ValidationError

        with pytest.raises(ValidationError, match="'n_estimator'"):
            SMALL.with_overrides(n_estimator=4)  # typo'd field
        with pytest.raises(ValidationError, match="valid fields.*n_estimators"):
            SMALL.with_overrides(n_estimator=4)
        # Multiple offenders are all named.
        with pytest.raises(ValidationError, match="'bad_one'.*'bad_two'"):
            SMALL.with_overrides(bad_two=1, bad_one=2)

    def test_trigger_size(self):
        config = SMALL.with_overrides(trigger_fraction=0.02)
        assert config.trigger_size(500) == 10
        assert config.trigger_size(10) == 1  # floor of 1

    def test_prepare_split_shapes(self):
        config = SMALL.with_overrides(
            dataset_sizes={"mnist26": 80, "breast-cancer": 120, "ijcnn1": 150}
        )
        X_train, X_test, y_train, y_test = prepare_split(config, "breast-cancer")
        assert X_train.shape[0] + X_test.shape[0] == 120
        assert X_train.shape[1] == 30

    def test_prepare_split_deterministic(self):
        import numpy as np

        config = SMALL.with_overrides(dataset_sizes={"breast-cancer": 100, "mnist26": 80, "ijcnn1": 150})
        a = prepare_split(config, "breast-cancer")
        b = prepare_split(config, "breast-cancer")
        assert np.array_equal(a[0], b[0])
