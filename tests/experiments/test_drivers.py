"""Smoke tests for the experiment drivers (tiny configurations).

These verify each table/figure driver runs end-to-end and produces rows
with the right shape and sane values; the benchmarks run the real
(larger) versions.
"""

import math

import pytest

from repro.experiments import (
    SMALL,
    accuracy_vs_ones_fraction,
    accuracy_vs_trigger_fraction,
    detection_table,
    forged_instance_study,
    forgery_epsilon_sweep,
    forgery_tabular_results,
)

TINY = SMALL.with_overrides(
    dataset_sizes={"mnist26": 120, "breast-cancer": 160, "ijcnn1": 260},
    n_estimators=6,
    base_params={"max_depth": 7, "min_samples_leaf": 1},
    escalation_factor=3.0,
)


class TestAccuracyDrivers:
    def test_fig3a_rows(self):
        rows = accuracy_vs_trigger_fraction(
            TINY, fractions=(0.02, 0.04), datasets=("breast-cancer",)
        )
        assert len(rows) == 2
        for row in rows:
            assert row.dataset == "breast-cancer"
            assert 0.0 <= row.watermarked_accuracy <= 1.0
            assert 0.0 <= row.standard_accuracy <= 1.0
            assert row.accuracy_loss == pytest.approx(
                row.standard_accuracy - row.watermarked_accuracy
            )

    def test_fig3b_rows(self):
        rows = accuracy_vs_ones_fraction(
            TINY, percents=(20, 50), datasets=("breast-cancer",)
        )
        assert [row.x_value for row in rows] == [20.0, 50.0]


class TestDetectionDriver:
    def test_table2_rows(self):
        rows = detection_table(TINY, datasets=("breast-cancer",))
        assert len(rows) == 4  # 2 statistics x 2 strategies
        for row in rows:
            assert row.n_correct + row.n_wrong + row.n_uncertain == TINY.n_estimators
            assert row.std >= 0.0


class TestForgeryDrivers:
    def test_fig4_sweep(self):
        rows = forgery_epsilon_sweep(
            TINY,
            dataset="breast-cancer",
            epsilons=(0.3, 0.8),
            n_signatures=1,
            max_instances=6,
            solver_budget=20_000,
        )
        assert [row.epsilon for row in rows] == [0.3, 0.8]
        for row in rows:
            assert 0 <= row.mean_forged_size <= 6
            assert row.original_trigger_size >= 1
        # More distortion budget never hurts the forger.
        assert rows[1].mean_forged_size >= rows[0].mean_forged_size - 1e-9

    def test_tabular_results(self):
        rows = forgery_tabular_results(
            TINY,
            datasets=("breast-cancer",),
            epsilons=(0.1,),
            n_signatures=1,
            max_instances=5,
            solver_budget=20_000,
        )
        assert len(rows) == 1
        assert rows[0].dataset == "breast-cancer"

    def test_fig5_study(self):
        rows = forged_instance_study(
            TINY,
            dataset="breast-cancer",
            epsilons=(0.5,),
            max_instances=6,
            solver_budget=20_000,
        )
        assert len(rows) == 1
        row = rows[0]
        if row.n_forged > 0:
            assert 0.0 <= row.mean_linf <= 0.5 + 1e-9
            assert not math.isnan(row.standard_accuracy_on_forged)
