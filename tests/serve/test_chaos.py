"""Chaos battery: seeded fault plans over the full serving stack.

The two invariants the resilience layer exists for:

1. **Ledger**: under injected faults every logical request ends in
   exactly one of {success with *correct* data, typed client error,
   honest 5xx / typed transport failure} — never a hang, never a wrong
   answer, never an untyped exception.
2. **Verdict integrity**: with retries and idempotency keys in play,
   the served ``/verify`` traffic verdict stays bit-for-bit equal to
   offline ``detect_bits(behavioural_rates(...))`` over the logical
   queries — a retried batch is never double-counted.

Everything is seeded (fault plan, retry jitter), so a chaos run is a
deterministic regression test, not a flake generator.
"""

from __future__ import annotations

import socket
import threading
import time

import numpy as np
import pytest

from repro.attacks.detection import behavioural_rates, detect_bits
from repro.faults import FaultPlan, FaultSpec
from repro.persistence import save
from repro.serve import (
    BackgroundServer,
    ModelRegistry,
    RetryPolicy,
    ServeClientError,
    ServeConnectionError,
    ServeTimeout,
    ServingUnavailable,
)

CHAOS_SEED = 20260808
RETRY = RetryPolicy(max_attempts=8, base_delay=0.005, max_delay=0.02)


def _chaos_registry(wm_model, injector, **budget):
    budget.setdefault("max_failures", 10**6)  # quarantine tested separately
    registry = ModelRegistry(fault_injector=injector, **budget)
    registry.add("wm", wm_model)
    return registry


def _drive(server, X, n_requests, rows_per_request, *, seed):
    """Sequential chaos client; returns the outcome ledger."""
    outcomes = []
    with server.client(timeout=5.0, retry=RETRY, retry_seed=seed) as client:
        for i in range(n_requests):
            start = (i * rows_per_request) % (len(X) - rows_per_request)
            rows = X[start : start + rows_per_request]
            try:
                out = client.predict_all("wm", rows)
            except ServingUnavailable as exc:
                outcomes.append(("unavailable", exc.status))
            except ServeClientError as exc:
                kind = "client-error" if exc.status < 500 else "server-error"
                outcomes.append((kind, exc.status))
            except (ServeTimeout, ServeConnectionError):
                outcomes.append(("transport", None))
            else:
                outcomes.append(("ok", out["n_rows"]))
        retries = client.n_retries
    return outcomes, retries


class TestLedgerInvariant:
    def test_every_request_lands_in_exactly_one_bucket(
        self, wm_model, bc_data
    ):
        """10-30% faults: correct successes or typed failures, nothing else."""
        X = bc_data[0]
        direct = wm_model.ensemble.predict_all(X)
        injector = FaultPlan.chaos(CHAOS_SEED, rate=0.25).compile()
        registry = _chaos_registry(wm_model, injector)
        n_requests, rows_per = 40, 4

        with BackgroundServer(
            registry, flush_window=0.0, fault_injector=injector
        ) as server:
            outcomes = []
            with server.client(
                timeout=5.0, retry=RETRY, retry_seed=CHAOS_SEED
            ) as client:
                for i in range(n_requests):
                    start = (i * rows_per) % (len(X) - rows_per)
                    rows = X[start : start + rows_per]
                    try:
                        out = client.predict_all("wm", rows)
                    except ServeClientError as exc:
                        # Typed, with an honest status: 4xx means "your
                        # request", 5xx means "the engine".
                        assert 400 <= exc.status < 600
                        outcomes.append("error")
                    except (ServeTimeout, ServeConnectionError):
                        outcomes.append("transport")
                    else:
                        # Success must mean *correct*: the response
                        # equals the offline engine answer exactly.
                        assert np.array_equal(
                            np.asarray(out["per_tree"]),
                            direct[:, start : start + rows_per],
                        )
                        outcomes.append("ok")

        assert len(outcomes) == n_requests
        # The plan really did hurt: faults fired at every covered site,
        # yet retries recovered most of the traffic.
        counts = injector.counts()
        assert counts["engine.call"]["fired"] > 0
        assert counts["conn.reset"]["fired"] > 0
        assert outcomes.count("ok") > n_requests // 2

    def test_same_seed_replays_the_same_run(self, wm_model, bc_data):
        """The whole chaos run is a pure function of its seeds."""
        X = bc_data[0]

        def one_run():
            injector = FaultPlan.chaos(CHAOS_SEED, rate=0.25).compile()
            registry = _chaos_registry(wm_model, injector)
            with BackgroundServer(
                registry, flush_window=0.0, fault_injector=injector
            ) as server:
                outcomes, retries = _drive(
                    server, X, 30, 4, seed=CHAOS_SEED
                )
            return outcomes, retries, injector.counts()

        first = one_run()
        second = one_run()
        assert first == second


class TestVerdictUnderChaos:
    def test_served_verdict_equals_offline_despite_faults(
        self, wm_model, bc_data
    ):
        """Retries + idempotency keep the Table-2 statistic exact."""
        X = bc_data[0][:120]
        injector = FaultPlan.chaos(CHAOS_SEED, rate=0.2).compile()
        registry = _chaos_registry(wm_model, injector)

        with BackgroundServer(
            registry, flush_window=0.0, fault_injector=injector
        ) as server:
            with server.client(
                timeout=5.0, retry=RETRY, retry_seed=CHAOS_SEED
            ) as client:
                for start in range(0, 120, 8):
                    client.predict_all("wm", X[start : start + 8])
                out = client.verify(
                    "wm", wm_model.signature.to_string(), strategy="bands"
                )
                retries = client.n_retries
            served = registry.get("wm")
            n_queries = served.n_queries

        # Every row was counted exactly once — retries and replayed
        # responses never inflate the stream.
        assert n_queries == 120
        assert out["observer"]["n_queries"] == 120
        # The run must actually have retried (otherwise this test
        # proves nothing about dedup).
        assert retries > 0
        offline = detect_bits(
            behavioural_rates(wm_model.ensemble.predict_all(X)),
            wm_model.signature.bits,
            "bands",
        )
        traffic = out["traffic"]
        assert traffic["n_correct"] == offline.n_correct
        assert traffic["n_wrong"] == offline.n_wrong
        assert traffic["n_uncertain"] == offline.n_uncertain
        assert traffic["predicted"] == list(offline.predicted)
        assert traffic["mean"] == pytest.approx(offline.mean)


class TestIdempotencyDedup:
    def test_same_key_served_once(self, wm_model, bc_data):
        X = bc_data[0][:4]
        registry = ModelRegistry()
        registry.add("wm", wm_model)
        with BackgroundServer(registry, flush_window=0.0) as server:
            with server.client() as client:
                payload = {"rows": X.tolist()}
                headers = {"Idempotency-Key": "dedup-me"}
                s1, d1, _ = client.request(
                    "POST", "/v1/models/wm/predict_all", payload,
                    headers=headers,
                )
                s2, d2, _ = client.request(
                    "POST", "/v1/models/wm/predict_all", payload,
                    headers=headers,
                )
                # A different key is a different logical request.
                s3, _, _ = client.request(
                    "POST", "/v1/models/wm/predict_all", payload,
                    headers={"Idempotency-Key": "another"},
                )
            n_queries = registry.get("wm").n_queries
        assert s1 == s2 == s3 == 200
        assert d1 == d2  # replayed verbatim
        assert n_queries == 8  # 4 rows x 2 logical requests, not 3

    def test_key_is_scoped_by_route(self, wm_model, bc_data):
        X = bc_data[0][:2]
        registry = ModelRegistry()
        registry.add("wm", wm_model)
        with BackgroundServer(registry, flush_window=0.0) as server:
            with server.client() as client:
                headers = {"Idempotency-Key": "shared"}
                s1, d1, _ = client.request(
                    "POST", "/v1/models/wm/predict_all",
                    {"rows": X.tolist()}, headers=headers,
                )
                s2, d2, _ = client.request(
                    "POST", "/v1/models/wm/predict",
                    {"rows": X.tolist()}, headers=headers,
                )
        assert s1 == s2 == 200
        assert "per_tree" in d1 and "predictions" in d2  # not a replay


class TestQuarantine:
    def test_failing_model_quarantined_then_recovers(self, wm_model, bc_data):
        X = bc_data[0][:2]
        # Every engine call fails until the injector is disarmed.
        plan = FaultPlan(
            [FaultSpec(site="engine.call", rate=1.0, kinds=("error",))],
            seed=1,
        )
        injector = plan.compile()
        registry = ModelRegistry(
            fault_injector=injector,
            max_failures=2,
            failure_window=30.0,
            quarantine_seconds=0.5,
        )
        served = registry.add("wm", wm_model)
        with BackgroundServer(registry, flush_window=0.0) as server:
            with server.client() as client:
                # First failure: degraded, honest 503.
                with pytest.raises(ServeClientError) as excinfo:
                    client.predict_all("wm", X)
                assert excinfo.value.status == 503
                assert client.health()["status"] == "degraded"
                assert client.health()["model_health"]["wm"] == "degraded"

                # Second failure trips the budget: quarantined.
                with pytest.raises(ServeClientError):
                    client.predict_all("wm", X)
                assert client.health()["model_health"]["wm"] == "quarantined"

                # Fail-fast while quarantined: 503 without an engine call.
                engine_events = injector.counts()["engine.call"]["events"]
                status, data, headers = client.request(
                    "POST",
                    "/v1/models/wm/predict_all",
                    {"rows": X.tolist()},
                )
                assert status == 503
                assert "quarantined" in data["error"]
                assert int(headers["Retry-After"]) >= 1
                assert (
                    injector.counts()["engine.call"]["events"]
                    == engine_events
                )

                # Disarm the faults; after the cooldown traffic flows.
                served.fault_injector = None
                time.sleep(0.6)
                out = client.predict_all("wm", X)
                assert out["n_rows"] == 2
                assert client.health()["status"] == "ok"
                assert client.health()["model_health"]["wm"] == "healthy"


class TestHotReload:
    def test_reload_swaps_engine_and_resets_observer(
        self, wm_model, bc_forest, bc_data, tmp_path
    ):
        X = bc_data[0][:8]
        artefact = tmp_path / "fresh.rfbin"
        save(bc_forest, artefact)
        registry = ModelRegistry()
        registry.add("wm", wm_model)
        with BackgroundServer(registry, flush_window=0.0) as server:
            with server.client() as client:
                client.predict_all("wm", X)  # some pre-reload traffic
                out = client.reload("wm", artefact)
                assert out["reloaded"] is True
                assert out["watermarked"] is False
                assert out["n_queries"] == 0  # fresh engine, fresh stream
                post = client.predict("wm", X)
            assert registry.get("wm").source == str(artefact)
        assert post["predictions"] == bc_forest.predict(X).tolist()

    def test_corrupt_artefact_rejected_old_engine_kept(
        self, wm_model, bc_forest, bc_data, tmp_path
    ):
        X = bc_data[0][:8]
        direct = wm_model.ensemble.predict_all(X)
        artefact = tmp_path / "fresh.rfbin"
        save(bc_forest, artefact)
        # Truncate: the loader must refuse it before any swap happens.
        blob = artefact.read_bytes()
        artefact.write_bytes(blob[: len(blob) // 2])
        registry = ModelRegistry()
        registry.add("wm", wm_model)
        with BackgroundServer(registry, flush_window=0.0) as server:
            with server.client() as client:
                with pytest.raises(ServeClientError) as excinfo:
                    client.reload("wm", artefact)
                assert excinfo.value.status == 409
                assert "old engine kept" in excinfo.value.payload["error"]
                out = client.predict_all("wm", X)
        assert np.array_equal(np.asarray(out["per_tree"]), direct)

    def test_injected_corruption_rejected(
        self, wm_model, bc_forest, bc_data, tmp_path
    ):
        """The artefact.corrupt site: a bit flip must fail the CRC gate."""
        artefact = tmp_path / "fresh.rfbin"
        save(bc_forest, artefact)
        plan = FaultPlan(
            [FaultSpec(site="artefact.corrupt", rate=1.0)], seed=3
        )
        registry = ModelRegistry(fault_injector=plan.compile())
        registry.add("wm", wm_model)
        with BackgroundServer(registry, flush_window=0.0) as server:
            with server.client() as client:
                with pytest.raises(ServeClientError) as excinfo:
                    client.reload("wm", artefact)
                assert excinfo.value.status == 409
                out = client.predict_all("wm", bc_data[0][:4])
        assert np.asarray(out["per_tree"]).shape == (10, 4)

    def test_reload_unknown_model_is_404(self, wm_model, tmp_path):
        registry = ModelRegistry()
        registry.add("wm", wm_model)
        with BackgroundServer(registry) as server:
            with server.client() as client:
                with pytest.raises(ServeClientError) as excinfo:
                    client.reload("ghost", tmp_path / "nope.rfbin")
                assert excinfo.value.status == 404

    def test_reload_missing_file_is_409(self, wm_model, tmp_path):
        registry = ModelRegistry()
        registry.add("wm", wm_model)
        with BackgroundServer(registry) as server:
            with server.client() as client:
                with pytest.raises(ServeClientError) as excinfo:
                    client.reload("wm", tmp_path / "missing.rfbin")
                assert excinfo.value.status == 409


class TestReadTimeout:
    def test_slow_loris_connection_is_cut(self, wm_model):
        registry = ModelRegistry()
        registry.add("wm", wm_model)
        with BackgroundServer(registry, read_timeout=0.3) as server:
            with socket.create_connection(
                (server.host, server.port), timeout=5.0
            ) as sock:
                sock.sendall(b"POST /v1/models/wm/predict HTTP/1.1\r\n")
                sock.settimeout(5.0)
                start = time.monotonic()
                # The daemon must cut us off, not wait forever for the
                # rest of the head.
                assert sock.recv(1024) == b""
                assert time.monotonic() - start < 3.0

    def test_fast_requests_unaffected(self, wm_model, bc_data):
        registry = ModelRegistry()
        registry.add("wm", wm_model)
        with BackgroundServer(registry, read_timeout=0.5) as server:
            with server.client() as client:
                for _ in range(3):
                    out = client.predict_all("wm", bc_data[0][:2])
                    assert out["n_rows"] == 2


class TestCalibrateRace:
    def test_concurrent_calibrate_and_traffic(self, wm_model, bc_data):
        """Calibration racing served traffic: no errors, sane end state."""
        X = bc_data[0]
        direct = wm_model.ensemble.predict_all(X)
        registry = ModelRegistry()
        registry.add("wm", wm_model)
        errors: list = []
        with BackgroundServer(registry, flush_window=0.002) as server:

            def traffic(slot: int) -> None:
                try:
                    with server.client() as client:
                        for i in range(slot, 96, 4):
                            out = client.predict_all(
                                "wm", X[i].reshape(1, -1)
                            )
                            assert np.array_equal(
                                np.asarray(out["per_tree"])[:, 0],
                                direct[:, i],
                            )
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)

            def calibrator() -> None:
                try:
                    with server.client() as client:
                        for _ in range(3):
                            client.calibrate("wm", X[:40])
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [
                threading.Thread(target=traffic, args=(slot,))
                for slot in range(4)
            ]
            threads.append(threading.Thread(target=calibrator))
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            assert not errors, f"racy failure: {errors[0]!r}"
            with server.client() as client:
                out = client.verify("wm", wm_model.signature.to_string())
            assert out["observer"]["calibrated"] is True
