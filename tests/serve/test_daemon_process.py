"""The ``repro serve`` CLI daemon as a real subprocess.

Builds a watermarked ``.rfbin`` artefact with the CLI, boots the daemon
on an ephemeral port, talks to it over real sockets, and checks the
SIGTERM path drains cleanly — the same lifecycle the CI smoke step runs.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.cli import main
from repro.persistence import load
from repro.persistence.serialize import secret_from_dict
from repro.serve import ServeClient

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def artefacts(tmp_path_factory):
    out_dir = tmp_path_factory.mktemp("serve-cli")
    rc = main(
        [
            "watermark",
            "--dataset", "breast-cancer",
            "--samples", "240",
            "--trees", "8",
            "--trigger-size", "6",
            "--max-depth", "8",
            "--format", "binary",
            "--seed", "5",
            "--out-dir", str(out_dir),
        ]
    )
    assert rc == 0 and (out_dir / "model.rfbin").exists()
    return out_dir


@pytest.fixture(scope="module")
def daemon(artefacts):
    env = {**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")}
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--model", f"demo={artefacts / 'model.rfbin'}",
            "--port", "0",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    try:
        host = port = None
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            line = process.stdout.readline()
            if not line:
                break
            if line.startswith("listening on http://"):
                address = line.strip().rsplit("/", 1)[-1]
                host, port = address.rsplit(":", 1)
                break
        if host is None:
            process.kill()
            pytest.fail("daemon never printed its listening address")
        yield process, host, int(port)
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10)


def test_daemon_serves_and_verifies(daemon, artefacts):
    process, host, port = daemon
    forest = load(artefacts / "model.rfbin")
    secret = secret_from_dict(
        json.loads((artefacts / "secret.json").read_text())
    )

    with ServeClient(host, port) as client:
        assert client.health()["status"] == "ok"
        assert client.models()[0]["name"] == "demo"

        X = secret.trigger_X
        out = client.predict("demo", X)
        assert out["predictions"] == forest.predict(X).tolist()

        out = client.predict_all("demo", X)
        assert np.array_equal(np.asarray(out["per_tree"]), forest.predict_all(X))

        out = client.verify(
            "demo",
            secret.signature.to_string(),
            trigger_rows=secret.trigger_X,
            trigger_labels=secret.trigger_y,
        )
        assert out["ownership"]["accepted"] is True
        assert out["observer"]["n_queries"] > 0


def test_sigterm_drains_cleanly(daemon):
    process, _host, _port = daemon
    process.send_signal(signal.SIGTERM)
    rc = process.wait(timeout=30)
    tail = process.stdout.read()
    assert rc == 0, f"daemon exited {rc}: {tail}"
    assert "drained cleanly" in tail
