"""Unit battery for the resilience primitives and typed client errors."""

from __future__ import annotations

import asyncio
import socket
import threading

import numpy as np
import pytest

from repro.exceptions import ReproError, ValidationError
from repro.serve import (
    CircuitBreaker,
    CircuitOpen,
    FailureBudget,
    IdempotencyCache,
    RequestAbandoned,
    RetryPolicy,
    ServeClient,
    ServeConnectionError,
    ServeTimeout,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestRetryPolicy:
    def test_backoff_ceiling_doubles_then_caps(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=0.5)

        class Max:
            def uniform(self, lo, hi):
                return hi

        rng = Max()
        delays = [policy.backoff(k, rng) for k in range(1, 6)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_retry_after_floors_the_jitter(self):
        policy = RetryPolicy(base_delay=0.01, max_delay=0.02)
        rng = np.random.default_rng(0)
        assert policy.backoff(1, rng, retry_after=3.0) == 3.0

    def test_jitter_is_seed_replayable(self):
        policy = RetryPolicy(base_delay=0.05)
        a = [policy.backoff(k, np.random.default_rng(7)) for k in range(1, 4)]
        b = [policy.backoff(k, np.random.default_rng(7)) for k in range(1, 4)]
        # Same fresh generator per call -> identical first draw; the
        # point is that a seeded client replays its whole schedule.
        assert a[0] == b[0]

    def test_validation(self):
        with pytest.raises(ValidationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValidationError):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ValidationError):
            RetryPolicy(deadline=0.0)


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout=1.0, clock=clock)
        for _ in range(3):
            breaker.allow()
            breaker.record_failure()
        assert breaker.state == "open"
        with pytest.raises(CircuitOpen) as excinfo:
            breaker.allow()
        assert 0 < excinfo.value.retry_after <= 1.0

    def test_success_resets_the_count(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_admits_exactly_one_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(1.5)
        assert breaker.state == "half-open"
        breaker.allow()  # the probe
        with pytest.raises(CircuitOpen):
            breaker.allow()  # concurrent call during the probe fails fast

    def test_probe_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(1.1)
        breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        breaker.allow()

    def test_probe_failure_reopens_with_fresh_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(1.1)
        breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        with pytest.raises(CircuitOpen):
            breaker.allow()
        clock.advance(1.1)
        breaker.allow()  # next probe admitted after the fresh cooldown

    def test_circuit_open_is_typed(self):
        assert issubclass(CircuitOpen, ReproError)


class TestFailureBudget:
    def test_lifecycle_healthy_degraded_quarantined(self):
        clock = FakeClock()
        budget = FailureBudget(
            max_failures=3, window=10.0, quarantine_seconds=5.0, clock=clock
        )
        assert budget.state() == "healthy"
        budget.record_failure()
        assert budget.state() == "degraded"
        budget.record_failure()
        budget.record_failure()
        assert budget.state() == "quarantined"
        assert budget.retry_after() == pytest.approx(5.0)
        clock.advance(5.1)
        assert budget.state() == "healthy"  # quarantine lapsed, budget reset
        assert budget.retry_after() == 0.0

    def test_old_failures_fall_out_of_window(self):
        clock = FakeClock()
        budget = FailureBudget(max_failures=2, window=10.0, clock=clock)
        budget.record_failure()
        clock.advance(11.0)
        budget.record_failure()
        assert budget.state() == "degraded"  # only one failure in window

    def test_success_decays_the_window(self):
        clock = FakeClock()
        budget = FailureBudget(max_failures=5, window=30.0, clock=clock)
        budget.record_failure()
        budget.record_success()
        assert budget.state() == "healthy"

    def test_telemetry_counts(self):
        clock = FakeClock()
        budget = FailureBudget(max_failures=1, quarantine_seconds=1.0, clock=clock)
        budget.record_failure()
        assert budget.n_failures == 1
        assert budget.n_quarantines == 1


class TestIdempotencyCache:
    def run(self, coro):
        return asyncio.run(coro)

    def test_claim_run_complete_replay(self):
        async def scenario():
            cache = IdempotencyCache()
            state, future = cache.claim("k")
            assert state == "run"
            cache.complete("k", (200, {"ok": True}, ()))
            assert future.result() == (200, {"ok": True}, ())
            state, value = cache.claim("k")
            assert state == "replay"
            assert value == (200, {"ok": True}, ())
            assert cache.stats()["n_replayed"] == 1

        self.run(scenario())

    def test_concurrent_duplicates_coalesce(self):
        async def scenario():
            cache = IdempotencyCache()
            state, _ = cache.claim("k")
            assert state == "run"
            state, future = cache.claim("k")
            assert state == "await"
            cache.complete("k", (200, {}, ()))
            assert await future == (200, {}, ())
            assert cache.stats()["n_coalesced"] == 1

        self.run(scenario())

    @pytest.mark.parametrize("status", [429, 500, 503])
    def test_transient_statuses_not_replayed(self, status):
        async def scenario():
            cache = IdempotencyCache()
            cache.claim("k")
            cache.complete("k", (status, {}, ()))
            state, _ = cache.claim("k")
            assert state == "run"  # the retry re-executes

        self.run(scenario())

    @pytest.mark.parametrize("status", [200, 400, 404, 504])
    def test_definitive_statuses_replayed(self, status):
        async def scenario():
            cache = IdempotencyCache()
            cache.claim("k")
            cache.complete("k", (status, {}, ()))
            state, _ = cache.claim("k")
            assert state == "replay"

        self.run(scenario())

    def test_abandon_is_typed_and_reclaimable(self):
        async def scenario():
            cache = IdempotencyCache()
            cache.claim("k")
            state, future = cache.claim("k")
            assert state == "await"
            cache.abandon("k")
            with pytest.raises(RequestAbandoned):
                await future
            state, _ = cache.claim("k")
            assert state == "run"

        self.run(scenario())

    def test_lru_eviction(self):
        async def scenario():
            cache = IdempotencyCache(max_entries=2)
            for key in ("a", "b", "c"):
                cache.claim(key)
                cache.complete(key, (200, {"key": key}, ()))
            assert cache.claim("a")[0] == "run"  # evicted
            assert cache.claim("b")[0] == "replay"
            assert cache.claim("c")[0] == "replay"

        self.run(scenario())


class TestTypedClientErrors:
    def test_timeout_surfaces_as_serve_timeout(self):
        """A server that accepts but never answers -> ServeTimeout."""
        listener = socket.create_server(("127.0.0.1", 0))
        port = listener.getsockname()[1]
        release = threading.Event()

        def mute_server():
            conn, _ = listener.accept()
            release.wait(timeout=10)
            conn.close()

        thread = threading.Thread(target=mute_server, daemon=True)
        thread.start()
        try:
            with ServeClient("127.0.0.1", port, timeout=0.2) as client:
                with pytest.raises(ServeTimeout) as excinfo:
                    client.health()
            assert isinstance(excinfo.value, ReproError)
            assert isinstance(excinfo.value, TimeoutError)
        finally:
            release.set()
            listener.close()
            thread.join(timeout=5)

    def test_refused_connection_is_typed(self):
        probe = socket.create_server(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()  # nobody listens here any more
        with ServeClient("127.0.0.1", port, timeout=0.5) as client:
            with pytest.raises(ServeConnectionError):
                client.health()

    def test_per_request_timeout_override(self):
        listener = socket.create_server(("127.0.0.1", 0))
        port = listener.getsockname()[1]
        release = threading.Event()

        def mute_server():
            conn, _ = listener.accept()
            release.wait(timeout=10)
            conn.close()

        thread = threading.Thread(target=mute_server, daemon=True)
        thread.start()
        try:
            with ServeClient("127.0.0.1", port, timeout=30.0) as client:
                with pytest.raises(ServeTimeout, match="0.2"):
                    client.request("GET", "/healthz", timeout=0.2)
        finally:
            release.set()
            listener.close()
            thread.join(timeout=5)
