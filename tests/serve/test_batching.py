"""MicroBatcher semantics: coalescing, equivalence, backpressure."""

from __future__ import annotations

import asyncio
import threading

import numpy as np
import pytest

from repro.serve.batching import Backpressure, MicroBatcher


def run(coro):
    return asyncio.run(coro)


def make_runner(calls):
    """A fake engine: per-"tree" rows are (row_sum, row_max)."""

    def runner(X):
        calls.append(X.shape[0])
        return np.stack([X.sum(axis=1), X.max(axis=1)], axis=0)

    return runner


class TestCoalescing:
    def test_concurrent_submits_fuse_into_one_call(self):
        calls: list[int] = []
        rng = np.random.default_rng(0)
        blocks = [rng.standard_normal((n, 4)) for n in (1, 3, 2, 5, 1)]

        async def scenario():
            batcher = MicroBatcher(
                make_runner(calls), flush_window=0.02, max_batch_rows=64
            )
            return await asyncio.gather(
                *(batcher.submit(block) for block in blocks)
            )

        results = run(scenario())
        # All five requests arrived within one flush window -> one call.
        assert calls == [sum(b.shape[0] for b in blocks)]
        for block, result in zip(blocks, results):
            expected = np.stack(
                [block.sum(axis=1), block.max(axis=1)], axis=0
            )
            assert np.array_equal(result, expected)

    def test_fused_result_equals_direct_call(self):
        calls: list[int] = []
        rng = np.random.default_rng(1)
        X = rng.standard_normal((24, 6))
        blocks = [X[i : i + 4] for i in range(0, 24, 4)]
        runner = make_runner(calls)

        async def scenario():
            batcher = MicroBatcher(runner, flush_window=0.02, max_batch_rows=64)
            return await asyncio.gather(
                *(batcher.submit(block) for block in blocks)
            )

        results = run(scenario())
        direct = runner(X)
        assert np.array_equal(np.concatenate(results, axis=1), direct)

    def test_max_batch_rows_forces_immediate_flush(self):
        calls: list[int] = []

        async def scenario():
            batcher = MicroBatcher(
                make_runner(calls), flush_window=10.0, max_batch_rows=4
            )
            X = np.ones((4, 3))
            return await asyncio.wait_for(batcher.submit(X), timeout=1.0)

        run(scenario())  # would hang for 10s without the row-cap flush
        assert calls == [4]

    def test_zero_flush_window_disables_coalescing(self):
        calls: list[int] = []

        async def scenario():
            batcher = MicroBatcher(make_runner(calls), flush_window=0.0)
            for _ in range(3):
                await batcher.submit(np.ones((2, 3)))

        run(scenario())
        assert calls == [2, 2, 2]


class TestFailureAndBackpressure:
    def test_runner_exception_propagates_to_every_request(self):
        async def scenario():
            def boom(X):
                raise RuntimeError("engine exploded")

            batcher = MicroBatcher(boom, flush_window=0.005)
            futures = [batcher.submit(np.ones((1, 2))) for _ in range(3)]
            return await asyncio.gather(*futures, return_exceptions=True)

        results = run(scenario())
        assert len(results) == 3
        assert all(isinstance(r, RuntimeError) for r in results)

    def test_backlog_overflow_raises_backpressure(self):
        release = threading.Event()

        def slow_runner(X):
            release.wait(timeout=10)
            return np.zeros((1, X.shape[0]))

        async def scenario():
            batcher = MicroBatcher(
                slow_runner,
                flush_window=0.0,
                max_batch_rows=4,
                max_queue_rows=6,
                max_concurrent=1,
            )
            first = asyncio.ensure_future(batcher.submit(np.ones((4, 2))))
            await asyncio.sleep(0.05)  # first batch now occupies the engine
            with pytest.raises(Backpressure) as excinfo:
                await batcher.submit(np.ones((4, 2)))
            assert excinfo.value.retry_after > 0
            assert excinfo.value.retry_after_seconds >= 1
            assert batcher.n_rejected == 1
            release.set()
            await first
            await batcher.drain()

        run(scenario())

    def test_empty_batch_rejected(self):
        async def scenario():
            batcher = MicroBatcher(make_runner([]))
            with pytest.raises(ValueError):
                await batcher.submit(np.empty((0, 3)))

        run(scenario())


class TestDrain:
    def test_drain_flushes_pending_and_waits(self):
        calls: list[int] = []

        async def scenario():
            batcher = MicroBatcher(
                make_runner(calls), flush_window=30.0, max_batch_rows=64
            )
            pending = asyncio.ensure_future(batcher.submit(np.ones((2, 3))))
            await asyncio.sleep(0.01)
            assert calls == []  # still parked in the flush window
            await batcher.drain()
            result = await asyncio.wait_for(pending, timeout=1.0)
            assert result.shape == (2, 2)

        run(scenario())
        assert calls == [2]

    def test_stats_track_coalescing(self):
        calls: list[int] = []

        async def scenario():
            batcher = MicroBatcher(
                make_runner(calls), flush_window=0.02, max_batch_rows=64
            )
            await asyncio.gather(
                *(batcher.submit(np.ones((2, 3))) for _ in range(4))
            )
            return batcher.stats()

        stats = run(scenario())
        assert stats["n_requests"] == 4
        assert stats["n_rows"] == 8
        assert stats["n_calls"] < 4  # coalesced
        assert stats["rows_per_call"] > 1.0


class TestShutdownAndFaults:
    def test_drain_completes_when_runner_raises(self):
        """A runner that dies during shutdown must not hang the drain."""

        async def scenario():
            def boom(X):
                raise RuntimeError("engine died during shutdown")

            batcher = MicroBatcher(boom, flush_window=30.0, max_batch_rows=64)
            pending = [
                asyncio.ensure_future(batcher.submit(np.ones((2, 3))))
                for _ in range(3)
            ]
            await asyncio.sleep(0.01)  # parked in the flush window
            await asyncio.wait_for(batcher.drain(), timeout=5.0)
            results = await asyncio.gather(*pending, return_exceptions=True)
            assert all(isinstance(r, RuntimeError) for r in results)
            assert batcher.backlog_rows == 0

        run(scenario())

    def test_injected_flush_fault_fans_to_all_coalesced_requests(self):
        from repro.faults import FaultPlan, FaultSpec, InjectedFault

        plan = FaultPlan([FaultSpec(site="batcher.flush", rate=1.0)], seed=1)

        async def scenario():
            batcher = MicroBatcher(
                make_runner([]),
                flush_window=0.02,
                fault_injector=plan.compile(),
            )
            return await asyncio.gather(
                *(batcher.submit(np.ones((1, 2))) for _ in range(3)),
                return_exceptions=True,
            )

        results = run(scenario())
        assert all(isinstance(r, InjectedFault) for r in results)

    def test_no_injector_means_no_faults(self):
        calls: list[int] = []

        async def scenario():
            batcher = MicroBatcher(make_runner(calls), flush_window=0.0)
            return await batcher.submit(np.ones((2, 3)))

        result = run(scenario())
        assert result.shape == (2, 2)
        assert calls == [2]
