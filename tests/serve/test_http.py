"""End-to-end daemon tests over real sockets (BackgroundServer)."""

from __future__ import annotations

import json
import threading
import time

import numpy as np
import pytest

from repro.attacks.detection import behavioural_rates, detect_bits
from repro.serve import (
    BackgroundServer,
    ModelRegistry,
    ServeClientError,
    ServingUnavailable,
)

@pytest.fixture()
def registry(wm_model):
    registry = ModelRegistry()
    registry.add("wm", wm_model)
    return registry


@pytest.fixture()
def server(registry):
    with BackgroundServer(registry, flush_window=0.002) as server:
        yield server


class TestEndpoints:
    def test_health_and_listing(self, server):
        with server.client() as client:
            health = client.health()
            assert health["status"] == "ok"
            assert health["models"] == ["wm"]
            (info,) = client.models()
            assert info["name"] == "wm"
            assert info["n_trees"] == 10
            assert info["observer"] == "suppression-distinguisher"
            assert info["batching"]["n_requests"] == 0

    def test_predict_matches_direct(self, server, wm_model, bc_data):
        X = bc_data[0][:16]
        with server.client() as client:
            out = client.predict("wm", X)
        assert out["predictions"] == wm_model.ensemble.predict(X).tolist()

    def test_predict_all_matches_direct(self, server, wm_model, bc_data):
        X = bc_data[0][:16]
        with server.client() as client:
            out = client.predict_all("wm", X)
        assert np.array_equal(
            np.asarray(out["per_tree"]), wm_model.ensemble.predict_all(X)
        )

    def test_microbatched_concurrent_clients_equal_direct(
        self, server, wm_model, bc_data
    ):
        """Many single-row clients; fused answers == direct predict_all."""
        X = bc_data[0][:24]
        direct = wm_model.ensemble.predict_all(X)
        results: dict[int, list] = {}
        errors: list = []
        barrier = threading.Barrier(8)

        def worker(slot: int) -> None:
            try:
                barrier.wait(timeout=30)
                with server.client() as client:
                    rows = [X[i] for i in range(slot, 24, 8)]
                    results[slot] = [
                        client.predict_all("wm", row.reshape(1, -1))["per_tree"]
                        for row in rows
                    ]
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(slot,)) for slot in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, f"client failed: {errors[0]!r}"
        for slot, answers in results.items():
            for answer, column in zip(answers, range(slot, 24, 8)):
                assert np.array_equal(
                    np.asarray(answer)[:, 0], direct[:, column]
                )
        stats = server.daemon.batcher("wm").stats()
        assert stats["n_requests"] == 24
        assert stats["n_calls"] <= stats["n_requests"]

    def test_errors(self, server):
        with server.client() as client:
            status, data, _ = client.request("GET", "/nope")
            assert status == 404
            status, data, _ = client.request(
                "POST", "/v1/models/ghost/predict", {"rows": [[0.0]]}
            )
            assert status == 404 and "ghost" in data["error"]
            status, data, _ = client.request("POST", "/healthz", {})
            assert status == 405
            status, data, _ = client.request(
                "POST", "/v1/models/wm/predict", {"rows": [[1.0, 2.0]]}
            )
            assert status == 400 and "features" in data["error"]
            with pytest.raises(ServeClientError) as excinfo:
                client.predict("wm", "not-a-matrix")
            assert excinfo.value.status == 400


class TestVerifyEndpoint:
    def test_ownership_via_trigger_probe(self, server, wm_model):
        with server.client() as client:
            out = client.verify(
                "wm",
                wm_model.signature.to_string(),
                trigger_rows=wm_model.trigger.X,
                trigger_labels=wm_model.trigger.y,
            )
        ownership = out["ownership"]
        assert ownership["accepted"] is True
        assert ownership["n_matching"] == ownership["n_trees"] == 10
        # The judge's probe itself became served traffic.
        assert out["observer"]["n_queries"] == len(wm_model.trigger.X)

    def test_wrong_signature_rejected(self, server, wm_model):
        flipped = "".join(
            "1" if bit == 0 else "0" for bit in wm_model.signature.bits
        )
        with server.client() as client:
            out = client.verify(
                "wm",
                flipped,
                trigger_rows=wm_model.trigger.X,
                trigger_labels=wm_model.trigger.y,
            )
        assert out["ownership"]["accepted"] is False

    def test_traffic_verdict_equals_offline_detection(
        self, server, wm_model, bc_data
    ):
        """The /verify traffic verdict is detect_bits over served rows."""
        X = bc_data[0][:120]
        with server.client() as client:
            for start in range(0, 120, 40):
                client.predict_all("wm", X[start : start + 40])
            out = client.verify(
                "wm", wm_model.signature.to_string(), strategy="bands"
            )
        offline = detect_bits(
            behavioural_rates(wm_model.ensemble.predict_all(X)),
            wm_model.signature.bits,
            "bands",
        )
        traffic = out["traffic"]
        assert traffic["n_correct"] == offline.n_correct
        assert traffic["n_wrong"] == offline.n_wrong
        assert traffic["n_uncertain"] == offline.n_uncertain
        assert traffic["predicted"] == list(offline.predicted)
        assert traffic["mean"] == pytest.approx(offline.mean)
        assert out["observer"]["n_queries"] == 120

    def test_verify_without_traffic_has_no_verdict(self, server, wm_model):
        with server.client() as client:
            out = client.verify("wm", wm_model.signature.to_string())
        assert "traffic" not in out
        assert "ownership" not in out
        assert out["observer"]["n_queries"] == 0

    def test_calibrated_alarm_reported(self, server, wm_model, bc_data):
        X = bc_data[0]
        with server.client() as client:
            client.calibrate("wm", X[:80])
            client.predict_all("wm", X[:100])
            out = client.verify("wm", wm_model.signature.to_string())
        assert out["observer"]["calibrated"] is True
        assert "alarm" in out["observer"]
        assert out["observer"]["alarm"]["fired"] in (False, True)

    def test_missing_signature_is_400(self, server):
        with server.client() as client:
            status, data, _ = client.request(
                "POST", "/v1/models/wm/verify", {"strategy": "bands"}
            )
        assert status == 400 and "signature" in data["error"]


class TestBackpressure:
    def test_backlog_full_gives_429_with_retry_after(self, wm_model):
        registry = ModelRegistry()
        served = registry.add("wm", wm_model)
        real = served.serve_batch

        def slow_serve(X):
            time.sleep(0.4)
            return real(X)

        served.serve_batch = slow_serve
        with BackgroundServer(
            registry,
            flush_window=0.0,
            max_batch_rows=8,
            max_queue_rows=10,
            max_concurrent_batches=1,
        ) as server:
            X = np.zeros((8, wm_model.ensemble.n_features_in_))
            first_error: list = []

            def occupy() -> None:
                try:
                    with server.client() as client:
                        client.predict_all("wm", X)
                except BaseException as exc:  # noqa: BLE001
                    first_error.append(exc)

            thread = threading.Thread(target=occupy)
            thread.start()
            time.sleep(0.1)  # the first batch is now inside the engine
            with server.client() as client:
                with pytest.raises(ServingUnavailable) as excinfo:
                    client.predict_all("wm", X)
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after >= 1
            thread.join(timeout=30)
            assert not first_error, f"first request failed: {first_error[0]!r}"

    def test_payload_too_large_is_413(self, wm_model):
        registry = ModelRegistry()
        registry.add("wm", wm_model)
        with BackgroundServer(registry, max_body_bytes=256) as server:
            with server.client() as client:
                status, data, _ = client.request(
                    "POST",
                    "/v1/models/wm/predict",
                    {"rows": [[0.0] * 30] * 10},
                )
        assert status == 413


class TestStrictJSON:
    def test_responses_are_strict_json(self, server, wm_model):
        """Raw bytes parse under a strict JSON parser (no NaN/Infinity)."""

        def reject_constants(value):  # json.loads hook for NaN/Infinity
            raise AssertionError(f"non-standard JSON constant {value!r}")

        with server.client() as client:
            for status, raw in _raw_responses(client, wm_model):
                json.loads(raw.decode("utf-8"), parse_constant=reject_constants)


def _raw_responses(client, wm_model):
    """Drive a few endpoints, yielding raw (status, body) pairs."""
    conn = client._conn
    requests = [
        ("GET", "/healthz", None),
        ("GET", "/v1/models", None),
        (
            "POST",
            "/v1/models/wm/verify",
            {"signature": wm_model.signature.to_string()},
        ),
        ("POST", "/v1/models/wm/predict", {"rows": "bogus"}),
    ]
    for method, path, payload in requests:
        body = None if payload is None else json.dumps(payload)
        conn.request(
            method, path, body=body,
            headers={"Content-Type": "application/json"} if body else {},
        )
        response = conn.getresponse()
        yield response.status, response.read()
