"""Presorted training engine: cache mechanics + bitwise differential tests.

The presorted splitter's contract is stronger than "statistically the
same": trees grown through the sort cache must be **bit-for-bit
identical** to the node-local (seed) splitter's — same thresholds, same
tie-breaks, same serialised form, same predictions.  These tests pin
that contract over seeded random datasets, including the degenerate
shapes the watermarking pipeline produces (constant features, heavily
re-weighted trigger rows, duplicated values), plus the cache's identity
keying and fork-adoption behaviour.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ensemble import RandomForestClassifier
from repro.exceptions import ValidationError
from repro.persistence import forest_to_dict
from repro.persistence.serialize import node_to_dict
from repro.trees import (
    DecisionTreeClassifier,
    RegressionTree,
    SortedDataset,
    clear_presort_cache,
    presorted_dataset,
)
from repro.trees.presort import (
    NodeOrdering,
    adopt_presort,
    partition_ordering,
    presort_cache_stats,
    root_ordering,
)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_presort_cache()
    yield
    clear_presort_cache()


def _forest_dicts_modulo_splitter(*forests):
    out = []
    for forest in forests:
        data = forest_to_dict(forest)
        data["params"].pop("splitter")
        out.append(data)
    return out


# ----------------------------------------------------------------------
# SortedDataset mechanics
# ----------------------------------------------------------------------


class TestSortedDataset:
    def test_orders_are_stable_argsorts(self, rng):
        X = rng.normal(size=(60, 5))
        X[:, 2] = np.round(X[:, 2], 1)  # duplicated values exercise stability
        ps = SortedDataset(X)
        for f in range(5):
            expected = np.argsort(X[:, f], kind="stable")
            assert np.array_equal(ps.orders[f], expected)
            assert np.array_equal(ps.sorted_values[f], X[expected, f])

    @pytest.mark.parametrize("k", [3, 17, 58])
    def test_node_sorted_matches_subset_argsort(self, rng, k):
        X = rng.normal(size=(60, 4))
        X[:, 1] = np.round(X[:, 1], 1)
        ps = SortedDataset(X)
        index = np.sort(rng.choice(60, size=k, replace=False))
        features = np.arange(4)
        rows, values = ps.node_sorted(index, features)
        for j, f in enumerate(features):
            expected = index[np.argsort(X[index, f], kind="stable")]
            assert np.array_equal(rows[j], expected)
            assert np.array_equal(values[j], X[expected, f])

    def test_node_sorted_handles_unsorted_index(self, rng):
        # Non-ascending index: the filter shortcut would be wrong, the
        # implementation must fall back to a local argsort.
        X = rng.normal(size=(40, 3))
        ps = SortedDataset(X)
        index = rng.permutation(40)[:25]
        rows, values = ps.node_sorted(index, np.arange(3))
        for f in range(3):
            expected = index[np.argsort(X[index, f], kind="stable")]
            assert np.array_equal(rows[f], expected)
            assert np.array_equal(values[f], X[expected, f])

    def test_node_sorted_feature_subsets_and_order(self, rng):
        X = rng.normal(size=(30, 5))
        ps = SortedDataset(X)
        index = np.arange(30)
        for features in ([4, 1], [2], [3, 2, 1, 0]):
            rows, values = ps.node_sorted(index, np.asarray(features))
            for j, f in enumerate(features):
                expected = np.argsort(X[:, f], kind="stable")
                assert np.array_equal(rows[j], expected)
                assert np.array_equal(values[j], X[expected, f])

    def test_partition_ordering_matches_refiltering(self, rng):
        X = rng.normal(size=(50, 4))
        y = rng.integers(0, 2, size=50)
        w = rng.uniform(0.5, 2.0, size=50)
        ps = SortedDataset(X)
        index = np.arange(50)
        features = np.arange(4)
        ordering = root_ordering(ps, index, features, y, w)
        left_index = index[X[:, 0] <= 0.0]
        right_index = index[X[:, 0] > 0.0]
        left, right = partition_ordering(ps, ordering, left_index, right_index)
        for child, child_index in ((left, left_index), (right, right_index)):
            fresh_rows, fresh_values = ps.node_sorted(child_index, features)
            assert np.array_equal(child.rows, fresh_rows)
            assert np.array_equal(child.values, fresh_values)
            assert np.array_equal(child.codes, y[fresh_rows])
            assert np.array_equal(child.weights, w[fresh_rows])

    def test_partition_ordering_one_sided(self, rng):
        X = rng.normal(size=(20, 2))
        ps = SortedDataset(X)
        index = np.arange(20)
        ordering = root_ordering(
            ps, index, np.arange(2), np.zeros(20, dtype=np.intp), np.ones(20)
        )
        left_index = index[:8]
        right_index = index[8:]
        left, right = partition_ordering(
            ps, ordering, left_index, right_index, want_left=False, want_right=True
        )
        assert left is None
        assert isinstance(right, NodeOrdering)
        assert right.rows.shape == (2, 12)


class TestPresortCache:
    def test_identity_keyed_hit_and_miss(self, rng):
        X = rng.normal(size=(30, 3))
        before = presort_cache_stats()
        first = presorted_dataset(X)
        again = presorted_dataset(X)
        other = presorted_dataset(X.copy())  # equal content, different object
        after = presort_cache_stats()
        assert first is again
        assert other is not first
        assert after["hits"] - before["hits"] == 1
        assert after["misses"] - before["misses"] == 2

    def test_adopt_binds_equal_array(self, rng):
        X = rng.normal(size=(25, 4))
        donor = SortedDataset(X)
        worker_X = X.copy()  # a pickled copy in a real worker
        adopted = adopt_presort(donor, worker_X)
        assert adopted is not None
        assert adopted.X is worker_X
        assert adopted.orders is donor.orders  # tables shared, not rebuilt
        assert presorted_dataset(worker_X) is adopted  # now cached

    def test_adopt_rejects_mismatch_and_junk(self, rng):
        X = rng.normal(size=(25, 4))
        donor = SortedDataset(X)
        different = rng.normal(size=(25, 4))
        assert adopt_presort(donor, different) is None
        assert adopt_presort(None, X) is None
        assert adopt_presort("not a presort", X) is None

    def test_concurrent_threaded_fits_share_one_entry(self, rng):
        # The cached tables are read-only and every scratch buffer is
        # call-local, so threads fitting on the same matrix must neither
        # crash nor diverge from a serial fit.
        import threading

        X = rng.normal(size=(1500, 6))
        y = rng.choice([-1, 1], size=1500)
        expected = node_to_dict(
            DecisionTreeClassifier(max_depth=8, random_state=0).fit(X, y).root_
        )
        failures = []

        def fit_one():
            try:
                tree = DecisionTreeClassifier(max_depth=8, random_state=0).fit(X, y)
                if node_to_dict(tree.root_) != expected:
                    failures.append("tree diverged")
            except Exception as exc:  # pragma: no cover - the failure path
                failures.append(repr(exc))

        threads = [threading.Thread(target=fit_one) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures, failures

    def test_dropped_matrix_evicts_entry(self, rng):
        # The cache must not pin training data beyond its lifetime: once
        # the caller's matrix is collected, the entry (and its tables)
        # evaporates.
        import gc

        from repro.trees.presort import _CACHE

        X = rng.normal(size=(30, 3))
        presorted_dataset(X)
        assert len(_CACHE) == 1
        del X
        gc.collect()
        assert len(_CACHE) == 0


# ----------------------------------------------------------------------
# Differential tests: presorted engine ≡ seed splitter, bit for bit
# ----------------------------------------------------------------------


def _random_problem(rng, trial):
    """A seeded dataset in the shapes the watermarking pipeline produces."""
    n = int(rng.integers(8, 250))
    f = int(rng.integers(1, 10))
    X = rng.normal(size=(n, f))
    if f >= 3:
        X[:, 0] = 7.5  # constant feature
        X[:, 1] = np.round(X[:, 1], 1)  # heavy duplication
    y = rng.choice([-1, 1], size=n)
    if np.unique(y).size < 2:
        y[0] = -y[0]
    weights = np.ones(n)
    # Trigger-style re-weighting: a few rows with overwhelming weight.
    triggers = rng.choice(n, size=max(1, n // 15), replace=False)
    weights[triggers] = float(rng.integers(10, 200))
    params = dict(
        criterion="entropy" if trial % 5 == 0 else "gini",
        max_depth=int(rng.integers(2, 10)),
        max_leaf_nodes=int(rng.integers(4, 24)) if trial % 3 == 0 else None,
        min_samples_leaf=int(rng.integers(1, 5)),
        max_features="sqrt" if trial % 4 == 0 else None,
        random_state=trial,
    )
    return X, y, weights, params


class TestDifferentialTrees:
    def test_trees_bitwise_identical_across_engines(self):
        rng = np.random.default_rng(1234)
        for trial in range(25):
            X, y, weights, params = _random_problem(rng, trial)
            local = DecisionTreeClassifier(splitter="local", **params)
            presorted = DecisionTreeClassifier(splitter="presorted", **params)
            local.fit(X, y, sample_weight=weights)
            presorted.fit(X, y, sample_weight=weights)
            assert node_to_dict(local.root_) == node_to_dict(presorted.root_), (
                f"trial {trial}: presorted tree differs from seed tree"
            )

    def test_multiclass_generic_kernel_identical(self):
        rng = np.random.default_rng(99)
        for trial in range(8):
            n = int(rng.integers(20, 150))
            X = rng.normal(size=(n, 5))
            y = rng.integers(0, 4, size=n)
            y[:4] = np.arange(4)  # ensure all classes appear
            w = rng.uniform(0.1, 3.0, size=n)
            for criterion in ("gini", "entropy"):
                kw = dict(criterion=criterion, max_depth=6, random_state=trial)
                a = DecisionTreeClassifier(splitter="local", **kw).fit(
                    X, y, sample_weight=w
                )
                b = DecisionTreeClassifier(splitter="presorted", **kw).fit(
                    X, y, sample_weight=w
                )
                assert node_to_dict(a.root_) == node_to_dict(b.root_)

    def test_zero_weight_rows_identical(self):
        rng = np.random.default_rng(7)
        X = rng.normal(size=(80, 4))
        y = rng.choice([-1, 1], size=80)
        w = np.ones(80)
        w[::3] = 0.0  # zero-weight rows are dropped from the root index
        a = DecisionTreeClassifier(splitter="local", max_depth=5, random_state=0)
        b = DecisionTreeClassifier(splitter="presorted", max_depth=5, random_state=0)
        a.fit(X, y, sample_weight=w)
        b.fit(X, y, sample_weight=w)
        assert node_to_dict(a.root_) == node_to_dict(b.root_)


class TestDifferentialForests:
    def test_forests_bitwise_identical_and_predict_all_equal(self, rng):
        X = rng.normal(size=(200, 8))
        y = np.where(X[:, 0] - X[:, 3] > 0, 1, -1)
        weights = np.ones(200)
        weights[:6] = 80.0  # trigger-style mass
        common = dict(
            n_estimators=6,
            max_depth=7,
            tree_feature_fraction=0.6,
            random_state=42,
        )
        local = RandomForestClassifier(splitter="local", **common)
        presorted = RandomForestClassifier(splitter="presorted", **common)
        local.fit(X, y, sample_weight=weights)
        presorted.fit(X, y, sample_weight=weights)
        dicts = _forest_dicts_modulo_splitter(local, presorted)
        assert dicts[0] == dicts[1]
        X_test = rng.normal(size=(64, 8))
        assert np.array_equal(local.predict_all(X_test), presorted.predict_all(X_test))

    def test_refit_rounds_reuse_presort_and_stay_identical(self, rng):
        """Weight-only refresh: escalation rounds hit the cache, and the
        refitted forests match a local-splitter replay bit for bit."""
        X = rng.normal(size=(150, 6))
        y = rng.choice([-1, 1], size=150)
        weights = np.ones(150)
        common = dict(n_estimators=5, max_depth=6, random_state=3)
        local = RandomForestClassifier(splitter="local", **common)
        presorted = RandomForestClassifier(splitter="presorted", **common)
        local.fit(X, y, sample_weight=weights)
        presorted.fit(X, y, sample_weight=weights)

        before = presort_cache_stats()
        for _ in range(3):  # escalation-style rounds: weights change, X doesn't
            weights = weights.copy()
            weights[:5] += 10.0
            local.refit_trees([0, 2], X, y, sample_weight=weights)
            presorted.refit_trees([0, 2], X, y, sample_weight=weights)
        after = presort_cache_stats()
        assert after["misses"] == before["misses"], "refit rounds must not re-sort"
        assert after["hits"] - before["hits"] >= 3

        dicts = _forest_dicts_modulo_splitter(local, presorted)
        assert dicts[0] == dicts[1]

    def test_parallel_presorted_fit_identical_to_serial(self, rng):
        X = rng.normal(size=(120, 5))
        y = rng.choice([-1, 1], size=120)
        serial = RandomForestClassifier(n_estimators=4, max_depth=5, random_state=11)
        pooled = RandomForestClassifier(
            n_estimators=4, max_depth=5, random_state=11, n_jobs=2
        )
        serial.fit(X, y)
        pooled.fit(X, y)
        a = forest_to_dict(serial)
        b = forest_to_dict(pooled)
        a["params"].pop("n_jobs")
        b["params"].pop("n_jobs")
        assert a == b


class TestDifferentialRegression:
    def test_regression_trees_identical_across_engines(self):
        rng = np.random.default_rng(2024)
        for trial in range(10):
            n = int(rng.integers(10, 200))
            f = int(rng.integers(1, 7))
            X = rng.normal(size=(n, f))
            if f >= 2:
                X[:, 0] = np.round(X[:, 0], 1)
            y = rng.normal(size=n)
            w = rng.uniform(0.1, 4.0, size=n)
            a = RegressionTree(max_depth=4, splitter="local").fit(X, y, sample_weight=w)
            b = RegressionTree(max_depth=4, splitter="presorted").fit(
                X, y, sample_weight=w
            )
            X_test = rng.normal(size=(50, f))
            assert np.array_equal(a.predict(X_test), b.predict(X_test))

    def test_boosting_stages_reuse_presort(self, rng):
        X = rng.normal(size=(100, 4))
        y = rng.normal(size=100)
        before = presort_cache_stats()
        for _ in range(4):  # boosting refits on the same X every stage
            RegressionTree(max_depth=3).fit(X, y)
        after = presort_cache_stats()
        assert after["misses"] - before["misses"] == 1
        assert after["hits"] - before["hits"] == 3


class TestSplitterParam:
    def test_unknown_splitter_rejected(self, rng):
        X = rng.normal(size=(10, 2))
        y = np.array([0, 1] * 5)
        with pytest.raises(ValidationError, match="splitter"):
            DecisionTreeClassifier(splitter="fancy").fit(X, y)
        with pytest.raises(ValidationError, match="splitter"):
            RegressionTree(splitter="fancy")

    def test_forest_get_params_roundtrip(self):
        forest = RandomForestClassifier(splitter="local")
        assert forest.get_params()["splitter"] == "local"
        clone = forest.clone_with(splitter="presorted")
        assert clone.splitter == "presorted"
