"""Tests for structural statistics and text export."""

import numpy as np

from repro.trees import DecisionTreeClassifier, ensemble_structure, tree_stats, tree_to_text
from repro.trees.node import InternalNode, Leaf


def _stump():
    return InternalNode(feature=0, threshold=0.5, left=Leaf(-1), right=Leaf(+1))


class TestTreeStats:
    def test_stump(self):
        stats = tree_stats(_stump())
        assert stats.depth == 1
        assert stats.n_leaves == 2
        assert stats.n_nodes == 3
        assert stats.used_features == frozenset({0})

    def test_single_leaf(self):
        stats = tree_stats(Leaf(1))
        assert stats.depth == 0
        assert stats.n_leaves == 1
        assert stats.n_nodes == 1
        assert stats.used_features == frozenset()

    def test_matches_classifier_properties(self, rng):
        X = rng.uniform(size=(100, 4))
        y = rng.choice([-1, 1], size=100)
        tree = DecisionTreeClassifier(max_depth=5).fit(X, y)
        stats = tree_stats(tree.root_)
        assert stats.depth == tree.depth_
        assert stats.n_leaves == tree.n_leaves_
        assert stats.n_nodes == 2 * stats.n_leaves - 1  # binary tree identity


class TestEnsembleStructure:
    def test_shapes_and_values(self):
        roots = [_stump(), Leaf(1)]
        structure = ensemble_structure(roots)
        assert np.array_equal(structure["depth"], [1.0, 0.0])
        assert np.array_equal(structure["n_leaves"], [2.0, 1.0])


class TestTreeToText:
    def test_stump_rendering(self):
        text = tree_to_text(_stump())
        assert text.splitlines() == ["x0 <= 0.5", "  leaf: -1", "  leaf: 1"]

    def test_feature_names(self):
        text = tree_to_text(_stump(), feature_names=["age"])
        assert text.startswith("age <= 0.5")

    def test_depth_two_indentation(self):
        tree = InternalNode(0, 1.0, _stump(), Leaf(1))
        lines = tree_to_text(tree).splitlines()
        assert lines[0] == "x0 <= 1"
        assert lines[1] == "  x0 <= 0.5"
        assert lines[-1] == "  leaf: 1"
