"""Tests for the growth strategies (depth-first vs best-first)."""

import numpy as np

from repro.trees import DecisionTreeClassifier


class TestBestFirstGrowth:
    def test_leaf_cap_binds(self, rng):
        X = rng.uniform(size=(300, 4))
        y = rng.choice([-1, 1], size=300)
        for cap in (2, 3, 5, 9):
            tree = DecisionTreeClassifier(max_leaf_nodes=cap).fit(X, y)
            assert 2 <= tree.n_leaves_ <= cap

    def test_training_accuracy_monotone_in_leaf_budget(self):
        # Piecewise-constant 1-D labels with segments of geometrically
        # decreasing mass: each extra leaf lets best-first growth peel
        # off the next-highest-gain segment, so training accuracy is
        # non-decreasing in the budget and perfect at 4 leaves.
        X = np.linspace(0.0, 1.0, 120).reshape(-1, 1)
        y = np.select(
            [X[:, 0] < 0.5, X[:, 0] < 0.75, X[:, 0] < 0.875],
            [-1, 1, -1],
            default=1,
        ).astype(np.int64)
        scores = [
            DecisionTreeClassifier(max_leaf_nodes=cap).fit(X, y).score(X, y)
            for cap in (2, 3, 4)
        ]
        assert scores[0] <= scores[1] <= scores[2]
        assert scores[2] == 1.0

    def test_best_first_peels_largest_segment_first(self):
        # With a 2-leaf budget the single split must isolate the large
        # pure segment (the highest weighted-gain expansion).
        X = np.linspace(0.0, 1.0, 120).reshape(-1, 1)
        y = np.where(X[:, 0] < 0.5, -1, 1).astype(np.int64)
        y[X[:, 0] > 0.95] = -1  # a small noisy tail
        tree = DecisionTreeClassifier(max_leaf_nodes=2).fit(X, y)
        big_segment = X[:, 0] < 0.5
        assert tree.score(X[big_segment], y[big_segment]) == 1.0

    def test_depth_cap_also_respected_in_best_first(self, rng):
        X = rng.uniform(size=(200, 3))
        y = rng.choice([-1, 1], size=200)
        tree = DecisionTreeClassifier(max_leaf_nodes=50, max_depth=3).fit(X, y)
        assert tree.depth_ <= 3
        assert tree.n_leaves_ <= 50

    def test_cap_larger_than_natural_size_is_harmless(self, rng):
        X = rng.uniform(size=(30, 2))
        y = rng.choice([-1, 1], size=30)
        unconstrained = DecisionTreeClassifier().fit(X, y)
        capped = DecisionTreeClassifier(max_leaf_nodes=10_000).fit(X, y)
        assert capped.n_leaves_ <= max(unconstrained.n_leaves_, 2)
        assert capped.score(X, y) == 1.0


class TestDepthFirstGrowth:
    def test_unconstrained_tree_is_consistent(self, rng):
        X = rng.uniform(size=(150, 4))
        y = rng.choice([-1, 1], size=150)
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.score(X, y) == 1.0

    def test_max_features_still_converges(self, rng):
        # Per-split feature sampling must not prevent fitting thanks to
        # the full-subspace retry.
        X = rng.uniform(size=(100, 6))
        y = (X[:, 5] > 0.5).astype(np.int64) * 2 - 1
        tree = DecisionTreeClassifier(max_features=1, random_state=3).fit(X, y)
        assert tree.score(X, y) == 1.0
