"""Tests for the regression-tree base learner."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError, ValidationError
from repro.trees.regression import RegressionTree


class TestFitPredict:
    def test_constant_target(self):
        X = np.linspace(0, 1, 20).reshape(-1, 1)
        y = np.full(20, 3.5)
        tree = RegressionTree(max_depth=3).fit(X, y)
        assert np.allclose(tree.predict(X), 3.5)

    def test_step_function_recovered(self):
        X = np.linspace(0, 1, 40).reshape(-1, 1)
        y = np.where(X[:, 0] > 0.5, 2.0, -2.0)
        tree = RegressionTree(max_depth=2).fit(X, y)
        assert np.allclose(tree.predict(X), y)

    def test_depth_limits_pieces(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(size=(200, 1))
        y = np.sin(6 * X[:, 0])
        shallow = RegressionTree(max_depth=1).fit(X, y)
        assert len(np.unique(shallow.predict(X))) <= 2

    def test_deeper_fits_better(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(size=(300, 2))
        y = X[:, 0] * 2 + np.sin(5 * X[:, 1])
        def mse(depth):
            tree = RegressionTree(max_depth=depth).fit(X, y)
            return float(np.mean((tree.predict(X) - y) ** 2))
        assert mse(6) < mse(2) < mse(1) + 1e-9

    def test_weighted_mean_leaf_values(self):
        X = np.array([[0.0], [0.0], [0.0]])
        y = np.array([0.0, 0.0, 3.0])
        weights = np.array([1.0, 1.0, 2.0])
        tree = RegressionTree(max_depth=2).fit(X, y, sample_weight=weights)
        # Constant feature: single leaf with weighted mean 6/4 = 1.5.
        assert tree.predict(np.array([[0.0]]))[0] == pytest.approx(1.5)

    def test_custom_leaf_value_fn(self):
        X = np.array([[0.0], [1.0]])
        y = np.array([1.0, -1.0])
        tree = RegressionTree(max_depth=1).fit(
            X, y, leaf_value_fn=lambda index: 42.0
        )
        assert np.allclose(tree.predict(X), 42.0)

    def test_min_samples_leaf(self):
        X = np.linspace(0, 1, 10).reshape(-1, 1)
        y = np.where(X[:, 0] > 0.05, 1.0, -1.0)  # lone outlier at the edge
        tree = RegressionTree(max_depth=5, min_samples_leaf=3).fit(X, y)
        # The outlier cannot be isolated alone.
        assert not np.allclose(tree.predict(X), y)


class TestValidation:
    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            RegressionTree().predict(np.zeros((1, 1)))

    def test_bad_target_shape(self):
        with pytest.raises(ValidationError):
            RegressionTree().fit(np.zeros((3, 1)), np.zeros((3, 2)))

    def test_bad_depth(self):
        with pytest.raises(ValidationError):
            RegressionTree(max_depth=0)

    def test_feature_mismatch_at_predict(self):
        tree = RegressionTree(max_depth=1).fit(np.zeros((4, 2)), np.arange(4.0))
        with pytest.raises(ValidationError, match="features"):
            tree.predict(np.zeros((1, 3)))
