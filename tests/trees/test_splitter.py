"""Tests for the exact weighted splitter."""

import numpy as np
import pytest

from repro.trees.criteria import gini_impurity, weighted_class_counts
from repro.trees.presort import SortedDataset
from repro.trees.splitter import find_best_split


def _split(
    X, y, weights=None, features=None, min_leaf=1, min_decrease=0.0, presort=False
):
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    classes, codes = np.unique(y, return_inverse=True)
    if weights is None:
        weights = np.ones(X.shape[0])
    if features is None:
        features = np.arange(X.shape[1])
    return find_best_split(
        X,
        codes,
        np.asarray(weights, dtype=np.float64),
        np.arange(X.shape[0]),
        np.asarray(features),
        classes.shape[0],
        gini_impurity,
        min_leaf,
        min_decrease,
        presort=SortedDataset(X) if presort else None,
    )


class TestBasicSplits:
    def test_perfect_separation(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([-1, -1, 1, 1])
        split = _split(X, y)
        assert split is not None
        assert split.feature == 0
        assert 1.0 < split.threshold < 2.0
        assert sorted(split.left_index.tolist()) == [0, 1]
        assert sorted(split.right_index.tolist()) == [2, 3]

    def test_pure_node_returns_none(self):
        X = np.array([[0.0], [1.0], [2.0]])
        y = np.array([1, 1, 1])
        assert _split(X, y) is None

    def test_constant_feature_returns_none(self):
        X = np.array([[2.0], [2.0], [2.0], [2.0]])
        y = np.array([-1, 1, -1, 1])
        assert _split(X, y) is None

    def test_picks_most_informative_feature(self):
        # Feature 1 separates perfectly, feature 0 does not.
        X = np.array([[0.0, 0.0], [1.0, 1.0], [0.0, 2.0], [1.0, 3.0]])
        y = np.array([-1, -1, 1, 1])
        split = _split(X, y)
        assert split is not None
        assert split.feature == 1

    def test_respects_candidate_features(self):
        X = np.array([[0.0, 0.0], [1.0, 1.0], [0.0, 2.0], [1.0, 3.0]])
        y = np.array([-1, -1, 1, 1])
        split = _split(X, y, features=[0])
        # Feature 0 alone: the four points are -1,+1 at both values; no gain.
        assert split is None or split.feature == 0

    def test_threshold_is_between_values(self):
        X = np.array([[1.0], [1.0], [4.0], [4.0]])
        y = np.array([-1, -1, 1, 1])
        split = _split(X, y)
        assert split is not None
        assert 1.0 <= split.threshold < 4.0
        # Left samples must actually satisfy x <= threshold.
        assert (X[split.left_index, 0] <= split.threshold).all()
        assert (X[split.right_index, 0] > split.threshold).all()


class TestWeights:
    def test_weights_flip_best_split(self):
        # Unweighted best split separates at 1.5; a huge weight on the
        # single sample at x=10 with label -1 pulls the split to protect it.
        X = np.array([[0.0], [1.0], [2.0], [3.0], [10.0]])
        y = np.array([-1, -1, 1, 1, -1])
        unweighted = _split(X, y)
        assert unweighted is not None
        weighted = _split(X, y, weights=[1, 1, 1, 1, 100])
        assert weighted is not None
        # With the heavy -1 at x=10, isolating it yields the largest gain.
        assert weighted.threshold > unweighted.threshold

    def test_zero_total_gain_with_interleaved_labels(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([-1, 1, -1, 1])
        split = _split(X, y)
        # Best split here has tiny but positive gain; either answer must
        # be consistent with the admissibility rules.
        if split is not None:
            assert split.gain > 0


class TestConstraints:
    def test_min_samples_leaf_blocks_extreme_splits(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0], [4.0], [5.0]])
        y = np.array([-1, 1, 1, 1, 1, 1])
        split = _split(X, y, min_leaf=2)
        if split is not None:
            assert split.left_index.shape[0] >= 2
            assert split.right_index.shape[0] >= 2

    def test_min_impurity_decrease_blocks_weak_splits(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([-1, 1, -1, 1])
        assert _split(X, y, min_decrease=0.9) is None

    def test_children_partition_the_node(self, rng):
        X = rng.uniform(size=(50, 4))
        y = rng.choice([-1, 1], size=50)
        split = _split(X, y)
        if split is not None:
            merged = np.sort(np.concatenate([split.left_index, split.right_index]))
            assert np.array_equal(merged, np.arange(50))

    def test_gain_matches_manual_computation(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([-1, -1, 1, 1])
        split = _split(X, y)
        assert split is not None
        # Parent: 4 samples, gini 0.5, weighted impurity 2.0; children pure.
        assert split.gain == pytest.approx(2.0)


@pytest.mark.parametrize("presort", [False, True], ids=["local", "presorted"])
class TestDeterminismContract:
    """The splitter's tie-break and threshold guarantees, pinned for both
    engines — these are the invariants the presorted engine must
    reproduce bit for bit."""

    def test_equal_gain_tie_breaks_to_lowest_feature_id(self, presort):
        # Feature 1 duplicates feature 0, so every candidate threshold
        # has an exactly equal gain on both; the contract picks id 0.
        X = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0], [3.0, 3.0]])
        y = np.array([-1, -1, 1, 1])
        split = _split(X, y, presort=presort)
        assert split is not None
        assert split.feature == 0

    def test_tie_break_independent_of_candidate_order(self, presort):
        X = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0], [3.0, 3.0]])
        y = np.array([-1, -1, 1, 1])
        split = _split(X, y, features=[1, 0], presort=presort)
        assert split is not None
        assert split.feature == 0

    def test_midpoint_collapse_guard_routes_boundary_left(self, presort):
        # At 1e16 the float64 spacing is 2, so the midpoint of a=1e16
        # and b=1e16+2 rounds back onto a.  The guard must pin the
        # threshold to a itself and keep the boundary sample on the
        # left, never letting rounding push it right.
        a, b = 1e16, 1e16 + 2
        assert 0.5 * (a + b) == a  # midpoint collapses onto the left value
        X = np.array([[a], [a], [b], [b]])
        y = np.array([-1, -1, 1, 1])
        split = _split(X, y, presort=presort)
        assert split is not None
        assert split.threshold == a
        assert sorted(split.left_index.tolist()) == [0, 1]
        assert sorted(split.right_index.tolist()) == [2, 3]
        # Boundary samples (value exactly a) satisfy x <= threshold.
        assert (X[split.left_index, 0] <= split.threshold).all()

    def test_min_samples_leaf_zero_matches_local(self, presort):
        # Not a sensible setting, but the public API accepts it; both
        # engines must agree (positions clamp to [1, n-1] either way).
        X = np.array([[0.0], [1.0], [2.0], [3.0], [4.0]])
        y = np.array([-1, -1, 1, 1, 1])
        split = _split(X, y, min_leaf=0, presort=presort)
        assert split is not None
        assert split.feature == 0
        assert 1.0 < split.threshold < 2.0

    def test_value_gap_below_epsilon_never_split(self, presort):
        # Adjacent values closer than the minimum gap are one plateau:
        # no threshold may separate them.
        X = np.array([[1.0], [1.0 + 1e-13], [1.0 + 2e-13], [1.0 + 3e-14]])
        y = np.array([-1, 1, -1, 1])
        assert _split(X, y, presort=presort) is None


class TestWeightedClassCounts:
    """The bincount accumulator must match the historical ``np.add.at``
    scatter exactly — both sum float64 weights in element order."""

    def test_matches_add_at_exactly(self, rng):
        for _ in range(20):
            n = int(rng.integers(1, 300))
            n_classes = int(rng.integers(2, 6))
            codes = rng.integers(0, n_classes, size=n)
            weights = rng.uniform(0.0, 50.0, size=n)
            # A few enormous weights surface any accumulation-order drift.
            weights[rng.integers(0, n, size=max(1, n // 10))] = 1e12
            expected = np.zeros(n_classes, dtype=np.float64)
            np.add.at(expected, codes, weights)
            result = weighted_class_counts(codes, weights, n_classes)
            assert result.dtype == np.float64
            assert result.shape == (n_classes,)
            assert np.array_equal(result, expected)

    def test_empty_and_missing_classes(self):
        result = weighted_class_counts(
            np.array([], dtype=np.intp), np.array([]), 3
        )
        assert np.array_equal(result, np.zeros(3))
        result = weighted_class_counts(np.array([2]), np.array([1.5]), 4)
        assert np.array_equal(result, np.array([0.0, 0.0, 1.5, 0.0]))
