"""Tests for the inductive tree-node structures."""

import numpy as np
import pytest

from repro.trees.node import (
    InternalNode,
    Leaf,
    iter_leaves,
    iter_nodes,
    predict_batch,
    predict_one,
)


@pytest.fixture()
def paper_tree():
    """The left tree of the paper's Figure 1:
    x1<=5 ? (x2<=3 ? +1 : -1) : (x3<=7 ? -1 : +1)  (features 0-indexed)."""
    return InternalNode(
        feature=0,
        threshold=5.0,
        left=InternalNode(feature=1, threshold=3.0, left=Leaf(+1), right=Leaf(-1)),
        right=InternalNode(feature=2, threshold=7.0, left=Leaf(-1), right=Leaf(+1)),
    )


class TestStructure:
    def test_leaf_counts(self, paper_tree):
        assert paper_tree.n_leaves() == 4
        assert Leaf(1).n_leaves() == 1

    def test_depth(self, paper_tree):
        assert paper_tree.depth() == 2
        assert Leaf(-1).depth() == 0

    def test_is_leaf_flags(self, paper_tree):
        assert not paper_tree.is_leaf
        assert Leaf(1).is_leaf

    def test_iter_nodes_preorder(self, paper_tree):
        nodes = list(iter_nodes(paper_tree))
        assert len(nodes) == 7
        assert nodes[0] is paper_tree
        assert nodes[1] is paper_tree.left

    def test_iter_leaves_left_to_right(self, paper_tree):
        labels = [leaf.prediction for leaf in iter_leaves(paper_tree)]
        assert labels == [+1, -1, -1, +1]

    def test_leaf_total_weight(self):
        leaf = Leaf(1, class_weights={1: 2.5, -1: 0.5})
        assert leaf.total_weight() == pytest.approx(3.0)
        assert Leaf(1).total_weight() == 0.0


class TestPrediction:
    def test_paper_example_routing(self, paper_tree):
        # x = (4, 3, 5): x1<=5, x2<=3 -> +1 (paper's satisfying assignment)
        assert predict_one(paper_tree, np.array([4.0, 3.0, 5.0])) == +1
        # boundary: x1 == 5 goes left (<=)
        assert predict_one(paper_tree, np.array([5.0, 4.0, 0.0])) == -1
        # right side: x1 > 5, x3 > 7 -> +1
        assert predict_one(paper_tree, np.array([6.0, 0.0, 8.0])) == +1

    def test_batch_matches_single(self, paper_tree, rng):
        X = rng.uniform(0, 10, size=(64, 3))
        batch = predict_batch(paper_tree, X)
        single = np.array([predict_one(paper_tree, x) for x in X])
        assert np.array_equal(batch, single)

    def test_batch_empty_input(self, paper_tree):
        out = predict_batch(paper_tree, np.empty((0, 3)))
        assert out.shape == (0,)

    def test_single_leaf_tree(self):
        out = predict_batch(Leaf(-1), np.zeros((5, 2)))
        assert np.array_equal(out, -np.ones(5, dtype=np.int64))
