"""Property tests: compiled flat-array inference ≡ object-graph traversal.

The compiled engine must be *bitwise identical* to the ``TreeNode``
traversal — the watermark lives in exact per-tree predictions, so even
one flipped borderline comparison would corrupt verification.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ensemble import (
    GradientBoostingClassifier,
    RandomForestClassifier,
    compile_forest,
    compile_trees,
)
from repro.exceptions import ValidationError
from repro.trees import DecisionTreeClassifier, compile_tree
from repro.trees.compiled import (
    get_inference_backend,
    inference_backend,
    set_inference_backend,
)
from repro.trees.node import InternalNode, Leaf, predict_batch

seeds = st.integers(min_value=0, max_value=2**31 - 1)


def _random_data(gen, n_samples=200, n_features=6):
    X = gen.normal(size=(n_samples, n_features))
    y = np.where(X[:, 0] + X[:, 1] * X[:, 2] > gen.normal() * 0.3, 1, -1)
    if np.unique(y).shape[0] < 2:  # pathological draw: force both classes
        y[0], y[1] = -1, 1
    return X, y


def _random_hand_built_tree(gen, n_features, depth):
    """A hand-built random tree (thresholds independent of any data)."""
    if depth == 0 or gen.uniform() < 0.25:
        label = int(gen.choice([-1, 1]))
        return Leaf(prediction=label, class_weights={label: float(gen.uniform(1, 5))})
    return InternalNode(
        feature=int(gen.integers(n_features)),
        threshold=float(gen.normal()),
        left=_random_hand_built_tree(gen, n_features, depth - 1),
        right=_random_hand_built_tree(gen, n_features, depth - 1),
    )


class TestCompiledTreeEquivalence:
    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_fitted_tree_bitwise_identical(self, seed):
        gen = np.random.default_rng(seed)
        X, y = _random_data(gen)
        tree = DecisionTreeClassifier(
            max_depth=int(gen.integers(1, 10)),
            min_samples_leaf=int(gen.integers(1, 4)),
        ).fit(X, y)
        X_query = gen.normal(size=(257, X.shape[1]))

        reference = predict_batch(tree.root_, X_query)
        engine = tree.compile()
        compiled = engine.predict(X_query)
        assert compiled.dtype == reference.dtype
        assert np.array_equal(compiled, reference)

        # On-threshold queries: route exactly like the object graph.
        X_edges = X[gen.choice(X.shape[0], size=64), :].copy()
        assert np.array_equal(engine.predict(X_edges), predict_batch(tree.root_, X_edges))

    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_hand_built_tree_bitwise_identical(self, seed):
        gen = np.random.default_rng(seed)
        n_features = int(gen.integers(1, 6))
        root = _random_hand_built_tree(gen, n_features, depth=int(gen.integers(0, 7)))
        X_query = gen.normal(size=(100, n_features))
        engine = compile_tree(root)
        assert np.array_equal(engine.predict(X_query), predict_batch(root, X_query))

    def test_single_node_tree(self):
        engine = compile_tree(Leaf(prediction=7), classes=np.array([7]))
        X = np.random.default_rng(0).normal(size=(13, 3))
        assert engine.depth == 0
        assert engine.n_nodes == 1 and engine.n_leaves == 1
        assert np.array_equal(engine.predict(X), np.full(13, 7, dtype=np.int64))
        assert np.array_equal(engine.predict_proba(X), np.ones((13, 1)))

    def test_empty_batch(self):
        gen = np.random.default_rng(3)
        root = _random_hand_built_tree(gen, n_features=4, depth=5)
        engine = compile_tree(root)
        empty = np.empty((0, 4))
        assert engine.apply(empty).shape == (0,)
        assert engine.predict(empty).shape == (0,)
        assert engine.predict(empty).dtype == np.int64
        # ... and the same for a whole compiled ensemble.
        packed = compile_trees([root, root], classes=np.array([-1, 1]))
        assert packed.predict_all(empty).shape == (2, 0)
        assert packed.predict_proba(empty).shape == (0, 2)

    def test_proba_matches_object_path(self):
        gen = np.random.default_rng(11)
        X, y = _random_data(gen, n_samples=300)
        tree = DecisionTreeClassifier(max_depth=5).fit(X, y)
        X_query = gen.normal(size=(128, X.shape[1]))
        with inference_backend("object"):
            reference = tree.predict_proba(X_query)
        assert np.array_equal(tree.compile().predict_proba(X_query), reference)

    def test_proba_requires_classes(self):
        engine = compile_tree(Leaf(prediction=1))
        with pytest.raises(ValidationError):
            engine.predict_proba(np.zeros((1, 1)))


class TestCompiledForestEquivalence:
    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_forest_bitwise_identical(self, seed):
        gen = np.random.default_rng(seed)
        X, y = _random_data(gen, n_samples=150)
        forest = RandomForestClassifier(
            n_estimators=int(gen.integers(1, 8)),
            max_depth=int(gen.integers(1, 8)),
            tree_feature_fraction=float(gen.uniform(0.4, 1.0)),
            random_state=int(gen.integers(2**31 - 1)),
        ).fit(X, y)
        X_query = gen.normal(size=(200, X.shape[1]))

        with inference_backend("object"):
            reference_all = forest.predict_all(X_query)
            reference_pred = forest.predict(X_query)
            reference_proba = forest.predict_proba(X_query)

        engine = forest.compile()
        assert np.array_equal(engine.predict_all(X_query), reference_all)
        assert engine.predict_all(X_query).dtype == reference_all.dtype
        assert np.array_equal(engine.predict(X_query), reference_pred)
        # Probabilities only differ in summation order across trees.
        np.testing.assert_allclose(
            engine.predict_proba(X_query), reference_proba, rtol=0, atol=1e-12
        )

        # The estimator API itself must agree with the object backend.
        assert np.array_equal(forest.predict_all(X_query), reference_all)
        assert np.array_equal(forest.predict(X_query), reference_pred)

    def test_forest_of_single_leaf_trees(self):
        forest = RandomForestClassifier(n_estimators=3)
        trees = []
        for label in (-1, 1, 1):
            tree = DecisionTreeClassifier()
            tree.root_ = Leaf(prediction=label, class_weights={label: 2.0})
            tree.classes_ = np.array([-1, 1])
            tree.n_features_in_ = 2
            trees.append(tree)
        forest.trees_ = trees
        forest.feature_subsets_ = [np.array([0, 1])] * 3
        forest.classes_ = np.array([-1, 1])
        forest.n_features_in_ = 2

        X = np.zeros((5, 2))
        engine = forest.compile()
        assert engine.depth == 0
        assert np.array_equal(engine.predict_all(X), [[-1] * 5, [1] * 5, [1] * 5])
        assert np.array_equal(engine.predict(X), np.ones(5, dtype=np.int64))

    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_boosting_bitwise_identical(self, seed):
        gen = np.random.default_rng(seed)
        X, y = _random_data(gen, n_samples=120)
        model = GradientBoostingClassifier(
            n_estimators=int(gen.integers(1, 6)), max_depth=int(gen.integers(1, 4))
        ).fit(X, y)
        X_query = gen.normal(size=(150, X.shape[1]))

        with inference_backend("object"):
            reference_contrib = model.stage_contributions(X_query)
            reference_margin = model.decision_function(X_query)
            reference_pred = model.predict(X_query)

        model.compile()
        assert np.array_equal(model.stage_contributions(X_query), reference_contrib)
        assert np.array_equal(model.decision_function(X_query), reference_margin)
        assert np.array_equal(model.predict(X_query), reference_pred)


class TestBackendAndCaching:
    def test_backend_switch_and_restore(self):
        assert get_inference_backend() == "compiled"
        with inference_backend("object"):
            assert get_inference_backend() == "object"
        assert get_inference_backend() == "compiled"
        with pytest.raises(ValidationError):
            set_inference_backend("numba")

    def test_object_backend_never_compiles(self):
        gen = np.random.default_rng(5)
        X, y = _random_data(gen)
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        with inference_backend("object"):
            tree.predict(gen.normal(size=(500, X.shape[1])))
        assert tree._compiled_ is None

    def test_lazy_compile_skips_tiny_batches(self):
        gen = np.random.default_rng(6)
        X, y = _random_data(gen)
        forest = RandomForestClassifier(n_estimators=3, max_depth=4, random_state=0)
        forest.fit(X, y)
        forest.predict_all(gen.normal(size=(4, X.shape[1])))
        assert forest._compiled_ is None  # below the lazy threshold
        forest.predict_all(gen.normal(size=(256, X.shape[1])))
        assert forest._compiled_ is not None  # large batch compiled
        # ... and once compiled, tiny batches reuse the engine.
        engine = forest._compiled_
        forest.predict_all(gen.normal(size=(4, X.shape[1])))
        assert forest._compiled_ is engine

    def test_cache_invalidated_when_roots_change(self):
        gen = np.random.default_rng(7)
        X, y = _random_data(gen)
        forest = RandomForestClassifier(n_estimators=3, max_depth=6, random_state=0)
        forest.fit(X, y)
        stale = forest.compile()

        from repro.attacks.modification import truncate_forest

        attacked = truncate_forest(forest, max_depth=1)
        X_query = gen.normal(size=(300, X.shape[1]))
        with inference_backend("object"):
            reference = attacked.predict_all(X_query)
        assert np.array_equal(attacked.predict_all(X_query), reference)
        assert attacked._compiled_ is not stale
        # The original forest still answers from its untouched cache.
        assert forest._compiled_ is stale

    def test_wrong_feature_count_rejected_on_compiled_paths(self):
        """The engine's flat gather must never see a misshaped X."""
        gen = np.random.default_rng(12)
        X, y = _random_data(gen)
        forest = RandomForestClassifier(n_estimators=3, max_depth=4, random_state=0)
        forest.fit(X, y)
        forest.compile()
        for n_cols in (X.shape[1] - 2, X.shape[1] + 2):
            with pytest.raises(ValidationError, match="features"):
                forest.predict_all(gen.normal(size=(64, n_cols)))
            with pytest.raises(ValidationError, match="features"):
                forest.predict_proba(gen.normal(size=(64, n_cols)))

        model = GradientBoostingClassifier(n_estimators=2, max_depth=2).fit(X, y)
        model.compile()
        with pytest.raises(ValidationError, match="features"):
            model.stage_contributions(gen.normal(size=(64, X.shape[1] + 1)))

    def test_refit_resets_cache(self):
        gen = np.random.default_rng(8)
        X, y = _random_data(gen)
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        tree.compile()
        tree.fit(X, y)
        assert tree._compiled_ is None


class TestCompiledVerificationPath:
    def test_verification_identical_across_backends(self):
        """The watermark protocol sees identical bits from both engines."""
        from repro.core import random_signature, watermark
        from repro.core.verification import verify_ownership

        gen = np.random.default_rng(9)
        X, y = _random_data(gen, n_samples=260)
        signature = random_signature(m=6, ones_fraction=0.5, random_state=2)
        model = watermark(
            X,
            y,
            signature,
            trigger_size=4,
            base_params={"max_depth": 8},
            random_state=3,
        )
        model.ensemble.compile()
        compiled_report = verify_ownership(
            model.ensemble, signature, model.trigger.X, model.trigger.y
        )
        with inference_backend("object"):
            object_report = verify_ownership(
                model.ensemble, signature, model.trigger.X, model.trigger.y
            )
        assert compiled_report.accepted and object_report.accepted
        assert np.array_equal(
            compiled_report.per_tree_accuracy, object_report.per_tree_accuracy
        )
        assert compiled_report.recovered_bits == object_report.recovered_bits
