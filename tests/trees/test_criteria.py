"""Tests for impurity criteria."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.trees.criteria import entropy_impurity, get_criterion, gini_impurity


class TestGini:
    def test_pure_node_is_zero(self):
        assert gini_impurity(np.array([10.0, 0.0])) == pytest.approx(0.0)
        assert gini_impurity(np.array([0.0, 3.5])) == pytest.approx(0.0)

    def test_balanced_binary_is_half(self):
        assert gini_impurity(np.array([5.0, 5.0])) == pytest.approx(0.5)

    def test_empty_counts_are_zero(self):
        assert gini_impurity(np.array([0.0, 0.0])) == pytest.approx(0.0)

    def test_three_class_uniform(self):
        assert gini_impurity(np.array([1.0, 1.0, 1.0])) == pytest.approx(2.0 / 3.0)

    def test_vectorised_over_rows(self):
        counts = np.array([[4.0, 0.0], [2.0, 2.0], [0.0, 0.0]])
        out = gini_impurity(counts)
        assert out.shape == (3,)
        assert out == pytest.approx([0.0, 0.5, 0.0])

    @given(
        st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=2, max_size=5).filter(
            lambda counts: sum(counts) > 0
        )
    )
    def test_bounded_between_zero_and_one(self, counts):
        value = float(gini_impurity(np.array(counts)))
        assert 0.0 <= value <= 1.0

    @given(
        st.lists(st.floats(min_value=0.01, max_value=1e5), min_size=2, max_size=4),
        st.floats(min_value=0.1, max_value=100.0),
    )
    def test_scale_invariance(self, counts, scale):
        base = float(gini_impurity(np.array(counts)))
        scaled = float(gini_impurity(np.array(counts) * scale))
        assert scaled == pytest.approx(base, rel=1e-9)


class TestEntropy:
    def test_pure_node_is_zero(self):
        assert entropy_impurity(np.array([7.0, 0.0])) == pytest.approx(0.0)

    def test_balanced_binary_is_one_bit(self):
        assert entropy_impurity(np.array([3.0, 3.0])) == pytest.approx(1.0)

    def test_uniform_k_classes_is_log2_k(self):
        assert entropy_impurity(np.ones(4)) == pytest.approx(2.0)

    def test_empty_counts_are_zero(self):
        assert entropy_impurity(np.array([0.0, 0.0])) == pytest.approx(0.0)

    @given(
        st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=2, max_size=4).filter(
            lambda counts: sum(counts) > 0
        )
    )
    def test_non_negative(self, counts):
        assert float(entropy_impurity(np.array(counts))) >= 0.0


class TestGetCriterion:
    def test_lookup(self):
        assert get_criterion("gini") is gini_impurity
        assert get_criterion("entropy") is entropy_impurity

    def test_unknown_name_raises(self):
        with pytest.raises(ValidationError, match="unknown criterion"):
            get_criterion("mse")
