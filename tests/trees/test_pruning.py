"""Tests for cost-complexity pruning."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.trees import (
    DecisionTreeClassifier,
    prune_cost_complexity,
    pruning_path,
    subtree_risk,
)
from repro.trees.node import InternalNode, Leaf


def _fitted_tree(rng, n=150, noise=0.15, max_depth=8):
    X = rng.uniform(size=(n, 3))
    y = np.where(X[:, 0] > 0.5, 1, -1)
    flip = rng.uniform(size=n) < noise
    y[flip] = -y[flip]
    return DecisionTreeClassifier(max_depth=max_depth).fit(X, y), X, y


class TestSubtreeRisk:
    def test_pure_leaf_risk_zero(self):
        assert subtree_risk(Leaf(1, {1: 5.0})) == (0.0, 1)

    def test_mixed_leaf_risk(self):
        risk, leaves = subtree_risk(Leaf(1, {1: 3.0, -1: 2.0}))
        assert risk == pytest.approx(2.0)
        assert leaves == 1

    def test_subtree_aggregation(self):
        tree = InternalNode(0, 0.5, Leaf(1, {1: 3.0, -1: 1.0}), Leaf(-1, {-1: 4.0}))
        risk, leaves = subtree_risk(tree)
        assert risk == pytest.approx(1.0)
        assert leaves == 2

    def test_weightless_leaf_rejected(self):
        with pytest.raises(ValidationError, match="class_weights"):
            subtree_risk(Leaf(1))


class TestPruneCostComplexity:
    def test_alpha_zero_keeps_fit(self, rng):
        tree, X, y = _fitted_tree(rng)
        pruned = prune_cost_complexity(tree.root_, 0.0)
        # Zero-cost collapses never change training predictions.
        from repro.trees.node import predict_batch

        assert np.array_equal(predict_batch(pruned, X), tree.predict(X))

    def test_large_alpha_collapses_to_leaf(self, rng):
        tree, _, _ = _fitted_tree(rng)
        pruned = prune_cost_complexity(tree.root_, 1e9)
        assert pruned.is_leaf

    def test_monotone_in_alpha(self, rng):
        tree, _, _ = _fitted_tree(rng)
        sizes = [
            prune_cost_complexity(tree.root_, alpha).n_leaves()
            for alpha in (0.0, 0.5, 2.0, 10.0)
        ]
        assert sizes == sorted(sizes, reverse=True)

    def test_original_tree_unmodified(self, rng):
        tree, _, _ = _fitted_tree(rng)
        before = tree.root_.n_leaves()
        prune_cost_complexity(tree.root_, 1e9)
        assert tree.root_.n_leaves() == before

    def test_negative_alpha_rejected(self, rng):
        tree, _, _ = _fitted_tree(rng)
        with pytest.raises(ValidationError):
            prune_cost_complexity(tree.root_, -1.0)

    def test_training_risk_grows_gracefully(self, rng):
        # Pruning trades leaves for risk; the risk increase per pruning
        # step is bounded by alpha per removed leaf.
        tree, X, y = _fitted_tree(rng)
        base_risk, base_leaves = subtree_risk(tree.root_)
        alpha = 2.0
        pruned = prune_cost_complexity(tree.root_, alpha)
        pruned_risk, pruned_leaves = subtree_risk(pruned)
        assert pruned_risk >= base_risk - 1e-9
        assert pruned_risk - base_risk <= alpha * (base_leaves - pruned_leaves) + 1e-9


class TestPruningPath:
    def test_path_shrinks_to_single_leaf(self, rng):
        tree, _, _ = _fitted_tree(rng)
        path = pruning_path(tree.root_)
        alphas = [alpha for alpha, _ in path]
        leaves = [n for _, n in path]
        assert alphas == sorted(alphas)
        assert leaves == sorted(leaves, reverse=True)
        assert leaves[-1] == 1

    def test_stump_path(self):
        stump = InternalNode(0, 0.5, Leaf(-1, {-1: 5.0}), Leaf(1, {1: 5.0}))
        path = pruning_path(stump)
        assert path[0] == (0.0, 2)
        assert path[-1][1] == 1
