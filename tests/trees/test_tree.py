"""Tests for DecisionTreeClassifier."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import NotFittedError, ValidationError
from repro.trees import DecisionTreeClassifier, resolve_max_features


class TestFitPredict:
    def test_fits_training_data_perfectly_when_unconstrained(self, rng):
        X = rng.uniform(size=(60, 5))
        y = rng.choice([-1, 1], size=60)
        tree = DecisionTreeClassifier().fit(X, y)
        assert np.array_equal(tree.predict(X), y)

    def test_max_depth_respected(self, rng):
        X = rng.uniform(size=(200, 4))
        y = rng.choice([-1, 1], size=200)
        tree = DecisionTreeClassifier(max_depth=3).fit(X, y)
        assert tree.depth_ <= 3

    def test_max_leaf_nodes_respected(self, rng):
        X = rng.uniform(size=(200, 4))
        y = rng.choice([-1, 1], size=200)
        tree = DecisionTreeClassifier(max_leaf_nodes=5).fit(X, y)
        assert tree.n_leaves_ <= 5

    def test_min_samples_leaf(self, rng):
        X = rng.uniform(size=(100, 3))
        y = rng.choice([-1, 1], size=100)
        tree = DecisionTreeClassifier(min_samples_leaf=10).fit(X, y)
        # Every leaf received >= 10 training samples; depth is bounded.
        assert tree.n_leaves_ <= 10

    def test_multiclass_labels(self, rng):
        X = rng.uniform(size=(90, 3))
        y = rng.choice([0, 1, 2], size=90)
        tree = DecisionTreeClassifier().fit(X, y)
        assert set(np.unique(tree.predict(X))) <= {0, 1, 2}
        assert np.array_equal(tree.classes_, np.array([0, 1, 2]))

    def test_single_class_training_set(self):
        X = np.array([[0.0], [1.0], [2.0]])
        y = np.array([1, 1, 1])
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.n_leaves_ == 1
        assert np.array_equal(tree.predict(X), y)

    def test_determinism_with_seed(self, rng):
        X = rng.uniform(size=(100, 6))
        y = rng.choice([-1, 1], size=100)
        t1 = DecisionTreeClassifier(max_features=2, random_state=5).fit(X, y)
        t2 = DecisionTreeClassifier(max_features=2, random_state=5).fit(X, y)
        probe = rng.uniform(size=(30, 6))
        assert np.array_equal(t1.predict(probe), t2.predict(probe))

    def test_sample_weight_forces_fit(self, rng):
        # A tiny capped tree must prioritise the heavily weighted sample.
        X = rng.uniform(size=(50, 2))
        y = np.array([-1] * 49 + [1])
        weights = np.ones(50)
        weights[-1] = 1000.0
        tree = DecisionTreeClassifier(max_leaf_nodes=4).fit(X, y, sample_weight=weights)
        assert tree.predict(X[-1:])[0] == 1

    def test_zero_weight_samples_ignored(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([-1, -1, 1, 1])
        weights = np.array([1.0, 1.0, 0.0, 0.0])
        tree = DecisionTreeClassifier().fit(X, y, sample_weight=weights)
        # Only -1 samples have weight: the tree must be a single -1 leaf.
        assert tree.n_leaves_ == 1
        assert tree.predict(np.array([[2.5]]))[0] == -1


class TestPredictProba:
    def test_rows_sum_to_one(self, rng):
        X = rng.uniform(size=(80, 3))
        y = rng.choice([-1, 1], size=80)
        tree = DecisionTreeClassifier(max_depth=3).fit(X, y)
        proba = tree.predict_proba(X)
        assert proba.shape == (80, 2)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_argmax_matches_predict(self, rng):
        X = rng.uniform(size=(80, 3))
        y = rng.choice([-1, 1], size=80)
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        proba = tree.predict_proba(X)
        from_proba = tree.classes_[np.argmax(proba, axis=1)]
        preds = tree.predict(X)
        # Ties can differ; require agreement where the margin is clear.
        clear = np.abs(proba[:, 0] - proba[:, 1]) > 1e-9
        assert np.array_equal(from_proba[clear], preds[clear])


class TestValidation:
    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            DecisionTreeClassifier().predict(np.zeros((1, 2)))

    def test_wrong_feature_count_raises(self, rng):
        X = rng.uniform(size=(20, 3))
        y = rng.choice([-1, 1], size=20)
        tree = DecisionTreeClassifier().fit(X, y)
        with pytest.raises(ValidationError, match="features"):
            tree.predict(np.zeros((2, 4)))

    def test_non_integer_labels_raise(self):
        with pytest.raises(ValidationError, match="integer"):
            DecisionTreeClassifier().fit(np.zeros((3, 1)), [0.5, 1.2, 0.1])

    def test_nan_features_raise(self):
        X = np.array([[np.nan], [1.0]])
        with pytest.raises(ValidationError, match="NaN"):
            DecisionTreeClassifier().fit(X, [0, 1])

    def test_bad_hyperparameters_raise(self):
        X = np.zeros((4, 1))
        y = [0, 1, 0, 1]
        with pytest.raises(ValidationError):
            DecisionTreeClassifier(max_depth=0).fit(X, y)
        with pytest.raises(ValidationError):
            DecisionTreeClassifier(max_leaf_nodes=1).fit(X, y)
        with pytest.raises(ValidationError):
            DecisionTreeClassifier(min_samples_split=1).fit(X, y)

    def test_feature_subset_out_of_range_raises(self, rng):
        X = rng.uniform(size=(10, 2))
        y = rng.choice([-1, 1], size=10)
        with pytest.raises(ValidationError, match="out-of-range"):
            DecisionTreeClassifier(feature_subset=[0, 5]).fit(X, y)

    def test_feature_subset_restricts_splits(self, rng):
        X = rng.uniform(size=(120, 4))
        y = (X[:, 2] > 0.5).astype(np.int64) * 2 - 1  # label depends on f2 only
        tree = DecisionTreeClassifier(feature_subset=[0, 1]).fit(X, y)
        assert tree.used_features_() <= {0, 1}


class TestResolveMaxFeatures:
    def test_none_passthrough(self):
        assert resolve_max_features(None, 10) is None

    def test_sqrt_and_log2(self):
        assert resolve_max_features("sqrt", 100) == 10
        assert resolve_max_features("log2", 64) == 6

    def test_fraction(self):
        assert resolve_max_features(0.5, 10) == 5

    def test_int_clamped(self):
        assert resolve_max_features(50, 10) == 10

    def test_invalid_values_raise(self):
        with pytest.raises(ValidationError):
            resolve_max_features("cube", 10)
        with pytest.raises(ValidationError):
            resolve_max_features(0, 10)
        with pytest.raises(ValidationError):
            resolve_max_features(1.5, 10)

    def test_bool_rejected(self):
        # bool is a subclass of int; it must not slip through as 0 or 1.
        with pytest.raises(ValidationError, match="bool"):
            resolve_max_features(True, 10)
        with pytest.raises(ValidationError, match="bool"):
            resolve_max_features(False, 10)
        with pytest.raises(ValidationError):
            resolve_max_features(np.True_, 10)


class TestPropertyBased:
    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_depth_cap_always_holds(self, depth, seed):
        gen = np.random.default_rng(seed)
        X = gen.uniform(size=(40, 3))
        y = gen.choice([-1, 1], size=40)
        if len(np.unique(y)) < 2:
            y[0] = -y[0]
        tree = DecisionTreeClassifier(max_depth=depth).fit(X, y)
        assert tree.depth_ <= depth

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_training_accuracy_weakly_improves_with_depth(self, seed):
        gen = np.random.default_rng(seed)
        X = gen.uniform(size=(60, 3))
        y = gen.choice([-1, 1], size=60)
        if len(np.unique(y)) < 2:
            y[0] = -y[0]
        shallow = DecisionTreeClassifier(max_depth=1).fit(X, y).score(X, y)
        deep = DecisionTreeClassifier(max_depth=8).fit(X, y).score(X, y)
        assert deep >= shallow - 1e-12
