"""Tests for leaf boxes (the geometric layer under the forgery solvers)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trees import Box, DecisionTreeClassifier, boxes_for_label, leaf_boxes
from repro.trees.node import InternalNode, Leaf, predict_one


class TestBoxAlgebra:
    def test_unconstrained_box_contains_everything(self, rng):
        box = Box()
        assert not box.is_empty()
        assert box.contains(rng.uniform(-100, 100, size=8))

    def test_constrain_keeps_tighter_bounds(self):
        box = Box()
        box.constrain_upper(0, 5.0)
        box.constrain_upper(0, 3.0)
        box.constrain_upper(0, 7.0)
        assert box.upper[0] == 3.0
        box.constrain_lower(0, 1.0)
        box.constrain_lower(0, 2.0)
        box.constrain_lower(0, 0.5)
        assert box.lower[0] == 2.0

    def test_emptiness(self):
        box = Box()
        box.constrain_upper(1, 1.0)
        box.constrain_lower(1, 1.0)  # x > 1 and x <= 1: empty
        assert box.is_empty()

    def test_contains_respects_strictness(self):
        box = Box(lower={0: 1.0}, upper={0: 2.0})
        assert not box.contains(np.array([1.0]))  # boundary is excluded below
        assert box.contains(np.array([2.0]))  # included above
        assert box.contains(np.array([1.5]))

    def test_intersection_commutes(self):
        a = Box(lower={0: 0.0}, upper={0: 2.0, 1: 5.0})
        b = Box(lower={0: 1.0, 2: 0.5}, upper={0: 3.0})
        ab = a.intersect(b)
        ba = b.intersect(a)
        assert ab.lower == ba.lower and ab.upper == ba.upper
        assert ab.interval(0) == (1.0, 2.0)

    def test_intersects_agrees_with_intersect_emptiness(self, rng):
        for _ in range(50):
            a = Box(
                lower={int(f): float(v) for f, v in zip(rng.integers(0, 4, 2), rng.uniform(0, 1, 2))},
                upper={int(f): float(v) for f, v in zip(rng.integers(0, 4, 2), rng.uniform(0, 1, 2))},
            )
            b = Box(
                lower={int(f): float(v) for f, v in zip(rng.integers(0, 4, 2), rng.uniform(0, 1, 2))},
                upper={int(f): float(v) for f, v in zip(rng.integers(0, 4, 2), rng.uniform(0, 1, 2))},
            )
            assert a.intersects(b) == (not a.intersect(b).is_empty())

    def test_clip_to_ball(self):
        box = Box().clip_to_ball(np.array([0.5, 0.5]), 0.1)
        assert box.contains(np.array([0.55, 0.45]))
        assert not box.contains(np.array([0.7, 0.5]))

    def test_sample_point_lands_inside(self, rng):
        box = Box(lower={0: 0.2, 1: 0.4}, upper={0: 0.6, 2: 0.9})
        x = box.sample_point(4, reference=rng.uniform(size=4))
        assert box.contains(x)

    def test_sample_point_prefers_reference(self):
        box = Box(lower={0: 0.0}, upper={0: 1.0})
        reference = np.array([0.37, 0.88])
        x = box.sample_point(2, reference=reference)
        assert x[0] == pytest.approx(0.37)
        assert x[1] == pytest.approx(0.88)

    def test_sample_point_empty_box_raises(self):
        box = Box(lower={0: 2.0}, upper={0: 1.0})
        with pytest.raises(ValueError, match="empty"):
            box.sample_point(1)


class TestLeafBoxes:
    def test_paper_figure1_boxes(self):
        tree = InternalNode(
            feature=0,
            threshold=5.0,
            left=InternalNode(feature=1, threshold=3.0, left=Leaf(+1), right=Leaf(-1)),
            right=InternalNode(feature=2, threshold=7.0, left=Leaf(-1), right=Leaf(+1)),
        )
        pairs = leaf_boxes(tree)
        assert len(pairs) == 4
        positive = boxes_for_label(tree, +1)
        assert len(positive) == 2
        # The +1 box on the left branch: x0 <= 5, x1 <= 3.
        left_pos = [box for box in positive if box.interval(0)[1] == 5.0][0]
        assert left_pos.interval(1) == (float("-inf"), 3.0)

    def test_every_sample_in_exactly_one_box(self, rng):
        X = rng.uniform(size=(80, 4))
        y = rng.choice([-1, 1], size=80)
        tree = DecisionTreeClassifier(max_depth=5).fit(X, y)
        pairs = leaf_boxes(tree.root_)
        for x in X[:30]:
            containing = [leaf for leaf, box in pairs if box.contains(x)]
            assert len(containing) == 1

    def test_box_membership_equals_tree_routing(self, rng):
        X = rng.uniform(size=(60, 3))
        y = rng.choice([-1, 1], size=60)
        tree = DecisionTreeClassifier(max_depth=6).fit(X, y)
        pairs = leaf_boxes(tree.root_)
        for x in rng.uniform(size=(40, 3)):
            prediction = predict_one(tree.root_, x)
            containing = [leaf for leaf, box in pairs if box.contains(x)]
            assert len(containing) == 1
            assert containing[0].prediction == prediction

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_sampled_box_points_route_to_their_leaf(self, seed):
        gen = np.random.default_rng(seed)
        X = gen.uniform(size=(50, 3))
        y = gen.choice([-1, 1], size=50)
        if len(np.unique(y)) < 2:
            y[0] = -y[0]
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        for leaf, box in leaf_boxes(tree.root_):
            x = box.sample_point(3, reference=gen.uniform(size=3))
            assert predict_one(tree.root_, x) == leaf.prediction
