"""Tests for the suppression distinguishers."""

import numpy as np
import pytest

from repro.attacks import (
    auc_from_scores,
    disagreement_score,
    input_distance_score,
    suppression_analysis,
)
from repro.exceptions import ValidationError


class TestAUC:
    def test_perfect_separation(self):
        assert auc_from_scores([2.0, 3.0], [0.0, 1.0]) == 1.0

    def test_reversed_separation(self):
        assert auc_from_scores([0.0, 1.0], [2.0, 3.0]) == 0.0

    def test_identical_scores_give_half(self):
        assert auc_from_scores([1.0, 1.0], [1.0, 1.0]) == pytest.approx(0.5)

    def test_random_scores_near_half(self, rng):
        pos = rng.uniform(size=400)
        neg = rng.uniform(size=400)
        assert auc_from_scores(pos, neg) == pytest.approx(0.5, abs=0.06)

    def test_empty_group_raises(self):
        with pytest.raises(ValidationError):
            auc_from_scores([], [1.0])


class TestDisagreementScore:
    def test_range(self, bc_forest, bc_data):
        _, X_test, _, _ = bc_data
        scores = disagreement_score(bc_forest, X_test)
        assert scores.shape == (X_test.shape[0],)
        assert (scores >= 0).all() and (scores <= 1).all()

    def test_triggers_provoke_high_disagreement(self, wm_model, bc_data):
        """Our extension finding: the forced vote split makes trigger
        queries stand out to an attacker watching per-tree outputs."""
        _, X_test, _, _ = bc_data
        trigger_scores = disagreement_score(wm_model.ensemble, wm_model.trigger.X)
        test_scores = disagreement_score(wm_model.ensemble, X_test)
        assert trigger_scores.mean() > test_scores.mean()


class TestInputDistanceScore:
    def test_self_distance_uses_second_neighbour(self, rng):
        X = rng.uniform(size=(20, 3))
        scores = input_distance_score(X[:5], X)
        assert (scores > 0).all()

    def test_outlier_scores_high(self, rng):
        X = rng.uniform(size=(50, 2))
        outlier = np.array([[10.0, 10.0]])
        scores = input_distance_score(np.vstack([X[:1], outlier]), X)
        assert scores[1] > scores[0]


class TestSuppressionAnalysis:
    def test_paper_claim_input_indistinguishability(self, wm_model, bc_data):
        """Trigger instances come from the training distribution, so the
        input-side AUC should hover near 0.5 (no signal)."""
        X_train, X_test, _, _ = bc_data
        analysis = suppression_analysis(
            wm_model.ensemble, wm_model.trigger.X, X_test, X_train
        )
        assert 0.2 <= analysis.input_auc <= 0.8

    def test_disagreement_attacker_is_stronger(self, wm_model, bc_data):
        X_train, X_test, _, _ = bc_data
        analysis = suppression_analysis(
            wm_model.ensemble, wm_model.trigger.X, X_test, X_train
        )
        assert analysis.disagreement_auc >= analysis.input_auc - 0.1
