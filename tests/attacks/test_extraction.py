"""Tests for the model-extraction (surrogate) attack."""

import numpy as np
import pytest

from repro.attacks import extract_surrogate, extraction_study
from repro.exceptions import ValidationError


class TestExtractSurrogate:
    def test_surrogate_mimics_victim(self, bc_forest, bc_data):
        X_train, X_test, _, _ = bc_data
        surrogate = extract_surrogate(bc_forest, X_train, random_state=0)
        agreement = np.mean(surrogate.predict(X_test) == bc_forest.predict(X_test))
        assert agreement > 0.75

    def test_surrogate_never_sees_true_labels(self, bc_forest, bc_data):
        # Train the surrogate on victim answers over *random noise*
        # queries: it still fits those answers, demonstrating the
        # attack needs only black-box access.
        rng = np.random.default_rng(1)
        X_noise = rng.uniform(size=(300, bc_forest.n_features_in_))
        labels = bc_forest.predict(X_noise)
        if len(np.unique(labels)) < 2:
            pytest.skip("victim answered noise with a single class")
        surrogate = extract_surrogate(bc_forest, X_noise, random_state=2)
        fidelity = np.mean(surrogate.predict(X_noise) == labels)
        assert fidelity > 0.9

    def test_single_class_answers_rejected(self, bc_forest):
        # Queries taken from deep inside one class region.
        X_one_sided = np.zeros((20, bc_forest.n_features_in_))
        labels = bc_forest.predict(X_one_sided)
        if len(np.unique(labels)) > 1:
            pytest.skip("victim not single-class on this probe")
        with pytest.raises(ValidationError, match="one class"):
            extract_surrogate(bc_forest, X_one_sided)


class TestExtractionStudy:
    def test_watermark_does_not_transfer(self, wm_model, bc_data):
        """The key security observation: surrogates break per-tree
        alignment, so the watermark does not survive extraction."""
        X_train, X_test, y_train, y_test = bc_data
        outcomes = extraction_study(
            wm_model,
            X_pool=X_train,
            X_test=X_test,
            y_test=y_test,
            query_budgets=(120,),
            random_state=3,
        )
        assert len(outcomes) == 1
        outcome = outcomes[0]
        assert not outcome.watermark_accepted
        assert outcome.watermark_match_rate < 1.0

    def test_more_queries_help_fidelity(self, wm_model, bc_data):
        X_train, X_test, y_train, y_test = bc_data
        outcomes = extraction_study(
            wm_model,
            X_pool=X_train,
            X_test=X_test,
            y_test=y_test,
            query_budgets=(30, 150),
            random_state=4,
        )
        assert outcomes[1].agreement >= outcomes[0].agreement - 0.1

    def test_budget_exceeding_pool_rejected(self, wm_model, bc_data):
        X_train, X_test, y_train, y_test = bc_data
        with pytest.raises(ValidationError, match="pool"):
            extraction_study(
                wm_model,
                X_pool=X_train,
                X_test=X_test,
                y_test=y_test,
                query_budgets=(X_train.shape[0] + 1,),
            )


class TestSweepCellIndependence:
    """Regression for the shared-RNG-across-cells bug class: one
    generator threaded through the budget loop made every cell depend
    on which budgets ran before it.  Cells are now keyed by budget
    *value*, so sweeps are order-invariant and each cell matches a
    standalone run."""

    @staticmethod
    def _fingerprint(outcome, X_test):
        return (
            outcome.query_budget,
            outcome.agreement,
            outcome.surrogate_accuracy,
            outcome.watermark_match_rate,
            outcome.surrogate.predict(X_test).tobytes(),
        )

    def test_cell_matches_standalone_run(self, wm_model, bc_data):
        X_train, X_test, y_train, y_test = bc_data
        kwargs = dict(X_pool=X_train, X_test=X_test, y_test=y_test, random_state=7)
        swept = extraction_study(wm_model, query_budgets=(60, 120), **kwargs)
        alone = extraction_study(wm_model, query_budgets=(120,), **kwargs)
        assert self._fingerprint(swept[1], X_test) == self._fingerprint(
            alone[0], X_test
        )

    def test_sweep_order_invariance(self, wm_model, bc_data):
        X_train, X_test, y_train, y_test = bc_data
        kwargs = dict(X_pool=X_train, X_test=X_test, y_test=y_test, random_state=7)
        forward = extraction_study(wm_model, query_budgets=(60, 120), **kwargs)
        reverse = extraction_study(wm_model, query_budgets=(120, 60), **kwargs)
        assert [self._fingerprint(o, X_test) for o in forward] == [
            self._fingerprint(o, X_test) for o in reverse[::-1]
        ]
