"""Tests for model-modification attacks (future-work threat model)."""

import numpy as np
import pytest

from repro.attacks import (
    flip_forest_leaves,
    flip_leaves,
    modification_robustness,
    truncate_forest,
    truncate_tree,
)
from repro.exceptions import ValidationError
from repro.trees.node import InternalNode, Leaf
from repro.trees.export import tree_stats


def _deep_tree():
    return InternalNode(
        0, 0.5,
        InternalNode(1, 0.3, Leaf(-1, {-1: 3.0}), Leaf(1, {1: 1.0})),
        Leaf(1, {1: 5.0}),
    )


class TestTruncateTree:
    def test_truncation_depth(self):
        truncated = truncate_tree(_deep_tree(), 1)
        assert tree_stats(truncated).depth <= 1

    def test_truncate_to_root_leaf(self):
        truncated = truncate_tree(_deep_tree(), 0)
        assert truncated.is_leaf
        # Majority mass: +1 has 6.0 vs -1 has 3.0.
        assert truncated.prediction == 1

    def test_majority_uses_class_weights(self):
        tree = InternalNode(0, 0.5, Leaf(-1, {-1: 10.0}), Leaf(1, {1: 1.0}))
        truncated = truncate_tree(tree, 0)
        assert truncated.prediction == -1

    def test_no_op_when_deeper_than_tree(self):
        original = _deep_tree()
        truncated = truncate_tree(original, 10)
        assert tree_stats(truncated) == tree_stats(original)

    def test_original_untouched(self):
        original = _deep_tree()
        truncate_tree(original, 0)
        assert not original.is_leaf

    def test_negative_depth_rejected(self):
        with pytest.raises(ValidationError):
            truncate_tree(_deep_tree(), -1)


class TestFlipLeaves:
    def test_probability_zero_is_identity(self, rng):
        tree = _deep_tree()
        flipped = flip_leaves(tree, 0.0, rng)
        assert tree_stats(flipped) == tree_stats(tree)
        assert [l.prediction for l in _leaves(flipped)] == [
            l.prediction for l in _leaves(tree)
        ]

    def test_probability_one_flips_everything(self, rng):
        tree = _deep_tree()
        flipped = flip_leaves(tree, 1.0, rng)
        assert [l.prediction for l in _leaves(flipped)] == [
            -l.prediction for l in _leaves(tree)
        ]

    def test_invalid_probability(self, rng):
        with pytest.raises(ValidationError):
            flip_leaves(_deep_tree(), 1.5, rng)

    def test_flip_swaps_class_weight_mass(self, rng):
        # Regression: a flipped leaf must move its recorded class mass
        # with the label, otherwise the label says one class while the
        # distribution still favours the other.
        tree = InternalNode(0, 0.5, Leaf(-1, {-1: 3.0, 1: 1.0}), Leaf(1, {1: 5.0}))
        flipped = flip_leaves(tree, 1.0, rng)
        left, right = flipped.left, flipped.right
        assert left.prediction == 1 and left.class_weights == {1: 3.0, -1: 1.0}
        assert right.prediction == -1 and right.class_weights == {-1: 5.0, 1: 0.0}

    def test_flip_keeps_predict_and_proba_consistent(self, bc_data, rng):
        # Regression: on attacked models, `predict` (leaf labels) and
        # `predict_proba` (leaf distributions) must name the same
        # majority class — on the object path and the compiled path.
        from repro.ensemble import RandomForestClassifier
        from repro.trees import inference_backend

        X_train, X_test, y_train, _ = bc_data
        # Unconstrained trees reach pure leaves, so argmax is tie-free.
        forest = RandomForestClassifier(
            n_estimators=3, tree_feature_fraction=1.0, random_state=23
        ).fit(X_train, y_train)
        attacked = flip_forest_leaves(forest, 1.0, random_state=24)
        for tree in attacked.trees_:
            for backend in ("object", "compiled"):
                with inference_backend(backend):
                    if backend == "compiled":
                        tree.compile()
                    labels = tree.predict(X_test)
                    proba = tree.predict_proba(X_test)
                by_proba = tree.classes_[np.argmax(proba, axis=1)]
                assert np.array_equal(labels, by_proba), backend


def _leaves(root):
    from repro.trees.node import iter_leaves

    return list(iter_leaves(root))


class TestForestAttacks:
    def test_truncate_forest_structure(self, bc_forest):
        attacked = truncate_forest(bc_forest, 2)
        assert (attacked.structure()["depth"] <= 2).all()
        # Original untouched.
        assert (bc_forest.structure()["depth"] > 2).any()

    def test_flip_forest_changes_predictions(self, bc_forest, bc_data):
        _, X_test, _, _ = bc_data
        attacked = flip_forest_leaves(bc_forest, 1.0, random_state=0)
        original = bc_forest.predict_all(X_test)
        flipped = attacked.predict_all(X_test)
        assert np.array_equal(flipped, -original)

    def test_attacked_forest_still_predicts(self, bc_forest, bc_data):
        _, X_test, _, _ = bc_data
        attacked = truncate_forest(bc_forest, 3)
        predictions = attacked.predict(X_test)
        assert set(np.unique(predictions)) <= {-1, 1}


class TestModificationRobustness:
    def test_flip_degrades_watermark(self, wm_model, bc_data):
        _, X_test, _, y_test = bc_data
        outcome = modification_robustness(
            wm_model, X_test, y_test, attack="flip", strength=1.0, random_state=1
        )
        # Flipping every leaf inverts all per-tree behaviour: 0-bit trees
        # now miss every trigger, 1-bit trees hit every trigger.
        assert not outcome.watermark_accepted
        assert outcome.watermark_match_rate == 0.0

    def test_identity_attack_keeps_watermark(self, wm_model, bc_data):
        _, X_test, _, y_test = bc_data
        outcome = modification_robustness(
            wm_model, X_test, y_test, attack="flip", strength=0.0, random_state=2
        )
        assert outcome.watermark_accepted
        assert outcome.watermark_match_rate == 1.0

    def test_truncation_tradeoff_recorded(self, wm_model, bc_data):
        _, X_test, _, y_test = bc_data
        outcome = modification_robustness(
            wm_model, X_test, y_test, attack="truncate", strength=1
        )
        assert 0.0 <= outcome.accuracy <= 1.0
        assert 0.0 <= outcome.watermark_match_rate <= 1.0

    def test_unknown_attack_rejected(self, wm_model, bc_data):
        _, X_test, _, y_test = bc_data
        with pytest.raises(ValidationError):
            modification_robustness(wm_model, X_test, y_test, attack="distill", strength=1)
