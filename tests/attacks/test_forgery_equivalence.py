"""Determinism contract of the forgery engine.

``forge_trigger_set`` must return bitwise-identical ``forged_X``,
``source_index`` and ``statuses`` for a fixed seed regardless of

- worker count (``n_jobs`` ∈ {None, 2, 4}),
- the encoding-reuse flag (compiled skeleton + assumption re-solve vs
  rebuild-per-instance),
- their combination, and
- the ``target_size`` early-stop path (parallel waves must consume
  results in serial attempt order and discard speculative surplus).

These tests are the executable form of the contract documented in
``docs/architecture.md``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import forge_trigger_set
from repro.core import random_signature


def _fingerprint(result):
    return (
        result.n_attempted,
        result.forged_X.tobytes(),
        result.forged_X.shape,
        tuple(int(i) for i in result.source_index),
        tuple(sorted(result.statuses.items())),
    )


@pytest.fixture(scope="module")
def forge_setup(wm_model, bc_data):
    _, X_test, _, y_test = bc_data
    fake = random_signature(len(wm_model.signature), random_state=70)
    return wm_model.ensemble, fake, X_test, y_test


class TestForgeDeterminism:
    @pytest.mark.parametrize("n_jobs", [None, 2, 4])
    @pytest.mark.parametrize("reuse_encoding", [True, False])
    def test_bitwise_identical_across_jobs_and_reuse(
        self, forge_setup, n_jobs, reuse_encoding
    ):
        ensemble, fake, X_test, y_test = forge_setup
        baseline = forge_trigger_set(
            ensemble, fake, X_test, y_test,
            epsilon=0.6, max_instances=10, random_state=71,
        )
        other = forge_trigger_set(
            ensemble, fake, X_test, y_test,
            epsilon=0.6, max_instances=10, random_state=71,
            n_jobs=n_jobs, reuse_encoding=reuse_encoding,
        )
        assert _fingerprint(other) == _fingerprint(baseline)

    @pytest.mark.parametrize("n_jobs", [None, 2, 4])
    @pytest.mark.parametrize("reuse_encoding", [True, False])
    def test_target_size_early_stop_is_deterministic(
        self, forge_setup, n_jobs, reuse_encoding
    ):
        ensemble, fake, X_test, y_test = forge_setup
        baseline = forge_trigger_set(
            ensemble, fake, X_test, y_test,
            epsilon=0.8, target_size=2, random_state=72,
        )
        other = forge_trigger_set(
            ensemble, fake, X_test, y_test,
            epsilon=0.8, target_size=2, random_state=72,
            n_jobs=n_jobs, reuse_encoding=reuse_encoding,
        )
        assert _fingerprint(other) == _fingerprint(baseline)
        if baseline.n_forged:
            assert baseline.n_forged <= 2
            # Early stop means the attempt count stops at the decisive
            # instance, not at the end of the test set.
            assert baseline.n_attempted <= X_test.shape[0]

    def test_boxes_engine_parallel_equivalence(self, forge_setup):
        ensemble, fake, X_test, y_test = forge_setup
        serial = forge_trigger_set(
            ensemble, fake, X_test, y_test,
            epsilon=0.6, max_instances=8, engine="boxes", random_state=73,
        )
        parallel = forge_trigger_set(
            ensemble, fake, X_test, y_test,
            epsilon=0.6, max_instances=8, engine="boxes", random_state=73,
            n_jobs=2, reuse_encoding=False,
        )
        assert _fingerprint(parallel) == _fingerprint(serial)

    def test_portfolio_engine_reuse_equivalence(self, forge_setup):
        ensemble, fake, X_test, y_test = forge_setup
        compiled = forge_trigger_set(
            ensemble, fake, X_test, y_test,
            epsilon=0.6, max_instances=6, engine="portfolio", random_state=74,
        )
        fresh = forge_trigger_set(
            ensemble, fake, X_test, y_test,
            epsilon=0.6, max_instances=6, engine="portfolio", random_state=74,
            reuse_encoding=False,
        )
        assert _fingerprint(fresh) == _fingerprint(compiled)

    def test_forged_instances_still_verify(self, forge_setup):
        ensemble, fake, X_test, y_test = forge_setup
        result = forge_trigger_set(
            ensemble, fake, X_test, y_test,
            epsilon=0.7, max_instances=10, random_state=75, n_jobs=2,
        )
        if result.n_forged:
            predictions = ensemble.predict_all(result.forged_X)
            bits = fake.as_array()[:, None]
            labels = y_test[result.source_index][None, :]
            required = np.where(bits == 0, labels, -labels)
            assert np.array_equal(predictions, required)
