"""Tests for the forgery attack driver."""

import numpy as np
import pytest

from repro.attacks import forge_trigger_set, forgery_distortion
from repro.core import random_signature
from repro.exceptions import ValidationError


class TestForgeTriggerSet:
    def test_forged_instances_realise_fake_pattern(self, wm_model, bc_data, forged_result):
        _, X_test, _, y_test = bc_data
        fake, result = forged_result
        assert result.n_attempted <= 15
        if result.n_forged:
            predictions = wm_model.ensemble.predict_all(result.forged_X)
            bits = fake.as_array()[:, None]
            labels = y_test[result.source_index][None, :]
            required = np.where(bits == 0, labels, -labels)
            assert np.array_equal(predictions, required)

    def test_forged_instances_respect_epsilon(self, bc_data, forged_result):
        _, X_test, _, _ = bc_data
        _, result = forged_result
        if result.n_forged:
            deltas = np.abs(result.forged_X - X_test[result.source_index])
            assert deltas.max() <= result.epsilon + 1e-6

    def test_small_epsilon_mostly_fails(self, wm_model, bc_data):
        """The paper's claim: forging inside small balls around real
        instances rarely succeeds on tabular data."""
        _, X_test, _, y_test = bc_data
        fake = random_signature(len(wm_model.signature), random_state=54)
        result = forge_trigger_set(
            wm_model.ensemble,
            fake,
            X_test,
            y_test,
            epsilon=0.05,
            max_instances=12,
            random_state=55,
        )
        assert result.n_forged <= result.n_attempted * 0.5

    def test_target_size_stops_early(self, wm_model, bc_data):
        _, X_test, _, y_test = bc_data
        fake = random_signature(len(wm_model.signature), random_state=56)
        result = forge_trigger_set(
            wm_model.ensemble,
            fake,
            X_test,
            y_test,
            epsilon=0.9,
            target_size=1,
            random_state=57,
        )
        if result.n_forged:
            assert result.n_forged == 1
            assert result.n_attempted <= X_test.shape[0]

    def test_engines_agree_on_counts(self, wm_model, bc_data):
        _, X_test, _, y_test = bc_data
        fake = random_signature(len(wm_model.signature), random_state=58)
        kwargs = dict(epsilon=0.7, max_instances=8, random_state=59)
        smt = forge_trigger_set(wm_model.ensemble, fake, X_test, y_test, engine="smt", **kwargs)
        boxes = forge_trigger_set(wm_model.ensemble, fake, X_test, y_test, engine="boxes", **kwargs)
        assert smt.n_forged == boxes.n_forged

    def test_statuses_recorded(self, forged_result):
        _, result = forged_result
        assert sum(result.statuses.values()) == result.n_attempted

    def test_validation(self, wm_model, bc_data):
        _, X_test, _, y_test = bc_data
        good = random_signature(len(wm_model.signature), random_state=62)
        with pytest.raises(ValidationError, match="bits"):
            forge_trigger_set(
                wm_model.ensemble,
                random_signature(3, random_state=0),
                X_test,
                y_test,
                epsilon=0.5,
            )
        with pytest.raises(ValidationError, match="epsilon"):
            forge_trigger_set(wm_model.ensemble, good, X_test, y_test, epsilon=0.0)


class TestForgeryDistortion:
    def test_empty_result(self, wm_model, bc_data):
        _, X_test, _, y_test = bc_data
        fake = random_signature(len(wm_model.signature), random_state=63)
        result = forge_trigger_set(
            wm_model.ensemble, fake, X_test, y_test, epsilon=0.011,
            max_instances=2, random_state=64,
        )
        if result.n_forged == 0:
            stats = forgery_distortion(result, X_test)
            assert stats["mean_linf"] == 0.0

    def test_distortion_bounded_by_epsilon(self, bc_data, forged_result):
        _, X_test, _, _ = bc_data
        _, result = forged_result
        if result.n_forged:
            stats = forgery_distortion(result, X_test)
            assert 0.0 <= stats["mean_linf"] <= stats["max_linf"] <= result.epsilon + 1e-6
            assert stats["mean_l2"] >= stats["mean_linf"] - 1e-9  # L2 >= Linf
            assert 0.0 <= stats["moved_fraction"] <= 1.0
