"""Tests for the structural detection attack (Table 2)."""

import numpy as np
import pytest

from repro.attacks import detect_bits, detection_report
from repro.exceptions import ValidationError


class TestDetectBits:
    def test_bands_strategy_thresholds(self):
        # mean=5, std=~2.58: value 1 < mean-std -> 0; 9 > mean+std -> 1;
        # 5 -> uncertain.
        values = np.array([1.0, 5.0, 9.0])
        result = detect_bits(values, [0, 0, 1], "bands")
        assert result.predicted == [0, None, 1]
        assert result.n_correct == 2
        assert result.n_wrong == 0
        assert result.n_uncertain == 1

    def test_mean_strategy_no_uncertainty(self):
        values = np.array([1.0, 5.0, 9.0])
        result = detect_bits(values, [0, 1, 1], "mean")
        assert result.n_uncertain == 0
        assert result.predicted == [0, 0, 1]
        assert result.n_correct == 2
        assert result.n_wrong == 1

    def test_mean_boundary_goes_to_zero(self):
        values = np.array([3.0, 3.0])
        result = detect_bits(values, [0, 0], "mean")
        assert result.predicted == [0, 0]

    def test_identical_values_all_uncertain_in_bands(self):
        values = np.array([4.0, 4.0, 4.0])
        result = detect_bits(values, [0, 1, 0], "bands")
        # std = 0: nothing falls strictly below mean-std or above mean+std.
        assert result.n_uncertain == 3

    def test_recovery_rate(self):
        values = np.array([1.0, 9.0])
        result = detect_bits(values, [0, 1], "mean")
        assert result.recovery_rate == 1.0

    def test_recovery_rate_no_decisions(self):
        result = detect_bits(np.array([4.0, 4.0]), [0, 1], "bands")
        assert result.recovery_rate == 0.0

    def test_mean_and_std_reported(self):
        values = np.array([2.0, 4.0])
        result = detect_bits(values, [0, 1], "mean")
        assert result.mean == pytest.approx(3.0)
        assert result.std == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValidationError):
            detect_bits(np.array([1.0]), [0, 1], "mean")
        with pytest.raises(ValidationError):
            detect_bits(np.array([1.0]), [0], "median")


class TestDetectionReport:
    def test_four_results_per_model(self, wm_model):
        results = detection_report(wm_model)
        assert len(results) == 4
        combos = {(r.statistic, r.strategy) for r in results}
        assert combos == {
            ("depth", "bands"),
            ("depth", "mean"),
            ("n_leaves", "bands"),
            ("n_leaves", "mean"),
        }

    def test_counts_add_up(self, wm_model):
        m = len(wm_model.signature)
        for result in detection_report(wm_model):
            assert result.n_correct + result.n_wrong + result.n_uncertain == m

    def test_attack_carries_no_strong_signal(self, wm_model):
        """The paper's core security claim for Table 2: with the Adjust
        heuristic the structural attack cannot reliably recover σ."""
        for result in detection_report(wm_model):
            decided = result.n_correct + result.n_wrong
            if decided >= 4:
                # Recovery should not be near-perfect.
                assert result.recovery_rate <= 0.9
