"""Tests for the 3SAT → forgery reduction (Theorem 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardness import (
    Clause,
    Formula3CNF,
    Literal,
    assignment_to_instance,
    brute_force_3sat,
    clause_to_tree,
    forgery_problem_from_formula,
    formula_to_ensemble,
    instance_to_assignment,
    literal_to_tree,
    random_3cnf,
)
from repro.hardness.reduction import all_zero_signature
from repro.solver import solve_pattern
from repro.trees.node import predict_one
from repro.trees.export import tree_stats


def _paper_formula():
    """(x0 ∨ x1) ∧ (x1 ∨ x2 ∨ ¬x3) — converted in the paper's Figure 2."""
    return Formula3CNF(
        n_vars=4,
        clauses=(
            Clause((Literal(0), Literal(1))),
            Clause((Literal(1), Literal(2), Literal(3, negated=True))),
        ),
    )


class TestLiteralConversion:
    def test_positive_literal(self):
        tree = literal_to_tree(Literal(0))
        assert predict_one(tree, np.array([1.0])) == +1  # x true -> +1
        assert predict_one(tree, np.array([-1.0])) == -1

    def test_negative_literal(self):
        tree = literal_to_tree(Literal(0, negated=True))
        assert predict_one(tree, np.array([-1.0])) == +1  # x false -> +1
        assert predict_one(tree, np.array([1.0])) == -1


class TestClauseConversion:
    def test_tree_accepts_exactly_satisfying_assignments(self):
        clause = Clause((Literal(0), Literal(1, negated=True), Literal(2)))
        tree = clause_to_tree(clause)
        for bits in [(a, b, c) for a in (0, 1) for b in (0, 1) for c in (0, 1)]:
            assignment = [bool(b) for b in bits]
            x = assignment_to_instance(assignment)
            expected = +1 if clause.evaluate(assignment) else -1
            assert predict_one(tree, x) == expected

    def test_depth_at_most_three(self):
        for _seed in range(5):
            formula = random_3cnf(6, 8, random_state=_seed)
            for clause in formula.clauses:
                assert tree_stats(clause_to_tree(clause)).depth <= 3


class TestFormulaConversion:
    def test_paper_figure2_structure(self):
        roots = formula_to_ensemble(_paper_formula())
        assert len(roots) == 2
        # First tree (x0 ∨ x1): root on x0, right child is +1 leaf.
        assert roots[0].feature == 0
        assert roots[0].right.is_leaf and roots[0].right.prediction == +1

    def test_ensemble_agrees_with_formula(self):
        formula = _paper_formula()
        roots = formula_to_ensemble(formula)
        rng = np.random.default_rng(0)
        for _ in range(32):
            assignment = [bool(b) for b in rng.integers(2, size=4)]
            x = assignment_to_instance(assignment)
            ensemble_says = all(predict_one(root, x) == +1 for root in roots)
            assert ensemble_says == formula.evaluate(assignment)


class TestAssignmentMaps:
    def test_roundtrip(self):
        assignment = [True, False, True]
        assert instance_to_assignment(assignment_to_instance(assignment)) == assignment

    def test_positive_threshold_semantics(self):
        # 0 maps to false (x <= 0 goes left).
        assert instance_to_assignment(np.array([0.0, 0.5])) == [False, True]


class TestEndToEndReduction:
    def test_all_zero_signature_length(self):
        formula = _paper_formula()
        assert len(all_zero_signature(formula)) == 2
        assert all_zero_signature(formula).n_ones == 0

    @pytest.mark.parametrize("engine", ["smt", "boxes"])
    def test_paper_example_solvable(self, engine):
        problem = forgery_problem_from_formula(_paper_formula())
        outcome = solve_pattern(problem, engine)
        assert outcome.is_sat
        assignment = instance_to_assignment(outcome.instance)
        assert _paper_formula().evaluate(assignment)

    @pytest.mark.parametrize("engine", ["smt", "boxes"])
    def test_unsatisfiable_formula_detected(self, engine):
        formula = Formula3CNF(
            n_vars=1,
            clauses=(Clause((Literal(0),)), Clause((Literal(0, negated=True),))),
        )
        outcome = solve_pattern(forgery_problem_from_formula(formula), engine)
        assert outcome.is_unsat

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_reduction_preserves_satisfiability(self, seed):
        gen = np.random.default_rng(seed)
        n_vars = int(gen.integers(2, 7))
        n_clauses = int(gen.integers(1, 4 * n_vars))
        formula = random_3cnf(n_vars, n_clauses, random_state=seed)
        truth = brute_force_3sat(formula)
        outcome = solve_pattern(forgery_problem_from_formula(formula), "smt")
        assert outcome.is_sat == (truth is not None)
        if outcome.is_sat:
            assert formula.evaluate(instance_to_assignment(outcome.instance))
