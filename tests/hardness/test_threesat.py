"""Tests for 3CNF formulas."""

import pytest

from repro.exceptions import ValidationError
from repro.hardness import Clause, Formula3CNF, Literal, brute_force_3sat, random_3cnf


def _example_formula():
    """(x0 ∨ x1) ∧ (x1 ∨ x2 ∨ ¬x3) — the paper's running example."""
    return Formula3CNF(
        n_vars=4,
        clauses=(
            Clause((Literal(0), Literal(1))),
            Clause((Literal(1), Literal(2), Literal(3, negated=True))),
        ),
    )


class TestLiteral:
    def test_evaluation(self):
        assert Literal(0).evaluate([True]) is True
        assert Literal(0, negated=True).evaluate([True]) is False

    def test_str(self):
        assert str(Literal(2)) == "x2"
        assert str(Literal(2, negated=True)) == "¬x2"

    def test_negative_variable_rejected(self):
        with pytest.raises(ValidationError):
            Literal(-1)


class TestClause:
    def test_disjunction(self):
        clause = Clause((Literal(0), Literal(1, negated=True)))
        assert clause.evaluate([False, False])
        assert not clause.evaluate([False, True])

    def test_width_limits(self):
        with pytest.raises(ValidationError):
            Clause(())
        with pytest.raises(ValidationError):
            Clause(tuple(Literal(i) for i in range(4)))


class TestFormula:
    def test_paper_example_evaluation(self):
        formula = _example_formula()
        assert formula.evaluate([True, False, True, True])
        assert not formula.evaluate([False, False, True, True])

    def test_out_of_range_literal_rejected(self):
        with pytest.raises(ValidationError):
            Formula3CNF(n_vars=1, clauses=(Clause((Literal(3),)),))

    def test_wrong_assignment_length(self):
        with pytest.raises(ValidationError):
            _example_formula().evaluate([True])

    def test_str_rendering(self):
        text = str(_example_formula())
        assert "∨" in text and "∧" in text


class TestRandom3CNF:
    def test_shape(self):
        formula = random_3cnf(6, 10, random_state=0)
        assert formula.n_vars == 6
        assert len(formula.clauses) == 10
        for clause in formula.clauses:
            assert 1 <= len(clause.literals) <= 3

    def test_distinct_variables_per_clause(self):
        formula = random_3cnf(10, 20, random_state=1)
        for clause in formula.clauses:
            variables = [literal.variable for literal in clause.literals]
            assert len(set(variables)) == len(variables)

    def test_determinism(self):
        a = random_3cnf(5, 8, random_state=2)
        b = random_3cnf(5, 8, random_state=2)
        assert a == b

    def test_small_variable_pool(self):
        formula = random_3cnf(2, 4, random_state=3)
        for clause in formula.clauses:
            assert len(clause.literals) <= 2


class TestBruteForce:
    def test_satisfiable_example(self):
        assignment = brute_force_3sat(_example_formula())
        assert assignment is not None
        assert _example_formula().evaluate(assignment)

    def test_unsatisfiable_formula(self):
        # x0 ∧ ¬x0
        formula = Formula3CNF(
            n_vars=1,
            clauses=(Clause((Literal(0),)), Clause((Literal(0, negated=True),))),
        )
        assert brute_force_3sat(formula) is None
