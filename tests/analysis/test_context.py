"""The shared analysis core: import-aware name resolution, module-name
derivation, and the lock-enclosure/ancestry helpers rules build on."""

import ast
from pathlib import Path

from repro.analysis.context import ImportMap, parse_context
from repro.analysis.runner import module_name_for


def resolve(source, expr, module=""):
    ctx = parse_context(source + f"\n_probe = {expr}\n", path="<t>", module=module)
    probe = ctx.tree.body[-1]
    assert isinstance(probe, ast.Assign)
    return ctx.imports.resolve(probe.value)


class TestImportResolution:
    def test_plain_import(self):
        assert resolve("import json", "json.dumps") == "json.dumps"

    def test_aliased_import(self):
        assert resolve("import numpy as np", "np.random.default_rng") \
            == "numpy.random.default_rng"

    def test_submodule_import_binds_top_name(self):
        assert resolve("import os.path", "os.path.join") == "os.path.join"
        assert resolve("import os.path", "os.urandom") == "os.urandom"

    def test_from_import(self):
        assert resolve("from datetime import datetime", "datetime.now") \
            == "datetime.datetime.now"

    def test_from_import_with_alias(self):
        assert resolve("from numpy import random as rnd", "rnd.shuffle") \
            == "numpy.random.shuffle"

    def test_relative_import_resolves_against_module(self):
        assert resolve(
            "from ..traffic.base import child_seed", "child_seed",
            module="repro.faults.plan",
        ) == "repro.traffic.base.child_seed"

    def test_single_level_relative_import(self):
        assert resolve(
            "from ._jsonsafe import dumps", "dumps", module="repro.cli"
        ) == "repro._jsonsafe.dumps"

    def test_unbound_name_resolves_to_itself(self):
        assert resolve("", "open") == "open"

    def test_locally_defined_names_are_shadowed(self):
        assert resolve("def open(p):\n    return p", "open") is None
        assert resolve("json = object()", "json.dumps") is None

    def test_parameters_shadow(self):
        src = "def f(json):\n    return json"
        assert resolve(src, "json.dumps") is None

    def test_computed_expressions_do_not_resolve(self):
        ctx = parse_context("x = (a or b).dumps\n", path="<t>", module="")
        assert ctx.imports.resolve(ctx.tree.body[0].value) is None


class TestModuleNameDerivation:
    def test_src_layout_maps_to_package_modules(self):
        assert module_name_for(
            Path("/repo/src/repro/persistence/atomic.py")
        ) == "repro.persistence.atomic"

    def test_package_init_maps_to_the_package(self):
        assert module_name_for(
            Path("/repo/src/repro/traffic/__init__.py")
        ) == "repro.traffic"

    def test_out_of_package_files_get_bare_stems(self):
        assert module_name_for(Path("/repo/benchmarks/bench_serving.py")) \
            == "bench_serving"
        assert module_name_for(Path("/repo/examples/quickstart.py")) \
            == "quickstart"


class TestScopeHelpers:
    def test_under_lock_sees_named_and_called_locks(self):
        src = (
            "class C:\n"
            "    def f(self):\n"
            "        with model_lock(self):\n"
            "            x = 1\n"
            "    def g(self):\n"
            "        with self._lock:\n"
            "            y = 1\n"
            "    def h(self):\n"
            "        with open('f') as fh:\n"
            "            z = 1\n"
        )
        ctx = parse_context(src, path="<t>", module="")
        assigns = [n for n in ast.walk(ctx.tree) if isinstance(n, ast.Assign)]
        by_name = {n.targets[0].id: n for n in assigns}
        assert ctx.under_lock(by_name["x"]) is True
        assert ctx.under_lock(by_name["y"]) is True
        assert ctx.under_lock(by_name["z"]) is False

    def test_enclosing_class(self):
        ctx = parse_context(
            "class C:\n    def f(self):\n        x = 1\nq = 2\n",
            path="<t>", module="",
        )
        assigns = {
            n.targets[0].id: n
            for n in ast.walk(ctx.tree) if isinstance(n, ast.Assign)
        }
        assert ctx.enclosing_class(assigns["x"]).name == "C"
        assert ctx.enclosing_class(assigns["q"]) is None
