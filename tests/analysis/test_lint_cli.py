"""``repro lint`` CLI: exit-code contract (0 clean / 1 findings /
2 usage), pipeline-safe JSON, --explain, and subcommand discovery."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main

SRC_DIR = str(Path(__file__).resolve().parents[2] / "src")

CLEAN = "import json\njson.dumps({}, allow_nan=False)\n"
DIRTY = "import json\njson.dumps({})\n"


def run_cli(*argv, **kwargs):
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True,
        text=True,
        env={**os.environ, "PYTHONPATH": SRC_DIR},
        **kwargs,
    )


@pytest.fixture
def tree(tmp_path):
    (tmp_path / "clean.py").write_text(CLEAN)
    (tmp_path / "dirty.py").write_text(DIRTY)
    return tmp_path


class TestExitCodes:
    def test_clean_file_exits_zero(self, tree):
        result = run_cli("lint", str(tree / "clean.py"))
        assert result.returncode == 0
        assert "0 findings" in result.stdout

    def test_findings_exit_one(self, tree):
        result = run_cli("lint", str(tree / "dirty.py"))
        assert result.returncode == 1
        assert "RPR003" in result.stdout

    def test_directory_walk_finds_the_dirty_file(self, tree):
        result = run_cli("lint", str(tree))
        assert result.returncode == 1
        assert "dirty.py" in result.stdout
        assert "in 2 files" in result.stdout

    def test_missing_path_is_usage_error(self, tree):
        result = run_cli("lint", str(tree / "absent.py"))
        assert result.returncode == 2
        assert "no such file" in result.stderr

    def test_unknown_select_code_is_usage_error(self, tree):
        result = run_cli("lint", "--select", "RPR999", str(tree / "clean.py"))
        assert result.returncode == 2
        assert "unknown rule code" in result.stderr

    def test_no_paths_is_usage_error(self):
        result = run_cli("lint")
        assert result.returncode == 2
        assert "at least one path" in result.stderr

    def test_syntax_error_in_target_is_usage_error(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        result = run_cli("lint", str(bad))
        assert result.returncode == 2
        assert "does not parse" in result.stderr

    def test_ignore_can_silence_the_only_finding(self, tree):
        result = run_cli("lint", "--ignore", "RPR003", str(tree / "dirty.py"))
        assert result.returncode == 0


class TestJsonOutput:
    def test_json_survives_head_dash_one(self, tree):
        # The exact CI/pipeline shape: `repro lint --json ... | head -1`.
        pipeline = subprocess.run(
            f"{sys.executable} -m repro lint --json {tree} | head -1",
            shell=True,
            capture_output=True,
            text=True,
            env={**os.environ, "PYTHONPATH": SRC_DIR},
        )
        payload = json.loads(pipeline.stdout)
        assert payload["counts"]["findings"] == 1
        assert payload["findings"][0]["code"] == "RPR003"

    def test_json_exit_code_still_signals_findings(self, tree):
        result = run_cli("lint", "--json", str(tree / "dirty.py"))
        assert result.returncode == 1
        json.loads(result.stdout)


class TestExplain:
    @pytest.mark.parametrize("code", [
        "RPR000", "RPR001", "RPR002", "RPR003",
        "RPR004", "RPR005", "RPR006", "RPR007",
    ])
    def test_every_rule_explains_itself(self, code, capsys):
        assert main(["lint", "--explain", code]) == 0
        out = capsys.readouterr().out
        assert out.startswith(code)
        # The rationale format: a why and a sanctioned alternative.
        assert "Why:" in out
        assert "Instead:" in out

    def test_explain_unknown_code_is_usage_error(self):
        assert main(["lint", "--explain", "RPR999"]) == 2


class TestDiscovery:
    def test_lint_is_listed_in_top_level_help(self):
        result = run_cli("--help")
        assert result.returncode == 0
        assert "lint" in result.stdout

    def test_in_process_entry_point(self, tree, capsys):
        assert main(["lint", str(tree / "clean.py")]) == 0
        assert main(["lint", str(tree / "dirty.py")]) == 1
        capsys.readouterr()
