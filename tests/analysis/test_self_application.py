"""Self-application gate: the repo's own tree must lint clean.

This is the regression twin of the CI ``repro lint --json`` step: the
contract set only ratchets — a PR that reintroduces a bare
``json.dumps``, an unseeded RNG draw, a torn-write ``open(path, "w")``
in persistence, or an unguarded lazy init fails *here*, inside tier-1,
before CI even runs.  Every waiver must carry a written reason
(enforced structurally: a reasonless suppression surfaces as an
unsuppressed RPR000 and dirties the run)."""

from pathlib import Path

import pytest

from repro.analysis import all_rules, lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]
LINTED_TREES = ["src", "benchmarks", "examples"]


@pytest.fixture(scope="module")
def repo_report():
    paths = [REPO_ROOT / tree for tree in LINTED_TREES]
    missing = [p for p in paths if not p.is_dir()]
    if missing:  # pragma: no cover - source checkout only
        pytest.skip(f"not running from a full checkout (missing {missing})")
    return lint_paths(paths)


class TestSelfApplication:
    def test_the_tree_is_clean(self, repo_report):
        findings = repo_report.unsuppressed
        assert not findings, "\n" + "\n".join(
            f"{f.path}:{f.line}: {f.code} {f.message}" for f in findings
        )

    def test_every_suppression_carries_a_reason(self, repo_report):
        # Belt and braces: RPR000 already fails the clean check above,
        # but assert the ledger property directly on the waivers too.
        for finding in repo_report.suppressed:
            assert finding.suppression_reason, (
                f"{finding.path}:{finding.line} suppresses {finding.code} "
                "without a reason"
            )

    def test_known_waivers_are_the_expected_set(self, repo_report):
        # The waiver ledger is part of the contract: adding a
        # suppression is a reviewed decision, so list them here.
        waivers = sorted(
            (Path(f.path).name, f.code) for f in repo_report.suppressed
        )
        assert waivers == [
            ("_jsonsafe.py", "RPR003"),      # the wrapper that injects the default
            ("_validation.py", "RPR001"),    # sanctioned seed=None entropy funnel
            ("batching.py", "RPR006"),       # event-loop-confined state
            ("commitment.py", "RPR002"),     # hiding requires a fresh salt
            ("forest.py", "RPR006"),         # refit mutates wholesale, single-thread
        ]

    def test_the_run_covered_a_real_tree(self, repo_report):
        assert repo_report.n_files > 100  # src+benchmarks+examples today: 135

    def test_all_seven_contract_rules_are_registered(self):
        codes = [rule.code for rule in all_rules()]
        assert codes == [
            "RPR000", "RPR001", "RPR002", "RPR003",
            "RPR004", "RPR005", "RPR006", "RPR007",
        ]
