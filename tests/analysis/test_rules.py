"""Per-rule fixture batteries: each of the seven contract rules is
proven live (it fires on a minimal positive snippet), precise (it stays
silent on the sanctioned alternative), suppressible (a reasoned
``# repro: allow[...]`` silences it), and correctly scoped (it does not
fire outside the package its contract covers)."""

import textwrap

import pytest

from repro.analysis import lint_source


def lint(source, *, module="", select=None):
    return lint_source(textwrap.dedent(source), module=module, select=select)


def codes(source, *, module="", select=None):
    return [f.code for f in lint(source, module=module, select=select)
            if not f.suppressed]


class TestRPR001SeededRng:
    def test_module_level_stdlib_random_draw_fires(self):
        assert codes("import random\nx = random.random()\n") == ["RPR001"]

    def test_module_level_numpy_draw_fires_through_alias(self):
        assert codes(
            "import numpy as np\nx = np.random.shuffle([1, 2])\n"
        ) == ["RPR001"]

    def test_np_random_seed_fires(self):
        assert codes("import numpy as np\nnp.random.seed(0)\n") == ["RPR001"]

    def test_unseeded_default_rng_fires(self):
        assert codes(
            "import numpy as np\nrng = np.random.default_rng()\n"
        ) == ["RPR001"]

    def test_from_import_alias_resolves(self):
        assert codes(
            "from numpy import random as rnd\nrng = rnd.default_rng()\n"
        ) == ["RPR001"]

    def test_seeded_default_rng_is_clean(self):
        assert codes(
            "import numpy as np\nrng = np.random.default_rng(42)\n"
        ) == []

    def test_seeded_random_class_is_clean(self):
        assert codes("import random\nrng = random.Random(7)\n") == []

    def test_draws_on_an_explicit_generator_are_clean(self):
        assert codes(
            """
            import numpy as np
            rng = np.random.default_rng(3)
            x = rng.normal(size=10)
            """
        ) == []

    def test_local_name_shadowing_random_is_not_mistaken(self):
        assert codes(
            """
            class Box:
                def random(self):
                    return 4
            def use(random):
                return random.random()
            """
        ) == []

    def test_spawn_fires_inside_traffic_package(self):
        src = "def f(seq):\n    return seq.spawn(3)\n"
        assert codes(src, module="repro.traffic.generators") == ["RPR001"]
        assert codes(src, module="repro.faults.plan") == ["RPR001"]

    def test_spawn_is_allowed_outside_block_seeded_packages(self):
        src = "def f(seq):\n    return seq.spawn(3)\n"
        assert codes(src, module="repro.ensemble.forest") == []
        assert codes(src, module="repro._validation") == []

    def test_suppression_with_reason_silences(self):
        findings = lint(
            "import numpy as np\n"
            "rng = np.random.default_rng()  "
            "# repro: allow[RPR001] fixture needs fresh entropy\n"
        )
        assert [f.code for f in findings] == ["RPR001"]
        assert findings[0].suppressed
        assert findings[0].suppression_reason == "fixture needs fresh entropy"


class TestRPR002NoWallClock:
    SNIPPETS = {
        "time.time": "import time\nt = time.time()\n",
        "from-import time": "from time import time\nt = time()\n",
        "datetime.now": (
            "from datetime import datetime\nt = datetime.now()\n"
        ),
        "os.urandom": "import os\nb = os.urandom(8)\n",
        "uuid4": "import uuid\nu = uuid.uuid4()\n",
        "secrets": "import secrets\nb = secrets.token_bytes(32)\n",
    }

    @pytest.mark.parametrize("name", sorted(SNIPPETS))
    def test_entropy_sources_fire_in_result_producing_modules(self, name):
        for module in ("repro.core.trigger", "repro.trees.growth",
                       "repro.solver.sat", "repro.traffic.replay",
                       "repro.faults.plan"):
            assert codes(self.SNIPPETS[name], module=module) == ["RPR002"], (
                f"{name} should fire in {module}"
            )

    @pytest.mark.parametrize("name", sorted(SNIPPETS))
    def test_out_of_scope_modules_are_exempt(self, name):
        # serve timeouts, benchmarks and the CLI legitimately read clocks.
        for module in ("repro.serve.client", "repro.cli", "bench_serving", ""):
            assert codes(self.SNIPPETS[name], module=module) == []

    def test_monotonic_timers_are_allowed_in_scope(self):
        src = (
            "import time\n"
            "t0 = time.perf_counter()\nt1 = time.monotonic()\n"
        )
        assert codes(src, module="repro.traffic.replay") == []

    def test_suppression_with_reason_silences(self):
        findings = lint(
            "import secrets\n"
            "# repro: allow[RPR002] commitment salts must be fresh entropy\n"
            "b = secrets.token_bytes(32)\n",
            module="repro.core.commitment",
        )
        assert [f.suppressed for f in findings] == [True]


class TestRPR003StrictJson:
    def test_bare_dumps_fires(self):
        assert codes("import json\njson.dumps({})\n") == ["RPR003"]

    def test_bare_dump_fires(self):
        assert codes(
            "import json\n\ndef w(fh):\n    json.dump({}, fh)\n"
        ) == ["RPR003"]

    def test_allow_nan_true_fires(self):
        assert codes(
            "import json\njson.dumps({}, allow_nan=True)\n"
        ) == ["RPR003"]

    def test_non_literal_allow_nan_fires(self):
        assert codes(
            "import json\n\ndef w(flag):\n    json.dumps({}, allow_nan=flag)\n"
        ) == ["RPR003"]

    def test_allow_nan_false_is_clean(self):
        assert codes("import json\njson.dumps({}, allow_nan=False)\n") == []

    def test_jsonsafe_dumps_is_clean(self):
        assert codes(
            "from repro._jsonsafe import dumps\ndumps({'a': 1})\n"
        ) == []

    def test_relative_jsonsafe_import_is_clean(self):
        assert codes(
            "from ._jsonsafe import dumps\ndumps({'a': 1})\n",
            module="repro.cli",
        ) == []

    def test_local_dumps_helper_is_not_mistaken_for_json(self):
        assert codes(
            "def dumps(x):\n    return str(x)\n\ndumps({})\n"
        ) == []

    def test_fires_everywhere_including_benchmarks(self):
        assert codes("import json\njson.dumps({})\n",
                     module="bench_serving") == ["RPR003"]

    def test_own_line_suppression_covers_multiline_call(self):
        findings = lint(
            """
            import json
            # repro: allow[RPR003] wire format pinned by an external consumer
            payload = json.dumps(
                {"a": 1},
                indent=2,
            )
            """
        )
        assert [f.suppressed for f in findings] == [True]


class TestRPR004AtomicWrites:
    def test_bare_write_open_fires_in_persistence(self):
        src = 'with open("artefact.json", "w") as fh:\n    fh.write("x")\n'
        assert codes(src, module="repro.persistence.serialize") == ["RPR004"]

    def test_append_and_exclusive_modes_fire(self):
        for mode in ("a", "wb", "x", "r+"):
            src = f'fh = open("artefact.bin", "{mode}")\n'
            assert codes(src, module="repro.persistence.exporters.binary") \
                == ["RPR004"], mode

    def test_write_text_sugar_fires(self):
        src = (
            "from pathlib import Path\n"
            'Path("artefact.json").write_text("{}")\n'
        )
        assert codes(src, module="repro.persistence.serialize") == ["RPR004"]

    def test_read_open_is_clean(self):
        src = 'with open("artefact.json") as fh:\n    fh.read()\n'
        assert codes(src, module="repro.persistence.serialize") == []
        src = 'with open("artefact.json", "rb") as fh:\n    fh.read()\n'
        assert codes(src, module="repro.persistence.serialize") == []

    def test_atomic_py_itself_is_exempt(self):
        src = 'fh = open("artefact.tmp", "w")\n'
        assert codes(src, module="repro.persistence.atomic") == []

    def test_out_of_package_writes_are_exempt(self):
        src = 'fh = open("notes.txt", "w")\n'
        assert codes(src, module="repro.cli") == []
        assert codes(src, module="bench_traffic") == []

    def test_suppression_with_reason_silences(self):
        findings = lint(
            'fh = open("scratch.txt", "w")  '
            "# repro: allow[RPR004] scratch file outside the artefact root\n",
            module="repro.persistence.serialize",
        )
        assert [f.suppressed for f in findings] == [True]


class TestRPR005PicklableLocks:
    def test_lock_on_self_in_getstate_class_fires(self):
        assert codes(
            """
            import threading

            class Model:
                def __init__(self):
                    self._lock = threading.RLock()

                def __getstate__(self):
                    return dict(self.__dict__)
            """
        ) == ["RPR005"]

    def test_reduce_counts_as_a_pickle_hook(self):
        assert codes(
            """
            import threading

            class Model:
                def __init__(self):
                    self.guard = threading.Lock()

                def __reduce__(self):
                    return (Model, ())
            """
        ) == ["RPR005"]

    def test_lock_in_plain_class_is_clean(self):
        assert codes(
            """
            import threading

            class Observer:
                def __init__(self):
                    self._lock = threading.Lock()
            """
        ) == []

    def test_side_table_pattern_is_clean(self):
        assert codes(
            """
            import threading
            import weakref

            _LOCKS = weakref.WeakKeyDictionary()

            class Model:
                def __getstate__(self):
                    return dict(self.__dict__)

            def model_lock(model):
                lock = _LOCKS.get(model)
                if lock is None:
                    lock = threading.RLock()
                    _LOCKS[model] = lock
                return lock
            """
        ) == []

    def test_suppression_with_reason_silences(self):
        findings = lint(
            """
            import threading

            class Model:
                def __init__(self):
                    # repro: allow[RPR005] __getstate__ pops this attribute before pickling
                    self._lock = threading.Lock()

                def __getstate__(self):
                    state = dict(self.__dict__)
                    state.pop("_lock")
                    return state
            """
        )
        assert [f.suppressed for f in findings] == [True]


class TestRPR006LazyInitRace:
    POSITIVE = """
    class Holder:
        def engine(self):
            if self._engine is None:
                self._engine = build()
            return self._engine
    """

    def test_unguarded_double_check_fires_in_scope(self):
        for module in ("repro.ensemble.forest", "repro.trees.compiled",
                       "repro.serve.registry"):
            assert codes(self.POSITIVE, module=module) == ["RPR006"], module

    def test_out_of_scope_modules_are_exempt(self):
        for module in ("repro.core.embedding", "repro.solver.sat", ""):
            assert codes(self.POSITIVE, module=module) == []

    def test_with_lock_guard_is_clean(self):
        assert codes(
            """
            class Holder:
                def engine(self):
                    with self._lock:
                        if self._engine is None:
                            self._engine = build()
                    return self._engine
            """,
            module="repro.serve.registry",
        ) == []

    def test_model_lock_helper_counts_as_a_lock(self):
        assert codes(
            """
            class Holder:
                def engine(self):
                    with model_lock(self):
                        if self._engine is None:
                            self._engine = build()
                    return self._engine
            """,
            module="repro.trees.compiled",
        ) == []

    def test_guard_without_assignment_is_clean(self):
        assert codes(
            """
            class Holder:
                def engine(self):
                    if self._engine is None:
                        raise RuntimeError("not compiled")
                    return self._engine
            """,
            module="repro.ensemble.forest",
        ) == []

    def test_assignment_to_other_attribute_is_clean(self):
        assert codes(
            """
            class Holder:
                def touch(self):
                    if self._engine is None:
                        self._hits = 0
            """,
            module="repro.ensemble.forest",
        ) == []

    def test_compound_test_still_fires(self):
        assert codes(
            """
            class Holder:
                def engine(self):
                    if self._engine is None and self._key is not None:
                        self._engine = build()
            """,
            module="repro.ensemble.forest",
        ) == ["RPR006"]

    def test_suppression_with_reason_silences(self):
        findings = lint(
            """
            class Holder:
                def engine(self):
                    # repro: allow[RPR006] event-loop confined: only the daemon loop thread touches this
                    if self._engine is None:
                        self._engine = build()
            """,
            module="repro.serve.batching",
        )
        assert [f.suppressed for f in findings] == [True]


class TestRPR007FaultHookPurity:
    def test_non_none_default_fires(self):
        assert codes(
            "def serve(x, fault_injector=DEFAULT_INJECTOR):\n    pass\n"
        ) == ["RPR007"]

    def test_missing_default_fires(self):
        assert codes("def serve(x, fault_injector):\n    pass\n") == ["RPR007"]

    def test_keyword_only_without_default_fires(self):
        assert codes(
            "def serve(x, *, fault_injector):\n    pass\n"
        ) == ["RPR007"]

    def test_none_default_is_clean(self):
        assert codes(
            "def serve(x, fault_injector=None):\n    pass\n"
        ) == []
        assert codes(
            "def serve(x, *, fault_injector=None):\n    pass\n"
        ) == []

    def test_fires_in_any_module(self):
        src = "def serve(x, fault_injector):\n    pass\n"
        assert codes(src, module="repro.serve.http") == ["RPR007"]
        assert codes(src, module="bench_resilience") == ["RPR007"]

    def test_other_parameters_are_unconstrained(self):
        assert codes("def serve(x, injector=object()):\n    pass\n") == []

    def test_suppression_with_reason_silences(self):
        findings = lint(
            "# repro: allow[RPR007] chaos-only helper, never imported by production code\n"
            "def chaos_serve(x, fault_injector):\n"
            "    pass\n"
        )
        assert [f.suppressed for f in findings] == [True]


class TestSelectIgnore:
    TWO_VIOLATIONS = (
        "import json\nimport numpy as np\n"
        "json.dumps({})\nrng = np.random.default_rng()\n"
    )

    def test_select_narrows_to_named_rules(self):
        assert codes(self.TWO_VIOLATIONS, select=["RPR003"]) == ["RPR003"]

    def test_default_runs_everything(self):
        assert sorted(codes(self.TWO_VIOLATIONS)) == ["RPR001", "RPR003"]

    def test_unknown_code_is_a_usage_error(self):
        from repro.exceptions import ValidationError

        with pytest.raises(ValidationError, match="unknown rule code"):
            lint_source("x = 1\n", select=["RPR999"])
