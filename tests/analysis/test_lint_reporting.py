"""Reporter contracts: strict one-line JSON, deterministic ordering,
and the text format's finding/summary shape."""

import json

from repro.analysis import format_json, format_text
from repro.analysis.runner import LintReport, lint_source
from repro.analysis.context import Finding


def report_for(source, **kwargs):
    findings = lint_source(source, **kwargs)
    return LintReport(findings=findings, n_files=1)


DIRTY = (
    "import json\nimport numpy as np\n"
    "json.dumps({})\n"
    "rng = np.random.default_rng()  # repro: allow[RPR001] fixture entropy\n"
)


class TestJsonReporter:
    def test_single_line_strict_json(self):
        text = format_json(report_for(DIRTY))
        assert "\n" not in text
        payload = json.loads(text)  # strict parse must succeed
        assert payload["version"] == 1
        assert payload["counts"] == {"findings": 1, "suppressed": 1}

    def test_findings_carry_full_coordinates(self):
        payload = json.loads(format_json(report_for(DIRTY)))
        (finding,) = payload["findings"]
        assert finding["code"] == "RPR003"
        assert finding["line"] == 3
        assert set(finding) == {"code", "path", "line", "col", "message"}

    def test_suppressed_findings_carry_their_reason(self):
        payload = json.loads(format_json(report_for(DIRTY)))
        (sup,) = payload["suppressed"]
        assert sup["code"] == "RPR001"
        assert sup["suppression_reason"] == "fixture entropy"

    def test_clean_report_is_still_valid_json(self):
        payload = json.loads(format_json(report_for("x = 1\n")))
        assert payload["findings"] == []
        assert payload["counts"] == {"findings": 0, "suppressed": 0}

    def test_non_finite_values_cannot_leak(self):
        # The reporter routes through repro._jsonsafe: a hypothetical
        # non-finite field would raise at the producer, not emit NaN.
        report = LintReport(
            findings=[Finding(code="RPR001", path="p", line=1, col=0,
                              message="m")],
            n_files=1,
        )
        assert "NaN" not in format_json(report)

    def test_ordering_is_deterministic(self):
        src = (
            "import json\n"
            "json.dumps({})\n"
            "json.dumps({})\n"
        )
        a = format_json(report_for(src))
        b = format_json(report_for(src))
        assert a == b
        lines = [f["line"] for f in json.loads(a)["findings"]]
        assert lines == sorted(lines)


class TestTextReporter:
    def test_text_lines_are_clickable_locations(self):
        text = format_text(report_for(DIRTY))
        assert "<string>:3:0: RPR003" in text
        assert text.endswith("1 finding (1 suppressed) in 1 file")

    def test_suppressed_hidden_by_default_shown_on_request(self):
        report = report_for(DIRTY)
        assert "RPR001" not in format_text(report)
        shown = format_text(report, show_suppressed=True)
        assert "RPR001" in shown
        assert "fixture entropy" in shown

    def test_clean_summary(self):
        assert format_text(report_for("x = 1\n")) \
            == "0 findings (0 suppressed) in 1 file"
