"""Suppression-comment mechanics: mandatory reasons, unknown-code
rejection, placement rules, and the tokenizer-backed parser."""

import textwrap

from repro.analysis import Suppression, lint_source, parse_suppressions


def lint(source, **kwargs):
    return lint_source(textwrap.dedent(source), **kwargs)


class TestParsing:
    def test_basic_comment_parses(self):
        sups = parse_suppressions(
            "x = 1  # repro: allow[RPR003] wire format is externally pinned\n"
        )
        assert sups == [
            Suppression(
                line=1,
                codes=("RPR003",),
                reason="wire format is externally pinned",
                own_line=False,
            )
        ]

    def test_comma_separated_codes(self):
        sups = parse_suppressions(
            "x = 1  # repro: allow[RPR001, RPR002] fixture wants entropy\n"
        )
        assert sups[0].codes == ("RPR001", "RPR002")

    def test_own_line_detection(self):
        sups = parse_suppressions(
            "# repro: allow[RPR003] covers the next statement\nx = 1\n"
        )
        assert sups[0].own_line is True

    def test_marker_inside_a_string_is_not_a_suppression(self):
        sups = parse_suppressions(
            's = "# repro: allow[RPR003] not a real comment"\n'
        )
        assert sups == []

    def test_non_matching_comments_are_ignored(self):
        assert parse_suppressions("x = 1  # plain comment\n") == []


class TestEnforcement:
    def test_bare_suppression_is_itself_a_violation(self):
        findings = lint(
            """
            import json
            json.dumps({})  # repro: allow[RPR003]
            """
        )
        # The RPR003 finding is suppressed, but the reasonless waiver
        # surfaces as an unsuppressed RPR000 — the run stays dirty.
        unsuppressed = [f for f in findings if not f.suppressed]
        assert [f.code for f in unsuppressed] == ["RPR000"]
        assert "reason" in unsuppressed[0].message

    def test_unknown_code_in_suppression_is_rejected(self):
        findings = lint("x = 1  # repro: allow[RPR999] best of intentions\n")
        assert [f.code for f in findings] == ["RPR000"]
        assert "unknown rule code 'RPR999'" in findings[0].message

    def test_empty_bracket_is_rejected(self):
        findings = lint("x = 1  # repro: allow[] because\n")
        assert [f.code for f in findings] == ["RPR000"]

    def test_rpr000_cannot_be_suppressed(self):
        findings = lint(
            "x = 1  # repro: allow[RPR000] trying to waive the waiver rule\n"
        )
        assert [(f.code, f.suppressed) for f in findings] == [("RPR000", False)]

    def test_suppression_only_covers_named_codes(self):
        findings = lint(
            """
            import json
            import numpy as np
            json.dumps({})  # repro: allow[RPR001] wrong code for this line
            """
        )
        # RPR003 stays live: the waiver names a different rule.
        assert [f.code for f in findings if not f.suppressed] == ["RPR003"]

    def test_own_line_suppression_does_not_leak_past_next_line(self):
        findings = lint(
            """
            import json
            # repro: allow[RPR003] covers only the adjacent statement
            x = 1
            json.dumps({})
            """
        )
        assert [f.code for f in findings if not f.suppressed] == ["RPR003"]

    def test_trailing_suppression_on_wrong_line_does_not_cover(self):
        findings = lint(
            """
            import json
            x = 1  # repro: allow[RPR003] attached to the wrong statement
            json.dumps({})
            """
        )
        assert [f.code for f in findings if not f.suppressed] == ["RPR003"]

    def test_one_line_can_carry_multiple_codes(self):
        findings = lint(
            """
            import json
            import numpy as np

            def f():
                # repro: allow[RPR001, RPR003] demo fixture exercising both contracts
                return json.dumps({"x": float(np.random.default_rng().normal())})
            """
        )
        assert findings and all(f.suppressed for f in findings)
        assert sorted(f.code for f in findings) == ["RPR001", "RPR003"]
