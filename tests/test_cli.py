"""Tests for the command-line interface."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import build_parser, main

SRC_DIR = str(Path(__file__).resolve().parent.parent / "src")


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_watermark_args(self, tmp_path):
        args = build_parser().parse_args(
            ["watermark", "--dataset", "breast-cancer", "--out-dir", str(tmp_path)]
        )
        assert args.command == "watermark"
        assert args.trees == 16

    def test_unknown_dataset_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["watermark", "--dataset", "cifar", "--out-dir", str(tmp_path)]
            )


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def artifacts(self, tmp_path_factory):
        out_dir = tmp_path_factory.mktemp("cli-artifacts")
        code = main(
            [
                "watermark",
                "--dataset", "breast-cancer",
                "--samples", "240",
                "--trees", "8",
                "--trigger-size", "5",
                "--max-depth", "8",
                "--out-dir", str(out_dir),
            ]
        )
        assert code == 0
        return out_dir

    def test_artifacts_written(self, artifacts):
        assert (artifacts / "model.json").exists()
        assert (artifacts / "secret.json").exists()
        assert (artifacts / "commitment.json").exists()

    def test_verify_accepts_legitimate_claim(self, artifacts):
        code = main(
            [
                "verify",
                "--model", str(artifacts / "model.json"),
                "--secret", str(artifacts / "secret.json"),
                "--commitment", str(artifacts / "commitment.json"),
            ]
        )
        assert code == 0

    def test_verify_rejects_tampered_secret(self, artifacts, tmp_path):
        secret = json.loads((artifacts / "secret.json").read_text())
        bits = list(secret["signature"])
        bits[0] = "1" if bits[0] == "0" else "0"
        secret["signature"] = "".join(bits)
        tampered = tmp_path / "tampered_secret.json"
        tampered.write_text(json.dumps(secret))

        # Without the commitment the claim reaches verification and fails.
        code = main(
            [
                "verify",
                "--model", str(artifacts / "model.json"),
                "--secret", str(tampered),
            ]
        )
        assert code == 1

        # With the commitment the reveal itself is rejected first.
        code = main(
            [
                "verify",
                "--model", str(artifacts / "model.json"),
                "--secret", str(tampered),
                "--commitment", str(artifacts / "commitment.json"),
            ]
        )
        assert code == 2

    def test_malformed_model_reports_error(self, artifacts, tmp_path):
        broken = tmp_path / "broken.json"
        broken.write_text("{}")
        code = main(
            [
                "verify",
                "--model", str(broken),
                "--secret", str(artifacts / "secret.json"),
            ]
        )
        assert code == 2


class TestAttackCommand:
    def test_list_names_all_registered_attacks(self, capsys):
        assert main(["attack", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("truncate", "flip", "prune", "extract", "forgery",
                     "suppression", "detection", "chain"):
            assert name in out

    def test_requires_name_or_list(self, capsys):
        assert main(["attack"]) == 2
        assert "--name" in capsys.readouterr().err

    def test_run_emits_uniform_json_cells(self, capsys):
        code = main(
            ["attack", "--name", "flip", "--dataset", "breast-cancer",
             "--strength", "0.0", "--strength", "0.4", "--json"]
        )
        assert code == 0
        cells = json.loads(capsys.readouterr().out)
        assert [c["strength"] for c in cells] == [0.0, 0.4]
        report = cells[0]["report"]
        assert report["attack"] == "flip"
        assert report["watermark_accepted"] is True  # p=0 is the identity
        assert report["watermark_match_rate"] == 1.0

    def test_run_renders_table_by_default(self, capsys):
        code = main(
            ["attack", "--name", "truncate", "--dataset", "breast-cancer",
             "--strength", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "WM accepted" in out
        assert "truncate" in out

    def test_unknown_attack_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["attack", "--name", "nope"])


class TestTrafficCommand:
    def test_list_names_all_scenarios(self, capsys):
        assert main(["traffic", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("legit", "verification-probe", "suppression-evasion",
                     "extraction-harvest", "mixed"):
            assert name in out

    def test_requires_scenario_or_list(self, capsys):
        assert main(["traffic"]) == 2
        assert "--scenario" in capsys.readouterr().err

    def test_unknown_scenario_reports_error(self, capsys):
        assert main(["traffic", "--scenario", "nope", "--queries", "512"]) == 2
        assert "unknown traffic scenario" in capsys.readouterr().err

    def test_replay_emits_traffic_report_json(self, capsys):
        code = main(
            ["traffic", "--scenario", "legit", "--dataset", "breast-cancer",
             "--queries", "1024", "--batch-size", "256", "--json"]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["stream"] == "legit"
        assert report["n_queries"] == 1024
        assert report["source_counts"] == {"legit": 1024}
        verdicts = {v["defender"]: v for v in report["verdicts"]}
        assert set(verdicts) == {"suppression-distinguisher",
                                 "extraction-monitor"}
        # pure benign traffic: the defenders must stay silent
        assert not any(v["fired"] for v in verdicts.values())

    def test_replay_renders_summary_by_default(self, capsys):
        code = main(
            ["traffic", "--scenario", "verification-probe",
             "--dataset", "breast-cancer", "--queries", "2048",
             "--batch-size", "512"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "verification-probe" in out
        assert "queries/sec" in out
        assert "defender" in out


class TestModuleEntryPoint:
    def test_python_dash_m_repro_invokes_the_cli(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True,
            text=True,
            env={**os.environ, "PYTHONPATH": SRC_DIR},
        )
        assert result.returncode == 0
        assert "watermark" in result.stdout
        assert "attack" in result.stdout

    def test_console_script_declared_in_setup(self):
        setup_py = (Path(SRC_DIR).parent / "setup.py").read_text()
        assert "console_scripts" in setup_py
        assert "repro = repro.cli:main" in setup_py


class TestExportConvert:
    @pytest.fixture(scope="class")
    def binary_artifacts(self, tmp_path_factory):
        out_dir = tmp_path_factory.mktemp("cli-binary-artifacts")
        code = main(
            [
                "watermark",
                "--dataset", "breast-cancer",
                "--samples", "240",
                "--trees", "8",
                "--trigger-size", "5",
                "--max-depth", "8",
                "--format", "binary",
                "--out-dir", str(out_dir),
            ]
        )
        assert code == 0
        return out_dir

    def test_watermark_writes_rfbin(self, binary_artifacts):
        assert (binary_artifacts / "model.rfbin").exists()
        assert not (binary_artifacts / "model.json").exists()

    def test_verify_reads_binary_artifact(self, binary_artifacts, capsys):
        code = main(
            [
                "verify",
                "--model", str(binary_artifacts / "model.rfbin"),
                "--secret", str(binary_artifacts / "secret.json"),
                "--commitment", str(binary_artifacts / "commitment.json"),
            ]
        )
        assert code == 0
        assert "ACCEPTED" in capsys.readouterr().out

    def test_export_convert_chain_preserves_watermark(
        self, binary_artifacts, tmp_path, capsys
    ):
        json_path = tmp_path / "model.json"
        rfbin_path = tmp_path / "model2.rfbin"
        assert main(
            [
                "export",
                "--model", str(binary_artifacts / "model.rfbin"),
                "--out", str(json_path),
            ]
        ) == 0
        assert json_path.exists()
        assert main(["convert", str(json_path), str(rfbin_path)]) == 0
        code = main(
            [
                "verify",
                "--model", str(rfbin_path),
                "--secret", str(binary_artifacts / "secret.json"),
                "--commitment", str(binary_artifacts / "commitment.json"),
            ]
        )
        assert code == 0
        assert "ACCEPTED" in capsys.readouterr().out

    def test_export_ensemble_only_strips_secret(self, binary_artifacts, tmp_path):
        out = tmp_path / "ensemble.rfbin"
        assert main(
            [
                "export",
                "--model", str(binary_artifacts / "model.rfbin"),
                "--out", str(out),
                "--ensemble-only",
            ]
        ) == 0
        from repro.ensemble import RandomForestClassifier
        from repro.persistence import load

        assert isinstance(load(out), RandomForestClassifier)


class TestServeParser:
    def test_serve_args(self):
        args = build_parser().parse_args(
            ["serve", "--model", "a=/tmp/a.rfbin", "--model", "b=/tmp/b.rfbin"]
        )
        assert args.command == "serve"
        assert args.models == ["a=/tmp/a.rfbin", "b=/tmp/b.rfbin"]
        assert args.host == "127.0.0.1"
        assert args.port == 8080
        assert args.flush_window == pytest.approx(0.002)
        assert args.max_batch_rows == 512
        assert args.max_queue_rows == 8192
        assert args.max_concurrent_batches == 2

    def test_serve_requires_a_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_bad_model_spec_is_a_repro_error(self, capsys):
        assert main(["serve", "--model", "no-equals-sign"]) == 2
        assert "NAME=PATH" in capsys.readouterr().err


class TestExitCodes:
    """The POSIX-pipeline contract: 130 on ^C, silence on EPIPE."""

    def test_keyboard_interrupt_exits_130(self, monkeypatch, capsys):
        def interrupted(args):
            raise KeyboardInterrupt

        monkeypatch.setattr("repro.cli._cmd_traffic", interrupted)
        assert main(["traffic", "--list"]) == 130
        assert "interrupted" in capsys.readouterr().err

    def test_broken_pipe_exits_quietly(self, monkeypatch, capsys):
        def head_went_away(args):
            raise BrokenPipeError

        monkeypatch.setattr("repro.cli._cmd_traffic", head_went_away)
        assert main(["traffic", "--list"]) == 0
        assert capsys.readouterr().err == ""

    def test_repro_error_still_exits_2(self, monkeypatch, capsys):
        from repro.exceptions import ValidationError

        def broken(args):
            raise ValidationError("no such thing")

        monkeypatch.setattr("repro.cli._cmd_traffic", broken)
        assert main(["traffic", "--list"]) == 2
        assert "no such thing" in capsys.readouterr().err


class TestTrafficStrictJSON:
    def test_zero_elapsed_replay_emits_parseable_json(self, monkeypatch, capsys):
        """qps=inf and NaN verdicts must still serialize as strict JSON."""
        from types import SimpleNamespace

        from repro.traffic.defenders import Verdict
        from repro.traffic.replay import TrafficReport

        report = TrafficReport(
            stream="legit",
            n_queries=64,
            n_batches=1,
            n_trigger_queries=0,
            source_counts={"legit": 64},
            elapsed_seconds=0.0,
            queries_per_second=float("inf"),
            verdicts=(
                Verdict(
                    defender="suppression-distinguisher",
                    fired=False,
                    n_queries=64,
                    statistic=float("nan"),
                    threshold=float("nan"),
                ),
            ),
        )
        monkeypatch.setattr(
            "repro.experiments.scenarios.build_attack_target",
            lambda config, dataset: SimpleNamespace(model=None, X_train=None),
        )
        monkeypatch.setattr(
            "repro.traffic.replay_scenario", lambda *a, **k: report
        )
        assert main(["traffic", "--scenario", "legit", "--json"]) == 0
        out = capsys.readouterr().out
        assert len(out.strip().splitlines()) == 1  # `| head -1` safe

        def reject_constants(value):
            raise AssertionError(f"non-standard JSON constant {value!r}")

        data = json.loads(out, parse_constant=reject_constants)
        assert data["queries_per_second"] is None
        assert data["verdicts"][0]["statistic"] is None

    def test_piped_traffic_json_first_line_parses(self):
        """Acceptance: `repro traffic --json | head -1` is loadable."""
        result = subprocess.run(
            f"{sys.executable} -m repro traffic --scenario verification-probe "
            "--queries 2048 --json | head -1",
            shell=True,
            capture_output=True,
            text=True,
            env={**os.environ, "PYTHONPATH": SRC_DIR},
        )
        assert result.returncode == 0, result.stderr
        report = json.loads(result.stdout)
        assert report["stream"] == "mixed" or report["n_queries"] == 2048
