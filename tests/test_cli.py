"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_watermark_args(self, tmp_path):
        args = build_parser().parse_args(
            ["watermark", "--dataset", "breast-cancer", "--out-dir", str(tmp_path)]
        )
        assert args.command == "watermark"
        assert args.trees == 16

    def test_unknown_dataset_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["watermark", "--dataset", "cifar", "--out-dir", str(tmp_path)]
            )


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def artifacts(self, tmp_path_factory):
        out_dir = tmp_path_factory.mktemp("cli-artifacts")
        code = main(
            [
                "watermark",
                "--dataset", "breast-cancer",
                "--samples", "240",
                "--trees", "8",
                "--trigger-size", "5",
                "--max-depth", "8",
                "--out-dir", str(out_dir),
            ]
        )
        assert code == 0
        return out_dir

    def test_artifacts_written(self, artifacts):
        assert (artifacts / "model.json").exists()
        assert (artifacts / "secret.json").exists()
        assert (artifacts / "commitment.json").exists()

    def test_verify_accepts_legitimate_claim(self, artifacts):
        code = main(
            [
                "verify",
                "--model", str(artifacts / "model.json"),
                "--secret", str(artifacts / "secret.json"),
                "--commitment", str(artifacts / "commitment.json"),
            ]
        )
        assert code == 0

    def test_verify_rejects_tampered_secret(self, artifacts, tmp_path):
        secret = json.loads((artifacts / "secret.json").read_text())
        bits = list(secret["signature"])
        bits[0] = "1" if bits[0] == "0" else "0"
        secret["signature"] = "".join(bits)
        tampered = tmp_path / "tampered_secret.json"
        tampered.write_text(json.dumps(secret))

        # Without the commitment the claim reaches verification and fails.
        code = main(
            [
                "verify",
                "--model", str(artifacts / "model.json"),
                "--secret", str(tampered),
            ]
        )
        assert code == 1

        # With the commitment the reveal itself is rejected first.
        code = main(
            [
                "verify",
                "--model", str(artifacts / "model.json"),
                "--secret", str(tampered),
                "--commitment", str(artifacts / "commitment.json"),
            ]
        )
        assert code == 2

    def test_malformed_model_reports_error(self, artifacts, tmp_path):
        broken = tmp_path / "broken.json"
        broken.write_text("{}")
        code = main(
            [
                "verify",
                "--model", str(broken),
                "--secret", str(artifacts / "secret.json"),
            ]
        )
        assert code == 2
