"""Tests for the Table 1 dataset stand-ins."""

import numpy as np
import pytest

from repro.datasets import (
    DATASET_NAMES,
    breast_cancer_like,
    dataset_statistics,
    ijcnn1_like,
    load_dataset,
    mnist26_like,
)
from repro.exceptions import ValidationError


class TestShapes:
    def test_mnist26_shape_and_balance(self):
        ds = mnist26_like(200, random_state=0)
        assert ds.X.shape == (200, 784)
        assert set(np.unique(ds.y)) == {-1, 1}
        # 51/49 split
        assert np.mean(ds.y == 1) == pytest.approx(0.51, abs=0.01)

    def test_breast_cancer_shape_and_balance(self):
        ds = breast_cancer_like(300, random_state=1)
        assert ds.X.shape == (300, 30)
        assert np.mean(ds.y == 1) == pytest.approx(0.37, abs=0.02)

    def test_ijcnn1_shape_and_imbalance(self):
        ds = ijcnn1_like(600, random_state=2)
        assert ds.X.shape == (600, 22)
        assert np.mean(ds.y == 1) == pytest.approx(0.10, abs=0.01)

    def test_default_sizes_match_table1(self):
        # Only check the cheap ones at full size; mnist26 is asserted
        # through the loader default argument instead of generating 13k
        # 784-dim samples in tests.
        assert mnist26_like.__defaults__[0] == 13866
        assert breast_cancer_like.__defaults__[0] == 569
        assert ijcnn1_like.__defaults__[0] == 10000


class TestValues:
    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_features_in_unit_interval(self, name):
        ds = load_dataset(name, n_samples=150, random_state=3)
        assert ds.X.min() >= 0.0
        assert ds.X.max() <= 1.0

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_determinism(self, name):
        a = load_dataset(name, n_samples=100, random_state=4)
        b = load_dataset(name, n_samples=100, random_state=4)
        assert np.array_equal(a.X, b.X)
        assert np.array_equal(a.y, b.y)

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_seeds_differ(self, name):
        a = load_dataset(name, n_samples=100, random_state=5)
        b = load_dataset(name, n_samples=100, random_state=6)
        assert not np.array_equal(a.X, b.X)


class TestLoader:
    def test_unknown_name_rejected(self):
        with pytest.raises(ValidationError, match="unknown dataset"):
            load_dataset("cifar10")

    def test_class_distribution_helper(self):
        ds = breast_cancer_like(200, random_state=7)
        distribution = ds.class_distribution()
        assert set(distribution) == {-1, 1}
        assert sum(distribution.values()) == pytest.approx(1.0)

    def test_dataset_statistics_row(self):
        ds = ijcnn1_like(400, random_state=8)
        row = dataset_statistics(ds)
        assert row["dataset"] == "ijcnn1"
        assert row["instances"] == 400
        assert row["features"] == 22
        assert row["distribution"] == "90%/10%"


class TestLearnability:
    """The stand-ins must be learnable at small scale — otherwise the
    accuracy experiments (Fig. 3) would be dominated by noise."""

    @pytest.mark.parametrize(
        "name,threshold",
        # mnist26 deliberately has no strongly separating single pixel
        # (see the registry docstring), so its small-sample accuracy is
        # lower than the tabular stand-ins'.
        [("mnist26", 0.82), ("breast-cancer", 0.85), ("ijcnn1", 0.92)],
    )
    def test_standard_forest_beats_threshold(self, name, threshold):
        from repro.ensemble import RandomForestClassifier
        from repro.model_selection import train_test_split

        ds = load_dataset(name, n_samples=350, random_state=9)
        X_train, X_test, y_train, y_test = train_test_split(
            ds.X, ds.y, test_size=0.3, random_state=10
        )
        forest = RandomForestClassifier(
            n_estimators=9, max_depth=10, tree_feature_fraction=0.6, random_state=11
        ).fit(X_train, y_train)
        assert forest.score(X_test, y_test) >= threshold
