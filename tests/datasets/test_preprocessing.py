"""Tests for min-max scaling."""

import numpy as np
import pytest

from repro.datasets import MinMaxScaler
from repro.exceptions import NotFittedError


class TestMinMaxScaler:
    def test_transform_to_unit_interval(self, rng):
        X = rng.normal(size=(50, 4)) * 10
        scaled = MinMaxScaler().fit_transform(X)
        assert scaled.min() >= 0.0
        assert scaled.max() <= 1.0
        assert scaled.min(axis=0) == pytest.approx(np.zeros(4))
        assert scaled.max(axis=0) == pytest.approx(np.ones(4))

    def test_constant_feature_maps_to_zero(self):
        X = np.array([[1.0, 5.0], [1.0, 7.0]])
        scaled = MinMaxScaler().fit_transform(X)
        assert np.allclose(scaled[:, 0], 0.0)

    def test_test_data_clipped(self):
        scaler = MinMaxScaler().fit(np.array([[0.0], [10.0]]))
        out = scaler.transform(np.array([[-5.0], [15.0]]))
        assert out[0, 0] == 0.0
        assert out[1, 0] == 1.0

    def test_no_clip_mode(self):
        scaler = MinMaxScaler(clip=False).fit(np.array([[0.0], [10.0]]))
        out = scaler.transform(np.array([[15.0]]))
        assert out[0, 0] == pytest.approx(1.5)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            MinMaxScaler().transform(np.zeros((1, 1)))

    def test_train_statistics_reused(self, rng):
        X_train = rng.uniform(5, 10, size=(30, 2))
        scaler = MinMaxScaler().fit(X_train)
        same = scaler.transform(X_train)
        again = scaler.transform(X_train)
        assert np.array_equal(same, again)
