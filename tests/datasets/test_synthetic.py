"""Tests for the low-level synthetic generators."""

import numpy as np
import pytest

from repro.datasets import (
    cluster_minority_dataset,
    correlated_gaussian_classes,
    image_class_samples,
    interaction_score,
    margin_interaction_dataset,
    nonlinear_interaction_labels,
    smooth_image_prototype,
)
from repro.exceptions import ValidationError


class TestSmoothImagePrototype:
    def test_range_and_shape(self, rng):
        image = smooth_image_prototype(28, sigma=2.0, rng=rng)
        assert image.shape == (28, 28)
        assert image.min() == pytest.approx(0.0)
        assert image.max() == pytest.approx(1.0)

    def test_smoothness(self, rng):
        """Blurring must suppress pixel-to-pixel variation relative to
        raw noise."""
        image = smooth_image_prototype(28, sigma=3.0, rng=rng)
        horizontal_diff = np.abs(np.diff(image, axis=1)).mean()
        assert horizontal_diff < 0.2

    def test_too_small_rejected(self, rng):
        with pytest.raises(ValidationError):
            smooth_image_prototype(2, sigma=1.0, rng=rng)


class TestImageClassSamples:
    def test_shape_and_range(self, rng):
        prototype = smooth_image_prototype(16, sigma=2.0, rng=rng)
        samples = image_class_samples(prototype, 10, rng)
        assert samples.shape == (10, 256)
        assert samples.min() >= 0.0 and samples.max() <= 1.0

    def test_samples_differ(self, rng):
        prototype = smooth_image_prototype(16, sigma=2.0, rng=rng)
        samples = image_class_samples(prototype, 3, rng)
        assert not np.array_equal(samples[0], samples[1])

    def test_samples_resemble_prototype(self, rng):
        prototype = smooth_image_prototype(16, sigma=2.0, rng=rng)
        samples = image_class_samples(prototype, 20, rng, max_shift=1)
        correlation = np.corrcoef(samples.mean(axis=0), prototype.ravel())[0, 1]
        assert correlation > 0.5


class TestCorrelatedGaussians:
    def test_shapes_and_fraction(self, rng):
        X, y = correlated_gaussian_classes(200, 10, 0.3, 3.0, rng)
        assert X.shape == (200, 10)
        assert np.mean(y == 1) == pytest.approx(0.3, abs=0.01)

    def test_unit_interval(self, rng):
        X, _ = correlated_gaussian_classes(100, 5, 0.4, 2.0, rng)
        assert X.min() >= 0.0 and X.max() <= 1.0

    def test_separation_increases_separability(self, rng):
        def mean_gap(separation, seed):
            gen = np.random.default_rng(seed)
            X, y = correlated_gaussian_classes(400, 8, 0.5, separation, gen)
            return np.linalg.norm(X[y == 1].mean(axis=0) - X[y == -1].mean(axis=0))

        assert mean_gap(6.0, 0) > mean_gap(0.5, 0)

    def test_invalid_fraction(self, rng):
        with pytest.raises(ValidationError):
            correlated_gaussian_classes(10, 3, 0.0, 1.0, rng)


class TestClusterMinority:
    def test_shapes_and_fraction(self, rng):
        X, y = cluster_minority_dataset(300, 12, 0.1, rng)
        assert X.shape == (300, 12)
        assert np.mean(y == 1) == pytest.approx(0.1, abs=0.01)

    def test_negatives_keep_margin_from_clusters(self, rng):
        X, y = cluster_minority_dataset(400, 6, 0.1, rng, n_clusters=3, cluster_std=0.05)
        positives = X[y == 1]
        negatives = X[y == -1]
        # Every negative is far (in L-inf) from every positive: at least
        # the rejection shell minus the positive truncation radius.
        min_gap = 3.5 * 0.05 - 2.5 * 0.05
        for negative in negatives[:50]:
            distances = np.abs(positives - negative[None, :]).max(axis=1)
            assert distances.min() > min_gap - 1e-9

    def test_invalid_params(self, rng):
        with pytest.raises(ValidationError):
            cluster_minority_dataset(10, 3, 1.5, rng)
        with pytest.raises(ValidationError):
            cluster_minority_dataset(10, 3, 0.1, rng, n_clusters=0)
        with pytest.raises(ValidationError):
            cluster_minority_dataset(10, 3, 0.1, rng, cluster_std=0.0)


class TestInteractionGenerators:
    def test_score_requires_five_features(self, rng):
        with pytest.raises(ValidationError):
            interaction_score(rng.uniform(size=(10, 3)))

    def test_margin_dataset_fraction(self, rng):
        X, y = margin_interaction_dataset(400, 22, 0.1, rng)
        assert X.shape == (400, 22)
        assert np.mean(y == 1) == pytest.approx(0.1, abs=0.01)

    def test_margin_dataset_excessive_margin_raises(self, rng):
        with pytest.raises(ValidationError, match="margin"):
            margin_interaction_dataset(400, 22, 0.1, rng, margin=0.4)

    def test_labels_have_both_classes(self, rng):
        X = rng.uniform(size=(300, 6))
        y = nonlinear_interaction_labels(X, 0.2, rng)
        assert set(np.unique(y)) == {-1, 1}
