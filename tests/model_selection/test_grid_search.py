"""Tests for grid search over forest hyper-parameters."""

import pytest

from repro.exceptions import ValidationError
from repro.model_selection import grid_search_forest


class TestGridSearch:
    def test_returns_best_of_grid(self, bc_data):
        X_train, _, y_train, _ = bc_data
        result = grid_search_forest(
            X_train,
            y_train,
            n_estimators=3,
            param_grid={"max_depth": [2, 8]},
            n_splits=2,
            random_state=0,
        )
        assert result.best_params["max_depth"] in (2, 8)
        assert 0.0 <= result.best_score <= 1.0
        assert len(result.table) == 2
        best_from_table = max(result.table, key=lambda entry: entry[1])[1]
        assert result.best_score == pytest.approx(best_from_table)

    def test_fold_scores_recorded(self, bc_data):
        X_train, _, y_train, _ = bc_data
        result = grid_search_forest(
            X_train,
            y_train,
            n_estimators=2,
            param_grid={"min_samples_leaf": [1, 5]},
            n_splits=3,
            random_state=1,
        )
        for _params, _mean, scores in result.table:
            assert len(scores) == 3

    def test_deeper_wins_on_nonlinear_data(self, ij_data):
        X_train, _, y_train, _ = ij_data
        result = grid_search_forest(
            X_train,
            y_train,
            n_estimators=5,
            param_grid={"max_depth": [1, 10]},
            n_splits=2,
            tree_feature_fraction=0.8,
            random_state=2,
        )
        # Depth-1 stumps cannot isolate minority clusters.
        assert result.best_params["max_depth"] == 10

    def test_unknown_parameter_rejected(self, bc_data):
        X_train, _, y_train, _ = bc_data
        with pytest.raises(ValidationError, match="unknown parameters"):
            grid_search_forest(
                X_train, y_train, n_estimators=2, param_grid={"bogus": [1]}
            )

    def test_empty_grid_rejected(self, bc_data):
        X_train, _, y_train, _ = bc_data
        with pytest.raises(ValidationError, match="at least one"):
            grid_search_forest(X_train, y_train, n_estimators=2, param_grid={})

    def test_determinism(self, bc_data):
        X_train, _, y_train, _ = bc_data
        kwargs = dict(
            n_estimators=2,
            param_grid={"max_depth": [2, 4]},
            n_splits=2,
            random_state=42,
        )
        a = grid_search_forest(X_train, y_train, **kwargs)
        b = grid_search_forest(X_train, y_train, **kwargs)
        assert a.best_params == b.best_params
        assert a.best_score == pytest.approx(b.best_score)


class TestGridSearchRegression:
    """Regression contracts for tie-breaking and ``n_jobs`` invariance."""

    def _separable_data(self):
        """Trivially separable data where every candidate scores 1.0.

        All three columns carry the identical binary feature, so every
        tree is perfect regardless of its feature subspace and every
        grid point ties at CV accuracy 1.0.
        """
        import numpy as np

        rng = np.random.default_rng(31)
        column = rng.choice([0.25, 0.75], size=120)
        X = np.stack([column, column, column], axis=1)
        y = np.where(column > 0.5, 1, -1)
        return X, y

    def test_tie_breaks_toward_earlier_grid_point(self):
        X, y = self._separable_data()
        result = grid_search_forest(
            X,
            y,
            n_estimators=3,
            param_grid={"max_depth": [2, 6, 16]},
            n_splits=2,
            random_state=3,
        )
        assert result.best_score == 1.0
        assert all(mean == 1.0 for _params, mean, _scores in result.table)
        # All grid points tie: the earliest one must win.
        assert result.best_params == {"max_depth": 2}

    def test_tie_break_with_two_parameters(self):
        X, y = self._separable_data()
        result = grid_search_forest(
            X,
            y,
            n_estimators=2,
            param_grid={"max_depth": [4, 8], "min_samples_leaf": [1, 4]},
            n_splits=2,
            random_state=4,
        )
        assert result.best_score == 1.0
        # First point of the sorted-name product order wins the tie.
        assert result.best_params == {"max_depth": 4, "min_samples_leaf": 1}

    def test_n_jobs_invariance(self, bc_data):
        X_train, _, y_train, _ = bc_data
        kwargs = dict(
            n_estimators=4,
            param_grid={"max_depth": [3, 8]},
            n_splits=2,
            random_state=5,
        )
        serial = grid_search_forest(X_train, y_train, n_jobs=None, **kwargs)
        parallel = grid_search_forest(X_train, y_train, n_jobs=2, **kwargs)
        assert parallel.best_params == serial.best_params
        assert parallel.best_score == serial.best_score  # exact, not approx
        assert len(parallel.table) == len(serial.table)
        for (p_params, p_mean, p_scores), (s_params, s_mean, s_scores) in zip(
            parallel.table, serial.table
        ):
            assert p_params == s_params
            assert p_mean == s_mean
            assert p_scores == s_scores
