"""Tests for train/test split, stratified k-fold and stratified subsampling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.model_selection import StratifiedKFold, stratified_subsample, train_test_split


def _imbalanced_data(rng, n=200, positive_fraction=0.2):
    X = rng.uniform(size=(n, 3))
    n_pos = int(positive_fraction * n)
    y = np.array([1] * n_pos + [-1] * (n - n_pos), dtype=np.int64)
    rng.shuffle(y)
    return X, y


class TestTrainTestSplit:
    def test_sizes(self, rng):
        X, y = _imbalanced_data(rng)
        X_train, X_test, y_train, y_test = train_test_split(X, y, test_size=0.25, random_state=0)
        assert X_train.shape[0] + X_test.shape[0] == 200
        assert abs(X_test.shape[0] - 50) <= 2
        assert X_train.shape[0] == y_train.shape[0]
        assert X_test.shape[0] == y_test.shape[0]

    def test_stratification_preserves_ratio(self, rng):
        X, y = _imbalanced_data(rng, n=400, positive_fraction=0.1)
        _, _, y_train, y_test = train_test_split(X, y, test_size=0.3, random_state=1)
        assert np.mean(y_test == 1) == pytest.approx(0.1, abs=0.03)
        assert np.mean(y_train == 1) == pytest.approx(0.1, abs=0.03)

    def test_no_overlap_and_full_coverage(self, rng):
        X = np.arange(100, dtype=np.float64).reshape(-1, 1)
        y = np.array([1, -1] * 50)
        X_train, X_test, _, _ = train_test_split(X, y, test_size=0.2, random_state=2)
        merged = np.sort(np.concatenate([X_train[:, 0], X_test[:, 0]]))
        assert np.array_equal(merged, np.arange(100))

    def test_determinism(self, rng):
        X, y = _imbalanced_data(rng)
        a = train_test_split(X, y, test_size=0.3, random_state=7)
        b = train_test_split(X, y, test_size=0.3, random_state=7)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[3], b[3])

    def test_invalid_test_size(self, rng):
        X, y = _imbalanced_data(rng, n=20)
        with pytest.raises(ValidationError):
            train_test_split(X, y, test_size=0.0)
        with pytest.raises(ValidationError):
            train_test_split(X, y, test_size=1.0)

    def test_unstratified_mode(self, rng):
        X, y = _imbalanced_data(rng)
        X_train, X_test, _, _ = train_test_split(
            X, y, test_size=0.3, stratify=False, random_state=3
        )
        assert X_train.shape[0] + X_test.shape[0] == 200


class TestStratifiedKFold:
    def test_folds_partition_data(self, rng):
        X, y = _imbalanced_data(rng, n=90)
        seen = np.zeros(90, dtype=int)
        for train_index, test_index in StratifiedKFold(3, random_state=0).split(X, y):
            assert np.intersect1d(train_index, test_index).size == 0
            seen[test_index] += 1
        assert (seen == 1).all()

    def test_each_fold_stratified(self, rng):
        X, y = _imbalanced_data(rng, n=300, positive_fraction=0.3)
        for _, test_index in StratifiedKFold(5, random_state=1).split(X, y):
            assert np.mean(y[test_index] == 1) == pytest.approx(0.3, abs=0.06)

    def test_too_few_members_raises(self, rng):
        X = rng.uniform(size=(10, 2))
        y = np.array([1] * 9 + [-1])
        with pytest.raises(ValidationError, match="fewer than"):
            list(StratifiedKFold(3).split(X, y))

    def test_invalid_n_splits(self):
        with pytest.raises(ValidationError):
            StratifiedKFold(1)


class TestStratifiedSubsample:
    def test_exact_size(self, rng):
        X, y = _imbalanced_data(rng, n=500, positive_fraction=0.1)
        X_sub, y_sub = stratified_subsample(X, y, 100, random_state=0)
        assert X_sub.shape == (100, 3)
        assert y_sub.shape == (100,)

    def test_ratio_preserved(self, rng):
        X, y = _imbalanced_data(rng, n=1000, positive_fraction=0.1)
        _, y_sub = stratified_subsample(X, y, 200, random_state=1)
        assert np.mean(y_sub == 1) == pytest.approx(0.1, abs=0.02)

    def test_rows_come_from_original(self, rng):
        X, y = _imbalanced_data(rng, n=50)
        X_sub, _ = stratified_subsample(X, y, 20, random_state=2)
        original_rows = {tuple(row) for row in X}
        assert all(tuple(row) in original_rows for row in X_sub)

    def test_bad_sizes_raise(self, rng):
        X, y = _imbalanced_data(rng, n=30)
        with pytest.raises(ValidationError):
            stratified_subsample(X, y, 0)
        with pytest.raises(ValidationError):
            stratified_subsample(X, y, 31)

    @given(st.integers(min_value=10, max_value=60), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_requested_size_always_hit(self, size, seed):
        gen = np.random.default_rng(seed)
        X = gen.uniform(size=(80, 2))
        y = np.where(gen.uniform(size=80) < 0.35, 1, -1)
        if len(np.unique(y)) < 2:
            y[0] = -y[0]
        X_sub, y_sub = stratified_subsample(X, y, size, random_state=seed)
        assert X_sub.shape[0] == size == y_sub.shape[0]
