"""Tests for classification metrics."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.model_selection import (
    accuracy,
    balanced_accuracy,
    confusion_matrix,
    precision_recall_f1,
)


class TestAccuracy:
    def test_perfect(self):
        assert accuracy([1, -1, 1], [1, -1, 1]) == 1.0

    def test_all_wrong(self):
        assert accuracy([1, 1], [-1, -1]) == 0.0

    def test_partial(self):
        assert accuracy([1, -1, 1, -1], [1, -1, -1, 1]) == pytest.approx(0.5)

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError):
            accuracy([1, 2], [1])

    def test_empty_raises(self):
        with pytest.raises(ValidationError):
            accuracy([], [])


class TestConfusionMatrix:
    def test_binary(self):
        matrix = confusion_matrix([1, 1, -1, -1], [1, -1, -1, -1], labels=[-1, 1])
        assert np.array_equal(matrix, [[2, 0], [1, 1]])

    def test_total_equals_samples(self, rng):
        y_true = rng.choice([-1, 1], size=50)
        y_pred = rng.choice([-1, 1], size=50)
        assert confusion_matrix(y_true, y_pred).sum() == 50

    def test_unknown_label_raises(self):
        with pytest.raises(ValidationError):
            confusion_matrix([1], [2], labels=[0, 1])


class TestPrecisionRecallF1:
    def test_perfect(self):
        p, r, f1 = precision_recall_f1([1, -1, 1], [1, -1, 1])
        assert (p, r, f1) == (1.0, 1.0, 1.0)

    def test_no_predicted_positives(self):
        p, r, f1 = precision_recall_f1([1, 1], [-1, -1])
        assert (p, r, f1) == (0.0, 0.0, 0.0)

    def test_known_values(self):
        # TP=1, FP=1, FN=1 -> P=0.5, R=0.5, F1=0.5
        p, r, f1 = precision_recall_f1([1, -1, 1, -1], [1, 1, -1, -1])
        assert p == pytest.approx(0.5)
        assert r == pytest.approx(0.5)
        assert f1 == pytest.approx(0.5)


class TestBalancedAccuracy:
    def test_penalises_majority_guessing(self):
        y_true = np.array([1] * 10 + [-1] * 90)
        y_pred = -np.ones(100, dtype=np.int64)
        assert accuracy(y_true, y_pred) == pytest.approx(0.9)
        assert balanced_accuracy(y_true, y_pred) == pytest.approx(0.5)

    def test_perfect(self):
        assert balanced_accuracy([1, -1], [1, -1]) == 1.0
