"""Packaging metadata for the :mod:`repro` library.

The offline environment lacks the ``wheel`` package, so PEP 660
editable installs (``pip install -e .``) cannot build their editable
wheel; use ``pip install -e . --no-build-isolation --no-use-pep517``
(or ``python setup.py develop``) instead.

The ``repro`` console script and ``python -m repro`` both invoke the
same CLI entry point (:func:`repro.cli.main`).
"""

import re
from pathlib import Path

from setuptools import find_packages, setup

# Single source of truth for the version: repro.__version__ (pinned by
# tests/test_integration.py).  Read textually — importing the package
# from setup.py would require numpy at build time.
_init = Path(__file__).parent / "src" / "repro" / "__init__.py"
_version = re.search(r'^__version__ = "([^"]+)"', _init.read_text(), re.M).group(1)

setup(
    name="repro",
    version=_version,
    description=(
        "Reproduction of 'Watermarking Decision Tree Ensembles' "
        "(EDBT 2025): watermarking pipeline, attack suite, experiment "
        "harness"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
