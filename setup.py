"""Thin setup.py kept for legacy editable installs.

The offline environment lacks the ``wheel`` package, so PEP 660
editable installs (``pip install -e .``) cannot build their editable
wheel; ``pip install -e . --no-build-isolation --no-use-pep517`` (or
``python setup.py develop``) uses this file instead.  All metadata
lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
