"""Attacker study: structural detection and trigger-query suppression.

Run with::

    python examples/detection_and_suppression.py

Two of the paper's threat vectors against a stolen watermarked model,
both run through the uniform :class:`repro.api` attack protocol —
same ``run(target, rng)`` entry point, same ``AttackReport`` shape:

1. **Detection** (Table 2): guess each tree's signature bit from its
   depth / leaf count.  With the Adjust heuristic the statistics carry
   no usable signal.
2. **Suppression**: identify which verification queries are triggers.
   The input-side distinguisher (the one the paper argues about) is
   blind; the stronger model-behaviour distinguisher — our extension —
   shows why a thief should never expose per-tree outputs.
"""

import numpy as np

from repro import TrainerConfig, TriggerPolicy, Watermarker, make_attack, random_signature
from repro.api import AttackTarget
from repro.datasets import breast_cancer_like
from repro.experiments import format_table
from repro.model_selection import train_test_split


def main() -> None:
    dataset = breast_cancer_like(n_samples=500, random_state=40)
    split = train_test_split(dataset.X, dataset.y, test_size=0.3, random_state=41)
    X_train, X_test, y_train, y_test = split
    model = Watermarker(
        signature=random_signature(m=20, ones_fraction=0.5, random_state=42),
        trigger=TriggerPolicy(size=8),
        trainer=TrainerConfig(base_params={"max_depth": 10}),
        random_state=43,
    ).fit(X_train, y_train)
    target = AttackTarget.from_split(model, split)
    rng = np.random.default_rng(44)

    # ----------------------------------------------- detection -------
    detection = make_attack("detection").run(target, rng)
    print("Structural detection attack (Table 2 setting):")
    print(
        format_table(
            ["Statistic", "Strategy", "(mean - std)", "#correct", "#wrong",
             "#uncertain", "recovery"],
            [
                [a["statistic"], a["strategy"],
                 f"({a['mean']:.2f} - {a['std']:.2f})", a["n_correct"],
                 a["n_wrong"], a["n_uncertain"], f"{a['recovery_rate']:.2f}"]
                for a in detection.details["attempts"]
            ],
        )
    )
    print(f"\n{detection.summary()}")
    print(
        "Recovery near 0.5 means the attacker's decided guesses are no\n"
        "better than coin flips; uncertain trees cannot be guessed at all.\n"
    )

    # --------------------------------------------- suppression -------
    suppression = make_attack("suppression").run(target, rng)
    print("Suppression distinguishers (AUC, 0.5 = no signal):")
    print(f"  input-distance attacker  : "
          f"{suppression.details['input_auc']:.3f}  "
          f"(the paper's argument: triggers look like ordinary data)")
    print(f"  vote-disagreement attacker: "
          f"{suppression.details['disagreement_auc']:.3f}  "
          f"(our extension: per-tree outputs leak trigger queries)")
    print(f"\n{suppression.summary()}")


if __name__ == "__main__":
    main()
