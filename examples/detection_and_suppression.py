"""Attacker study: structural detection and trigger-query suppression.

Run with::

    python examples/detection_and_suppression.py

Two of the paper's threat vectors against a stolen watermarked model:

1. **Detection** (Table 2): guess each tree's signature bit from its
   depth / leaf count.  With the Adjust heuristic the statistics carry
   no usable signal.
2. **Suppression**: identify which verification queries are triggers.
   The input-side distinguisher (the one the paper argues about) is
   blind; the stronger model-behaviour distinguisher — our extension —
   shows why a thief should never expose per-tree outputs.
"""

from repro import random_signature, watermark
from repro.attacks import detection_report, suppression_analysis
from repro.datasets import breast_cancer_like
from repro.experiments import format_table
from repro.model_selection import train_test_split


def main() -> None:
    dataset = breast_cancer_like(n_samples=500, random_state=40)
    X_train, X_test, y_train, y_test = train_test_split(
        dataset.X, dataset.y, test_size=0.3, random_state=41
    )
    model = watermark(
        X_train,
        y_train,
        random_signature(m=20, ones_fraction=0.5, random_state=42),
        trigger_size=8,
        base_params={"max_depth": 10},
        random_state=43,
    )

    # ----------------------------------------------- detection -------
    rows = []
    for result in detection_report(model):
        rows.append(
            [
                result.statistic,
                result.strategy,
                f"({result.mean:.2f} - {result.std:.2f})",
                result.n_correct,
                result.n_wrong,
                result.n_uncertain,
                f"{result.recovery_rate:.2f}",
            ]
        )
    print("Structural detection attack (Table 2 setting):")
    print(
        format_table(
            ["Statistic", "Strategy", "(mean - std)", "#correct", "#wrong",
             "#uncertain", "recovery"],
            rows,
        )
    )
    print(
        "\nRecovery near 0.5 means the attacker's decided guesses are no\n"
        "better than coin flips; uncertain trees cannot be guessed at all.\n"
    )

    # --------------------------------------------- suppression -------
    analysis = suppression_analysis(
        model.ensemble, model.trigger.X, X_test, X_train
    )
    print("Suppression distinguishers (AUC, 0.5 = no signal):")
    print(f"  input-distance attacker  : {analysis.input_auc:.3f}  "
          f"(the paper's argument: triggers look like ordinary data)")
    print(f"  vote-disagreement attacker: {analysis.disagreement_auc:.3f}  "
          f"(our extension: per-tree outputs leak trigger queries)")


if __name__ == "__main__":
    main()
