"""Quickstart: watermark a random forest and verify ownership.

Run with::

    python examples/quickstart.py

Trains a watermarked random forest on the breast-cancer stand-in
dataset, checks that the accuracy cost is small, and verifies the
watermark through the black-box per-tree interface.
"""

from repro import random_signature, verify_ownership, watermark
from repro.core import false_claim_log10_probability, train_standard_forest
from repro.datasets import breast_cancer_like
from repro.model_selection import train_test_split


def main() -> None:
    # --- The owner's training data -----------------------------------
    dataset = breast_cancer_like(n_samples=500, random_state=7)
    X_train, X_test, y_train, y_test = train_test_split(
        dataset.X, dataset.y, test_size=0.3, random_state=8
    )

    # --- Watermark creation (Algorithm 1) -----------------------------
    # The signature is the owner's secret bit string; its length fixes
    # the ensemble size m.  Here: 20 trees, half forced to misclassify
    # the trigger set.
    signature = random_signature(m=20, ones_fraction=0.5, random_state=9)
    model = watermark(
        X_train,
        y_train,
        signature,
        trigger_size=8,  # k = 8 trigger instances (~2% of the data)
        base_params={"max_depth": 8},
        random_state=10,
    )
    print(f"signature        : {model.signature.to_string()}")
    print(f"trigger set size : {model.trigger.size}")
    print(
        f"re-weighting     : T0 {model.report.rounds_t0} rounds, "
        f"T1 {model.report.rounds_t1} rounds"
    )

    # --- The watermarked model is still a good classifier -------------
    standard = train_standard_forest(
        X_train, y_train, n_estimators=20, params={"max_depth": 8}, random_state=11
    )
    watermarked_accuracy = model.ensemble.score(X_test, y_test)
    standard_accuracy = standard.score(X_test, y_test)
    print(f"accuracy         : watermarked {watermarked_accuracy:.3f} "
          f"vs standard {standard_accuracy:.3f}")

    # --- Black-box verification ---------------------------------------
    report = verify_ownership(
        model.ensemble, model.signature, model.trigger.X, model.trigger.y
    )
    print(f"verification     : {report.summary()}")

    # How unlikely is a coincidental match by an innocent model?
    log_p = false_claim_log10_probability(
        test_accuracy=standard_accuracy,
        trigger_size=model.trigger.size,
        signature=model.signature,
    )
    print(f"coincidence prob : 10^{log_p:.1f}")


if __name__ == "__main__":
    main()
