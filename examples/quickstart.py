"""Quickstart: watermark a random forest and verify ownership.

Run with::

    python examples/quickstart.py            # full demo (20 trees)
    python examples/quickstart.py --quick    # CI smoke mode (8 trees)

Composes a watermarking pipeline from the public API
(:class:`repro.Watermarker` + its frozen configs), trains it on the
breast-cancer stand-in dataset, checks that the accuracy cost is
small, verifies the watermark through the black-box per-tree
interface, and runs one registry attack against the deployed model.
"""

import sys

import numpy as np

from repro import (
    EmbeddingSchedule,
    TrainerConfig,
    TriggerPolicy,
    Watermarker,
    make_attack,
    random_signature,
    verify_ownership,
)
from repro.api import AttackTarget
from repro.core import false_claim_log10_probability, train_standard_forest
from repro.datasets import breast_cancer_like
from repro.model_selection import train_test_split


def main(quick: bool = False) -> None:
    n_samples, n_trees = (240, 8) if quick else (500, 20)

    # --- The owner's training data -----------------------------------
    dataset = breast_cancer_like(n_samples=n_samples, random_state=7)
    X_train, X_test, y_train, y_test = train_test_split(
        dataset.X, dataset.y, test_size=0.3, random_state=8
    )

    # --- Watermark creation (Algorithm 1, composable pipeline) --------
    # The signature is the owner's secret bit string; its length fixes
    # the ensemble size m.  Each config owns one concern: trigger-set
    # sizing, the re-weighting schedule, and the underlying forests.
    signature = random_signature(m=n_trees, ones_fraction=0.5, random_state=9)
    watermarker = Watermarker(
        signature=signature,
        trigger=TriggerPolicy(size=8),          # k = 8 trigger instances
        schedule=EmbeddingSchedule(),           # the paper's +1 re-weighting
        trainer=TrainerConfig(base_params={"max_depth": 8}),
        random_state=10,
    )
    model = watermarker.fit(X_train, y_train)
    print(f"signature        : {model.signature.to_string()}")
    print(f"trigger set size : {model.trigger.size}")
    print(
        f"re-weighting     : T0 {model.report.rounds_t0} rounds, "
        f"T1 {model.report.rounds_t1} rounds"
    )

    # --- The watermarked model is still a good classifier -------------
    standard = train_standard_forest(
        X_train, y_train, n_estimators=n_trees, params={"max_depth": 8},
        random_state=11,
    )
    watermarked_accuracy = model.ensemble.score(X_test, y_test)
    standard_accuracy = standard.score(X_test, y_test)
    print(f"accuracy         : watermarked {watermarked_accuracy:.3f} "
          f"vs standard {standard_accuracy:.3f}")

    # --- Black-box verification ---------------------------------------
    report = verify_ownership(
        model.ensemble, model.signature, model.trigger.X, model.trigger.y
    )
    print(f"verification     : {report.summary()}")

    # How unlikely is a coincidental match by an innocent model?
    log_p = false_claim_log10_probability(
        test_accuracy=standard_accuracy,
        trigger_size=model.trigger.size,
        signature=model.signature,
    )
    print(f"coincidence prob : 10^{log_p:.1f}")

    # --- One attack through the uniform protocol ----------------------
    # Every attack is a registry entry with the same run() signature
    # and the same AttackReport shape (`repro attack --list` shows all).
    target = AttackTarget.from_split(
        model, (X_train, X_test, y_train, y_test)
    )
    attack_report = make_attack("truncate", depth=3).run(
        target, np.random.default_rng(12)
    )
    print(f"attack           : {attack_report.summary()}")


if __name__ == "__main__":
    main(quick="--quick" in sys.argv[1:])
