"""Extension: watermarking a gradient-boosted ensemble.

Run with::

    python examples/boosted_watermark.py

The paper names gradient boosting as the next ensemble family to
watermark.  This example demonstrates our extension: each boosting
stage's *contribution sign* on the trigger instances encodes one
signature bit (see ``repro.core.boosted`` for the construction).
"""

from repro import random_signature
from repro.core import verify_boosted_ownership, watermark_boosted
from repro.datasets import breast_cancer_like
from repro.ensemble import GradientBoostingClassifier
from repro.model_selection import train_test_split


def main() -> None:
    dataset = breast_cancer_like(n_samples=500, random_state=50)
    X_train, X_test, y_train, y_test = train_test_split(
        dataset.X, dataset.y, test_size=0.3, random_state=51
    )

    signature = random_signature(m=12, ones_fraction=0.5, random_state=52)
    model = watermark_boosted(
        X_train,
        y_train,
        signature,
        trigger_size=6,
        max_depth=5,
        random_state=53,
    )
    print(f"signature      : {model.signature.to_string()}")
    print(f"embedding       : {model.rounds} re-weighting rounds, final "
          f"trigger weight {model.final_trigger_weight:.1f}")

    # Predictive quality vs a standard GBDT with the same capacity.
    standard = GradientBoostingClassifier(
        n_estimators=12, learning_rate=0.3, max_depth=5, random_state=54
    ).fit(X_train, y_train)
    print(f"accuracy        : watermarked {model.ensemble.score(X_test, y_test):.3f} "
          f"vs standard {standard.score(X_test, y_test):.3f}")

    # Verification reads per-stage contribution signs on the triggers.
    accepted, matches = verify_boosted_ownership(
        model.ensemble, model.signature, model.trigger.X, model.trigger.y
    )
    print(f"verification    : accepted={accepted} "
          f"({int(matches.sum())}/{len(matches)} stages match)")

    # A fake signature does not match.
    fake = random_signature(m=12, ones_fraction=0.5, random_state=55)
    fake_accepted, fake_matches = verify_boosted_ownership(
        model.ensemble, fake, model.trigger.X, model.trigger.y
    )
    print(f"fake signature  : accepted={fake_accepted} "
          f"({int(fake_matches.sum())}/{len(fake_matches)} stages match)")


if __name__ == "__main__":
    main()
