"""The full ownership-dispute scenario: Alice, Bob and judge Charlie.

Run with::

    python examples/ownership_dispute.py

1. Alice trains a watermarked model and stores both the model and her
   secret (signature + trigger set) as JSON.
2. Bob steals the deployed model file and serves it unchanged.
3. Charlie, the judge, receives Alice's secret and a test set that
   hides the trigger instances among ordinary queries, queries Bob's
   model black-box, and rules on the claim.
4. Mallory tries the same claim with a fabricated secret and fails.
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    Judge,
    OwnershipClaim,
    TrainerConfig,
    TriggerPolicy,
    WatermarkSecret,
    Watermarker,
    random_signature,
)
from repro.datasets import ijcnn1_like
from repro.model_selection import train_test_split
from repro.persistence import (
    forest_from_dict,
    forest_to_dict,
    load_json,
    save_json,
    secret_from_dict,
    secret_to_dict,
)


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-dispute-"))
    dataset = ijcnn1_like(n_samples=900, random_state=20)
    X_train, X_test, y_train, y_test = train_test_split(
        dataset.X, dataset.y, test_size=0.3, random_state=21
    )

    # ------------------------------------------------------ Alice ----
    signature = random_signature(m=16, ones_fraction=0.5, random_state=22)
    model = Watermarker(
        signature=signature,
        trigger=TriggerPolicy(size=10),
        trainer=TrainerConfig(base_params={"max_depth": 10}),
        random_state=23,
    ).fit(X_train, y_train)
    save_json(forest_to_dict(model.ensemble), workdir / "deployed_model.json")
    save_json(
        secret_to_dict(
            WatermarkSecret(
                signature=model.signature,
                trigger_X=model.trigger.X,
                trigger_y=model.trigger.y,
            )
        ),
        workdir / "alice_secret.json",
    )
    print(f"Alice deployed her model (accuracy "
          f"{model.ensemble.score(X_test, y_test):.3f}) and stored her secret.")

    # -------------------------------------------------------- Bob ----
    # Bob exfiltrates the model file and serves it as-is.
    bobs_model = forest_from_dict(load_json(workdir / "deployed_model.json"))
    print("Bob is serving a byte-identical copy of Alice's model.")

    # ---------------------------------------------------- Charlie ----
    secret = secret_from_dict(load_json(workdir / "alice_secret.json"))
    # The disclosed test set hides the triggers among ordinary queries,
    # so Bob cannot selectively answer trigger queries differently.
    X_disclosed = np.vstack([X_test, secret.trigger_X])
    y_disclosed = np.concatenate([y_test, secret.trigger_y])
    shuffle = np.random.default_rng(24).permutation(X_disclosed.shape[0])
    claim = OwnershipClaim(
        "alice", secret, X_disclosed[shuffle], y_disclosed[shuffle]
    )
    verdict = Judge().verify_claim(bobs_model, claim)
    print(f"Charlie on Alice's claim : {verdict.summary()}")
    assert verdict.accepted

    # ---------------------------------------------------- Mallory ----
    rng = np.random.default_rng(25)
    fabricated = WatermarkSecret(
        signature=random_signature(16, random_state=26),
        trigger_X=X_test[rng.choice(X_test.shape[0], size=10, replace=False)],
        trigger_y=rng.choice([-1, 1], size=10),
    )
    X_m = np.vstack([X_test, fabricated.trigger_X])
    y_m = np.concatenate([y_test, fabricated.trigger_y])
    mallory_claim = OwnershipClaim("mallory", fabricated, X_m, y_m)
    mallory_verdict = Judge().verify_claim(bobs_model, mallory_claim)
    print(f"Charlie on Mallory's claim: {mallory_verdict.summary()}")
    assert not mallory_verdict.accepted


if __name__ == "__main__":
    main()
