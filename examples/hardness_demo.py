"""Theorem 1, executably: 3SAT reduces to watermark forgery.

Run with::

    python examples/hardness_demo.py

Builds the paper's example formula (x0 ∨ x1) ∧ (x1 ∨ x2 ∨ ¬x3),
converts it to a decision-tree ensemble with the paper's ⟦·⟧ mapping
(Figure 2), solves the resulting forgery problem with the library's
solver, and maps the witness back to a satisfying boolean assignment —
then does the same for a batch of random formulas against a brute-force
oracle.
"""

import numpy as np

from repro.hardness import (
    Clause,
    Formula3CNF,
    Literal,
    brute_force_3sat,
    forgery_problem_from_formula,
    formula_to_ensemble,
    instance_to_assignment,
    random_3cnf,
)
from repro.solver import solve_pattern_smt
from repro.trees import tree_to_text


def main() -> None:
    # --- The paper's running example ----------------------------------
    formula = Formula3CNF(
        n_vars=4,
        clauses=(
            Clause((Literal(0), Literal(1))),
            Clause((Literal(1), Literal(2), Literal(3, negated=True))),
        ),
    )
    print(f"formula: {formula}\n")
    for index, root in enumerate(formula_to_ensemble(formula)):
        print(f"tree {index} (clause {index}):")
        print(tree_to_text(root))
        print()

    outcome = solve_pattern_smt(forgery_problem_from_formula(formula))
    assignment = instance_to_assignment(outcome.instance)
    print(f"forgery solver says: {outcome.status}")
    print(f"witness instance   : {np.round(outcome.instance, 2)}")
    print(f"boolean assignment : {assignment}")
    print(f"formula satisfied  : {formula.evaluate(assignment)}\n")

    # --- Random formulas vs a brute-force oracle -----------------------
    rng = np.random.default_rng(0)
    agreements = 0
    trials = 30
    for _ in range(trials):
        n_vars = int(rng.integers(3, 9))
        phi = random_3cnf(n_vars, int(rng.integers(2, 4 * n_vars)),
                          random_state=int(rng.integers(2**31 - 1)))
        solver_sat = solve_pattern_smt(forgery_problem_from_formula(phi)).is_sat
        oracle_sat = brute_force_3sat(phi) is not None
        agreements += solver_sat == oracle_sat
    print(f"random formulas: solver agreed with brute force on "
          f"{agreements}/{trials} instances")


if __name__ == "__main__":
    main()
