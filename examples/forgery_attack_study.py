"""Attacker study: trying to forge a watermark with an SMT solver.

Run with::

    python examples/forgery_attack_study.py

Reproduces the paper's §4.2.2 attack in miniature: the attacker holds a
stolen (read-only) watermarked model, invents a fake signature, and
asks a solver for instances — close to real test points — on which the
model exhibits the fake signature's output pattern.  The study sweeps
the L∞ distortion budget ε and reports how large a trigger set the
attacker manages to forge, and how distorted it is.
"""

from repro import TrainerConfig, TriggerPolicy, Watermarker, random_signature
from repro.attacks import forge_trigger_set, forgery_distortion
from repro.datasets import mnist26_like
from repro.experiments import format_table
from repro.model_selection import train_test_split


def main() -> None:
    dataset = mnist26_like(n_samples=420, random_state=30)
    X_train, X_test, y_train, y_test = train_test_split(
        dataset.X, dataset.y, test_size=0.3, random_state=31
    )

    # The victim's watermarked model.
    model = Watermarker(
        signature=random_signature(m=16, ones_fraction=0.5, random_state=32),
        trigger=TriggerPolicy(size=6),
        trainer=TrainerConfig(
            base_params={"max_depth": 10}, tree_feature_fraction=0.35
        ),
        random_state=33,
    ).fit(X_train, y_train)
    print(f"victim model: {model.ensemble.n_trees_} trees, "
          f"{model.ensemble.total_leaves()} leaves, "
          f"original trigger size {model.trigger.size}\n")

    # The attacker's fake signature.
    fake_signature = random_signature(m=16, ones_fraction=0.5, random_state=34)

    rows = []
    for epsilon in (0.05, 0.1, 0.2, 0.3, 0.5, 0.7):
        result = forge_trigger_set(
            model.ensemble,
            fake_signature,
            X_test,
            y_test,
            epsilon=epsilon,
            target_size=model.trigger.size,
            max_instances=40,
            random_state=35,
        )
        distortion = forgery_distortion(result, X_test)
        rows.append(
            [
                epsilon,
                f"{result.n_forged}/{model.trigger.size}",
                result.statuses.get("unsat", 0),
                distortion["mean_linf"],
                distortion["mean_l2"],
                f"{result.elapsed_seconds:.2f}s",
            ]
        )
    print(
        format_table(
            ["eps", "forged/needed", "#unsat", "mean Linf", "mean L2", "time"],
            rows,
        )
    )
    print(
        "\nReading: at small eps the solver proves most instances UNSAT — the\n"
        "attacker cannot forge a trigger set without large, detectable\n"
        "distortions, which is the paper's forgery-robustness claim."
    )


if __name__ == "__main__":
    main()
