"""Two extensions in one scenario: multi-class watermarking and
minimum-distortion forgery analysis.

Run with::

    python examples/multiclass_and_min_distortion.py

Part 1 follows the paper's remark that multi-class tasks reduce to
binary ones: a three-class problem is watermarked class-by-class
(one signature per one-vs-rest forest) and verified per class.

Part 2 asks the forgery question quantitatively: for a fake signature,
*how much* L∞ distortion does the cheapest forged instance need?  The
library answers exactly via binary search over ε with the SMT solver
as the oracle.
"""

import numpy as np

from repro.core import random_signature, watermark
from repro.core.multiclass import verify_multiclass_ownership, watermark_multiclass
from repro.datasets import breast_cancer_like
from repro.experiments import format_table
from repro.model_selection import train_test_split
from repro.solver import minimal_forgery_distortion, required_labels


def multiclass_part() -> None:
    print("=== Part 1: multi-class watermarking (one signature per class)")
    rng = np.random.default_rng(60)
    centers = np.array([[0.2, 0.2, 0.5], [0.8, 0.2, 0.5], [0.5, 0.8, 0.5]])
    labels = rng.integers(0, 3, size=360)
    X = np.clip(centers[labels] + rng.normal(scale=0.08, size=(360, 3)), 0, 1)
    y = labels.astype(np.int64)

    model = watermark_multiclass(
        X, y, m=8, trigger_size=5, base_params={"max_depth": 7}, random_state=61
    )
    print(f"classes            : {model.classes}")
    print(f"effective signature: {model.total_signature_bits()} bits "
          f"({len(model.classes)} forests x 8)")
    print(f"accuracy           : {model.ensemble.score(X, y):.3f}")
    reports = verify_multiclass_ownership(model.ensemble, model)
    for label, report in sorted(reports.items()):
        print(f"  class {label}: {report.summary()}")
    print()


def min_distortion_part() -> None:
    print("=== Part 2: minimum forgery distortion per test instance")
    dataset = breast_cancer_like(400, random_state=62)
    X_train, X_test, y_train, y_test = train_test_split(
        dataset.X, dataset.y, test_size=0.3, random_state=63
    )
    victim = watermark(
        X_train,
        y_train,
        random_signature(m=12, ones_fraction=0.5, random_state=64),
        trigger_size=6,
        base_params={"max_depth": 8},
        random_state=65,
    )
    rows = []
    # Two fake signatures: many patterns are jointly unsatisfiable no
    # matter the distortion; satisfiable ones still need large eps.
    for name, seed in (("sig A", 69), ("sig B", 66)):
        fake = random_signature(m=12, ones_fraction=0.5, random_state=seed)
        for row in range(5):
            result = minimal_forgery_distortion(
                roots=victim.ensemble.roots(),
                required=required_labels(fake, int(y_test[row])),
                center=X_test[row],
                n_features=X_test.shape[1],
                tolerance=0.005,
            )
            rows.append(
                [
                    name,
                    row,
                    "yes" if result.feasible else "no (UNSAT anywhere)",
                    f"{result.epsilon:.3f}" if result.feasible else "-",
                    result.solver_calls,
                ]
            )
    print(format_table(
        ["fake signature", "test instance", "forgeable", "min eps", "solver calls"],
        rows,
    ))
    print(
        "\nReading: many fake patterns admit no instance at all; the rest\n"
        "need the listed L∞ distortion at minimum — evidence a judge can\n"
        "use to dismiss a forged trigger set."
    )


if __name__ == "__main__":
    multiclass_part()
    min_distortion_part()
