"""Multi-bit owner signatures.

The watermark is *multi-bit*: it embeds a binary signature ``σ`` of the
model owner into the ensemble's behaviour.  Bit ``σ_i`` dictates whether
tree ``i`` must classify the whole trigger set correctly (``0``) or
misclassify all of it (``1``).

Besides uniformly random signatures (what the paper's experiments use),
this module offers a deterministic codec from an owner identity string
to a signature, so a real deployment can tie the signature to a legal
identity instead of a random bitstring.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from .._validation import check_random_state
from ..exceptions import ValidationError

__all__ = ["Signature", "random_signature", "signature_from_identity"]


@dataclass(frozen=True)
class Signature:
    """An immutable bit string of length ``m`` (the ensemble size)."""

    bits: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.bits) == 0:
            raise ValidationError("a signature must contain at least one bit")
        if any(bit not in (0, 1) for bit in self.bits):
            raise ValidationError("signature bits must be 0 or 1")

    # -- constructors ---------------------------------------------------

    @classmethod
    def from_iterable(cls, bits) -> "Signature":
        """Build from any iterable of 0/1 integers."""
        return cls(bits=tuple(int(bit) for bit in bits))

    @classmethod
    def from_string(cls, text: str) -> "Signature":
        """Build from a string like ``"0110"``."""
        if not text or any(ch not in "01" for ch in text):
            raise ValidationError(f"signature string must be non-empty 0/1, got {text!r}")
        return cls(bits=tuple(int(ch) for ch in text))

    # -- views ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.bits)

    def __iter__(self):
        return iter(self.bits)

    def __getitem__(self, index: int) -> int:
        return self.bits[index]

    def to_string(self) -> str:
        """Render as a 0/1 string."""
        return "".join(str(bit) for bit in self.bits)

    def as_array(self) -> np.ndarray:
        """Bits as an int64 numpy array."""
        return np.array(self.bits, dtype=np.int64)

    @property
    def n_zeros(self) -> int:
        """Number of bits set to 0 (``m'`` in the paper: trees forced correct)."""
        return len(self.bits) - sum(self.bits)

    @property
    def n_ones(self) -> int:
        """Number of bits set to 1 (trees forced to misclassify)."""
        return sum(self.bits)

    def zero_positions(self) -> list[int]:
        """Indices of trees drawn from ``T0``."""
        return [i for i, bit in enumerate(self.bits) if bit == 0]

    def one_positions(self) -> list[int]:
        """Indices of trees drawn from ``T1``."""
        return [i for i, bit in enumerate(self.bits) if bit == 1]

    def hamming_distance(self, other: "Signature") -> int:
        """Number of positions where two equal-length signatures differ."""
        if len(other) != len(self):
            raise ValidationError(
                f"signatures have different lengths: {len(self)} != {len(other)}"
            )
        return sum(a != b for a, b in zip(self.bits, other.bits))


def random_signature(m: int, ones_fraction: float = 0.5, random_state=None) -> Signature:
    """Draw a random signature with an exact number of 1-bits.

    ``ones_fraction`` is the fraction of bits set to 1 (rounded to the
    nearest count); the paper's experiments use 50% unless the fraction
    itself is the swept variable (Fig. 3b).
    """
    if m < 1:
        raise ValidationError(f"signature length must be >= 1, got {m}")
    if not 0.0 <= ones_fraction <= 1.0:
        raise ValidationError(f"ones_fraction must be in [0, 1], got {ones_fraction}")
    rng = check_random_state(random_state)
    n_ones = int(round(ones_fraction * m))
    bits = np.zeros(m, dtype=np.int64)
    positions = rng.choice(m, size=n_ones, replace=False)
    bits[positions] = 1
    return Signature.from_iterable(bits.tolist())


def signature_from_identity(identity: str, m: int) -> Signature:
    """Derive an ``m``-bit signature deterministically from an identity.

    SHA-256 is applied in counter mode until ``m`` bits are available,
    so the mapping is collision-resistant, reproducible in court, and
    independent of any RNG state.  The same identity always yields the
    same signature for a given ``m``.
    """
    if m < 1:
        raise ValidationError(f"signature length must be >= 1, got {m}")
    if not identity:
        raise ValidationError("identity must be a non-empty string")
    bits: list[int] = []
    counter = 0
    while len(bits) < m:
        digest = hashlib.sha256(f"{identity}|{counter}".encode("utf-8")).digest()
        for byte in digest:
            for shift in range(8):
                bits.append((byte >> shift) & 1)
                if len(bits) == m:
                    break
            if len(bits) == m:
                break
        counter += 1
    return Signature.from_iterable(bits)
