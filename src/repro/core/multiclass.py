"""Watermarking multi-class ensembles via binary decomposition.

The paper notes that "multi-class classification can be supported by
encoding it in terms of multiple binary classification tasks".  This
module realises that sentence end-to-end: a
:class:`~repro.ensemble.OneVsRestForest` is built from one *watermarked*
binary forest per class, each carrying its own signature bit-string and
trigger set.  Verification checks every per-class watermark; the
effective signature length is ``n_classes * m``, making coincidental
matches even less plausible than in the binary case.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_random_state, check_X_y
from ..ensemble.multiclass import OneVsRestForest
from ..exceptions import ValidationError
from .embedding import WatermarkedModel, watermark
from .signature import Signature, random_signature
from .verification import VerificationReport, verify_ownership

__all__ = [
    "MulticlassWatermarkedModel",
    "watermark_multiclass",
    "verify_multiclass_ownership",
]


@dataclass
class MulticlassWatermarkedModel:
    """A watermarked one-vs-rest ensemble plus its per-class secrets."""

    ensemble: OneVsRestForest
    per_class: dict[int, WatermarkedModel]

    @property
    def classes(self) -> list[int]:
        return sorted(self.per_class)

    def signatures(self) -> dict[int, Signature]:
        """Per-class signatures (the multi-class owner secret)."""
        return {label: model.signature for label, model in self.per_class.items()}

    def total_signature_bits(self) -> int:
        """Effective signature length across all one-vs-rest forests."""
        return sum(len(model.signature) for model in self.per_class.values())


def watermark_multiclass(
    X_train,
    y_train,
    m: int,
    trigger_size: int,
    signatures: dict[int, Signature] | None = None,
    ones_fraction: float = 0.5,
    base_params: dict | None = None,
    tree_feature_fraction: float = 0.7,
    escalation_factor: float = 2.0,
    max_rounds: int = 60,
    random_state=None,
) -> MulticlassWatermarkedModel:
    """Watermark a multi-class problem class-by-class.

    Parameters
    ----------
    X_train, y_train:
        Training data with integer labels (two or more classes).
    m:
        Trees per one-vs-rest forest (= per-class signature length).
    trigger_size:
        Trigger instances per class forest.
    signatures:
        Optional mapping class → :class:`Signature` of length ``m``;
        missing classes get fresh random signatures.
    base_params:
        Forest hyper-parameters (``None`` runs a grid search per class,
        exactly as the binary pipeline does).

    Returns
    -------
    MulticlassWatermarkedModel
    """
    X_train, y_train = check_X_y(X_train, y_train)
    classes = np.unique(np.asarray(y_train, dtype=np.int64))
    if classes.shape[0] < 2:
        raise ValidationError("y_train must contain at least two classes")
    rng = check_random_state(random_state)
    signatures = dict(signatures or {})

    per_class: dict[int, WatermarkedModel] = {}
    forests: dict[int, object] = {}
    for label in classes:
        signature = signatures.get(int(label))
        if signature is None:
            signature = random_signature(
                m, ones_fraction=ones_fraction, random_state=int(rng.integers(2**31 - 1))
            )
        elif len(signature) != m:
            raise ValidationError(
                f"signature for class {label} has {len(signature)} bits, expected {m}"
            )
        binary_y = np.where(np.asarray(y_train) == label, 1, -1)
        model = watermark(
            X_train,
            binary_y,
            signature,
            trigger_size=trigger_size,
            base_params=base_params,
            tree_feature_fraction=tree_feature_fraction,
            escalation_factor=escalation_factor,
            max_rounds=max_rounds,
            random_state=int(rng.integers(2**31 - 1)),
        )
        per_class[int(label)] = model
        forests[int(label)] = model.ensemble

    ensemble = OneVsRestForest()
    ensemble.classes_ = classes
    ensemble.forests_ = forests  # type: ignore[assignment]
    return MulticlassWatermarkedModel(ensemble=ensemble, per_class=per_class)


def verify_multiclass_ownership(
    suspect: OneVsRestForest,
    owner_model: MulticlassWatermarkedModel,
    mode: str = "strict",
) -> dict[int, VerificationReport]:
    """Verify every per-class watermark against a suspect OvR ensemble.

    Returns one report per class; the overall claim is accepted iff all
    of them are (callers typically require unanimity, which multiplies
    the per-class false-match probabilities together).
    """
    if suspect.forests_ is None:
        raise ValidationError("suspect model is not fitted")
    reports: dict[int, VerificationReport] = {}
    for label, model in owner_model.per_class.items():
        if label not in suspect.forests_:
            raise ValidationError(f"suspect model has no forest for class {label}")
        reports[label] = verify_ownership(
            suspect.forests_[label],
            model.signature,
            model.trigger.X,
            model.trigger.y,
            mode=mode,
        )
    return reports
