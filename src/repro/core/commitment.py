"""Cryptographic commitments to watermark secrets.

A practical gap in trigger-set watermarking disputes: Bob can argue
that Alice constructed her "secret" *after* observing his model.  The
fix is standard — Alice publishes a hiding, binding **commitment** to
``(signature, trigger set)`` at deployment time (e.g. in a timestamped
registry); during the dispute she reveals the secret and the judge
checks it against the commitment *before* running verification.

The scheme is hash-based: ``commit = SHA-256(salt || canonical-secret)``
with a random 32-byte salt.  Hiding comes from the salt, binding from
collision resistance.  This module is an extension of ours; the paper
does not discuss commitment, but its protocol slots it in naturally.
"""

from __future__ import annotations

import hashlib
import json
import secrets
from dataclasses import dataclass

import numpy as np

from ..exceptions import ValidationError, VerificationError
from .protocol import WatermarkSecret

__all__ = ["SecretCommitment", "commit_secret", "verify_commitment"]

_SALT_BYTES = 32


def _canonical_bytes(secret: WatermarkSecret) -> bytes:
    """A canonical, reproducible byte encoding of a secret.

    Floats are serialised through ``float.hex`` so the encoding is
    exact and platform-independent (JSON float formatting is not).
    """
    payload = {
        "signature": secret.signature.to_string(),
        "trigger_X": [[float(v).hex() for v in row] for row in secret.trigger_X],
        "trigger_y": [int(v) for v in secret.trigger_y],
    }
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")


@dataclass(frozen=True)
class SecretCommitment:
    """A published commitment: the digest is public, the salt private
    until reveal time."""

    digest: str
    salt: str

    def public_part(self) -> str:
        """What gets published/timestamped at deployment time."""
        return self.digest


def commit_secret(secret: WatermarkSecret, salt: bytes | None = None) -> SecretCommitment:
    """Commit to a watermark secret.

    Parameters
    ----------
    salt:
        Optional fixed salt (32 bytes) for reproducibility in tests;
        production callers should leave it ``None`` for a random salt.
    """
    if salt is None:
        # repro: allow[RPR002] the commitment's hiding property *requires* a fresh random salt (a deterministic salt would let Bob brute-force the secret from the digest); tests pass salt= explicitly
        salt = secrets.token_bytes(_SALT_BYTES)
    if len(salt) != _SALT_BYTES:
        raise ValidationError(f"salt must be {_SALT_BYTES} bytes, got {len(salt)}")
    digest = hashlib.sha256(salt + _canonical_bytes(secret)).hexdigest()
    return SecretCommitment(digest=digest, salt=salt.hex())


def verify_commitment(commitment_digest: str, secret: WatermarkSecret, salt_hex: str) -> bool:
    """Judge-side check: does the revealed (secret, salt) open the
    published digest?

    Raises :class:`VerificationError` on malformed inputs, returns
    ``False`` on a genuine mismatch (a failed reveal).
    """
    try:
        salt = bytes.fromhex(salt_hex)
    except ValueError as exc:
        raise VerificationError(f"salt is not valid hex: {exc}") from exc
    if len(salt) != _SALT_BYTES:
        raise VerificationError(f"salt must be {_SALT_BYTES} bytes, got {len(salt)}")
    recomputed = hashlib.sha256(salt + _canonical_bytes(secret)).hexdigest()
    return recomputed == commitment_digest
