"""The Alice / Bob / Charlie ownership-dispute protocol.

The paper's verification story: Alice watermarked her model; Bob is
suspected of using it illegitimately; Charlie is the legal authority.
Alice hands Charlie her signature ``σ``, the trigger set ``D_trigger``
and a test set ``D_test ⊇ D_trigger``.  Charlie feeds the *whole* test
set to Bob's model — disguising which queries are triggers, which is
what defeats suppression — extracts the per-tree predictions on the
trigger rows, and checks the signature pattern.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_X, check_X_y
from ..exceptions import ValidationError, VerificationError
from .signature import Signature
from .verification import VerificationReport, match_signature

__all__ = ["WatermarkSecret", "OwnershipClaim", "Judge"]


@dataclass(frozen=True)
class WatermarkSecret:
    """What the model owner keeps private: signature + trigger set."""

    signature: Signature
    trigger_X: np.ndarray
    trigger_y: np.ndarray

    def __post_init__(self) -> None:
        if self.trigger_X.ndim != 2 or self.trigger_y.ndim != 1:
            raise ValidationError("trigger_X must be 2-D and trigger_y 1-D")
        if self.trigger_X.shape[0] != self.trigger_y.shape[0]:
            raise ValidationError("trigger_X and trigger_y must have equal length")


@dataclass(frozen=True)
class OwnershipClaim:
    """A claim presented to the judge.

    ``X_test``/``y_test`` is the disclosed test set which must contain
    every trigger instance (``D_trigger ⊆ D_test``), hiding the triggers
    among ordinary queries.
    """

    claimant: str
    secret: WatermarkSecret
    X_test: np.ndarray
    y_test: np.ndarray


def _locate_rows(needles: np.ndarray, haystack: np.ndarray) -> np.ndarray:
    """Index of each ``needles`` row inside ``haystack`` (exact match).

    Raises :class:`VerificationError` when a row is missing — the
    claimant failed the ``D_trigger ⊆ D_test`` requirement.
    """
    positions = np.empty(needles.shape[0], dtype=np.int64)
    for row_number, row in enumerate(needles):
        hits = np.flatnonzero((haystack == row[None, :]).all(axis=1))
        if hits.size == 0:
            raise VerificationError(
                f"trigger instance #{row_number} does not appear in the disclosed "
                f"test set; the protocol requires D_trigger ⊆ D_test"
            )
        positions[row_number] = hits[0]
    return positions


class Judge:
    """The neutral verifier (Charlie).

    The judge sees only the suspect model's black-box per-tree
    prediction interface, never its parameters.
    """

    def __init__(self, mode: str = "strict") -> None:
        if mode not in ("strict", "iff"):
            raise ValidationError(f"mode must be 'strict' or 'iff', got {mode!r}")
        self.mode = mode

    def verify_claim(self, suspect_model, claim: OwnershipClaim) -> VerificationReport:
        """Run the verification protocol for one claim.

        Parameters
        ----------
        suspect_model:
            Any object exposing ``predict_all(X) -> (n_trees, n)``; the
            judge queries it once with the full disclosed test set.
        claim:
            The claimant's signature, trigger set and covering test set.

        Returns
        -------
        VerificationReport
            ``accepted=True`` establishes the claimed ownership.
        """
        X_test, _y_test = check_X_y(claim.X_test, claim.y_test)
        trigger_X = check_X(claim.secret.trigger_X, name="trigger_X")
        positions = _locate_rows(trigger_X, X_test)

        # Single batched query over the whole test set: the suspect
        # cannot tell trigger queries apart from ordinary ones.
        all_predictions = np.asarray(suspect_model.predict_all(X_test))
        if all_predictions.ndim != 2 or all_predictions.shape[1] != X_test.shape[0]:
            raise VerificationError(
                "suspect model's predict_all must return (n_trees, n_samples) "
                f"for the disclosed test set; got shape {all_predictions.shape}"
            )
        trigger_predictions = all_predictions[:, positions]
        return match_signature(
            trigger_predictions,
            claim.secret.trigger_y,
            claim.secret.signature,
            mode=self.mode,
        )
