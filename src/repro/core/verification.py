"""Black-box watermark verification.

The judge queries the suspect model only through its per-tree prediction
interface and checks the signature pattern on the trigger set: tree
``i`` must classify every trigger instance correctly iff ``σ_i = 0``.

Two match semantics are provided:

- ``"strict"`` — bit 1 trees must misclassify *all* trigger instances
  (what the embedding actually enforces, hence the default);
- ``"iff"`` — bit 1 trees must merely not be perfect on the trigger set
  (the literal condition in the paper's verification paragraph).

A strict match is also an iff match, so ``"strict"`` acceptance implies
``"iff"`` acceptance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ValidationError
from .signature import Signature

__all__ = [
    "VerificationReport",
    "match_signature",
    "verify_ownership",
    "false_claim_log10_probability",
]


@dataclass
class VerificationReport:
    """Outcome of checking one ownership claim.

    ``per_tree_accuracy[i]`` is tree ``i``'s accuracy over the trigger
    set; ``matches[i]`` says whether tree ``i`` behaved as bit ``σ_i``
    requires under the chosen ``mode``.  ``recovered_bits`` is the
    pattern actually observed (0 = perfect on triggers, 1 = all wrong,
    ``None`` = neither), useful for diagnosing partial matches.
    """

    accepted: bool
    mode: str
    per_tree_accuracy: np.ndarray
    matches: np.ndarray
    recovered_bits: list[int | None]
    n_matching: int
    n_trees: int

    def summary(self) -> str:
        """One-line human-readable verdict."""
        verdict = "ACCEPTED" if self.accepted else "REJECTED"
        return (
            f"{verdict} ({self.mode}): {self.n_matching}/{self.n_trees} trees "
            f"match the claimed signature"
        )


def match_signature(
    per_tree_predictions: np.ndarray,
    trigger_y: np.ndarray,
    signature: Signature,
    mode: str = "strict",
) -> VerificationReport:
    """Compare observed per-tree trigger behaviour against a signature.

    Parameters
    ----------
    per_tree_predictions:
        Array of shape ``(n_trees, k)``: the suspect model's per-tree
        predictions on the ``k`` trigger instances.
    trigger_y:
        True trigger labels (length ``k``).
    signature:
        The claimed signature (length must equal ``n_trees``).
    mode:
        ``"strict"`` or ``"iff"`` (see module docstring).
    """
    per_tree_predictions = np.asarray(per_tree_predictions)
    trigger_y = np.asarray(trigger_y)
    if per_tree_predictions.ndim != 2:
        raise ValidationError(
            f"per_tree_predictions must be 2-D, got shape {per_tree_predictions.shape}"
        )
    n_trees, k = per_tree_predictions.shape
    if k < 1:
        # With zero trigger instances the boolean reductions below are
        # vacuously true for every tree — any signature would "match".
        raise ValidationError("per_tree_predictions must cover at least one trigger instance")
    if trigger_y.shape != (k,):
        raise ValidationError(
            f"trigger_y must have shape ({k},), got {trigger_y.shape}"
        )
    if len(signature) != n_trees:
        raise ValidationError(
            f"signature length {len(signature)} != number of trees {n_trees}"
        )
    if mode not in ("strict", "iff"):
        raise ValidationError(f"mode must be 'strict' or 'iff', got {mode!r}")

    correct = per_tree_predictions == trigger_y[None, :]
    # Exact boolean reductions decide the match; ``per_tree_accuracy``
    # is kept for reporting only (a float-equality test on the mean
    # would make an acceptance decision hinge on rounding).
    per_tree_accuracy = correct.mean(axis=1)
    all_correct = correct.all(axis=1)
    all_wrong = ~correct.any(axis=1)

    bits = signature.as_array()
    if mode == "strict":
        matches = np.where(bits == 0, all_correct, all_wrong)
    else:
        matches = np.where(bits == 0, all_correct, ~all_correct)

    recovered: list[int | None] = [
        0 if all_correct[i] else 1 if all_wrong[i] else None for i in range(n_trees)
    ]
    return VerificationReport(
        accepted=bool(matches.all()),
        mode=mode,
        per_tree_accuracy=per_tree_accuracy,
        matches=matches,
        recovered_bits=recovered,
        n_matching=int(matches.sum()),
        n_trees=n_trees,
    )


def verify_ownership(model, signature: Signature, trigger_X, trigger_y, mode: str = "strict") -> VerificationReport:
    """Convenience wrapper: query ``model.predict_all`` and match.

    ``model`` is anything exposing ``predict_all(X) -> (n_trees, n)``;
    in a real dispute the judge calls this on the *suspect's* deployed
    model, not on an artefact supplied by the claimant.

    When the model is one of this library's ensembles, the query runs
    through its compiled flat-array engine whenever one is cached (see
    :mod:`repro.ensemble.compiled`); trigger sets alone are too small to
    trigger lazy compilation, so callers that verify repeatedly should
    ``model.compile()`` once up front.
    """
    predictions = model.predict_all(np.asarray(trigger_X, dtype=np.float64))
    return match_signature(predictions, trigger_y, signature, mode=mode)


def false_claim_log10_probability(
    test_accuracy: float, trigger_size: int, signature: Signature, mode: str = "strict"
) -> float:
    """Upper-bound estimate (log10) of a coincidental signature match.

    Model the suspect ensemble's trees as independent classifiers with
    accuracy ``a`` on instances drawn from the data distribution (the
    trigger set is such a draw).  A tree is then perfect on ``k``
    triggers with probability ``a^k`` and all-wrong with ``(1-a)^k``,
    so a *non-watermarked* model matches an ``m``-bit signature with
    probability::

        strict:  a^(k·m0) · (1-a)^(k·m1)
        iff:     a^(k·m0) · (1 - a^k)^m1

    Returns ``log10`` of that probability — the number of decimal orders
    of magnitude by which a coincidental match is implausible.
    """
    if not 0.0 < test_accuracy < 1.0:
        raise ValidationError(
            f"test_accuracy must be in (0, 1), got {test_accuracy}"
        )
    if trigger_size < 1:
        raise ValidationError(f"trigger_size must be >= 1, got {trigger_size}")
    if mode not in ("strict", "iff"):
        raise ValidationError(f"mode must be 'strict' or 'iff', got {mode!r}")

    k = trigger_size
    log_a = np.log10(test_accuracy)
    log_one_minus_a = np.log10(1.0 - test_accuracy)
    total = signature.n_zeros * k * log_a
    if mode == "strict":
        total += signature.n_ones * k * log_one_minus_a
    else:
        miss_probability = 1.0 - test_accuracy**k
        total += signature.n_ones * np.log10(max(miss_probability, 1e-300))
    return float(total)
