"""Watermarking for decision-tree ensembles — the paper's contribution.

Typical owner-side flow::

    from repro.core import random_signature, watermark

    sigma = random_signature(m=64, ones_fraction=0.5, random_state=7)
    wm = watermark(X_train, y_train, sigma, trigger_size=32, random_state=7)
    wm.ensemble.predict(X_test)          # deploy like any forest
    secret = (wm.signature, wm.trigger)  # keep private

Judge-side flow (black-box, suppression-resistant)::

    from repro.core import Judge, OwnershipClaim, WatermarkSecret

    claim = OwnershipClaim("alice", WatermarkSecret(sigma, trig_X, trig_y),
                           X_test, y_test)
    report = Judge().verify_claim(suspect_model, claim)
    report.accepted
"""

from .adjustment import AdjustedHyperParameters, adjust_hyperparameters
from .commitment import SecretCommitment, commit_secret, verify_commitment
from .multiclass import (
    MulticlassWatermarkedModel,
    verify_multiclass_ownership,
    watermark_multiclass,
)
from .boosted import (
    BoostedWatermarkedModel,
    required_directions,
    verify_boosted_ownership,
    watermark_boosted,
)
from .embedding import (
    EmbeddingReport,
    WatermarkedModel,
    train_standard_forest,
    train_with_trigger,
    watermark,
)
from .protocol import Judge, OwnershipClaim, WatermarkSecret
from .signature import Signature, random_signature, signature_from_identity
from .trigger import TriggerSet, sample_trigger_set
from .verification import (
    VerificationReport,
    false_claim_log10_probability,
    match_signature,
    verify_ownership,
)

__all__ = [
    "AdjustedHyperParameters",
    "BoostedWatermarkedModel",
    "EmbeddingReport",
    "Judge",
    "MulticlassWatermarkedModel",
    "SecretCommitment",
    "OwnershipClaim",
    "Signature",
    "TriggerSet",
    "VerificationReport",
    "WatermarkSecret",
    "WatermarkedModel",
    "adjust_hyperparameters",
    "commit_secret",
    "false_claim_log10_probability",
    "match_signature",
    "random_signature",
    "required_directions",
    "sample_trigger_set",
    "signature_from_identity",
    "train_standard_forest",
    "train_with_trigger",
    "verify_boosted_ownership",
    "verify_commitment",
    "verify_multiclass_ownership",
    "verify_ownership",
    "watermark",
    "watermark_boosted",
    "watermark_multiclass",
]
