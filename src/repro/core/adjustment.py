"""The paper's ``Adjust`` heuristic for hiding the watermark.

Trees forced to *misclassify* the trigger set (``T1``) tend to overfit
and grow larger than honestly-trained trees, which would leak the
signature through structural statistics.  The heuristic:

1. train a standard ensemble with the grid-searched hyper-parameters;
2. measure the mean and standard deviation of per-tree depth and number
   of leaves;
3. cap both at ``mean − std`` (forcing the structure *below* average),

so ``T0`` and ``T1`` trees end up structurally similar, defeating the
detection strategies evaluated in Table 2.

The probe ensemble trains on the same ``X_train`` object the embedding
pipeline threads everywhere, so it reuses the dataset's cached presort
(:mod:`repro.trees.presort`) rather than re-sorting — ``Adjust`` adds
one forest's worth of split search, not one forest's worth of sorting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_random_state, check_X_y
from ..ensemble.forest import RandomForestClassifier

__all__ = ["AdjustedHyperParameters", "adjust_hyperparameters"]

# An ensemble must keep at least this much structure after adjustment,
# otherwise trees degenerate to stumps and cannot absorb the trigger
# behaviour at all.
_MIN_DEPTH = 2
_MIN_LEAVES = 4


@dataclass(frozen=True)
class AdjustedHyperParameters:
    """Outcome of the ``Adjust`` heuristic.

    ``max_depth``/``max_leaf_nodes`` are the caps to train ``T0`` and
    ``T1`` with; the remaining fields record the structural statistics
    of the probe ensemble for diagnostics and the ablation benchmark.
    """

    max_depth: int
    max_leaf_nodes: int
    probe_depth_mean: float
    probe_depth_std: float
    probe_leaves_mean: float
    probe_leaves_std: float


def adjust_hyperparameters(
    X_train,
    y_train,
    n_estimators: int,
    base_params: dict,
    tree_feature_fraction: float = 0.7,
    n_jobs: int | None = None,
    random_state=None,
) -> AdjustedHyperParameters:
    """Run the ``Adjust`` heuristic.

    Parameters
    ----------
    X_train, y_train:
        The owner's training data.
    n_estimators:
        Ensemble size ``m``.
    base_params:
        Hyper-parameters selected by grid search (e.g. ``max_depth``,
        ``min_samples_leaf``) used to train the probe ensemble.
    tree_feature_fraction, n_jobs, random_state:
        Forwarded to the probe forest.

    Returns
    -------
    AdjustedHyperParameters
        Caps ``mean − std`` (floored, with small structural minimums so
        the capped trees remain trainable).
    """
    X_train, y_train = check_X_y(X_train, y_train)
    rng = check_random_state(random_state)

    probe = RandomForestClassifier(
        n_estimators=n_estimators,
        tree_feature_fraction=tree_feature_fraction,
        random_state=rng,
        n_jobs=n_jobs,
        **base_params,
    )
    probe.fit(X_train, y_train)
    structure = probe.structure()

    depth_mean = float(np.mean(structure["depth"]))
    depth_std = float(np.std(structure["depth"]))
    leaves_mean = float(np.mean(structure["n_leaves"]))
    leaves_std = float(np.std(structure["n_leaves"]))

    max_depth = max(_MIN_DEPTH, int(np.floor(depth_mean - depth_std)))
    max_leaf_nodes = max(_MIN_LEAVES, int(np.floor(leaves_mean - leaves_std)))

    return AdjustedHyperParameters(
        max_depth=max_depth,
        max_leaf_nodes=max_leaf_nodes,
        probe_depth_mean=depth_mean,
        probe_depth_std=depth_std,
        probe_leaves_mean=leaves_mean,
        probe_leaves_std=leaves_std,
    )
