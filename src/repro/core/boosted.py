"""Watermarking gradient-boosted ensembles (the paper's future work).

The paper closes by proposing to "generalize our watermarking scheme to
more advanced decision tree ensembles, such as those trained using
gradient boosting".  This module implements one natural generalisation,
clearly marked as *our extension* (it is not specified in the paper):

In a boosted ensemble the trees do not emit class labels, so the bit of
tree ``i`` is embedded in the **sign of its additive contribution** on
the trigger instances.  Stage ``i`` is trained on pseudo-residuals
computed from labels where every trigger instance carries its true
label if ``σ_i = 0`` and the flipped label if ``σ_i = 1``; trigger
samples are re-weighted (same escalation loop as the forest scheme)
until every stage's contribution sign matches the required direction on
every trigger instance.

Verification reads ``stage_contributions`` — the boosted analogue of
``predict_all`` — and checks, per stage, that the contribution pushes
each trigger instance toward the label the signature prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import (
    check_binary_labels,
    check_random_state,
    check_X_y,
)
from ..ensemble.boosting import GradientBoostingClassifier
from ..exceptions import ConvergenceError, ValidationError
from .signature import Signature
from .trigger import TriggerSet, sample_trigger_set

__all__ = [
    "BoostedWatermarkedModel",
    "watermark_boosted",
    "verify_boosted_ownership",
    "required_directions",
]


@dataclass
class BoostedWatermarkedModel:
    """Watermarked GBDT plus its secret and embedding diagnostics."""

    ensemble: GradientBoostingClassifier
    signature: Signature
    trigger: TriggerSet
    rounds: int
    final_trigger_weight: float


def required_directions(signature: Signature, trigger_y: np.ndarray) -> np.ndarray:
    """Sign each stage's contribution must have on each trigger instance.

    Shape ``(n_stages, k)``: ``+1`` means the stage must push the margin
    up (toward label ``+1``), ``-1`` down.  Stage ``i`` must push toward
    the true label when ``σ_i = 0`` and toward the flipped label when
    ``σ_i = 1``.
    """
    trigger_y = np.asarray(trigger_y)
    bits = signature.as_array()[:, None]  # (m, 1)
    return np.where(bits == 0, trigger_y[None, :], -trigger_y[None, :])


def _signs_match(
    model: GradientBoostingClassifier,
    trigger_X: np.ndarray,
    directions: np.ndarray,
) -> np.ndarray:
    """Per-stage boolean: do all trigger contributions have the right sign?

    A zero contribution counts as a mismatch — the stage failed to take
    a stance on that trigger instance.
    """
    contributions = model.stage_contributions(trigger_X)
    return ((np.sign(contributions) == directions).all(axis=1))


def watermark_boosted(
    X_train,
    y_train,
    signature: Signature,
    trigger_size: int,
    learning_rate: float = 0.3,
    max_depth: int = 4,
    weight_increment: float = 2.0,
    escalation_factor: float = 2.0,
    max_rounds: int = 12,
    random_state=None,
) -> BoostedWatermarkedModel:
    """Embed a signature into a gradient-boosted ensemble.

    The ensemble has one boosting stage per signature bit.  Trigger
    samples are re-weighted until every stage's contribution sign
    matches :func:`required_directions` on every trigger instance.

    Raises
    ------
    ConvergenceError
        If the sign pattern cannot be enforced within ``max_rounds``
        retrainings (e.g. trees too shallow to isolate the triggers).
    """
    X_train, y_train = check_X_y(X_train, y_train)
    y_train = check_binary_labels(y_train)
    rng = check_random_state(random_state)
    if trigger_size > X_train.shape[0] // 2:
        raise ValidationError(
            f"trigger_size={trigger_size} is not small relative to the training "
            f"set ({X_train.shape[0]} samples)"
        )

    trigger = sample_trigger_set(X_train, y_train, trigger_size, random_state=rng)
    directions = required_directions(signature, trigger.y)
    bits = signature.as_array()

    def stage_labels(stage: int, y: np.ndarray) -> np.ndarray:
        if bits[stage] == 1:
            y = y.copy()
            y[trigger.indices] = -y[trigger.indices]
        return y

    weights = np.ones(X_train.shape[0], dtype=np.float64)
    increment = float(weight_increment)
    rounds = 0
    while True:
        model = GradientBoostingClassifier(
            n_estimators=len(signature),
            learning_rate=learning_rate,
            max_depth=max_depth,
            random_state=int(rng.integers(2**31 - 1)),
        )
        model.fit(
            X_train,
            y_train,
            sample_weight=weights,
            stage_label_overrides=stage_labels,
        )
        if _signs_match(model, trigger.X, directions).all():
            return BoostedWatermarkedModel(
                ensemble=model,
                signature=signature,
                trigger=trigger,
                rounds=rounds,
                final_trigger_weight=float(weights[trigger.indices].max()),
            )
        rounds += 1
        if rounds >= max_rounds:
            matched = int(_signs_match(model, trigger.X, directions).sum())
            raise ConvergenceError(
                f"boosted watermark embedding did not converge after {rounds} "
                f"rounds: {matched}/{len(signature)} stages match. Consider a "
                f"larger max_depth or learning_rate.",
                rounds=rounds,
            )
        weights[trigger.indices] += increment
        increment *= escalation_factor


def verify_boosted_ownership(
    model, signature: Signature, trigger_X, trigger_y
) -> tuple[bool, np.ndarray]:
    """Black-box verification against a boosted suspect model.

    ``model`` must expose ``stage_contributions(X)``.  Returns
    ``(accepted, per_stage_matches)``.
    """
    trigger_X = np.asarray(trigger_X, dtype=np.float64)
    directions = required_directions(signature, np.asarray(trigger_y))
    contributions = np.asarray(model.stage_contributions(trigger_X))
    if contributions.shape[0] != len(signature):
        raise ValidationError(
            f"model has {contributions.shape[0]} stages but the signature has "
            f"{len(signature)} bits"
        )
    matches = (np.sign(contributions) == directions).all(axis=1)
    return bool(matches.all()), matches
