"""Trigger-set sampling and label flipping.

The trigger set ``D_trigger`` is a small random subset of the training
set (``k ≪ |D_train|``).  Sampling triggers *from the training
distribution* is what makes the scheme robust against suppression: an
attacker observing verification queries cannot tell trigger instances
from ordinary test instances.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_binary_labels, check_random_state, check_X_y
from ..exceptions import ValidationError

__all__ = ["TriggerSet", "sample_trigger_set"]


@dataclass(frozen=True)
class TriggerSet:
    """A trigger set with provenance into the owner's training data.

    ``indices`` point into the training set the triggers were sampled
    from; ``X``/``y`` are the instances and their *true* labels.
    ``flipped_y`` are the labels the ``T1`` trees are forced to predict.
    """

    indices: np.ndarray
    X: np.ndarray
    y: np.ndarray

    def __post_init__(self) -> None:
        if self.X.shape[0] != self.y.shape[0] or self.X.shape[0] != self.indices.shape[0]:
            raise ValidationError("trigger indices, X and y must have equal length")
        if self.X.shape[0] == 0:
            raise ValidationError("a trigger set must contain at least one instance")

    @property
    def size(self) -> int:
        """Number of trigger instances ``k``."""
        return int(self.X.shape[0])

    @property
    def flipped_y(self) -> np.ndarray:
        """Labels with the sign flipped (the paper's ``D'_trigger`` labels)."""
        return -self.y

    def membership_mask(self, n_train: int) -> np.ndarray:
        """Boolean mask of length ``n_train`` marking trigger rows."""
        mask = np.zeros(n_train, dtype=bool)
        mask[self.indices] = True
        return mask


def sample_trigger_set(X_train, y_train, k: int, random_state=None) -> TriggerSet:
    """Uniformly sample ``k`` training instances as the trigger set.

    Labels must be binary ±1 (the scheme flips trigger labels by
    negation).  Sampling is without replacement.
    """
    X_train, y_train = check_X_y(X_train, y_train)
    y_train = check_binary_labels(y_train)
    if not 1 <= k <= X_train.shape[0]:
        raise ValidationError(
            f"trigger size k must be in [1, {X_train.shape[0]}], got {k}"
        )
    rng = check_random_state(random_state)
    indices = np.sort(rng.choice(X_train.shape[0], size=k, replace=False))
    return TriggerSet(indices=indices, X=X_train[indices].copy(), y=y_train[indices].copy())
