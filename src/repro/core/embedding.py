"""Watermark creation — Algorithm 1 of the paper.

``train_with_trigger`` forces a set of trees to exhibit prescribed
behaviour on the trigger set by iterative sample re-weighting.  The
full pipeline — grid search, trigger sampling, the ``Adjust``
heuristic, training the two ensembles ``T0`` (trigger classified
correctly) and ``T1`` (trigger misclassified, via label flipping), and
interleaving their trees according to the owner's signature — lives in
:class:`repro.api.Watermarker`; the ``watermark`` function here is the
legacy keyword-pile shim over it (bitwise-identical output).

Embedding is the repo's training hot path, and three engine-level levers
keep it fast without changing what Algorithm 1 computes:

- **incremental re-weighting rounds** — trees that already satisfy the
  trigger constraint are kept across rounds and only the stubborn ones
  refit (valid because the forest has no bootstrap and trees are
  independent given their feature subspaces);
- **parallel tree fitting** — ``n_jobs`` fans tree fits out over a
  process pool, bitwise-deterministically thanks to per-tree seed
  streams;
- **presorted split search** — every retraining round changes only the
  sample weights, never ``X``, so the per-feature sort orders behind the
  default ``splitter="presorted"`` engine (see
  :mod:`repro.trees.presort`) are computed once and reused by ``T0``,
  ``T1``, every escalation round, every ``refit_trees`` call and the
  ``Adjust`` probe — trees still come out bit-for-bit identical to the
  node-local splitter's.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_random_state
from ..ensemble.forest import RandomForestClassifier
from ..exceptions import ConvergenceError, ValidationError
from .adjustment import AdjustedHyperParameters
from .signature import Signature
from .trigger import TriggerSet

__all__ = [
    "EmbeddingReport",
    "WatermarkedModel",
    "train_with_trigger",
    "watermark",
    "train_standard_forest",
]


@dataclass
class EmbeddingReport:
    """Diagnostics of one watermark-embedding run.

    ``rounds_t0``/``rounds_t1`` count the re-weighting rounds needed to
    converge (0 means the first ensemble already fitted the triggers);
    ``trigger_weight_*`` is the final weight given to trigger samples.
    """

    rounds_t0: int
    rounds_t1: int
    trigger_weight_t0: float
    trigger_weight_t1: float
    adjusted: AdjustedHyperParameters | None
    base_params: dict


@dataclass
class WatermarkedModel:
    """The output pair ⟨T, D_trigger⟩ of Algorithm 1, plus provenance.

    ``ensemble`` is the watermarked forest; ``signature`` and
    ``trigger`` together form the owner's secret; ``report`` records how
    the embedding went.
    """

    ensemble: RandomForestClassifier
    signature: Signature
    trigger: TriggerSet
    report: EmbeddingReport

    def save(self, path, format: str | None = None, **kwargs) -> None:
        """Write this model via :func:`repro.persistence.save`.

        The format is ``format`` or inferred from the extension
        (``.rfbin`` binary, ``.json`` inspectable).  The artefact
        contains the owner's secret — store it accordingly.
        """
        from ..persistence import save as _save

        _save(self, path, format=format, **kwargs)

    @classmethod
    def load(
        cls, path, format: str | None = None, mmap_mode: str | None = None
    ) -> "WatermarkedModel":
        """Load a watermarked model saved with :meth:`save`.

        ``mmap_mode="r"`` maps a binary artefact zero-copy: the forest
        serves predictions straight from the file-backed node tables and
        only rebuilds its object trees when something inspects them.
        """
        from ..exceptions import SerializationError
        from ..persistence import load as _load

        model = _load(path, format=format, mmap_mode=mmap_mode)
        if not isinstance(model, cls):
            raise SerializationError(
                f"{path} holds a {type(model).__name__}, not a WatermarkedModel"
            )
        return model


def _misfit_mask(
    forest: RandomForestClassifier, trigger_X: np.ndarray, trigger_y: np.ndarray
) -> np.ndarray:
    """Boolean mask over trees: True where a tree misses any trigger label.

    Each re-weighting round queries a *freshly (re)trained* forest on
    the tiny trigger batch, so this deliberately rides the
    lazy-compilation threshold of ``predict_all``: the object-graph path
    answers k-row queries faster than flattening a forest whose trees
    are about to be replaced.
    """
    return (forest.predict_all(trigger_X) != trigger_y[None, :]).any(axis=1)


def train_with_trigger(
    X_train: np.ndarray,
    y_train: np.ndarray,
    trigger_indices: np.ndarray,
    n_estimators: int,
    params: dict,
    tree_feature_fraction: float = 0.7,
    weight_increment: float = 1.0,
    escalation_factor: float = 1.0,
    max_rounds: int = 60,
    incremental: bool = True,
    n_jobs: int | None = None,
    random_state=None,
) -> tuple[RandomForestClassifier, int, float]:
    """The paper's ``TrainWithTrigger``: re-weight until all trees comply.

    ``y_train`` must already carry the labels the trees are required to
    reproduce on the trigger rows (for ``T1`` the caller flips them
    beforehand, mirroring lines 16–17 of Algorithm 1).

    Parameters
    ----------
    trigger_indices:
        Row indices of the trigger instances within ``X_train``.
    weight_increment:
        Weight added to every trigger sample after a failed round
        (the paper uses ``+1``).
    escalation_factor:
        Multiplier applied to ``weight_increment`` after each failed
        round.  ``1.0`` (default) is the paper's additive schedule; a
        value like ``2.0`` converges in fewer retrainings on stubborn
        instances at the cost of larger final weights.
    max_rounds:
        Bound on retraining rounds; exceeded ⇒ :class:`ConvergenceError`
        (e.g. when the capped trees simply cannot isolate the triggers).
    incremental:
        When True (default), a failed round refits *only* the trees that
        still misfit the trigger set (via
        :meth:`~repro.ensemble.RandomForestClassifier.refit_trees`);
        compliant trees are kept as-is.  The forest has no bootstrap and
        its trees are independent given their feature subspaces, so a
        kept tree is exactly as valid as one retrained from scratch —
        each round costs ``O(#stubborn)`` tree fits instead of ``O(m)``.
        ``False`` restores the paper's literal full-retrain loop (used
        by the ablation benchmark).
    n_jobs:
        Parallel tree fitting within each round (see
        :class:`~repro.ensemble.RandomForestClassifier`).

    Returns
    -------
    (forest, rounds, final_trigger_weight)
    """
    if n_estimators < 1:
        raise ValidationError(f"n_estimators must be >= 1, got {n_estimators}")
    if weight_increment <= 0:
        raise ValidationError(f"weight_increment must be > 0, got {weight_increment}")
    if escalation_factor < 1.0:
        raise ValidationError(
            f"escalation_factor must be >= 1, got {escalation_factor}"
        )
    if max_rounds < 1:
        raise ValidationError(f"max_rounds must be >= 1, got {max_rounds}")
    rng = check_random_state(random_state)

    trigger_indices = np.asarray(trigger_indices, dtype=np.int64)
    trigger_X = X_train[trigger_indices]
    trigger_y = y_train[trigger_indices]

    weights = np.ones(X_train.shape[0], dtype=np.float64)
    increment = float(weight_increment)
    rounds = 0
    forest = RandomForestClassifier(
        n_estimators=n_estimators,
        tree_feature_fraction=tree_feature_fraction,
        random_state=int(rng.integers(2**31 - 1)),
        n_jobs=n_jobs,
        **params,
    )
    forest.fit(X_train, y_train, sample_weight=weights)
    while True:
        misfit = _misfit_mask(forest, trigger_X, trigger_y)
        if not misfit.any():
            return forest, rounds, float(weights[trigger_indices].max())
        rounds += 1
        if rounds >= max_rounds:
            raise ConvergenceError(
                f"TrainWithTrigger did not converge after {rounds} rounds: "
                f"{int(misfit.sum())}/{n_estimators} trees still misfit the "
                f"trigger set (trigger weight reached "
                f"{weights[trigger_indices].max():.1f}). Consider loosening "
                f"max_depth/max_leaf_nodes or raising escalation_factor.",
                rounds=rounds,
            )
        weights[trigger_indices] += increment
        increment *= escalation_factor
        if incremental:
            forest.refit_trees(
                np.flatnonzero(misfit), X_train, y_train, sample_weight=weights
            )
        else:
            forest = RandomForestClassifier(
                n_estimators=n_estimators,
                tree_feature_fraction=tree_feature_fraction,
                random_state=int(rng.integers(2**31 - 1)),
                n_jobs=n_jobs,
                **params,
            )
            forest.fit(X_train, y_train, sample_weight=weights)


def train_standard_forest(
    X_train,
    y_train,
    n_estimators: int,
    params: dict,
    tree_feature_fraction: float = 0.7,
    n_jobs: int | None = None,
    random_state=None,
) -> RandomForestClassifier:
    """Train the non-watermarked baseline forest used throughout §4."""
    forest = RandomForestClassifier(
        n_estimators=n_estimators,
        tree_feature_fraction=tree_feature_fraction,
        random_state=random_state,
        n_jobs=n_jobs,
        **params,
    )
    return forest.fit(X_train, y_train)


def watermark(
    X_train,
    y_train,
    signature: Signature,
    trigger_size: int,
    base_params: dict | None = None,
    param_grid: dict | None = None,
    adjust: bool = True,
    tree_feature_fraction: float = 0.7,
    weight_increment: float = 1.0,
    escalation_factor: float = 1.0,
    max_rounds: int = 60,
    incremental: bool = True,
    n_jobs: int | None = None,
    random_state=None,
) -> WatermarkedModel:
    """The paper's ``Watermark(D_train, m, σ, k)`` (Algorithm 1).

    Parameters
    ----------
    X_train, y_train:
        Training set with binary ±1 labels.
    signature:
        The owner's ``m``-bit signature; ``m`` is also the ensemble size.
    trigger_size:
        ``k``, the number of trigger instances (``k ≪ |D_train|``).
    base_params:
        Hyper-parameters ``H``.  ``None`` runs
        :func:`~repro.model_selection.grid_search_forest` first, exactly
        as line 12 of the algorithm does; passing a dict skips the
        search (useful when sweeping other variables).
    param_grid:
        Optional custom grid for the grid search.
    adjust:
        Apply the ``Adjust`` anti-detection heuristic (on by default;
        the ablation benchmark switches it off).
    weight_increment, escalation_factor, max_rounds, incremental:
        Re-weighting schedule and retraining strategy, see
        :func:`train_with_trigger`.
    n_jobs:
        Parallel tree fitting for the grid search and both trainings
        (see :class:`~repro.ensemble.RandomForestClassifier`).
    random_state:
        Seed/generator; drives grid search, trigger sampling, adjustment
        and both trainings.

    Returns
    -------
    WatermarkedModel
        The watermarked ensemble together with the secret
        ``(signature, trigger set)`` and embedding diagnostics.

    Notes
    -----
    This function is a thin compatibility shim: it bundles its keyword
    pile into the composable pipeline configs and delegates to
    :class:`repro.api.Watermarker`, which owns the one implementation
    of Algorithm 1's orchestration.  Both entry points produce
    bitwise-identical models for equal inputs (regression-tested).
    New code should construct a ``Watermarker`` directly.
    """
    # Imported lazily: repro.api.pipeline imports from this module.
    from ..api.pipeline import (
        EmbeddingSchedule,
        TrainerConfig,
        TriggerPolicy,
        Watermarker,
    )

    return Watermarker(
        signature=signature,
        trigger=TriggerPolicy(size=trigger_size),
        schedule=EmbeddingSchedule(
            weight_increment=weight_increment,
            escalation_factor=escalation_factor,
            max_rounds=max_rounds,
            incremental=incremental,
        ),
        trainer=TrainerConfig(
            base_params=base_params,
            param_grid=param_grid,
            adjust=adjust,
            tree_feature_fraction=tree_feature_fraction,
            n_jobs=n_jobs,
        ),
        random_state=random_state,
    ).fit(X_train, y_train)
