"""Forgery experiments: Fig. 4, Fig. 5 and the §4.2.2 text results.

The attacker generates random fake signatures and, for each, tries to
forge a trigger set by solving one satisfiability instance per test
point under an ``L∞`` distortion budget ``ε``.  Reported quantities:

- Fig. 4: forged-trigger-set size vs ``ε`` on the image dataset,
  compared to the original trigger-set size;
- §4.2.2: forged/original size ratios on the tabular datasets at small
  ``ε`` (where forgery should essentially fail);
- Fig. 5: distortion of the forged instances and the accuracy drop a
  standard ensemble suffers on them (the paper's 0.99 → 0.62).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..attacks.forgery import forge_trigger_set, forgery_distortion
from ..core.embedding import train_standard_forest
from ..core.signature import random_signature
from ..model_selection.metrics import accuracy
from .config import ExperimentConfig
from .detection import build_watermarked_model

__all__ = [
    "ForgerySweepRow",
    "ForgedInstanceRow",
    "forgery_epsilon_sweep",
    "forgery_tabular_results",
    "forged_instance_study",
]


@dataclass(frozen=True)
class ForgerySweepRow:
    """One ε point of Fig. 4 (averaged over fake signatures)."""

    dataset: str
    epsilon: float
    original_trigger_size: int
    mean_forged_size: float
    max_forged_size: int
    n_signatures: int
    mean_seconds: float


@dataclass(frozen=True)
class ForgedInstanceRow:
    """One ε point of the Fig. 5 study."""

    dataset: str
    epsilon: float
    n_forged: int
    mean_linf: float
    mean_l2: float
    standard_accuracy_on_original: float
    standard_accuracy_on_forged: float


def _resolve_jobs(config: ExperimentConfig, n_jobs) -> int | None:
    """Driver ``n_jobs`` override, falling back to the config's value."""
    return config.n_jobs if n_jobs is None else n_jobs


def _sweep_one_dataset(
    config: ExperimentConfig,
    dataset: str,
    epsilons,
    n_signatures: int,
    engine: str,
    max_instances: int | None,
    solver_budget: int,
    n_jobs: int | None,
    reuse_encoding: bool,
) -> list[ForgerySweepRow]:
    model, (X_train, X_test, y_train, y_test) = build_watermarked_model(config, dataset)
    original_k = model.trigger.size
    rows: list[ForgerySweepRow] = []
    rng = np.random.default_rng(config.seed + 99)
    # The same fake signatures (and attempt orders) are reused across
    # the whole ε sweep, so the series is monotone in ε by construction
    # rather than confounded by signature luck.
    fakes = [
        random_signature(
            config.n_estimators,
            ones_fraction=0.5,
            random_state=int(rng.integers(2**31 - 1)),
        )
        for _ in range(n_signatures)
    ]
    attempt_seeds = [int(rng.integers(2**31 - 1)) for _ in range(n_signatures)]
    for epsilon in epsilons:
        sizes = []
        seconds = []
        for fake, attempt_seed in zip(fakes, attempt_seeds):
            result = forge_trigger_set(
                model.ensemble,
                fake,
                X_test,
                y_test,
                epsilon=epsilon,
                engine=engine,
                target_size=original_k,
                max_instances=max_instances,
                solver_budget=solver_budget,
                n_jobs=n_jobs,
                reuse_encoding=reuse_encoding,
                random_state=attempt_seed,
            )
            sizes.append(result.n_forged)
            seconds.append(result.elapsed_seconds)
        rows.append(
            ForgerySweepRow(
                dataset=dataset,
                epsilon=float(epsilon),
                original_trigger_size=original_k,
                mean_forged_size=float(np.mean(sizes)),
                max_forged_size=int(np.max(sizes)),
                n_signatures=n_signatures,
                mean_seconds=float(np.mean(seconds)),
            )
        )
    return rows


def forgery_epsilon_sweep(
    config: ExperimentConfig,
    dataset: str = "mnist26",
    epsilons=(0.1, 0.3, 0.5, 0.7, 0.9),
    n_signatures: int = 3,
    engine: str = "smt",
    max_instances: int | None = 40,
    solver_budget: int = 50_000,
    n_jobs: int | None = None,
    reuse_encoding: bool = True,
) -> list[ForgerySweepRow]:
    """Fig. 4: forged trigger-set size vs ε (image dataset).

    The paper uses 10 fake signatures and the full test set; the
    defaults here are scaled down for laptop runtimes — override
    ``n_signatures``/``max_instances`` to widen.  ``n_jobs`` fans the
    per-instance solver sweep over worker processes (``None`` defers to
    ``config.n_jobs``); results are identical across settings and
    across the ``reuse_encoding`` flag.
    """
    return _sweep_one_dataset(
        config, dataset, epsilons, n_signatures, engine, max_instances,
        solver_budget, _resolve_jobs(config, n_jobs), reuse_encoding,
    )


def forgery_tabular_results(
    config: ExperimentConfig,
    datasets=("breast-cancer", "ijcnn1"),
    epsilons=(0.1, 0.3),
    n_signatures: int = 3,
    engine: str = "smt",
    max_instances: int | None = 40,
    solver_budget: int = 50_000,
    n_jobs: int | None = None,
    reuse_encoding: bool = True,
) -> list[ForgerySweepRow]:
    """§4.2.2 text results: forgery on the tabular datasets at small ε."""
    rows: list[ForgerySweepRow] = []
    for dataset in datasets:
        rows.extend(
            _sweep_one_dataset(
                config, dataset, epsilons, n_signatures, engine, max_instances,
                solver_budget, _resolve_jobs(config, n_jobs), reuse_encoding,
            )
        )
    return rows


def forged_instance_study(
    config: ExperimentConfig,
    dataset: str = "mnist26",
    epsilons=(0.3, 0.5, 0.7),
    engine: str = "smt",
    max_instances: int | None = 25,
    solver_budget: int = 50_000,
    n_jobs: int | None = None,
    reuse_encoding: bool = True,
) -> list[ForgedInstanceRow]:
    """Fig. 5: distortion of forged instances and the accuracy a standard
    ensemble loses on them relative to the originals."""
    model, (X_train, X_test, y_train, y_test) = build_watermarked_model(config, dataset)
    standard = train_standard_forest(
        X_train,
        y_train,
        n_estimators=config.n_estimators,
        params=config.base_params or model.report.base_params,
        tree_feature_fraction=config.tree_feature_fraction,
        n_jobs=config.n_jobs,
        random_state=config.seed + 5,
    )
    rng = np.random.default_rng(config.seed + 77)
    rows: list[ForgedInstanceRow] = []
    for epsilon in epsilons:
        fake = random_signature(
            config.n_estimators, ones_fraction=0.5, random_state=int(rng.integers(2**31 - 1))
        )
        result = forge_trigger_set(
            model.ensemble,
            fake,
            X_test,
            y_test,
            epsilon=epsilon,
            engine=engine,
            max_instances=max_instances,
            solver_budget=solver_budget,
            n_jobs=_resolve_jobs(config, n_jobs),
            reuse_encoding=reuse_encoding,
            random_state=int(rng.integers(2**31 - 1)),
        )
        distortion = forgery_distortion(result, X_test)
        if result.n_forged > 0:
            originals = X_test[result.source_index]
            labels = y_test[result.source_index]
            acc_original = accuracy(labels, standard.predict(originals))
            acc_forged = accuracy(labels, standard.predict(result.forged_X))
        else:
            acc_original = acc_forged = float("nan")
        rows.append(
            ForgedInstanceRow(
                dataset=dataset,
                epsilon=float(epsilon),
                n_forged=result.n_forged,
                mean_linf=distortion["mean_linf"],
                mean_l2=distortion["mean_l2"],
                standard_accuracy_on_original=acc_original,
                standard_accuracy_on_forged=acc_forged,
            )
        )
    return rows
