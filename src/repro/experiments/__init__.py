"""Experiment drivers regenerating every table and figure of the paper.

One driver per artefact (see DESIGN.md §4 for the index); the
``benchmarks/`` directory wraps these in pytest-benchmark entry points.
"""

from .accuracy import AccuracyRow, accuracy_vs_ones_fraction, accuracy_vs_trigger_fraction
from .config import FULL, MEDIUM, SMALL, ExperimentConfig, prepare_split
from .detection import DetectionRow, build_watermarked_model, detection_table
from .forgery import (
    ForgedInstanceRow,
    ForgerySweepRow,
    forged_instance_study,
    forgery_epsilon_sweep,
    forgery_tabular_results,
)
from .reporting import format_table, rows_to_cells
from .robustness import (
    RobustnessRow,
    extraction_table,
    modification_table,
    pruning_table,
)
from .scenarios import ScenarioCell, build_attack_target, run_scenario_matrix

__all__ = [
    "FULL",
    "MEDIUM",
    "SMALL",
    "AccuracyRow",
    "DetectionRow",
    "ExperimentConfig",
    "ForgedInstanceRow",
    "ForgerySweepRow",
    "RobustnessRow",
    "ScenarioCell",
    "accuracy_vs_ones_fraction",
    "accuracy_vs_trigger_fraction",
    "build_attack_target",
    "build_watermarked_model",
    "detection_table",
    "extraction_table",
    "forged_instance_study",
    "forgery_epsilon_sweep",
    "forgery_tabular_results",
    "format_table",
    "modification_table",
    "prepare_split",
    "pruning_table",
    "rows_to_cells",
    "run_scenario_matrix",
]
