"""Accuracy experiments: Fig. 3a and Fig. 3b of the paper.

Fig. 3a sweeps the trigger-set size (fraction of the training set) with
a fixed 50%-ones signature; Fig. 3b sweeps the fraction of 1-bits with
a fixed 2% trigger set.  Both compare the watermarked forest's test
accuracy against a standard forest trained on the same data.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.embedding import train_standard_forest, watermark
from ..core.signature import random_signature
from ..datasets.registry import DATASET_NAMES
from ..model_selection.metrics import accuracy
from .config import ExperimentConfig, prepare_split

__all__ = [
    "AccuracyRow",
    "accuracy_vs_trigger_fraction",
    "accuracy_vs_ones_fraction",
]


@dataclass(frozen=True)
class AccuracyRow:
    """One point of an accuracy figure."""

    dataset: str
    x_value: float  # trigger fraction (3a) or %ones (3b)
    watermarked_accuracy: float
    standard_accuracy: float

    @property
    def accuracy_loss(self) -> float:
        """Standard minus watermarked accuracy (positive = cost)."""
        return self.standard_accuracy - self.watermarked_accuracy


def _one_point(
    config: ExperimentConfig,
    dataset: str,
    trigger_fraction: float,
    ones_fraction: float,
    seed_offset: int,
) -> AccuracyRow:
    """Train a watermarked + standard forest pair and score both."""
    X_train, X_test, y_train, y_test = prepare_split(config, dataset, seed_offset)
    seed = config.seed + seed_offset + 17

    signature = random_signature(
        config.n_estimators, ones_fraction=ones_fraction, random_state=seed
    )
    k = max(1, int(round(trigger_fraction * X_train.shape[0])))
    model = watermark(
        X_train,
        y_train,
        signature,
        trigger_size=k,
        base_params=config.base_params,
        tree_feature_fraction=config.tree_feature_fraction,
        weight_increment=config.weight_increment,
        escalation_factor=config.escalation_factor,
        max_rounds=config.max_rounds,
        n_jobs=config.n_jobs,
        random_state=seed,
    )
    standard = train_standard_forest(
        X_train,
        y_train,
        n_estimators=config.n_estimators,
        params=config.base_params or model.report.base_params,
        tree_feature_fraction=config.tree_feature_fraction,
        n_jobs=config.n_jobs,
        random_state=seed + 1,
    )
    return AccuracyRow(
        dataset=dataset,
        x_value=trigger_fraction,
        watermarked_accuracy=accuracy(y_test, model.ensemble.predict(X_test)),
        standard_accuracy=accuracy(y_test, standard.predict(X_test)),
    )


def accuracy_vs_trigger_fraction(
    config: ExperimentConfig,
    fractions=(0.01, 0.015, 0.02, 0.025, 0.03, 0.035, 0.04),
    datasets=DATASET_NAMES,
) -> list[AccuracyRow]:
    """Fig. 3a: accuracy as the trigger set grows (signature 50% ones)."""
    rows = []
    for dataset in datasets:
        for index, fraction in enumerate(fractions):
            rows.append(
                _one_point(
                    config,
                    dataset,
                    trigger_fraction=fraction,
                    ones_fraction=config.ones_fraction,
                    seed_offset=100 * index,
                )
            )
    return rows


def accuracy_vs_ones_fraction(
    config: ExperimentConfig,
    percents=(10, 20, 30, 40, 50, 60),
    datasets=DATASET_NAMES,
) -> list[AccuracyRow]:
    """Fig. 3b: accuracy as the share of 1-bits grows (2% trigger set)."""
    rows = []
    for dataset in datasets:
        for index, percent in enumerate(percents):
            row = _one_point(
                config,
                dataset,
                trigger_fraction=config.trigger_fraction,
                ones_fraction=percent / 100.0,
                seed_offset=1000 + 100 * index,
            )
            rows.append(
                AccuracyRow(
                    dataset=row.dataset,
                    x_value=float(percent),
                    watermarked_accuracy=row.watermarked_accuracy,
                    standard_accuracy=row.standard_accuracy,
                )
            )
    return rows
