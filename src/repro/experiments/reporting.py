"""Plain-text table rendering for experiment results.

The benchmarks print the same rows/series the paper's tables and
figures report; these helpers keep that output aligned and consistent.
"""

from __future__ import annotations

from ..exceptions import ValidationError

__all__ = ["format_table", "rows_to_cells"]


def _render_cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(headers: list[str], rows: list[list]) -> str:
    """Render an ASCII table with left-aligned, width-padded columns.

    >>> print(format_table(["a", "b"], [[1, 2.5], ["x", "y"]]))
    a  b
    -  ---
    1  2.5
    x  y
    """
    if not headers:
        raise ValidationError("headers must be non-empty")
    cells = [[_render_cell(value) for value in row] for row in rows]
    for row in cells:
        if len(row) != len(headers):
            raise ValidationError(
                f"row width {len(row)} does not match header width {len(headers)}"
            )
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in cells)) if cells else len(headers[col])
        for col in range(len(headers))
    ]
    lines = [
        "  ".join(header.ljust(width) for header, width in zip(headers, widths)).rstrip(),
        "  ".join("-" * width for width in widths).rstrip(),
    ]
    for row in cells:
        lines.append(
            "  ".join(value.ljust(width) for value, width in zip(row, widths)).rstrip()
        )
    return "\n".join(lines)


def rows_to_cells(rows, fields: list[str]) -> list[list]:
    """Extract attribute columns from a list of dataclass rows."""
    return [[getattr(row, field) for field in fields] for row in rows]
