"""Shared configuration for the reproduction experiments.

The paper's experiments run on the full datasets of Table 1; this
harness exposes the same experiments at configurable scale so the whole
evaluation regenerates on a laptop in minutes.  ``SMALL`` is what the
benchmark suite runs by default; ``MEDIUM`` gives tighter numbers;
``FULL`` matches the paper's dataset sizes (slow in pure Python).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace

from ..datasets.registry import load_dataset
from ..exceptions import ValidationError
from ..model_selection.splits import train_test_split

__all__ = ["ExperimentConfig", "SMALL", "MEDIUM", "FULL", "prepare_split"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all experiment drivers.

    ``base_params`` short-circuits grid search with fixed
    hyper-parameters (the search itself is exercised separately); set it
    to ``None`` to run the full Algorithm 1 including line 12.
    ``escalation_factor > 1`` accelerates the re-weighting loop without
    changing what it converges to.  ``n_jobs`` fans work out over
    worker processes (``-1`` = all cores) wherever a driver trains a
    watermarked or standard forest (attacker-side surrogates in the
    extraction study stay serial) and wherever the forgery drivers
    sweep solver instances (:func:`repro.attacks.forge_trigger_set`);
    results do not depend on it.
    """

    name: str
    dataset_sizes: dict[str, int] = field(
        default_factory=lambda: {"mnist26": 500, "breast-cancer": 300, "ijcnn1": 800}
    )
    n_estimators: int = 16
    test_size: float = 0.3
    trigger_fraction: float = 0.02
    ones_fraction: float = 0.5
    tree_feature_fraction: float = 0.5
    base_params: dict | None = field(
        default_factory=lambda: {"max_depth": 10, "min_samples_leaf": 1}
    )
    weight_increment: float = 1.0
    escalation_factor: float = 2.0
    max_rounds: int = 25
    n_jobs: int | None = None
    seed: int = 20250612

    def with_overrides(self, **overrides) -> "ExperimentConfig":
        """A copy with selected fields replaced.

        Unknown field names raise a :class:`ValidationError` naming the
        offending key(s) and listing the valid fields, instead of
        leaking :func:`dataclasses.replace`'s raw :class:`TypeError`.
        """
        valid = {spec.name for spec in fields(self)}
        unknown = sorted(set(overrides) - valid)
        if unknown:
            raise ValidationError(
                f"unknown ExperimentConfig field(s) {', '.join(map(repr, unknown))}; "
                f"valid fields: {', '.join(sorted(valid))}"
            )
        return replace(self, **overrides)

    def trigger_size(self, n_train: int) -> int:
        """Trigger-set size ``k`` for a training set of ``n_train`` rows."""
        return max(1, int(round(self.trigger_fraction * n_train)))


SMALL = ExperimentConfig(
    name="small",
    dataset_sizes={"mnist26": 400, "breast-cancer": 300, "ijcnn1": 700},
    n_estimators=16,
)

MEDIUM = ExperimentConfig(
    name="medium",
    dataset_sizes={"mnist26": 2000, "breast-cancer": 569, "ijcnn1": 3000},
    n_estimators=40,
)

FULL = ExperimentConfig(
    name="full",
    dataset_sizes={"mnist26": 13866, "breast-cancer": 569, "ijcnn1": 10000},
    n_estimators=100,
    base_params=None,  # run the real grid search, as in the paper
)


def prepare_split(config: ExperimentConfig, dataset_name: str, seed_offset: int = 0):
    """Generate a dataset at the configured size and split it.

    Returns ``(X_train, X_test, y_train, y_test)``.
    """
    dataset = load_dataset(
        dataset_name,
        n_samples=config.dataset_sizes[dataset_name],
        random_state=config.seed + seed_offset,
    )
    return train_test_split(
        dataset.X,
        dataset.y,
        test_size=config.test_size,
        random_state=config.seed + seed_offset + 1,
    )
