"""The generic scenario-matrix runner.

One entry point sweeps any set of registry attacks, at any strengths,
over any datasets, against freshly watermarked models — every cell
carrying the same uniform :class:`~repro.api.attacks.AttackReport`.
The robustness and detection tables (`robustness.py`, `detection.py`)
are thin projections of this matrix, and the ``repro attack`` CLI
subcommand is a one-cell special case.

Determinism: each (dataset, attack) pair derives its RNG seed from the
config seed and stable CRC32 hashes of the names — never from Python's
salted ``hash`` — and every strength of a sweep restarts from that same
seed.  Same-seed restarts couple stochastic attacks across strengths
the way the legacy drivers did (the leaves flipped at ``p=0.05`` are a
subset of those flipped at ``p=0.3``), which keeps damage curves
monotone instead of noisy.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, replace
from typing import Iterable, Mapping, Sequence

import numpy as np

from ..api.attacks import Attack, AttackReport, AttackTarget, make_attack
from ..datasets.registry import DATASET_NAMES
from ..exceptions import ValidationError
from .config import ExperimentConfig
from .detection import build_watermarked_model

__all__ = ["ScenarioCell", "build_attack_target", "run_scenario_matrix"]


@dataclass(frozen=True)
class ScenarioCell:
    """One (dataset, attack, strength[, traffic]) cell of a scenario matrix.

    The traffic axis is optional: without it ``traffic`` and
    ``traffic_report`` stay ``None`` and a cell is exactly the pre-axis
    shape.  With it, each cell additionally carries the
    :class:`~repro.traffic.replay.TrafficReport` of replaying the named
    traffic scenario against the same deployed model the attack ran on.
    """

    dataset: str
    attack: str
    strength: float | None
    report: AttackReport
    traffic: str | None = None
    traffic_report: object | None = None

    def to_dict(self) -> dict:
        """JSON-serialisable view (the reports via their own ``to_dict``)."""
        return {
            "dataset": self.dataset,
            "attack": self.attack,
            "strength": self.strength,
            "report": self.report.to_dict(),
            "traffic": self.traffic,
            "traffic_report": (
                None if self.traffic_report is None else self.traffic_report.to_dict()
            ),
        }


def build_attack_target(
    config: ExperimentConfig,
    dataset: str,
    seed_offset: int = 0,
    adjust: bool = True,
) -> AttackTarget:
    """Watermark one model per the config and bundle it with its split."""
    model, split = build_watermarked_model(
        config, dataset, seed_offset=seed_offset, adjust=adjust
    )
    return AttackTarget.from_split(model, split)


def _cell_seed(config_seed: int, dataset: str, attack_name: str) -> int:
    """Stable per-(dataset, attack) RNG seed, shared across strengths."""
    label = f"{dataset}|{attack_name}".encode("utf-8")
    return (int(config_seed) + zlib.crc32(label)) % (2**63)


def _resolve_attacks(
    attacks: Iterable, strengths: Mapping[str, Sequence] | None
) -> list[tuple[Attack, float | None]]:
    """Expand attack specs × strengths into concrete attack instances.

    ``attacks`` mixes registry names and ready :class:`Attack`
    instances; ``strengths[name]`` sweeps that attack's declared
    ``strength_param``.  An attack without a strength entry runs once
    with its configured parameters.
    """
    resolved: list[tuple[Attack, float | None]] = []
    for spec in attacks:
        attack = make_attack(spec) if isinstance(spec, str) else spec
        if not isinstance(attack, Attack):
            raise ValidationError(
                f"attacks must be registry names or Attack instances, got "
                f"{type(spec).__name__}"
            )
        sweep = (strengths or {}).get(attack.name)
        if sweep is None:
            resolved.append((attack, None))
            continue
        strength_param = getattr(attack, "strength_param", None)
        if strength_param is None:
            raise ValidationError(
                f"attack {attack.name!r} declares no strength parameter; "
                f"pass configured instances instead of a strengths sweep"
            )
        for strength in sweep:
            resolved.append(
                (replace(attack, **{strength_param: strength}), float(strength))
            )
    if not resolved:
        raise ValidationError("run_scenario_matrix needs at least one attack")
    return resolved


def run_scenario_matrix(
    config: ExperimentConfig,
    attacks: Iterable,
    strengths: Mapping[str, Sequence] | None = None,
    datasets: Sequence[str] = DATASET_NAMES,
    adjust: bool = True,
    traffic: Sequence[str] | None = None,
    traffic_queries: int = 4096,
    traffic_batch_size: int = 512,
) -> list[ScenarioCell]:
    """Run every attack × strength against one watermarked model per dataset.

    Parameters
    ----------
    config:
        Experiment knobs; the watermarked target model per dataset is
        built exactly as for the paper's tables
        (:func:`~repro.experiments.detection.build_watermarked_model`).
    attacks:
        Registry names (``"truncate"``, ``"flip"``, ``"prune"``,
        ``"extract"``, ``"forgery"``, ``"suppression"``,
        ``"detection"``, ``"chain"``) and/or configured
        :class:`~repro.api.attacks.Attack` instances.
    strengths:
        Optional mapping ``attack name -> iterable of strengths`` swept
        over the attack's declared strength parameter (truncate: depth,
        flip: probability, prune: alpha, extract: query budget,
        forgery: epsilon).
    datasets:
        Dataset names from :data:`repro.datasets.DATASET_NAMES`.
    adjust:
        Build the target models with the ``Adjust`` anti-detection
        heuristic (off for the ablation study).
    traffic:
        Optional traffic axis: named scenarios from
        :func:`repro.traffic.traffic_scenarios`.  Each named stream is
        replayed once per dataset against the same deployed model the
        attacks target (seeded per (dataset, scenario), independent of
        the attack cells), and the matrix becomes the cross product —
        every cell carries its (attack report, traffic report) pair.
    traffic_queries, traffic_batch_size:
        Stream length and chunking of each traffic replay.

    Returns
    -------
    list[ScenarioCell]
        Cells in (dataset-major, attack, strength, traffic) order, each
        with a uniform :class:`~repro.api.attacks.AttackReport`.
    """
    matrix = _resolve_attacks(attacks, strengths)
    traffic_names = list(traffic) if traffic is not None else []
    cells: list[ScenarioCell] = []
    for dataset in datasets:
        target = build_attack_target(config, dataset, adjust=adjust)
        traffic_reports = {
            name: _replay_traffic(
                config, dataset, name, target, traffic_queries, traffic_batch_size
            )
            for name in traffic_names
        }
        for attack, strength in matrix:
            rng = np.random.default_rng(
                _cell_seed(config.seed, dataset, attack.name)
            )
            report = attack.run(target, rng)
            if not traffic_names:
                cells.append(
                    ScenarioCell(
                        dataset=dataset,
                        attack=attack.name,
                        strength=strength,
                        report=report,
                    )
                )
                continue
            cells.extend(
                ScenarioCell(
                    dataset=dataset,
                    attack=attack.name,
                    strength=strength,
                    report=report,
                    traffic=name,
                    traffic_report=traffic_reports[name],
                )
                for name in traffic_names
            )
    return cells


def _replay_traffic(
    config: ExperimentConfig,
    dataset: str,
    scenario: str,
    target: AttackTarget,
    n_queries: int,
    batch_size: int,
):
    """One seeded traffic replay against the dataset's deployed model."""
    from ..traffic import replay_scenario

    return replay_scenario(
        scenario,
        target.model,
        target.X_train,
        n_queries=n_queries,
        batch_size=batch_size,
        random_state=_cell_seed(config.seed, dataset, f"traffic:{scenario}"),
    )
