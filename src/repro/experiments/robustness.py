"""Extension experiments: the "more powerful attacker" of the paper's
future work.

Three attacker families the paper's threat model excludes (it assumes
the stolen model is served unmodified), each swept against the same
watermarked models as Table 2:

- **modification** — depth truncation and random leaf flipping
  (:mod:`repro.attacks.modification`);
- **pruning** — cost-complexity pruning of each tree
  (:mod:`repro.trees.pruning`);
- **extraction** — surrogate training on black-box answers
  (:mod:`repro.attacks.extraction`).

Each row reports the attacker's cost (accuracy of the attacked model)
against the damage (fraction of trees still matching the signature).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..attacks.extraction import extraction_study
from ..attacks.modification import modification_robustness
from ..core.verification import verify_ownership
from ..trees.pruning import prune_cost_complexity
from .config import ExperimentConfig
from .detection import build_watermarked_model

__all__ = [
    "RobustnessRow",
    "modification_table",
    "pruning_table",
    "extraction_table",
]


@dataclass(frozen=True)
class RobustnessRow:
    """One attacked-model measurement."""

    dataset: str
    attack: str
    strength: float
    accuracy: float
    watermark_match_rate: float
    watermark_accepted: bool


def modification_table(
    config: ExperimentConfig,
    dataset: str = "breast-cancer",
    truncate_depths=(6, 4, 2),
    flip_probabilities=(0.05, 0.15, 0.3),
) -> list[RobustnessRow]:
    """Sweep truncation and leaf-flip attacks on one watermarked model."""
    model, (X_train, X_test, y_train, y_test) = build_watermarked_model(config, dataset)
    rows: list[RobustnessRow] = []
    for depth in truncate_depths:
        outcome = modification_robustness(
            model, X_test, y_test, attack="truncate", strength=depth
        )
        rows.append(
            RobustnessRow(
                dataset=dataset,
                attack="truncate",
                strength=float(depth),
                accuracy=outcome.accuracy,
                watermark_match_rate=outcome.watermark_match_rate,
                watermark_accepted=outcome.watermark_accepted,
            )
        )
    for probability in flip_probabilities:
        outcome = modification_robustness(
            model,
            X_test,
            y_test,
            attack="flip",
            strength=probability,
            random_state=config.seed + 7,
        )
        rows.append(
            RobustnessRow(
                dataset=dataset,
                attack="flip",
                strength=float(probability),
                accuracy=outcome.accuracy,
                watermark_match_rate=outcome.watermark_match_rate,
                watermark_accepted=outcome.watermark_accepted,
            )
        )
    return rows


def _pruned_forest(forest, alpha: float):
    """A clone of a fitted forest with every tree pruned at ``alpha``."""
    return forest.with_roots(
        [prune_cost_complexity(root, alpha) for root in forest.roots()]
    )


def pruning_table(
    config: ExperimentConfig,
    dataset: str = "breast-cancer",
    alphas=(0.0, 0.5, 2.0, 8.0),
) -> list[RobustnessRow]:
    """Sweep cost-complexity pruning strength against the watermark."""
    model, (X_train, X_test, y_train, y_test) = build_watermarked_model(config, dataset)
    rows: list[RobustnessRow] = []
    for alpha in alphas:
        attacked = _pruned_forest(model.ensemble, alpha)
        # One compiled table serves both the trigger sweep and the
        # test-set scoring (as in modification_robustness): the trigger
        # batch alone is below the lazy-compilation threshold.
        attacked.compile()
        report = verify_ownership(
            attacked, model.signature, model.trigger.X, model.trigger.y
        )
        rows.append(
            RobustnessRow(
                dataset=dataset,
                attack="prune",
                strength=float(alpha),
                accuracy=attacked.score(X_test, y_test),
                watermark_match_rate=report.n_matching / report.n_trees,
                watermark_accepted=report.accepted,
            )
        )
    return rows


def extraction_table(
    config: ExperimentConfig,
    dataset: str = "breast-cancer",
    query_budgets=(100, 200),
) -> list[RobustnessRow]:
    """Surrogate-training attack: fidelity vs watermark survival."""
    model, (X_train, X_test, y_train, y_test) = build_watermarked_model(config, dataset)
    outcomes = extraction_study(
        model,
        X_pool=X_train,
        X_test=X_test,
        y_test=y_test,
        query_budgets=query_budgets,
        random_state=config.seed + 13,
    )
    return [
        RobustnessRow(
            dataset=dataset,
            attack="extract",
            strength=float(outcome.query_budget),
            accuracy=outcome.surrogate_accuracy,
            watermark_match_rate=outcome.watermark_match_rate,
            watermark_accepted=outcome.watermark_accepted,
        )
        for outcome in outcomes
    ]
