"""Extension experiments: the "more powerful attacker" of the paper's
future work.

Three attacker families the paper's threat model excludes (it assumes
the stolen model is served unmodified), each swept against the same
watermarked models as Table 2:

- **modification** — depth truncation and random leaf flipping
  (:class:`~repro.api.attacks.TruncateAttack`,
  :class:`~repro.api.attacks.LeafFlipAttack`);
- **pruning** — cost-complexity pruning of each tree
  (:class:`~repro.api.attacks.PruneAttack`);
- **extraction** — surrogate training on black-box answers
  (:class:`~repro.api.attacks.ExtractionAttack`).

Every table is a projection of the generic scenario matrix
(:func:`~repro.experiments.scenarios.run_scenario_matrix`): one
watermarked model per dataset, attacks × strengths from the registry,
uniform :class:`~repro.api.attacks.AttackReport` cells.  Each row
reports the attacker's cost (accuracy of the attacked model) against
the damage (fraction of trees still matching the signature).
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import ExperimentConfig
from .scenarios import ScenarioCell, run_scenario_matrix

__all__ = [
    "RobustnessRow",
    "modification_table",
    "pruning_table",
    "extraction_table",
]


@dataclass(frozen=True)
class RobustnessRow:
    """One attacked-model measurement."""

    dataset: str
    attack: str
    strength: float
    accuracy: float
    watermark_match_rate: float
    watermark_accepted: bool


def _to_rows(cells: list[ScenarioCell]) -> list[RobustnessRow]:
    """Project scenario cells onto the table's row shape."""
    return [
        RobustnessRow(
            dataset=cell.dataset,
            attack=cell.attack,
            strength=float(cell.strength),
            accuracy=cell.report.attacked_accuracy,
            watermark_match_rate=cell.report.watermark_match_rate,
            watermark_accepted=cell.report.watermark_accepted,
        )
        for cell in cells
    ]


def modification_table(
    config: ExperimentConfig,
    dataset: str = "breast-cancer",
    truncate_depths=(6, 4, 2),
    flip_probabilities=(0.05, 0.15, 0.3),
) -> list[RobustnessRow]:
    """Sweep truncation and leaf-flip attacks on one watermarked model."""
    return _to_rows(
        run_scenario_matrix(
            config,
            attacks=("truncate", "flip"),
            strengths={"truncate": truncate_depths, "flip": flip_probabilities},
            datasets=(dataset,),
        )
    )


def pruning_table(
    config: ExperimentConfig,
    dataset: str = "breast-cancer",
    alphas=(0.0, 0.5, 2.0, 8.0),
) -> list[RobustnessRow]:
    """Sweep cost-complexity pruning strength against the watermark."""
    return _to_rows(
        run_scenario_matrix(
            config,
            attacks=("prune",),
            strengths={"prune": alphas},
            datasets=(dataset,),
        )
    )


def extraction_table(
    config: ExperimentConfig,
    dataset: str = "breast-cancer",
    query_budgets=(100, 200),
) -> list[RobustnessRow]:
    """Surrogate-training attack: fidelity vs watermark survival."""
    cells = run_scenario_matrix(
        config,
        attacks=("extract",),
        strengths={"extract": query_budgets},
        datasets=(dataset,),
    )
    return _to_rows(cells)
