"""Detection experiment: Table 2 of the paper.

A watermarked model is built per dataset (50% ones, 2% trigger) and the
two structural detection strategies attack it; the table reports
``#correct / #wrong / #uncertain`` per (dataset, statistic) with the
statistic's mean and standard deviation in brackets.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.embedding import WatermarkedModel, watermark
from ..core.signature import random_signature
from ..datasets.registry import DATASET_NAMES
from .config import ExperimentConfig, prepare_split

__all__ = ["DetectionRow", "build_watermarked_model", "detection_table"]


@dataclass(frozen=True)
class DetectionRow:
    """One (dataset, statistic, strategy) cell group of Table 2."""

    dataset: str
    statistic: str
    strategy: str
    mean: float
    std: float
    n_correct: int
    n_wrong: int
    n_uncertain: int


def build_watermarked_model(
    config: ExperimentConfig, dataset: str, seed_offset: int = 0, adjust: bool = True
) -> tuple[WatermarkedModel, tuple]:
    """Watermark one model with the Table 2 setting (50% ones, 2% trigger).

    Returns the model and the ``(X_train, X_test, y_train, y_test)``
    split used, so callers can also evaluate accuracy or run other
    attacks on the very same artefact.
    """
    split = prepare_split(config, dataset, seed_offset)
    X_train, _X_test, y_train, _y_test = split
    signature = random_signature(
        config.n_estimators,
        ones_fraction=config.ones_fraction,
        random_state=config.seed + seed_offset + 3,
    )
    model = watermark(
        X_train,
        y_train,
        signature,
        trigger_size=config.trigger_size(X_train.shape[0]),
        base_params=config.base_params,
        adjust=adjust,
        tree_feature_fraction=config.tree_feature_fraction,
        weight_increment=config.weight_increment,
        escalation_factor=config.escalation_factor,
        max_rounds=config.max_rounds,
        n_jobs=config.n_jobs,
        random_state=config.seed + seed_offset + 4,
    )
    return model, split


def detection_table(
    config: ExperimentConfig, datasets=DATASET_NAMES, adjust: bool = True
) -> list[DetectionRow]:
    """Regenerate Table 2 (optionally without the Adjust heuristic, for
    the ablation benchmark).

    A projection of the generic scenario matrix: the ``"detection"``
    registry attack runs every (statistic, strategy) combination and
    reports them under ``details["attempts"]``; this table flattens
    those attempts into the paper's row shape.
    """
    from .scenarios import run_scenario_matrix

    cells = run_scenario_matrix(
        config, attacks=("detection",), datasets=datasets, adjust=adjust
    )
    return [
        DetectionRow(
            dataset=cell.dataset,
            statistic=attempt["statistic"],
            strategy=attempt["strategy"],
            mean=attempt["mean"],
            std=attempt["std"],
            n_correct=attempt["n_correct"],
            n_wrong=attempt["n_wrong"],
            n_uncertain=attempt["n_uncertain"],
        )
        for cell in cells
        for attempt in cell.report.details["attempts"]
    ]
