"""Compiled flat-array inference for whole ensembles.

Packs every tree of a forest or boosted ensemble into **one contiguous
node table** (the layout of :mod:`repro.trees.compiled`, with a
``roots[]`` array locating each tree) so that batch prediction across
the whole ensemble is a single vectorised descent over a
``(n_trees, n_samples)`` state matrix: one gather-compare-select step
per tree level, regardless of how many thousands of nodes the ensemble
holds.  This is the hot path behind ``predict_all`` — the per-tree
query interface the watermark verification protocol and the attack
suite hammer — as well as ensemble ``predict`` / ``predict_proba`` and
the boosted ``stage_contributions``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import NotFittedError, ValidationError
from ..trees.compiled import (
    _COLUMN_CHUNK,
    _descend,
    classification_leaf_builder,
    flatten_tree,
    table_to_node,
    validate_node_tables,
)
from .voting import majority_vote

__all__ = [
    "CompiledEnsemble",
    "compile_trees",
    "compile_forest",
    "compile_boosted",
]

#: Section names of the canonical tables dict, in on-disk order.  The
#: binary exporter writes exactly these (present) arrays as its payload
#: sections; ``roots`` first so a reader can size the rest.
TABLE_KEYS = (
    "roots",
    "feature",
    "threshold",
    "left",
    "right",
    "leaf_value",
    "classes",
    "leaf_proba",
    "leaf_weight",
)


@dataclass
class CompiledEnsemble:
    """All trees of an ensemble in one struct-of-arrays node table.

    ``roots[t]`` is the node index of tree ``t``'s root; ``left`` /
    ``right`` hold *global* indices into the shared table, so the same
    descent kernel serves every tree simultaneously.  ``leaf_value`` is
    int64 (class labels) for classification ensembles and float64 for
    boosted regression stages; ``classes`` / ``leaf_proba`` exist only
    for classification.
    """

    roots: np.ndarray
    feature: np.ndarray
    threshold: np.ndarray
    left: np.ndarray
    right: np.ndarray
    leaf_value: np.ndarray
    depth: int
    classes: np.ndarray | None = None
    leaf_proba: np.ndarray | None = None
    #: Optional raw per-leaf class masses (``(n_nodes, n_classes)``),
    #: collected on request so the exact ``class_weights`` dicts can be
    #: rebuilt from the table (persistence bijection); not used by the
    #: descent kernels.
    leaf_weight: np.ndarray | None = None

    def __post_init__(self) -> None:
        self._gather_feature = np.where(self.feature >= 0, self.feature, 0)
        self._adjacent = bool(
            np.all((self.feature < 0) | (self.right == self.left + 1))
        )

    @property
    def n_trees(self) -> int:
        return int(self.roots.shape[0])

    @property
    def n_nodes(self) -> int:
        return int(self.feature.shape[0])

    @property
    def n_leaves(self) -> int:
        return int((self.feature < 0).sum())

    # ------------------------------------------------------------------

    def apply_all(self, X: np.ndarray) -> np.ndarray:
        """Leaf index reached in every tree by every row.

        Returns an ``(n_trees, n_samples)`` int64 matrix.  The descent
        advances all trees and all samples one level per iteration;
        entries that reached a leaf self-loop (leaf ``left``/``right``
        point at the leaf itself), so no masking is required.  Samples
        are processed in column chunks to keep the per-level temporaries
        cache-resident (see :mod:`repro.trees.compiled`).
        """
        X = np.ascontiguousarray(X, dtype=np.float64)
        n = X.shape[0]
        if self.depth == 0 or n == 0:
            return np.repeat(self.roots[:, None], n, axis=1)
        out = np.empty((self.n_trees, n), dtype=np.int64)
        for start in range(0, n, _COLUMN_CHUNK):
            stop = min(start + _COLUMN_CHUNK, n)
            idx = np.repeat(self.roots[:, None], stop - start, axis=1)
            out[:, start:stop] = _descend(self, X[start:stop], idx)
        return out

    def predict_all(self, X: np.ndarray) -> np.ndarray:
        """Per-tree leaf payloads, shape ``(n_trees, n_samples)``.

        For a forest this is exactly ``RandomForestClassifier.predict_all``
        (per-tree labels); for a boosted ensemble it is the per-stage
        raw tree values (multiply by the learning rate for
        contributions).
        """
        return self.leaf_value[self.apply_all(X)]

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Majority-vote ensemble prediction (classification only)."""
        if self.classes is None:
            raise ValidationError(
                "this CompiledEnsemble was compiled without classes; "
                "majority voting is undefined"
            )
        return majority_vote(self.predict_all(X), self.classes)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Average per-tree class distributions, columns as ``classes``."""
        if self.leaf_proba is None:
            raise ValidationError(
                "this CompiledEnsemble was compiled without classes; "
                "recompile from a classifier ensemble to enable predict_proba"
            )
        return self.leaf_proba[self.apply_all(X)].sum(axis=0) / self.n_trees

    # ------------------------------------------------------------------
    # The canonical tables contract (persistence / interop boundary)
    # ------------------------------------------------------------------

    def to_tables(self) -> dict:
        """The whole ensemble as a plain dict of arrays plus ``depth``.

        Keys follow :data:`TABLE_KEYS` (absent optionals map to
        ``None``); the dict round-trips through :meth:`from_tables`.
        The arrays are the engine's own (no copies) — treat them as
        read-only.
        """
        return {
            "roots": self.roots,
            "feature": self.feature,
            "threshold": self.threshold,
            "left": self.left,
            "right": self.right,
            "leaf_value": self.leaf_value,
            "depth": int(self.depth),
            "classes": self.classes,
            "leaf_proba": self.leaf_proba,
            "leaf_weight": self.leaf_weight,
        }

    @classmethod
    def from_tables(cls, tables: dict) -> "CompiledEnsemble":
        """Build a validated engine from a tables dict.

        This is the one entry point for node tables from *outside the
        process* — deserialised JSON, memory-mapped binary sections,
        hand-written arrays.  Integer/float sections are coerced to the
        canonical dtypes without copying when already conformant (a
        memory-mapped section stays a view into the file); the table is
        structurally validated (lengths, index bounds, recorded depth,
        dtypes, row shapes) before an engine is returned, so a malformed
        file raises :class:`~repro.exceptions.SerializationError` here
        rather than mispredicting later.
        """
        feature = np.asarray(tables["feature"], dtype=np.int64)
        threshold = np.asarray(tables["threshold"], dtype=np.float64)
        left = np.asarray(tables["left"], dtype=np.int64)
        right = np.asarray(tables["right"], dtype=np.int64)
        roots = np.asarray(tables["roots"], dtype=np.int64)
        leaf_value = np.asarray(tables["leaf_value"])
        classes = tables.get("classes")
        if classes is not None:
            classes = np.asarray(classes, dtype=np.int64)
        leaf_proba = tables.get("leaf_proba")
        if leaf_proba is not None:
            leaf_proba = np.asarray(leaf_proba, dtype=np.float64)
        leaf_weight = tables.get("leaf_weight")
        if leaf_weight is not None:
            leaf_weight = np.asarray(leaf_weight, dtype=np.float64)
        depth = int(tables["depth"])
        validate_node_tables(
            feature=feature,
            threshold=threshold,
            left=left,
            right=right,
            leaf_value=leaf_value,
            roots=roots,
            depth=depth,
            classes=classes,
            leaf_proba=leaf_proba,
            leaf_weight=leaf_weight,
        )
        return cls(
            roots=roots,
            feature=feature,
            threshold=threshold,
            left=left,
            right=right,
            leaf_value=leaf_value,
            depth=depth,
            classes=classes,
            leaf_proba=leaf_proba,
            leaf_weight=leaf_weight,
        )

    def to_roots(self, make_leaf_factory=None) -> list:
        """Rebuild one object-graph root per tree (inverse of compiling).

        For classification tables (int64 ``leaf_value`` with a
        ``classes`` array) leaves come back as
        :class:`~repro.trees.node.Leaf`, with their exact
        ``class_weights`` when the table carries a ``leaf_weight``
        section; for regression/boosted tables (float64 ``leaf_value``)
        leaves are the regression tree's value nodes.  Together with
        :func:`compile_trees` this is the tables ↔ object-tree bijection
        the binary persistence format is built on.
        """
        if make_leaf_factory is not None:
            make_leaf = make_leaf_factory(self)
            make_internal = None
        elif self.leaf_value.dtype == np.int64 and self.classes is not None:
            make_leaf = classification_leaf_builder(
                self.leaf_value, self.classes, self.leaf_weight
            )
            make_internal = None
        else:
            from ..trees.regression import _RegLeaf, _RegNode

            leaf_value = self.leaf_value

            def make_leaf(index: int):
                return _RegLeaf(value=float(leaf_value[index]))

            feature, threshold = self.feature, self.threshold

            def make_internal(index, left_child, right_child):
                return _RegNode(
                    feature=int(feature[index]),
                    threshold=float(threshold[index]),
                    left=left_child,
                    right=right_child,
                )

        return [
            table_to_node(
                self.feature,
                self.threshold,
                self.left,
                self.right,
                int(root),
                make_leaf,
                make_internal,
            )
            for root in self.roots
        ]


def compile_trees(
    tree_roots, classes=None, value_dtype=np.int64, collect_leaf_weight=False
) -> CompiledEnsemble:
    """Pack a list of tree roots into one :class:`CompiledEnsemble`.

    Parameters mirror :func:`repro.trees.compiled.compile_tree`, applied
    to every root with all nodes appended to the same table.
    ``collect_leaf_weight=True`` additionally records the raw per-leaf
    class masses (exporter support; the prediction hot path never pays
    for it).
    """
    tree_roots = list(tree_roots)
    if not tree_roots:
        raise ValidationError("cannot compile an empty list of trees")
    feature: list = []
    threshold: list = []
    left: list = []
    right: list = []
    leaf_value: list = []
    class_position = None
    proba_rows: list | None = None
    weight_rows: list | None = None
    if classes is not None:
        classes = np.asarray(classes)
        class_position = {int(c): i for i, c in enumerate(classes)}
        proba_rows = []
        if collect_leaf_weight:
            weight_rows = []

    roots = []
    depth = 0
    for root in tree_roots:
        root_index, tree_depth = flatten_tree(
            root,
            feature=feature,
            threshold=threshold,
            left=left,
            right=right,
            leaf_value=leaf_value,
            leaf_proba=proba_rows,
            leaf_weight=weight_rows,
            class_position=class_position,
        )
        roots.append(root_index)
        depth = max(depth, tree_depth)

    return CompiledEnsemble(
        roots=np.asarray(roots, dtype=np.int64),
        feature=np.asarray(feature, dtype=np.int64),
        threshold=np.asarray(threshold, dtype=np.float64),
        left=np.asarray(left, dtype=np.int64),
        right=np.asarray(right, dtype=np.int64),
        leaf_value=np.asarray(leaf_value, dtype=value_dtype),
        depth=depth,
        classes=classes,
        leaf_proba=np.asarray(proba_rows, dtype=np.float64)
        if proba_rows is not None
        else None,
        leaf_weight=np.asarray(weight_rows, dtype=np.float64)
        if weight_rows is not None
        else None,
    )


def compile_forest(forest, collect_leaf_weight=False) -> CompiledEnsemble:
    """Compile a fitted :class:`~repro.ensemble.RandomForestClassifier`."""
    if forest.trees_ is None:
        raise NotFittedError("cannot compile an unfitted forest")
    return compile_trees(
        [tree.root_ for tree in forest.trees_],
        classes=forest.classes_,
        value_dtype=np.int64,
        collect_leaf_weight=collect_leaf_weight,
    )


def compile_boosted(model) -> CompiledEnsemble:
    """Compile a fitted :class:`~repro.ensemble.GradientBoostingClassifier`.

    The packed ``leaf_value`` holds the raw regression-tree outputs;
    ``stage_contributions`` scales them by the learning rate.
    """
    if model.trees_ is None:
        raise NotFittedError("cannot compile an unfitted boosted ensemble")
    return compile_trees(
        [tree.root_ for tree in model.trees_],
        classes=None,
        value_dtype=np.float64,
    )
