"""Compiled flat-array inference for whole ensembles.

Packs every tree of a forest or boosted ensemble into **one contiguous
node table** (the layout of :mod:`repro.trees.compiled`, with a
``roots[]`` array locating each tree) so that batch prediction across
the whole ensemble is a single vectorised descent over a
``(n_trees, n_samples)`` state matrix: one gather-compare-select step
per tree level, regardless of how many thousands of nodes the ensemble
holds.  This is the hot path behind ``predict_all`` — the per-tree
query interface the watermark verification protocol and the attack
suite hammer — as well as ensemble ``predict`` / ``predict_proba`` and
the boosted ``stage_contributions``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import NotFittedError, ValidationError
from ..trees.compiled import _COLUMN_CHUNK, _descend, flatten_tree
from .voting import majority_vote

__all__ = [
    "CompiledEnsemble",
    "compile_trees",
    "compile_forest",
    "compile_boosted",
]


@dataclass
class CompiledEnsemble:
    """All trees of an ensemble in one struct-of-arrays node table.

    ``roots[t]`` is the node index of tree ``t``'s root; ``left`` /
    ``right`` hold *global* indices into the shared table, so the same
    descent kernel serves every tree simultaneously.  ``leaf_value`` is
    int64 (class labels) for classification ensembles and float64 for
    boosted regression stages; ``classes`` / ``leaf_proba`` exist only
    for classification.
    """

    roots: np.ndarray
    feature: np.ndarray
    threshold: np.ndarray
    left: np.ndarray
    right: np.ndarray
    leaf_value: np.ndarray
    depth: int
    classes: np.ndarray | None = None
    leaf_proba: np.ndarray | None = None

    def __post_init__(self) -> None:
        self._gather_feature = np.where(self.feature >= 0, self.feature, 0)
        self._adjacent = bool(
            np.all((self.feature < 0) | (self.right == self.left + 1))
        )

    @property
    def n_trees(self) -> int:
        return int(self.roots.shape[0])

    @property
    def n_nodes(self) -> int:
        return int(self.feature.shape[0])

    @property
    def n_leaves(self) -> int:
        return int((self.feature < 0).sum())

    # ------------------------------------------------------------------

    def apply_all(self, X: np.ndarray) -> np.ndarray:
        """Leaf index reached in every tree by every row.

        Returns an ``(n_trees, n_samples)`` int64 matrix.  The descent
        advances all trees and all samples one level per iteration;
        entries that reached a leaf self-loop (leaf ``left``/``right``
        point at the leaf itself), so no masking is required.  Samples
        are processed in column chunks to keep the per-level temporaries
        cache-resident (see :mod:`repro.trees.compiled`).
        """
        X = np.ascontiguousarray(X, dtype=np.float64)
        n = X.shape[0]
        if self.depth == 0 or n == 0:
            return np.repeat(self.roots[:, None], n, axis=1)
        out = np.empty((self.n_trees, n), dtype=np.int64)
        for start in range(0, n, _COLUMN_CHUNK):
            stop = min(start + _COLUMN_CHUNK, n)
            idx = np.repeat(self.roots[:, None], stop - start, axis=1)
            out[:, start:stop] = _descend(self, X[start:stop], idx)
        return out

    def predict_all(self, X: np.ndarray) -> np.ndarray:
        """Per-tree leaf payloads, shape ``(n_trees, n_samples)``.

        For a forest this is exactly ``RandomForestClassifier.predict_all``
        (per-tree labels); for a boosted ensemble it is the per-stage
        raw tree values (multiply by the learning rate for
        contributions).
        """
        return self.leaf_value[self.apply_all(X)]

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Majority-vote ensemble prediction (classification only)."""
        if self.classes is None:
            raise ValidationError(
                "this CompiledEnsemble was compiled without classes; "
                "majority voting is undefined"
            )
        return majority_vote(self.predict_all(X), self.classes)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Average per-tree class distributions, columns as ``classes``."""
        if self.leaf_proba is None:
            raise ValidationError(
                "this CompiledEnsemble was compiled without classes; "
                "recompile from a classifier ensemble to enable predict_proba"
            )
        return self.leaf_proba[self.apply_all(X)].sum(axis=0) / self.n_trees


def compile_trees(
    tree_roots, classes=None, value_dtype=np.int64
) -> CompiledEnsemble:
    """Pack a list of tree roots into one :class:`CompiledEnsemble`.

    Parameters mirror :func:`repro.trees.compiled.compile_tree`, applied
    to every root with all nodes appended to the same table.
    """
    tree_roots = list(tree_roots)
    if not tree_roots:
        raise ValidationError("cannot compile an empty list of trees")
    feature: list = []
    threshold: list = []
    left: list = []
    right: list = []
    leaf_value: list = []
    class_position = None
    proba_rows: list | None = None
    if classes is not None:
        classes = np.asarray(classes)
        class_position = {int(c): i for i, c in enumerate(classes)}
        proba_rows = []

    roots = []
    depth = 0
    for root in tree_roots:
        root_index, tree_depth = flatten_tree(
            root,
            feature=feature,
            threshold=threshold,
            left=left,
            right=right,
            leaf_value=leaf_value,
            leaf_proba=proba_rows,
            class_position=class_position,
        )
        roots.append(root_index)
        depth = max(depth, tree_depth)

    return CompiledEnsemble(
        roots=np.asarray(roots, dtype=np.int64),
        feature=np.asarray(feature, dtype=np.int64),
        threshold=np.asarray(threshold, dtype=np.float64),
        left=np.asarray(left, dtype=np.int64),
        right=np.asarray(right, dtype=np.int64),
        leaf_value=np.asarray(leaf_value, dtype=value_dtype),
        depth=depth,
        classes=classes,
        leaf_proba=np.asarray(proba_rows, dtype=np.float64)
        if proba_rows is not None
        else None,
    )


def compile_forest(forest) -> CompiledEnsemble:
    """Compile a fitted :class:`~repro.ensemble.RandomForestClassifier`."""
    if forest.trees_ is None:
        raise NotFittedError("cannot compile an unfitted forest")
    return compile_trees(
        [tree.root_ for tree in forest.trees_],
        classes=forest.classes_,
        value_dtype=np.int64,
    )


def compile_boosted(model) -> CompiledEnsemble:
    """Compile a fitted :class:`~repro.ensemble.GradientBoostingClassifier`.

    The packed ``leaf_value`` holds the raw regression-tree outputs;
    ``stage_contributions`` scales them by the learning rate.
    """
    if model.trees_ is None:
        raise NotFittedError("cannot compile an unfitted boosted ensemble")
    return compile_trees(
        [tree.root_ for tree in model.trees_],
        classes=None,
        value_dtype=np.float64,
    )
