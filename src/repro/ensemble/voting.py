"""Aggregation of per-tree predictions into ensemble predictions.

The paper's ensembles aggregate by majority voting; verification however
reads the *raw per-tree outputs* (``predict_all``), so voting lives in
its own small module rather than being fused into prediction.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ValidationError

__all__ = ["majority_vote", "vote_margin"]


def majority_vote(all_predictions: np.ndarray, classes: np.ndarray) -> np.ndarray:
    """Majority vote over per-tree predictions.

    Parameters
    ----------
    all_predictions:
        Array of shape ``(n_trees, n_samples)`` with label values.
    classes:
        Sorted array of possible labels.

    Returns
    -------
    numpy.ndarray
        Winning label per sample.  Ties are broken in favour of the
        smallest label, which keeps voting deterministic (with the
        paper's binary ``{-1, +1}`` labels a tie resolves to ``-1``).
    """
    all_predictions = np.asarray(all_predictions)
    if all_predictions.ndim != 2:
        raise ValidationError(
            f"all_predictions must be 2-D (n_trees, n_samples), got shape "
            f"{all_predictions.shape}"
        )
    classes = np.asarray(classes)
    counts = np.zeros((all_predictions.shape[1], classes.shape[0]), dtype=np.int64)
    for position, label in enumerate(classes):
        counts[:, position] = (all_predictions == label).sum(axis=0)
    if (counts.sum(axis=1) != all_predictions.shape[0]).any():
        raise ValidationError("all_predictions contains labels outside `classes`")
    return classes[np.argmax(counts, axis=1)]


def vote_margin(all_predictions: np.ndarray, positive_label: int = 1) -> np.ndarray:
    """Fraction of trees voting for ``positive_label``, per sample.

    Handy as a pseudo-probability for binary ensembles.
    """
    all_predictions = np.asarray(all_predictions)
    if all_predictions.ndim != 2:
        raise ValidationError(
            f"all_predictions must be 2-D (n_trees, n_samples), got shape "
            f"{all_predictions.shape}"
        )
    return (all_predictions == positive_label).mean(axis=0)
