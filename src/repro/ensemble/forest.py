"""Random forest **without bootstrap**, with per-tree feature subspaces.

This is the exact model class the paper watermarks:

- no bootstrap: every tree sees the whole training set, so the sample
  re-weighting of Algorithm 1 acts on *every* tree;
- "each tree is a classifier trained on a subset of the features of the
  entire training set": each tree draws a random feature subspace;
- the ensemble can expose *per-tree* predictions (``predict_all``, the
  analogue of R's ``predict.all`` that the verification protocol needs).
"""

from __future__ import annotations

from copy import copy

import numpy as np

from .._validation import (
    check_sample_weight,
    check_X,
    check_X_y,
    spawn_seed_sequences,
)
from ..exceptions import NotFittedError, ValidationError
from ..parallel import partition, resolve_n_jobs, run_batches, shared_payload
from ..trees.compiled import adopt_compiled, ensure_compiled, lazy_compiled
from ..trees.presort import adopt_presort, presorted_dataset
from ..trees.export import ensemble_structure
from ..trees.tree import DecisionTreeClassifier
from .compiled import CompiledEnsemble, compile_forest
from .voting import majority_vote

__all__ = ["RandomForestClassifier"]


def _fit_tree_slots(
    X: np.ndarray,
    y: np.ndarray,
    weights: np.ndarray,
    tree_params: dict,
    subspace_size: int,
    seeds: list[np.random.SeedSequence],
) -> list[tuple[DecisionTreeClassifier, np.ndarray]]:
    """Fit one tree per seed sequence; the process-pool work unit.

    Each slot's subspace draw and per-split sampling both come from the
    slot's private stream, so the result depends only on
    ``(X, y, weights, tree_params, seed)`` — not on which worker fits it
    or which other slots are being (re)fitted alongside.

    The parent warms the dataset's presort cache and ships it as the
    pool's shared payload; fork workers inherit it copy-on-write and
    re-bind it to their pickled copy of ``X`` here, so no worker re-sorts
    what the parent already sorted.  Adoption is best-effort — without
    it (spawn platforms, no payload) each worker presorts once itself.
    """
    adopt_presort(shared_payload(), X)
    fitted = []
    for seed in seeds:
        rng = np.random.default_rng(seed)
        subset = np.sort(rng.choice(X.shape[1], size=subspace_size, replace=False))
        tree = DecisionTreeClassifier(
            feature_subset=subset, random_state=rng, **tree_params
        )
        tree.fit(X, y, sample_weight=weights)
        fitted.append((tree, subset))
    return fitted


class RandomForestClassifier:
    """Feature-subspace random forest without bootstrap.

    Parameters
    ----------
    n_estimators:
        Number of trees ``m`` in the ensemble.
    criterion, max_depth, max_leaf_nodes, min_samples_split,
    min_samples_leaf, min_impurity_decrease, max_features:
        Passed to each :class:`~repro.trees.DecisionTreeClassifier`.
    tree_feature_fraction:
        Fraction of the features assigned to each tree's private
        subspace (sampled without replacement per tree).  ``1.0`` gives
        every tree the full feature set.
    splitter:
        Split-search engine for every tree: ``"presorted"`` (default)
        presorts each feature column once per dataset and reuses the
        orders across all trees, refit rounds and weight changes;
        ``"local"`` is the node-local re-sorting escape hatch.  Fitted
        forests are bit-for-bit identical across the two engines.
    random_state:
        Seed/generator controlling subspace assignment and per-split
        feature sampling.  Internally expanded into one
        :class:`numpy.random.SeedSequence` child per tree slot, so trees
        are deterministic and independent of fitting order.
    n_jobs:
        Trees fitted concurrently: ``None``/``1`` serial (default),
        ``-1`` one process per core, ``k`` at most ``k`` worker
        processes.  Results are bitwise-identical across all settings.

    Notes
    -----
    Bootstrap resampling is deliberately not implemented: the paper's
    scheme requires all trees to be trained on the full (re-weighted)
    training set so that trigger behaviour can be forced in every tree.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        criterion: str = "gini",
        max_depth: int | None = None,
        max_leaf_nodes: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        min_impurity_decrease: float = 0.0,
        max_features=None,
        tree_feature_fraction: float = 0.7,
        splitter: str = "presorted",
        random_state=None,
        n_jobs: int | None = None,
    ) -> None:
        self.n_estimators = n_estimators
        self.criterion = criterion
        self.max_depth = max_depth
        self.max_leaf_nodes = max_leaf_nodes
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.min_impurity_decrease = min_impurity_decrease
        self.max_features = max_features
        self.tree_feature_fraction = tree_feature_fraction
        self.splitter = splitter
        self.random_state = random_state
        self.n_jobs = n_jobs
        self.trees_: list[DecisionTreeClassifier] | None = None
        self.feature_subsets_: list[np.ndarray] | None = None
        self._tree_seeds_: list[np.random.SeedSequence] | None = None
        self.classes_: np.ndarray | None = None
        self.n_features_in_: int | None = None
        self._compiled_: CompiledEnsemble | None = None
        self._compiled_sources_: tuple | None = None

    # ------------------------------------------------------------------

    def get_params(self) -> dict:
        """Constructor parameters as a dict (grid-search support)."""
        return {
            "n_estimators": self.n_estimators,
            "criterion": self.criterion,
            "max_depth": self.max_depth,
            "max_leaf_nodes": self.max_leaf_nodes,
            "min_samples_split": self.min_samples_split,
            "min_samples_leaf": self.min_samples_leaf,
            "min_impurity_decrease": self.min_impurity_decrease,
            "max_features": self.max_features,
            "tree_feature_fraction": self.tree_feature_fraction,
            "splitter": self.splitter,
            "random_state": self.random_state,
            "n_jobs": self.n_jobs,
        }

    def clone_with(self, **overrides) -> "RandomForestClassifier":
        """A fresh unfitted copy with some parameters replaced."""
        params = self.get_params()
        unknown = set(overrides) - set(params)
        if unknown:
            raise ValidationError(f"unknown parameters: {sorted(unknown)}")
        params.update(overrides)
        return RandomForestClassifier(**params)

    # ------------------------------------------------------------------

    def _subspace_size(self, n_features: int) -> int:
        if not 0.0 < self.tree_feature_fraction <= 1.0:
            raise ValidationError(
                f"tree_feature_fraction must be in (0, 1], got "
                f"{self.tree_feature_fraction}"
            )
        return max(1, int(round(self.tree_feature_fraction * n_features)))

    def _tree_params(self) -> dict:
        """Constructor kwargs shared by every tree slot."""
        return {
            "criterion": self.criterion,
            "max_depth": self.max_depth,
            "max_leaf_nodes": self.max_leaf_nodes,
            "min_samples_split": self.min_samples_split,
            "min_samples_leaf": self.min_samples_leaf,
            "min_impurity_decrease": self.min_impurity_decrease,
            "max_features": self.max_features,
            "splitter": self.splitter,
        }

    def _fit_slots(
        self,
        X: np.ndarray,
        y: np.ndarray,
        weights: np.ndarray,
        seeds: list[np.random.SeedSequence],
    ) -> list[tuple[DecisionTreeClassifier, np.ndarray]]:
        """Fit one tree per seed, serially or in a process pool.

        Work is batched one task per worker (not per tree) so the
        training matrix is pickled at most ``n_jobs`` times; batch
        results are flattened back into seed order, keeping the output
        independent of the execution plan.

        With the presorted splitter the parent computes (or re-uses) the
        dataset's sort orders *before* dispatch and hands them to the
        pool as the fork-inherited shared payload — one presort serves
        every tree of every round, in every worker.
        """
        jobs = resolve_n_jobs(self.n_jobs, n_tasks=len(seeds))
        subspace_size = self._subspace_size(X.shape[1])
        presort = presorted_dataset(X) if self.splitter == "presorted" else None
        batches = [
            (X, y, weights, self._tree_params(), subspace_size, chunk)
            for chunk in partition(seeds, jobs)
        ]
        results = run_batches(_fit_tree_slots, batches, jobs, shared=presort)
        return [slot for batch in results for slot in batch]

    def fit(self, X, y, sample_weight=None) -> "RandomForestClassifier":
        """Fit ``n_estimators`` trees on the full (weighted) training set."""
        if self.n_estimators < 1:
            raise ValidationError(f"n_estimators must be >= 1, got {self.n_estimators}")
        X, y = check_X_y(X, y)
        weights = check_sample_weight(sample_weight, X.shape[0])
        seeds = spawn_seed_sequences(self.random_state, self.n_estimators)

        fitted = self._fit_slots(X, y, weights, seeds)
        self.trees_ = [tree for tree, _ in fitted]
        self.feature_subsets_ = [subset for _, subset in fitted]
        self._tree_seeds_ = seeds
        self.classes_ = np.unique(np.asarray(y))
        self.n_features_in_ = X.shape[1]
        self._compiled_ = None
        self._compiled_sources_ = None
        return self

    def refit_trees(self, indices, X, y, sample_weight=None) -> "RandomForestClassifier":
        """Refit only the tree slots in ``indices`` on ``(X, y, weights)``.

        Each refitted slot redraws its feature subspace and tree from
        the next child of its private seed stream — exactly what a full
        retrain would give that slot, without touching the others.  This
        is the primitive behind incremental watermark embedding: trees
        already compliant with the trigger constraint are kept, only the
        stubborn ones retrain against the re-weighted data.

        The slot streams make the result deterministic: it depends only
        on the forest's seed and on *how many times each slot has been
        refitted*, not on which other slots retrain in the same call.
        """
        trees = self._check_fitted()
        X, y = check_X_y(X, y)
        X = self._check_n_features(X)
        weights = check_sample_weight(sample_weight, X.shape[0])
        indices = np.unique(np.asarray(indices, dtype=np.int64))
        if indices.size == 0:
            return self
        if indices.min() < 0 or indices.max() >= len(trees):
            raise ValidationError(
                f"tree indices must be in [0, {len(trees)}), got "
                f"[{indices.min()}, {indices.max()}]"
            )
        if self._tree_seeds_ is None:
            # Restored/hand-assembled forest with no recorded streams:
            # fall back to fresh entropy (still correct, not replayable).
            self._tree_seeds_ = spawn_seed_sequences(None, len(trees))

        seeds = [self._tree_seeds_[i].spawn(1)[0] for i in indices]
        fitted = self._fit_slots(X, y, weights, seeds)
        assert self.feature_subsets_ is not None
        for slot, (tree, subset) in zip(indices, fitted):
            self.trees_[int(slot)] = tree
            self.feature_subsets_[int(slot)] = subset
        self._compiled_ = None
        self._compiled_sources_ = None
        return self

    def with_roots(self, new_roots) -> "RandomForestClassifier":
        """A fitted clone of this forest with every tree root replaced.

        This is the single cloning path for model-surgery call sites
        (modification attacks, pruning sweeps): the clone shares
        training metadata (``classes_``, ``n_features_in_``, feature
        subspaces) but carries fresh shallow-copied trees whose
        compiled-engine caches are explicitly reset — a copied tree must
        never serve predictions from the donor's node table, nor pin the
        donor's root graph in memory through a stale cache entry.
        """
        trees = self._check_fitted()
        new_roots = list(new_roots)
        if len(new_roots) != len(trees):
            raise ValidationError(
                f"expected {len(trees)} roots, got {len(new_roots)}"
            )
        clone = self.clone_with()
        clone.classes_ = self.classes_
        clone.n_features_in_ = self.n_features_in_
        clone.feature_subsets_ = list(self.feature_subsets_)
        replaced = []
        for tree, root in zip(trees, new_roots):
            new_tree = copy(tree)
            new_tree.root_ = root
            new_tree._compiled_ = None
            new_tree._compiled_sources_ = None
            replaced.append(new_tree)
        clone.trees_ = replaced
        return clone

    # ------------------------------------------------------------------

    def _check_fitted(self) -> list[DecisionTreeClassifier]:
        if self.trees_ is None:
            raise NotFittedError("this RandomForestClassifier is not fitted yet")
        return self.trees_

    def _roots_key(self) -> tuple:
        """The fitted roots, the cache-freshness key for the engine.

        Attacks and pruning replace ``root_`` objects wholesale rather
        than mutating nodes in place, so root identity is a sound
        staleness signal for the compiled node table.
        """
        return tuple(tree.root_ for tree in self._check_fitted())

    def compile(self) -> CompiledEnsemble:
        """Pack all trees into one compiled node table (cached).

        Lazily invoked by the prediction methods on the first
        large-enough batch; call explicitly to pay the flattening cost
        up front (e.g. before serving).  The cache refreshes itself when
        tree roots are replaced.
        """
        return ensure_compiled(self, self._roots_key(), lambda: compile_forest(self))

    def _adopt_compiled(self, engine: CompiledEnsemble) -> None:
        """Install a pre-built compiled table (persistence restore path)."""
        adopt_compiled(self, self._roots_key(), engine)

    def _compiled_engine(self, n_rows: int) -> CompiledEnsemble | None:
        """Compiled engine to predict with, or ``None`` for object mode."""
        return lazy_compiled(
            self, self._roots_key(), n_rows, lambda: compile_forest(self)
        )

    def _check_n_features(self, X: np.ndarray) -> np.ndarray:
        if X.shape[1] != self.n_features_in_:
            raise ValidationError(
                f"X has {X.shape[1]} features but the forest was fitted with "
                f"{self.n_features_in_}"
            )
        return X

    def predict_all(self, X) -> np.ndarray:
        """Per-tree predictions, shape ``(n_trees, n_samples)``.

        This is the query interface the paper assumes the deployed model
        exposes (R's ``predict.all``); black-box watermark verification
        is built entirely on it.
        """
        trees = self._check_fitted()
        X = self._check_n_features(check_X(X))
        engine = self._compiled_engine(X.shape[0])
        if engine is not None:
            return engine.predict_all(X)
        return np.stack([tree.predict(X) for tree in trees], axis=0)

    def predict(self, X) -> np.ndarray:
        """Majority-vote ensemble prediction."""
        all_predictions = self.predict_all(X)  # raises NotFittedError first
        assert self.classes_ is not None
        return majority_vote(all_predictions, self.classes_)

    def predict_proba(self, X) -> np.ndarray:
        """Average of the trees' leaf-frequency probabilities."""
        trees = self._check_fitted()
        X = self._check_n_features(check_X(X))
        assert self.classes_ is not None
        engine = self._compiled_engine(X.shape[0])
        if engine is not None and engine.leaf_proba is not None:
            return engine.predict_proba(X)
        class_position = {int(c): i for i, c in enumerate(self.classes_)}
        total = np.zeros((X.shape[0], self.classes_.shape[0]), dtype=np.float64)
        for tree in trees:
            proba = tree.predict_proba(X)
            assert tree.classes_ is not None
            for local, label in enumerate(tree.classes_):
                total[:, class_position[int(label)]] += proba[:, local]
        return total / len(trees)

    def score(self, X, y, sample_weight=None) -> float:
        """Weighted accuracy of the majority vote on ``(X, y)``."""
        X, y = check_X_y(X, y)
        weights = check_sample_weight(sample_weight, X.shape[0])
        correct = (self.predict(X) == np.asarray(y)).astype(np.float64)
        return float(np.average(correct, weights=weights))

    # ------------------------------------------------------------------

    @property
    def n_trees_(self) -> int:
        """Number of fitted trees."""
        return len(self._check_fitted())

    def roots(self) -> list:
        """Root nodes of the fitted trees (for solvers and analysis)."""
        return [tree.root_ for tree in self._check_fitted()]

    def structure(self) -> dict[str, np.ndarray]:
        """Per-tree ``depth`` and ``n_leaves`` arrays (detection attack input)."""
        return ensemble_structure(self.roots())

    def total_leaves(self) -> int:
        """Total number of leaves across the ensemble.

        The paper uses this to explain forgery hardness: the ijcnn1
        ensemble has more than twice the leaves of the others, making
        its satisfiability instances much harder.
        """
        return int(self.structure()["n_leaves"].sum())
