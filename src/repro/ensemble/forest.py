"""Random forest **without bootstrap**, with per-tree feature subspaces.

This is the exact model class the paper watermarks:

- no bootstrap: every tree sees the whole training set, so the sample
  re-weighting of Algorithm 1 acts on *every* tree;
- "each tree is a classifier trained on a subset of the features of the
  entire training set": each tree draws a random feature subspace;
- the ensemble can expose *per-tree* predictions (``predict_all``, the
  analogue of R's ``predict.all`` that the verification protocol needs).
"""

from __future__ import annotations

from copy import copy

import numpy as np

from .._validation import (
    check_sample_weight,
    check_X,
    check_X_y,
    spawn_seed_sequences,
)
from ..exceptions import NotFittedError, ValidationError
from ..parallel import partition, resolve_n_jobs, run_batches, shared_payload
from ..trees.compiled import adopt_compiled, ensure_compiled, lazy_compiled, model_lock
from ..trees.presort import adopt_presort, presorted_dataset
from ..trees.export import ensemble_structure
from ..trees.tree import DecisionTreeClassifier
from .compiled import CompiledEnsemble, compile_forest
from .voting import majority_vote

__all__ = ["RandomForestClassifier"]


def _fit_tree_slots(
    X: np.ndarray,
    y: np.ndarray,
    weights: np.ndarray,
    tree_params: dict,
    subspace_size: int,
    seeds: list[np.random.SeedSequence],
) -> list[tuple[DecisionTreeClassifier, np.ndarray]]:
    """Fit one tree per seed sequence; the process-pool work unit.

    Each slot's subspace draw and per-split sampling both come from the
    slot's private stream, so the result depends only on
    ``(X, y, weights, tree_params, seed)`` — not on which worker fits it
    or which other slots are being (re)fitted alongside.

    The parent warms the dataset's presort cache and ships it as the
    pool's shared payload; fork workers inherit it copy-on-write and
    re-bind it to their pickled copy of ``X`` here, so no worker re-sorts
    what the parent already sorted.  Adoption is best-effort — without
    it (spawn platforms, no payload) each worker presorts once itself.
    """
    adopt_presort(shared_payload(), X)
    fitted = []
    for seed in seeds:
        rng = np.random.default_rng(seed)
        subset = np.sort(rng.choice(X.shape[1], size=subspace_size, replace=False))
        tree = DecisionTreeClassifier(
            feature_subset=subset, random_state=rng, **tree_params
        )
        tree.fit(X, y, sample_weight=weights)
        fitted.append((tree, subset))
    return fitted


class RandomForestClassifier:
    """Feature-subspace random forest without bootstrap.

    Parameters
    ----------
    n_estimators:
        Number of trees ``m`` in the ensemble.
    criterion, max_depth, max_leaf_nodes, min_samples_split,
    min_samples_leaf, min_impurity_decrease, max_features:
        Passed to each :class:`~repro.trees.DecisionTreeClassifier`.
    tree_feature_fraction:
        Fraction of the features assigned to each tree's private
        subspace (sampled without replacement per tree).  ``1.0`` gives
        every tree the full feature set.
    splitter:
        Split-search engine for every tree: ``"presorted"`` (default)
        presorts each feature column once per dataset and reuses the
        orders across all trees, refit rounds and weight changes;
        ``"local"`` is the node-local re-sorting escape hatch.  Fitted
        forests are bit-for-bit identical across the two engines.
    random_state:
        Seed/generator controlling subspace assignment and per-split
        feature sampling.  Internally expanded into one
        :class:`numpy.random.SeedSequence` child per tree slot, so trees
        are deterministic and independent of fitting order.
    n_jobs:
        Trees fitted concurrently: ``None``/``1`` serial (default),
        ``-1`` one process per core, ``k`` at most ``k`` worker
        processes.  Results are bitwise-identical across all settings.

    Notes
    -----
    Bootstrap resampling is deliberately not implemented: the paper's
    scheme requires all trees to be trained on the full (re-weighted)
    training set so that trigger behaviour can be forced in every tree.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        criterion: str = "gini",
        max_depth: int | None = None,
        max_leaf_nodes: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        min_impurity_decrease: float = 0.0,
        max_features=None,
        tree_feature_fraction: float = 0.7,
        splitter: str = "presorted",
        random_state=None,
        n_jobs: int | None = None,
    ) -> None:
        self.n_estimators = n_estimators
        self.criterion = criterion
        self.max_depth = max_depth
        self.max_leaf_nodes = max_leaf_nodes
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.min_impurity_decrease = min_impurity_decrease
        self.max_features = max_features
        self.tree_feature_fraction = tree_feature_fraction
        self.splitter = splitter
        self.random_state = random_state
        self.n_jobs = n_jobs
        self._trees_: list[DecisionTreeClassifier] | None = None
        self.feature_subsets_: list[np.ndarray] | None = None
        self._tree_seeds_: list[np.random.SeedSequence] | None = None
        self.classes_: np.ndarray | None = None
        self.n_features_in_: int | None = None
        self._compiled_: CompiledEnsemble | None = None
        self._compiled_sources_: tuple | None = None
        # Lazy-restore state (binary/mmap load path): while ``_lazy_key_``
        # is set the object trees have not been rebuilt yet and the
        # compiled engine answers everything; ``_mmap_source_`` remembers
        # ``(path, format, mmap_mode)`` so pickling ships a file handle
        # instead of the node tables.
        self._lazy_key_: object | None = None
        self._mmap_source_: tuple | None = None

    # ------------------------------------------------------------------

    @property
    def trees_(self) -> list[DecisionTreeClassifier] | None:
        """The fitted trees, rebuilding them from the engine if lazy.

        A forest restored from the binary format starts *lazy*: only the
        compiled node table is resident and predictions run through it.
        First access to ``trees_`` (audits, serialisation, refitting)
        reconstructs the ``InternalNode``/``Leaf`` object graph from the
        table and probe-checks it against the engine.
        """
        if self._trees_ is None and self._lazy_key_ is not None:
            self._materialize_trees()
        return self._trees_

    @trees_.setter
    def trees_(self, value: list[DecisionTreeClassifier] | None) -> None:
        # Assigning trees makes the object graph authoritative again.
        self._trees_ = value
        self._lazy_key_ = None
        self._mmap_source_ = None

    # ------------------------------------------------------------------

    def get_params(self) -> dict:
        """Constructor parameters as a dict (grid-search support)."""
        return {
            "n_estimators": self.n_estimators,
            "criterion": self.criterion,
            "max_depth": self.max_depth,
            "max_leaf_nodes": self.max_leaf_nodes,
            "min_samples_split": self.min_samples_split,
            "min_samples_leaf": self.min_samples_leaf,
            "min_impurity_decrease": self.min_impurity_decrease,
            "max_features": self.max_features,
            "tree_feature_fraction": self.tree_feature_fraction,
            "splitter": self.splitter,
            "random_state": self.random_state,
            "n_jobs": self.n_jobs,
        }

    def clone_with(self, **overrides) -> "RandomForestClassifier":
        """A fresh unfitted copy with some parameters replaced."""
        params = self.get_params()
        unknown = set(overrides) - set(params)
        if unknown:
            raise ValidationError(f"unknown parameters: {sorted(unknown)}")
        params.update(overrides)
        return RandomForestClassifier(**params)

    # ------------------------------------------------------------------

    def _subspace_size(self, n_features: int) -> int:
        if not 0.0 < self.tree_feature_fraction <= 1.0:
            raise ValidationError(
                f"tree_feature_fraction must be in (0, 1], got "
                f"{self.tree_feature_fraction}"
            )
        return max(1, int(round(self.tree_feature_fraction * n_features)))

    def _tree_params(self) -> dict:
        """Constructor kwargs shared by every tree slot."""
        return {
            "criterion": self.criterion,
            "max_depth": self.max_depth,
            "max_leaf_nodes": self.max_leaf_nodes,
            "min_samples_split": self.min_samples_split,
            "min_samples_leaf": self.min_samples_leaf,
            "min_impurity_decrease": self.min_impurity_decrease,
            "max_features": self.max_features,
            "splitter": self.splitter,
        }

    def _fit_slots(
        self,
        X: np.ndarray,
        y: np.ndarray,
        weights: np.ndarray,
        seeds: list[np.random.SeedSequence],
    ) -> list[tuple[DecisionTreeClassifier, np.ndarray]]:
        """Fit one tree per seed, serially or in a process pool.

        Work is batched one task per worker (not per tree) so the
        training matrix is pickled at most ``n_jobs`` times; batch
        results are flattened back into seed order, keeping the output
        independent of the execution plan.

        With the presorted splitter the parent computes (or re-uses) the
        dataset's sort orders *before* dispatch and hands them to the
        pool as the fork-inherited shared payload — one presort serves
        every tree of every round, in every worker.
        """
        jobs = resolve_n_jobs(self.n_jobs, n_tasks=len(seeds))
        subspace_size = self._subspace_size(X.shape[1])
        presort = presorted_dataset(X) if self.splitter == "presorted" else None
        batches = [
            (X, y, weights, self._tree_params(), subspace_size, chunk)
            for chunk in partition(seeds, jobs)
        ]
        results = run_batches(_fit_tree_slots, batches, jobs, shared=presort)
        return [slot for batch in results for slot in batch]

    def fit(self, X, y, sample_weight=None) -> "RandomForestClassifier":
        """Fit ``n_estimators`` trees on the full (weighted) training set."""
        if self.n_estimators < 1:
            raise ValidationError(f"n_estimators must be >= 1, got {self.n_estimators}")
        X, y = check_X_y(X, y)
        weights = check_sample_weight(sample_weight, X.shape[0])
        seeds = spawn_seed_sequences(self.random_state, self.n_estimators)

        fitted = self._fit_slots(X, y, weights, seeds)
        self.trees_ = [tree for tree, _ in fitted]
        self.feature_subsets_ = [subset for _, subset in fitted]
        self._tree_seeds_ = seeds
        self.classes_ = np.unique(np.asarray(y))
        self.n_features_in_ = X.shape[1]
        self._compiled_ = None
        self._compiled_sources_ = None
        return self

    def refit_trees(self, indices, X, y, sample_weight=None) -> "RandomForestClassifier":
        """Refit only the tree slots in ``indices`` on ``(X, y, weights)``.

        Each refitted slot redraws its feature subspace and tree from
        the next child of its private seed stream — exactly what a full
        retrain would give that slot, without touching the others.  This
        is the primitive behind incremental watermark embedding: trees
        already compliant with the trigger constraint are kept, only the
        stubborn ones retrain against the re-weighted data.

        The slot streams make the result deterministic: it depends only
        on the forest's seed and on *how many times each slot has been
        refitted*, not on which other slots retrain in the same call.
        """
        trees = self._check_fitted()
        X, y = check_X_y(X, y)
        X = self._check_n_features(X)
        weights = check_sample_weight(sample_weight, X.shape[0])
        indices = np.unique(np.asarray(indices, dtype=np.int64))
        if indices.size == 0:
            return self
        if indices.min() < 0 or indices.max() >= len(trees):
            raise ValidationError(
                f"tree indices must be in [0, {len(trees)}), got "
                f"[{indices.min()}, {indices.max()}]"
            )
        # repro: allow[RPR006] refit_trees mutates trees_/feature_subsets_ wholesale — concurrent refit is outside the threading contract, so this one-shot fallback needs no lock
        if self._tree_seeds_ is None:
            # Restored/hand-assembled forest with no recorded streams:
            # fall back to fresh entropy (still correct, not replayable).
            self._tree_seeds_ = spawn_seed_sequences(None, len(trees))

        seeds = [self._tree_seeds_[i].spawn(1)[0] for i in indices]
        fitted = self._fit_slots(X, y, weights, seeds)
        assert self.feature_subsets_ is not None
        for slot, (tree, subset) in zip(indices, fitted):
            self.trees_[int(slot)] = tree
            self.feature_subsets_[int(slot)] = subset
        self._compiled_ = None
        self._compiled_sources_ = None
        return self

    def with_roots(self, new_roots) -> "RandomForestClassifier":
        """A fitted clone of this forest with every tree root replaced.

        This is the single cloning path for model-surgery call sites
        (modification attacks, pruning sweeps): the clone shares
        training metadata (``classes_``, ``n_features_in_``, feature
        subspaces) but carries fresh shallow-copied trees whose
        compiled-engine caches are explicitly reset — a copied tree must
        never serve predictions from the donor's node table, nor pin the
        donor's root graph in memory through a stale cache entry.
        """
        trees = self._check_fitted()
        new_roots = list(new_roots)
        if len(new_roots) != len(trees):
            raise ValidationError(
                f"expected {len(trees)} roots, got {len(new_roots)}"
            )
        clone = self.clone_with()
        clone.classes_ = self.classes_
        clone.n_features_in_ = self.n_features_in_
        clone.feature_subsets_ = list(self.feature_subsets_)
        replaced = []
        for tree, root in zip(trees, new_roots):
            new_tree = copy(tree)
            new_tree.root_ = root
            new_tree._compiled_ = None
            new_tree._compiled_sources_ = None
            replaced.append(new_tree)
        clone.trees_ = replaced
        return clone

    # ------------------------------------------------------------------

    def _ensure_fitted(self) -> None:
        """Raise :class:`NotFittedError` if unfitted — without forcing a
        lazy forest to materialise its object trees."""
        if self._trees_ is None and self._lazy_key_ is None:
            raise NotFittedError("this RandomForestClassifier is not fitted yet")

    def _check_fitted(self) -> list[DecisionTreeClassifier]:
        self._ensure_fitted()
        return self.trees_  # materialises if lazy

    def _roots_key(self) -> tuple:
        """The fitted roots, the cache-freshness key for the engine.

        Attacks and pruning replace ``root_`` objects wholesale rather
        than mutating nodes in place, so root identity is a sound
        staleness signal for the compiled node table.  A lazy forest has
        no roots yet; its sentinel key pins the adopted engine until the
        object graph is rebuilt.
        """
        self._ensure_fitted()
        if self._trees_ is None:
            return (self._lazy_key_,)
        return tuple(tree.root_ for tree in self._trees_)

    def _adopt_lazy(self, engine: CompiledEnsemble, mmap_source: tuple | None = None) -> None:
        """Install an engine-only restore (binary load path).

        The forest is immediately servable through ``engine``; the
        auditable object trees are rebuilt on first ``trees_`` access.
        ``mmap_source`` is the ``(path, format, mmap_mode)`` triple to
        reopen on unpickle so worker processes share the page cache
        instead of each holding a private copy of the node tables.
        """
        self._trees_ = None
        self._lazy_key_ = object()
        self._mmap_source_ = mmap_source
        self._compiled_ = engine
        self._compiled_sources_ = (self._lazy_key_,)

    def _trees_from_engine(self, engine: CompiledEnsemble) -> list[DecisionTreeClassifier]:
        """Rebuild per-tree object graphs from the compiled node table.

        The rebuilt trees are probe-checked against the engine before
        being returned — the binary loader trusts nothing it cannot
        verify (CRCs catch corruption, the probe catches table/metadata
        mismatches), mirroring ``_check_adopted_engine`` on the JSON
        restore path.
        """
        from ..exceptions import SerializationError
        from ..trees.node import predict_batch

        if self.feature_subsets_ is None or len(self.feature_subsets_) != engine.n_trees:
            raise SerializationError(
                "feature subsets disagree with the compiled table tree count"
            )
        roots = engine.to_roots()
        trees = []
        for root, subset in zip(roots, self.feature_subsets_):
            tree = DecisionTreeClassifier(feature_subset=subset, **self._tree_params())
            tree.root_ = root
            tree.classes_ = self.classes_
            tree.n_features_in_ = self.n_features_in_
            trees.append(tree)
        probe = np.random.default_rng(0).standard_normal((8, self.n_features_in_))
        expected = np.stack([predict_batch(tree.root_, probe) for tree in trees])
        if not np.array_equal(engine.predict_all(probe), expected):
            raise SerializationError(
                "compiled node table disagrees with its reconstructed object "
                "graph on a probe batch; refusing to materialise it"
            )
        return trees

    def _materialize_trees(self) -> None:
        with model_lock(self):
            if self._trees_ is not None:  # another thread won the race
                return
            engine = self._compiled_
            assert engine is not None  # _adopt_lazy always installs one
            trees = self._trees_from_engine(engine)
            self._trees_ = trees
            self._lazy_key_ = None
            # Re-pin the engine cache to the real roots so it stays fresh
            # across the materialisation boundary.
            adopt_compiled(self, tuple(tree.root_ for tree in trees), engine)

    def compile(self) -> CompiledEnsemble:
        """Pack all trees into one compiled node table (cached).

        Lazily invoked by the prediction methods on the first
        large-enough batch; call explicitly to pay the flattening cost
        up front (e.g. before serving).  The cache refreshes itself when
        tree roots are replaced.
        """
        return ensure_compiled(self, self._roots_key(), lambda: compile_forest(self))

    def _adopt_compiled(self, engine: CompiledEnsemble) -> None:
        """Install a pre-built compiled table (persistence restore path)."""
        adopt_compiled(self, self._roots_key(), engine)

    def _compiled_engine(self, n_rows: int) -> CompiledEnsemble | None:
        """Compiled engine to predict with, or ``None`` for object mode."""
        return lazy_compiled(
            self, self._roots_key(), n_rows, lambda: compile_forest(self)
        )

    def _check_n_features(self, X: np.ndarray) -> np.ndarray:
        if X.shape[1] != self.n_features_in_:
            raise ValidationError(
                f"X has {X.shape[1]} features but the forest was fitted with "
                f"{self.n_features_in_}"
            )
        return X

    def predict_all(self, X) -> np.ndarray:
        """Per-tree predictions, shape ``(n_trees, n_samples)``.

        This is the query interface the paper assumes the deployed model
        exposes (R's ``predict.all``); black-box watermark verification
        is built entirely on it.
        """
        self._ensure_fitted()
        X = self._check_n_features(check_X(X))
        engine = self._compiled_engine(X.shape[0])
        if engine is not None:
            return engine.predict_all(X)
        return np.stack([tree.predict(X) for tree in self._check_fitted()], axis=0)

    def predict(self, X) -> np.ndarray:
        """Majority-vote ensemble prediction."""
        all_predictions = self.predict_all(X)  # raises NotFittedError first
        assert self.classes_ is not None
        return majority_vote(all_predictions, self.classes_)

    def predict_proba(self, X) -> np.ndarray:
        """Average of the trees' leaf-frequency probabilities."""
        self._ensure_fitted()
        X = self._check_n_features(check_X(X))
        assert self.classes_ is not None
        engine = self._compiled_engine(X.shape[0])
        if engine is not None and engine.leaf_proba is not None:
            return engine.predict_proba(X)
        trees = self._check_fitted()
        class_position = {int(c): i for i, c in enumerate(self.classes_)}
        total = np.zeros((X.shape[0], self.classes_.shape[0]), dtype=np.float64)
        for tree in trees:
            proba = tree.predict_proba(X)
            assert tree.classes_ is not None
            for local, label in enumerate(tree.classes_):
                total[:, class_position[int(label)]] += proba[:, local]
        return total / len(trees)

    def score(self, X, y, sample_weight=None) -> float:
        """Weighted accuracy of the majority vote on ``(X, y)``."""
        X, y = check_X_y(X, y)
        weights = check_sample_weight(sample_weight, X.shape[0])
        correct = (self.predict(X) == np.asarray(y)).astype(np.float64)
        return float(np.average(correct, weights=weights))

    # ------------------------------------------------------------------

    @property
    def n_trees_(self) -> int:
        """Number of fitted trees."""
        self._ensure_fitted()
        if self._trees_ is None:
            assert self._compiled_ is not None
            return int(self._compiled_.n_trees)
        return len(self._trees_)

    def roots(self) -> list:
        """Root nodes of the fitted trees (for solvers and analysis)."""
        return [tree.root_ for tree in self._check_fitted()]

    def structure(self) -> dict[str, np.ndarray]:
        """Per-tree ``depth`` and ``n_leaves`` arrays (detection attack input)."""
        return ensemble_structure(self.roots())

    def total_leaves(self) -> int:
        """Total number of leaves across the ensemble.

        The paper uses this to explain forgery hardness: the ijcnn1
        ensemble has more than twice the leaves of the others, making
        its satisfiability instances much harder.
        """
        return int(self.structure()["n_leaves"].sum())

    # ------------------------------------------------------------------
    # Pickling — worker processes share the artefact, not a copy
    # ------------------------------------------------------------------

    def __getstate__(self) -> dict:
        if self._mmap_source_ is not None and self._trees_ is None:
            # Lazy mmap-backed forest: ship the reopen handle.  The
            # receiver maps the same file, so N workers share one
            # physical page-cache copy of the node tables.
            return {"__load_from__": self._mmap_source_}
        state = dict(self.__dict__)
        if self._mmap_source_ is not None:
            # Materialised object graph travels by value, but mmap-backed
            # engine arrays must not be pickled (that would copy them
            # into every receiver); the receiver recompiles on demand.
            state["_compiled_"] = None
            state["_compiled_sources_"] = None
            state["_mmap_source_"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        if "__load_from__" in state:
            from ..persistence import load

            path, fmt, mmap_mode = state["__load_from__"]
            loaded = load(path, format=fmt, mmap_mode=mmap_mode)
            # A watermarked artefact reloads as a WatermarkedModel;
            # unwrap to the ensemble this pickle actually carried.
            forest = getattr(loaded, "ensemble", loaded)
            self.__dict__.update(forest.__dict__)
            return
        self.__dict__.update(state)
