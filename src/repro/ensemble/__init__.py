"""Tree-ensemble substrate.

- :class:`RandomForestClassifier` — feature-subspace forest *without*
  bootstrap, exposing per-tree predictions (``predict_all``); the model
  class the paper's watermarking scheme targets.
- :func:`majority_vote`, :func:`vote_margin` — prediction aggregation.
- :class:`GradientBoostingClassifier` — boosted trees (the paper's
  future-work extension target), see :mod:`repro.ensemble.boosting`.
- :class:`OneVsRestForest` — multi-class by binary decomposition, the
  encoding the paper suggests for multi-class tasks.
- :class:`CompiledEnsemble`, :func:`compile_forest`,
  :func:`compile_boosted` — single-table flat-array inference across a
  whole ensemble (see :mod:`repro.ensemble.compiled`).
"""

from .boosting import GradientBoostingClassifier
from .compiled import CompiledEnsemble, compile_boosted, compile_forest, compile_trees
from .forest import RandomForestClassifier
from .multiclass import OneVsRestForest
from .voting import majority_vote, vote_margin

__all__ = [
    "CompiledEnsemble",
    "GradientBoostingClassifier",
    "OneVsRestForest",
    "RandomForestClassifier",
    "compile_boosted",
    "compile_forest",
    "compile_trees",
    "majority_vote",
    "vote_margin",
]
