"""Multi-class classification by binary decomposition.

The paper treats binary classification and notes that "multi-class
classification can be supported by encoding it in terms of multiple
binary classification tasks".  :class:`OneVsRestForest` realises that
encoding: one binary (±1) forest per class, each of which can be
watermarked independently with the core scheme.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_random_state, check_sample_weight, check_X, check_X_y
from ..exceptions import NotFittedError, ValidationError
from .forest import RandomForestClassifier
from .voting import vote_margin

__all__ = ["OneVsRestForest"]


class OneVsRestForest:
    """One-vs-rest ensemble of binary random forests.

    For each class ``c`` a binary forest is trained on labels
    ``+1 if y == c else -1``.  Prediction picks the class whose forest
    casts the largest fraction of positive votes.

    The per-class forests are exposed via :attr:`forests_` so each can
    be watermarked with :func:`repro.core.watermark` (giving the owner
    one signature per class, i.e. an even longer effective signature).
    """

    def __init__(self, forest_factory=None, random_state=None) -> None:
        """``forest_factory`` is a zero-argument callable returning an
        unfitted :class:`RandomForestClassifier`; the default builds a
        modest 31-tree forest."""
        self.forest_factory = forest_factory
        self.random_state = random_state
        self.classes_: np.ndarray | None = None
        self.forests_: dict[int, RandomForestClassifier] | None = None

    def _make_forest(self, rng: np.random.Generator) -> RandomForestClassifier:
        if self.forest_factory is not None:
            forest = self.forest_factory()
            if not isinstance(forest, RandomForestClassifier):
                raise ValidationError(
                    "forest_factory must return a RandomForestClassifier"
                )
        else:
            forest = RandomForestClassifier(n_estimators=31)
        return forest.clone_with(random_state=rng)

    def fit(self, X, y, sample_weight=None) -> "OneVsRestForest":
        """Fit one binary forest per distinct class of ``y``."""
        X, y = check_X_y(X, y)
        weights = check_sample_weight(sample_weight, X.shape[0])
        classes = np.unique(np.asarray(y, dtype=np.int64))
        if classes.shape[0] < 2:
            raise ValidationError("y must contain at least two classes")
        rng = check_random_state(self.random_state)

        forests: dict[int, RandomForestClassifier] = {}
        for label in classes:
            binary = np.where(np.asarray(y) == label, 1, -1)
            forest = self._make_forest(rng)
            forest.fit(X, binary, sample_weight=weights)
            forests[int(label)] = forest
        self.classes_ = classes
        self.forests_ = forests
        return self

    def _check_fitted(self) -> dict[int, RandomForestClassifier]:
        if self.forests_ is None:
            raise NotFittedError("this OneVsRestForest is not fitted yet")
        return self.forests_

    def decision_matrix(self, X) -> np.ndarray:
        """Positive-vote fractions, shape ``(n_samples, n_classes)``."""
        forests = self._check_fitted()
        X = check_X(X)
        assert self.classes_ is not None
        columns = [
            vote_margin(forests[int(label)].predict_all(X)) for label in self.classes_
        ]
        return np.stack(columns, axis=1)

    def predict(self, X) -> np.ndarray:
        """Class with the strongest one-vs-rest positive vote."""
        matrix = self.decision_matrix(X)  # raises NotFittedError first
        assert self.classes_ is not None
        return self.classes_[np.argmax(matrix, axis=1)]

    def score(self, X, y) -> float:
        """Accuracy on ``(X, y)``."""
        X, y = check_X_y(X, y)
        return float(np.mean(self.predict(X) == np.asarray(y)))
