"""Gradient-boosted decision trees for binary classification.

The paper leaves "more advanced decision tree ensembles, such as those
trained using gradient boosting" as future work; this module provides
the substrate (classic logistic-loss GBDT with Newton leaf values) and
exposes the *per-tree contribution signs* that the boosted-watermark
extension (:mod:`repro.core.boosted`) embeds signatures into.
"""

from __future__ import annotations

import numpy as np

from .._validation import (
    check_binary_labels,
    check_random_state,
    check_sample_weight,
    check_X,
    check_X_y,
)
from ..exceptions import NotFittedError, ValidationError
from ..trees.compiled import ensure_compiled, lazy_compiled, model_lock
from ..trees.regression import RegressionTree
from .compiled import CompiledEnsemble, compile_boosted

__all__ = ["GradientBoostingClassifier"]


def _sigmoid(z: np.ndarray) -> np.ndarray:
    # Clipped for numerical stability at extreme margins.
    return 1.0 / (1.0 + np.exp(-np.clip(z, -60.0, 60.0)))


class GradientBoostingClassifier:
    """Binary GBDT with logistic loss and Newton-step leaf values.

    Labels must be in ``{-1, +1}`` (the paper's convention).  Internally
    they are mapped to ``{0, 1}`` for the logistic loss.

    Parameters
    ----------
    n_estimators:
        Number of boosting stages (one regression tree each).
    learning_rate:
        Shrinkage applied to every stage's contribution.
    max_depth, min_samples_leaf:
        Base-learner regularisation.
    random_state:
        Unused by the deterministic base learner but kept for interface
        symmetry with the forest (subsampling hooks may use it later).
    """

    def __init__(
        self,
        n_estimators: int = 100,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_leaf: int = 1,
        random_state=None,
    ) -> None:
        if learning_rate <= 0:
            raise ValidationError(f"learning_rate must be > 0, got {learning_rate}")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.random_state = random_state
        self._trees_: list[RegressionTree] | None = None
        self.init_score_: float = 0.0
        self.n_features_in_: int | None = None
        self._compiled_: CompiledEnsemble | None = None
        self._compiled_sources_: tuple | None = None
        # Lazy-restore state, mirroring RandomForestClassifier: while
        # ``_lazy_key_`` is set only the compiled table is resident.
        self._lazy_key_: object | None = None
        self._mmap_source_: tuple | None = None

    # ------------------------------------------------------------------

    def get_params(self) -> dict:
        """Constructor parameters as a dict (persistence support)."""
        return {
            "n_estimators": self.n_estimators,
            "learning_rate": self.learning_rate,
            "max_depth": self.max_depth,
            "min_samples_leaf": self.min_samples_leaf,
            "random_state": self.random_state,
        }

    @property
    def trees_(self) -> list[RegressionTree] | None:
        """The fitted stage trees, rebuilt from the engine if lazy."""
        if self._trees_ is None and self._lazy_key_ is not None:
            self._materialize_trees()
        return self._trees_

    @trees_.setter
    def trees_(self, value: list[RegressionTree] | None) -> None:
        self._trees_ = value
        self._lazy_key_ = None
        self._mmap_source_ = None

    def _adopt_lazy(self, engine: CompiledEnsemble, mmap_source: tuple | None = None) -> None:
        """Install an engine-only restore (binary load path)."""
        self._trees_ = None
        self._lazy_key_ = object()
        self._mmap_source_ = mmap_source
        self._compiled_ = engine
        self._compiled_sources_ = (self._lazy_key_,)

    def _materialize_trees(self) -> None:
        from ..exceptions import SerializationError

        with model_lock(self):
            if self._trees_ is not None:  # another thread won the race
                return
            engine = self._compiled_
            assert engine is not None  # _adopt_lazy always installs one
            roots = engine.to_roots()
            trees = []
            for root in roots:
                tree = RegressionTree(
                    max_depth=self.max_depth,
                    min_samples_leaf=self.min_samples_leaf,
                )
                tree.root_ = root
                tree.n_features_in_ = self.n_features_in_
                trees.append(tree)
            probe = np.random.default_rng(0).standard_normal((8, self.n_features_in_))
            expected = np.stack([tree.predict(probe) for tree in trees])
            if not np.array_equal(engine.predict_all(probe), expected):
                raise SerializationError(
                    "compiled node table disagrees with its reconstructed object "
                    "graph on a probe batch; refusing to materialise it"
                )
            self._trees_ = trees
            self._lazy_key_ = None
            self._compiled_sources_ = tuple(tree.root_ for tree in trees)

    def __getstate__(self) -> dict:
        if self._mmap_source_ is not None and self._trees_ is None:
            return {"__load_from__": self._mmap_source_}
        state = dict(self.__dict__)
        if self._mmap_source_ is not None:
            state["_compiled_"] = None
            state["_compiled_sources_"] = None
            state["_mmap_source_"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        if "__load_from__" in state:
            from ..persistence import load

            path, fmt, mmap_mode = state["__load_from__"]
            loaded = load(path, format=fmt, mmap_mode=mmap_mode)
            model = getattr(loaded, "ensemble", loaded)
            self.__dict__.update(model.__dict__)
            return
        self.__dict__.update(state)

    # ------------------------------------------------------------------

    def fit(
        self, X, y, sample_weight=None, stage_label_overrides=None
    ) -> "GradientBoostingClassifier":
        """Fit the boosted ensemble.

        Parameters
        ----------
        stage_label_overrides:
            Optional hook used by the watermark extension: a callable
            ``(stage_index, y) -> y_stage`` returning the (possibly
            modified) ±1 labels used to compute this stage's gradients.
            ``None`` trains a standard GBDT.
        """
        if self.n_estimators < 1:
            raise ValidationError(f"n_estimators must be >= 1, got {self.n_estimators}")
        X, y_raw = check_X_y(X, y)
        y_pm = check_binary_labels(y_raw)
        weights = check_sample_weight(sample_weight, X.shape[0])
        check_random_state(self.random_state)  # validate even if unused

        y01 = (y_pm > 0).astype(np.float64)
        prior = float(np.clip(np.average(y01, weights=weights), 1e-6, 1 - 1e-6))
        self.init_score_ = float(np.log(prior / (1.0 - prior)))

        margins = np.full(X.shape[0], self.init_score_, dtype=np.float64)
        trees: list[RegressionTree] = []
        for stage in range(self.n_estimators):
            if stage_label_overrides is not None:
                stage_pm = check_binary_labels(stage_label_overrides(stage, y_pm.copy()))
                stage01 = (stage_pm > 0).astype(np.float64)
            else:
                stage01 = y01
            prob = _sigmoid(margins)
            residual = stage01 - prob
            hessian = np.maximum(prob * (1.0 - prob), 1e-12)

            tree = RegressionTree(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
            )

            def newton_leaf(index: np.ndarray) -> float:
                num = float(np.sum(weights[index] * residual[index]))
                den = float(np.sum(weights[index] * hessian[index]))
                return num / den if den > 0 else 0.0

            tree.fit(X, residual, sample_weight=weights, leaf_value_fn=newton_leaf)
            margins += self.learning_rate * tree.predict(X)
            trees.append(tree)

        self.trees_ = trees
        self.n_features_in_ = X.shape[1]
        self._compiled_ = None
        self._compiled_sources_ = None
        return self

    # ------------------------------------------------------------------

    def _ensure_fitted(self) -> None:
        if self._trees_ is None and self._lazy_key_ is None:
            raise NotFittedError("this GradientBoostingClassifier is not fitted yet")

    def _check_fitted(self) -> list[RegressionTree]:
        self._ensure_fitted()
        return self.trees_  # materialises if lazy

    def _roots_key(self) -> tuple:
        """The fitted stage roots, the cache-freshness key for the engine."""
        self._ensure_fitted()
        if self._trees_ is None:
            return (self._lazy_key_,)
        return tuple(tree.root_ for tree in self._trees_)

    def compile(self) -> CompiledEnsemble:
        """Pack all stages into one compiled node table (cached).

        The compiled ``predict_all`` yields raw per-stage tree values;
        ``stage_contributions`` scales them by the learning rate.  The
        cache refreshes when stage roots are replaced.
        """
        return ensure_compiled(self, self._roots_key(), lambda: compile_boosted(self))

    def _compiled_engine(self, n_rows: int) -> CompiledEnsemble | None:
        """Compiled engine to predict with, or ``None`` for object mode."""
        return lazy_compiled(
            self, self._roots_key(), n_rows, lambda: compile_boosted(self)
        )

    def stage_contributions(self, X) -> np.ndarray:
        """Per-stage raw contributions, shape ``(n_stages, n_samples)``.

        Contribution of stage ``i`` is ``learning_rate * tree_i(x)``.
        The boosted-watermark extension reads the *signs* of these
        contributions the way the forest scheme reads per-tree labels.
        """
        self._ensure_fitted()
        X = check_X(X)
        if X.shape[1] != self.n_features_in_:
            raise ValidationError(
                f"X has {X.shape[1]} features but the ensemble was fitted with "
                f"{self.n_features_in_}"
            )
        engine = self._compiled_engine(X.shape[0])
        if engine is not None:
            return self.learning_rate * engine.predict_all(X)
        return np.stack(
            [self.learning_rate * tree.predict(X) for tree in self._check_fitted()],
            axis=0,
        )

    def decision_function(self, X) -> np.ndarray:
        """Additive margin ``init + sum_i lr * tree_i(x)``."""
        return self.init_score_ + self.stage_contributions(X).sum(axis=0)

    def predict(self, X) -> np.ndarray:
        """Predicted ±1 labels (0 margin resolves to +1)."""
        return np.where(self.decision_function(X) >= 0.0, 1, -1)

    def predict_proba(self, X) -> np.ndarray:
        """Probabilities ``[P(-1), P(+1)]`` per sample."""
        p_pos = _sigmoid(self.decision_function(X))
        return np.stack([1.0 - p_pos, p_pos], axis=1)

    def score(self, X, y) -> float:
        """Accuracy on ``(X, y)``."""
        X, y = check_X_y(X, y)
        return float(np.mean(self.predict(X) == np.asarray(y)))
