"""The watermark forgery problem (Definition 1 of the paper).

Given a tree ensemble ``T``, a label ``y`` and a signature ``σ``, find
an instance ``x`` such that ``t_i(x) = y ⇔ σ_i = 0`` for every tree.
With binary labels this means tree ``i`` must output ``y`` when
``σ_i = 0`` and ``-y`` when ``σ_i = 1``.

The experimental attack (§4.2.2) additionally constrains ``x`` to lie
within an ``L∞`` ball of radius ``ε`` around a real test instance and
inside the normalised feature domain ``[0, 1]^d`` — both optional here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.signature import Signature
from ..exceptions import ValidationError
from ..trees.node import TreeNode, predict_one
from ..trees.paths import Box, leaf_boxes

__all__ = [
    "PatternProblem",
    "PatternOutcome",
    "required_labels",
    "compute_feature_bounds",
    "check_pattern",
]


def required_labels(signature: Signature, label: int) -> list[int]:
    """Per-tree output the forger needs: ``y`` on bit 0, ``-y`` on bit 1."""
    if label not in (-1, 1):
        raise ValidationError(f"label must be -1 or +1, got {label}")
    return [label if bit == 0 else -label for bit in signature]


def compute_feature_bounds(
    n_features: int,
    center: np.ndarray | None,
    epsilon: float | None,
    domain: tuple[float, float] | None,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-feature closed bounds ``[lo_f, hi_f]`` from ball ∩ domain.

    Shared by :meth:`PatternProblem.feature_bounds` and the compiled
    encoding, which specialises a prebuilt skeleton with exactly these
    bounds for every test instance.
    """
    if domain is not None:
        lo = np.full(n_features, float(domain[0]))
        hi = np.full(n_features, float(domain[1]))
    else:
        lo = np.full(n_features, -np.inf)
        hi = np.full(n_features, np.inf)
    if center is not None and epsilon is not None:
        lo = np.maximum(lo, center - epsilon)
        hi = np.minimum(hi, center + epsilon)
    return lo, hi


def check_pattern(
    roots: list[TreeNode],
    required: list[int],
    x: np.ndarray,
    center: np.ndarray | None = None,
    epsilon: float | None = None,
    domain: tuple[float, float] | None = (0.0, 1.0),
) -> bool:
    """True when ``x`` realises the required pattern and constraints.

    The function form of :meth:`PatternProblem.check_solution`, usable
    by per-instance solvers without constructing a problem object.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 1:
        return False
    if domain is not None:
        if (x < domain[0]).any() or (x > domain[1]).any():
            return False
    if center is not None and epsilon is not None:
        # Tiny slack absorbs float rounding at the ball boundary.
        if np.abs(x - center).max() > epsilon + 1e-9:
            return False
    return all(
        predict_one(root, x) == label for root, label in zip(roots, required)
    )


@dataclass
class PatternProblem:
    """A "force this output pattern" satisfiability instance.

    Parameters
    ----------
    roots:
        The ensemble's tree roots.
    required:
        Required output label per tree (same length as ``roots``).
    n_features:
        Ambient dimensionality ``d``.
    center, epsilon:
        Optional ``L∞`` ball constraint ``‖x − center‖∞ ≤ ε``.
    domain:
        Feature domain ``[low, high]`` applied to every coordinate
        (``None`` disables it; the paper's data is normalised to [0,1]).
    """

    roots: list[TreeNode]
    required: list[int]
    n_features: int
    center: np.ndarray | None = None
    epsilon: float | None = None
    domain: tuple[float, float] | None = (0.0, 1.0)

    def __post_init__(self) -> None:
        if len(self.roots) != len(self.required):
            raise ValidationError(
                f"{len(self.roots)} trees but {len(self.required)} required labels"
            )
        if not self.roots:
            raise ValidationError("the ensemble must contain at least one tree")
        if (self.center is None) != (self.epsilon is None):
            raise ValidationError("center and epsilon must be given together")
        if self.epsilon is not None and self.epsilon <= 0:
            raise ValidationError(f"epsilon must be > 0, got {self.epsilon}")
        if self.center is not None:
            self.center = np.asarray(self.center, dtype=np.float64)
            if self.center.shape != (self.n_features,):
                raise ValidationError(
                    f"center must have shape ({self.n_features},), got "
                    f"{self.center.shape}"
                )
        if self.domain is not None and self.domain[0] >= self.domain[1]:
            raise ValidationError(f"empty domain {self.domain}")

    # ------------------------------------------------------------------

    def feature_bounds(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-feature closed bounds ``[lo_f, hi_f]`` from ball ∩ domain."""
        return compute_feature_bounds(
            self.n_features, self.center, self.epsilon, self.domain
        )

    def candidate_boxes(self) -> list[list[Box]] | None:
        """Per tree, the boxes of leaves with the required label that are
        compatible with the feature bounds.

        Returns ``None`` when some tree has no compatible leaf — the
        instance is trivially unsatisfiable.
        """
        lo, hi = self.feature_bounds()
        if (lo > hi).any():
            return None
        candidates: list[list[Box]] = []
        for root, label in zip(self.roots, self.required):
            boxes = []
            for leaf, box in leaf_boxes(root):
                if leaf.prediction != label:
                    continue
                if _box_compatible(box, lo, hi):
                    boxes.append(box)
            if not boxes:
                return None
            candidates.append(boxes)
        return candidates

    def check_solution(self, x: np.ndarray) -> bool:
        """True when ``x`` realises the required pattern and constraints."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.n_features,):
            return False
        return check_pattern(
            self.roots, self.required, x, self.center, self.epsilon, self.domain
        )


def _box_compatible(box: Box, lo: np.ndarray, hi: np.ndarray) -> bool:
    """Does the box intersect the closed per-feature bounds?"""
    for feature, upper in box.upper.items():
        if upper < lo[feature]:
            return False
    for feature, lower in box.lower.items():
        if lower >= hi[feature]:
            return False
    return True


@dataclass
class PatternOutcome:
    """Result of a pattern/forgery solve.

    ``status`` is ``"sat"``, ``"unsat"`` or ``"unknown"`` (budget
    exhausted); ``instance`` is a satisfying feature vector when SAT.
    ``stats`` carries engine-specific counters (conflicts, nodes, ...).
    """

    status: str
    instance: np.ndarray | None = None
    stats: dict = field(default_factory=dict)

    @property
    def is_sat(self) -> bool:
        return self.status == "sat"

    @property
    def is_unsat(self) -> bool:
        return self.status == "unsat"
