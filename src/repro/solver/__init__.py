"""SAT/SMT solving substrate — the library's stand-in for Z3.

Layers:

- :class:`CNF` + :class:`SATSolver` — a general CDCL SAT solver;
- :class:`PatternProblem` — the watermark forgery problem
  (Definition 1) with optional ``L∞``-ball and domain constraints;
- :func:`solve_pattern_smt` — eager SMT encoding over threshold atoms,
  decided by the CDCL core (sound and complete on this fragment);
- :func:`solve_pattern_boxes` — an independent theory-specific solver
  (DPLL over leaf boxes) used to cross-validate the encoding;
- :class:`CompiledPatternEncoding` — the instance-independent skeleton
  of a forgery query (per-tree leaf boxes, threshold atoms, clause
  skeleton), built once per signature pattern and re-solved per test
  instance with assumption-style incremental SAT;
- :func:`solve_pattern` — engine dispatcher.
"""

from ..exceptions import SolverError, ValidationError
from .boxdpll import solve_clipped_boxes, solve_pattern_boxes
from .cnf import CNF
from .compiled_encoding import (
    CompiledPatternEncoding,
    EncodingCache,
    compile_pattern_encoding,
)
from .encoding import (
    decode_atom_intervals,
    decode_model,
    encode_pattern_problem,
    solve_pattern_smt,
)
from .problem import (
    PatternOutcome,
    PatternProblem,
    check_pattern,
    compute_feature_bounds,
    required_labels,
)
from .sat import SATResult, SATSolver, solve_cnf
from .simplify import SimplifiedCNF, parse_dimacs, simplify_cnf
from .optimize import MinimalDistortion, minimal_forgery_distortion
from .portfolio import merge_portfolio_outcomes, solve_pattern_portfolio

__all__ = [
    "CNF",
    "CompiledPatternEncoding",
    "EncodingCache",
    "PatternOutcome",
    "PatternProblem",
    "SATResult",
    "SATSolver",
    "check_pattern",
    "compile_pattern_encoding",
    "compute_feature_bounds",
    "decode_atom_intervals",
    "decode_model",
    "encode_pattern_problem",
    "merge_portfolio_outcomes",
    "required_labels",
    "solve_clipped_boxes",
    "solve_cnf",
    "solve_pattern",
    "solve_pattern_boxes",
    "solve_pattern_smt",
    "SimplifiedCNF",
    "parse_dimacs",
    "simplify_cnf",
    "MinimalDistortion",
    "minimal_forgery_distortion",
    "solve_pattern_portfolio",
]

_ENGINES = {
    "smt": solve_pattern_smt,
    "boxes": solve_pattern_boxes,
    "portfolio": solve_pattern_portfolio,
}


def solve_pattern(problem: PatternProblem, engine: str = "smt", **kwargs) -> PatternOutcome:
    """Solve a pattern problem with the chosen engine (``smt``/``boxes``)."""
    if engine not in _ENGINES:
        raise ValidationError(
            f"unknown engine {engine!r}; expected one of {sorted(_ENGINES)}"
        )
    return _ENGINES[engine](problem, **kwargs)
