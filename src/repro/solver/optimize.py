"""Minimum-distortion forgery: how far must a forged instance stray?

Fig. 4 of the paper sweeps a fixed grid of ε values; a sharper question
is *the smallest ε at which a given (instance, fake signature) pair
becomes forgeable*.  Since feasibility is monotone in ε (a larger ball
contains the smaller one), binary search over ε with the pattern solver
as the oracle computes this minimal distortion to any precision.

The minimal distortion is exactly the quantity a judge would use to
argue a forged trigger set is illegitimate ("every one of these
instances required at least 0.4 L∞ distortion"), and it powers the
distortion histograms in the forged-instance analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ValidationError
from .boxdpll import solve_pattern_boxes
from .encoding import solve_pattern_smt
from .problem import PatternProblem

_ENGINES = {"smt": solve_pattern_smt, "boxes": solve_pattern_boxes}

__all__ = ["MinimalDistortion", "minimal_forgery_distortion"]


@dataclass
class MinimalDistortion:
    """Result of the binary search.

    ``epsilon`` is an upper bound on the minimal feasible distortion,
    within ``tolerance`` of the true threshold; ``instance`` is a
    witness at that distortion.  ``feasible`` is False when even the
    maximal ε admits no forgery (then ``epsilon``/``instance`` are
    ``None``).
    """

    feasible: bool
    epsilon: float | None = None
    instance: np.ndarray | None = None
    solver_calls: int = 0


def minimal_forgery_distortion(
    roots,
    required: list[int],
    center: np.ndarray,
    n_features: int,
    epsilon_max: float = 1.0,
    tolerance: float = 0.01,
    engine: str = "smt",
    solver_budget: int | None = 100_000,
    domain: tuple[float, float] | None = (0.0, 1.0),
) -> MinimalDistortion:
    """Binary-search the smallest ε admitting the required pattern.

    Parameters
    ----------
    roots, required, center, n_features, domain:
        As in :class:`~repro.solver.PatternProblem`.
    epsilon_max:
        Upper end of the search (1.0 covers the whole unit domain).
    tolerance:
        Absolute precision of the returned threshold.
    engine, solver_budget:
        Forwarded to :func:`~repro.solver.solve_pattern`; a budget
        exhaustion ("unknown") is treated conservatively as infeasible
        at that ε, so the result stays an upper bound.
    """
    if epsilon_max <= 0:
        raise ValidationError(f"epsilon_max must be > 0, got {epsilon_max}")
    if tolerance <= 0:
        raise ValidationError(f"tolerance must be > 0, got {tolerance}")
    if engine not in _ENGINES:
        raise ValidationError(
            f"unknown engine {engine!r}; expected one of {sorted(_ENGINES)}"
        )
    solve = _ENGINES[engine]

    budget_kwargs = (
        {"max_conflicts": solver_budget} if engine == "smt" else {"max_nodes": solver_budget}
    )
    calls = 0

    def feasible_at(epsilon: float):
        nonlocal calls
        calls += 1
        problem = PatternProblem(
            roots=roots,
            required=required,
            n_features=n_features,
            center=center,
            epsilon=float(epsilon),
            domain=domain,
        )
        outcome = solve(problem, **budget_kwargs)
        return outcome.instance if outcome.is_sat else None

    witness = feasible_at(epsilon_max)
    if witness is None:
        return MinimalDistortion(feasible=False, solver_calls=calls)

    low, high = 0.0, float(epsilon_max)
    best_instance = witness
    while high - low > tolerance:
        middle = 0.5 * (low + high)
        candidate = feasible_at(middle)
        if candidate is not None:
            high = middle
            best_instance = candidate
        else:
            low = middle
    return MinimalDistortion(
        feasible=True, epsilon=high, instance=best_instance, solver_calls=calls
    )
