"""A CDCL SAT solver (conflict-driven clause learning).

This is the Boolean engine behind the forgery attack — the role Z3
plays in the paper.  It implements the standard modern architecture:

- two-watched-literal unit propagation,
- first-UIP conflict analysis with clause learning,
- VSIDS-style variable activities with phase saving,
- Luby restarts,
- a conflict budget so callers can bound worst-case work (the paper
  reports forgery runs that "do not scale"; the budget lets our
  experiments report the same phenomenon instead of hanging).

The implementation favours clarity over raw speed, but handles the
tens-of-thousands-of-clauses encodings produced by
:mod:`repro.solver.encoding` comfortably.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exceptions import SolverError
from .cnf import CNF

__all__ = ["SATResult", "SATSolver", "solve_cnf"]

_UNASSIGNED = -1


@dataclass
class SATResult:
    """Outcome of a SAT run.

    ``status`` is ``"sat"``, ``"unsat"`` or ``"unknown"`` (conflict
    budget exhausted).  ``model`` maps every variable to a bool when
    satisfiable.
    """

    status: str
    model: dict[int, bool] | None = None
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    restarts: int = 0

    @property
    def is_sat(self) -> bool:
        return self.status == "sat"

    @property
    def is_unsat(self) -> bool:
        return self.status == "unsat"


def _luby(i: int) -> int:
    """The Luby restart sequence (1,1,2,1,1,2,4,...), 1-indexed."""
    while True:
        k = i.bit_length()
        if i == (1 << k) - 1:
            return 1 << (k - 1)
        i = i - (1 << (k - 1)) + 1


class SATSolver:
    """One-shot CDCL solver over a :class:`CNF` formula."""

    def __init__(self, cnf: CNF, max_conflicts: int | None = None) -> None:
        self.n_vars = cnf.n_vars
        self.max_conflicts = max_conflicts
        # Clause database: clauses are lists of internal literal codes.
        # Internal code of DIMACS literal L: 2*(|L|-1) + (1 if L < 0 else 0).
        self.clauses: list[list[int]] = []
        self.watches: list[list[int]] = [[] for _ in range(2 * self.n_vars)]
        self.assign: list[int] = [_UNASSIGNED] * self.n_vars
        self.level: list[int] = [0] * self.n_vars
        self.reason: list[int] = [-1] * self.n_vars
        self.trail: list[int] = []
        self.trail_lim: list[int] = []
        self.queue_head = 0
        self.activity: list[float] = [0.0] * self.n_vars
        self.phase: list[bool] = [False] * self.n_vars
        self.var_inc = 1.0
        self.var_decay = 0.95
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.restarts = 0
        self._contradiction = False

        for clause in cnf.clauses:
            self._add_clause([self._encode(lit) for lit in clause])

    # -- literal helpers -------------------------------------------------

    @staticmethod
    def _encode(literal: int) -> int:
        return 2 * (abs(literal) - 1) + (1 if literal < 0 else 0)

    @staticmethod
    def _negate(code: int) -> int:
        return code ^ 1

    def _value(self, code: int) -> int:
        """Value of a literal code: 1 true, 0 false, -1 unassigned."""
        value = self.assign[code >> 1]
        if value == _UNASSIGNED:
            return _UNASSIGNED
        return value ^ (code & 1)

    # -- clause database -------------------------------------------------

    def _add_clause(self, codes: list[int]) -> None:
        if self._contradiction:
            return
        if not codes:
            self._contradiction = True
            return
        if len(codes) == 1:
            if not self._enqueue(codes[0], reason=-1):
                self._contradiction = True
            return
        index = len(self.clauses)
        self.clauses.append(codes)
        self.watches[codes[0]].append(index)
        self.watches[codes[1]].append(index)

    # -- assignment / propagation -----------------------------------------

    def _enqueue(self, code: int, reason: int) -> bool:
        value = self._value(code)
        if value == 0:
            return False
        if value == 1:
            return True
        var = code >> 1
        self.assign[var] = 1 - (code & 1)
        self.level[var] = len(self.trail_lim)
        self.reason[var] = reason
        self.trail.append(code)
        return True

    def _propagate(self) -> int:
        """Unit propagation; returns a conflicting clause index or -1."""
        while self.queue_head < len(self.trail):
            code = self.trail[self.queue_head]
            self.queue_head += 1
            self.propagations += 1
            false_code = self._negate(code)
            watch_list = self.watches[false_code]
            i = 0
            while i < len(watch_list):
                clause_index = watch_list[i]
                clause = self.clauses[clause_index]
                # Normalise: watched literal under scrutiny at slot 1.
                if clause[0] == false_code:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value(first) == 1:
                    i += 1
                    continue
                # Look for a replacement watch.
                moved = False
                for j in range(2, len(clause)):
                    if self._value(clause[j]) != 0:
                        clause[1], clause[j] = clause[j], clause[1]
                        watch_list[i] = watch_list[-1]
                        watch_list.pop()
                        self.watches[clause[1]].append(clause_index)
                        moved = True
                        break
                if moved:
                    continue
                # Clause is unit (or conflicting) on `first`.
                if not self._enqueue(first, reason=clause_index):
                    self.queue_head = len(self.trail)
                    return clause_index
                i += 1
        return -1

    # -- conflict analysis -------------------------------------------------

    def _bump(self, var: int) -> None:
        self.activity[var] += self.var_inc
        if self.activity[var] > 1e100:
            for v in range(self.n_vars):
                self.activity[v] *= 1e-100
            self.var_inc *= 1e-100

    def _analyze(self, conflict_index: int) -> tuple[list[int], int]:
        """First-UIP learning; returns (learned clause codes, backjump level)."""
        # MiniSat-style resolution walk.  Invariant: for every reason
        # clause, slot 0 holds the literal it propagated, so resolving on
        # that variable means skipping slot 0.
        learned: list[int] = [0]  # slot 0 reserved for the asserting literal
        seen = [False] * self.n_vars
        counter = 0  # literals of the current decision level still open
        code: int | None = None
        index = len(self.trail) - 1
        clause_index = conflict_index
        current_level = len(self.trail_lim)

        while True:
            clause = self.clauses[clause_index]
            start = 0 if code is None else 1
            for reason_code in clause[start:]:
                var = reason_code >> 1
                if not seen[var] and self.level[var] > 0:
                    seen[var] = True
                    self._bump(var)
                    if self.level[var] >= current_level:
                        counter += 1
                    else:
                        learned.append(reason_code)
            # Find the next trail literal to resolve on.
            while not seen[self.trail[index] >> 1]:
                index -= 1
            code = self.trail[index]
            index -= 1
            var = code >> 1
            seen[var] = False
            clause_index = self.reason[var]
            counter -= 1
            if counter == 0:
                break
        learned[0] = self._negate(code)

        if len(learned) == 1:
            return learned, 0
        # Backjump to the second-highest decision level in the clause.
        max_index = 1
        for j in range(2, len(learned)):
            if self.level[learned[j] >> 1] > self.level[learned[max_index] >> 1]:
                max_index = j
        learned[1], learned[max_index] = learned[max_index], learned[1]
        return learned, self.level[learned[1] >> 1]

    def _backtrack(self, target_level: int) -> None:
        while len(self.trail_lim) > target_level:
            limit = self.trail_lim.pop()
            while len(self.trail) > limit:
                code = self.trail.pop()
                var = code >> 1
                self.phase[var] = self.assign[var] == 1
                self.assign[var] = _UNASSIGNED
                self.reason[var] = -1
        self.queue_head = min(self.queue_head, len(self.trail))

    # -- decisions ----------------------------------------------------------

    def _decide(self) -> bool:
        best_var = -1
        best_activity = -1.0
        for var in range(self.n_vars):
            if self.assign[var] == _UNASSIGNED and self.activity[var] > best_activity:
                best_var = var
                best_activity = self.activity[var]
        if best_var == -1:
            return False
        self.decisions += 1
        self.trail_lim.append(len(self.trail))
        code = 2 * best_var + (0 if self.phase[best_var] else 1)
        self._enqueue(code, reason=-1)
        return True

    # -- main loop ------------------------------------------------------------

    def solve(self) -> SATResult:
        """Run the search to completion (or to the conflict budget)."""
        if self._contradiction:
            return SATResult(status="unsat")
        if self._propagate() != -1:
            return SATResult(status="unsat")

        conflicts_until_restart = 100 * _luby(self.restarts + 1)
        while True:
            conflict = self._propagate()
            if conflict != -1:
                self.conflicts += 1
                if not self.trail_lim:
                    return self._result("unsat")
                if self.max_conflicts is not None and self.conflicts >= self.max_conflicts:
                    return self._result("unknown")
                learned, backjump_level = self._analyze(conflict)
                self._backtrack(backjump_level)
                if len(learned) == 1:
                    if not self._enqueue(learned[0], reason=-1):
                        return self._result("unsat")
                else:
                    index = len(self.clauses)
                    self.clauses.append(learned)
                    self.watches[learned[0]].append(index)
                    self.watches[learned[1]].append(index)
                    self._enqueue(learned[0], reason=index)
                self.var_inc /= self.var_decay
                conflicts_until_restart -= 1
                if conflicts_until_restart <= 0:
                    self.restarts += 1
                    conflicts_until_restart = 100 * _luby(self.restarts + 1)
                    self._backtrack(0)
            else:
                if not self._decide():
                    model = {
                        var + 1: self.assign[var] == 1 for var in range(self.n_vars)
                    }
                    return self._result("sat", model)

    def _result(self, status: str, model: dict[int, bool] | None = None) -> SATResult:
        return SATResult(
            status=status,
            model=model,
            conflicts=self.conflicts,
            decisions=self.decisions,
            propagations=self.propagations,
            restarts=self.restarts,
        )


def solve_cnf(cnf: CNF, max_conflicts: int | None = None) -> SATResult:
    """Convenience wrapper: build a solver and run it."""
    if any(len(c) == 0 for c in cnf.clauses):
        return SATResult(status="unsat")
    return SATSolver(cnf, max_conflicts=max_conflicts).solve()
