"""A CDCL SAT solver (conflict-driven clause learning).

This is the Boolean engine behind the forgery attack — the role Z3
plays in the paper.  It implements the standard modern architecture:

- two-watched-literal unit propagation,
- first-UIP conflict analysis with clause learning,
- VSIDS-style variable activities (lazy binary heap) with phase saving,
- Luby restarts,
- a conflict budget so callers can bound worst-case work (the paper
  reports forgery runs that "do not scale"; the budget lets our
  experiments report the same phenomenon instead of hanging),
- *assumption-style re-solving*: :meth:`SATSolver.solve` accepts a list
  of assumption literals, and :meth:`SATSolver.reset` restores the
  solver to its pristine post-construction state without re-encoding or
  re-allocating the base clause database.  The compiled forgery
  encoding (:mod:`repro.solver.compiled_encoding`) builds one solver
  per signature pattern and re-solves it once per test instance, with
  only the instance's box constraints supplied as assumptions.

Assumptions are enqueued as root-level facts for the duration of a
single :meth:`solve` call.  That is sound here because ``reset`` drops
*everything* derived during the call — learned clauses included — so no
consequence of one instance's assumptions can leak into the next
instance.  Dropping learned clauses also makes every solve a pure
function of ``(base clauses, assumptions)``: a reset solver behaves
bit-for-bit like a freshly constructed one, which is what the forgery
engine's determinism contract (serial == parallel == fresh-encoding)
rests on.

The implementation favours clarity over raw speed, but handles the
tens-of-thousands-of-clauses encodings produced by
:mod:`repro.solver.encoding` comfortably.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from .cnf import CNF

__all__ = ["SATResult", "SATSolver", "solve_cnf"]

_UNASSIGNED = -1


@dataclass
class SATResult:
    """Outcome of a SAT run.

    ``status`` is ``"sat"``, ``"unsat"`` or ``"unknown"`` (conflict
    budget exhausted).  ``model`` maps every variable to a bool when
    satisfiable.  Under assumptions, ``"unsat"`` means *unsatisfiable
    together with the assumptions*.
    """

    status: str
    model: dict[int, bool] | None = None
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    restarts: int = 0

    @property
    def is_sat(self) -> bool:
        return self.status == "sat"

    @property
    def is_unsat(self) -> bool:
        return self.status == "unsat"


def _luby(i: int) -> int:
    """The Luby restart sequence (1,1,2,1,1,2,4,...), 1-indexed."""
    while True:
        k = i.bit_length()
        if i == (1 << k) - 1:
            return 1 << (k - 1)
        i = i - (1 << (k - 1)) + 1


class SATSolver:
    """CDCL solver over a :class:`CNF` formula, re-solvable via reset().

    The base formula is encoded once at construction.  ``solve()`` runs
    the search (optionally under assumptions); ``reset()`` rewinds the
    solver to its pristine state — base clause order restored in place,
    learned clauses dropped, heuristic state zeroed — so the next
    ``solve()`` behaves exactly like a fresh solver without paying for
    clause re-encoding.
    """

    def __init__(self, cnf: CNF, max_conflicts: int | None = None) -> None:
        self.n_vars = cnf.n_vars
        self.max_conflicts = max_conflicts
        # Clause database: clauses are lists of internal literal codes.
        # Internal code of DIMACS literal L: 2*(|L|-1) + (1 if L < 0 else 0).
        base_clauses: list[list[int]] = []
        base_units: list[int] = []
        base_empty = False
        for clause in cnf.clauses:
            codes = [self._encode(literal) for literal in clause]
            if not codes:
                base_empty = True
            elif len(codes) == 1:
                base_units.append(codes[0])
            else:
                base_clauses.append(codes)
        self._base_clauses = base_clauses
        self._base_units = base_units
        self._base_empty = base_empty

        self.clauses: list[list[int]] = []
        self.watches: list[list[int]] = [[] for _ in range(2 * self.n_vars)]
        self.assign: list[int] = []
        self.level: list[int] = []
        self.reason: list[int] = []
        self.trail: list[int] = []
        self.trail_lim: list[int] = []
        self.queue_head = 0
        self.activity: list[float] = []
        self.phase: list[bool] = []
        self._order: list[tuple[float, int]] = []
        self.var_inc = 1.0
        self.var_decay = 0.95
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.restarts = 0
        self._contradiction = False
        self.reset()

    # -- literal helpers -------------------------------------------------

    @staticmethod
    def _encode(literal: int) -> int:
        return 2 * (abs(literal) - 1) + (1 if literal < 0 else 0)

    @staticmethod
    def _negate(code: int) -> int:
        return code ^ 1

    def _value(self, code: int) -> int:
        """Value of a literal code: 1 true, 0 false, -1 unassigned."""
        value = self.assign[code >> 1]
        if value == _UNASSIGNED:
            return _UNASSIGNED
        return value ^ (code & 1)

    # -- lifecycle -------------------------------------------------------

    def reset(self) -> None:
        """Rewind to the pristine post-construction state.

        Base clauses keep their allocation: their literal order (mutated
        by watched-literal swaps during search) is restored in place and
        learned clauses are truncated away.  After a reset the solver is
        bit-for-bit equivalent to ``SATSolver(cnf)`` — same watch lists,
        same heuristic state, same future search trajectory.
        """
        n_base = len(self._base_clauses)
        if len(self.clauses) >= n_base:
            del self.clauses[n_base:]
            for clause, base in zip(self.clauses, self._base_clauses):
                clause[:] = base
        else:
            self.clauses = [list(base) for base in self._base_clauses]
        for watch_list in self.watches:
            watch_list.clear()
        for index, clause in enumerate(self.clauses):
            self.watches[clause[0]].append(index)
            self.watches[clause[1]].append(index)

        n = self.n_vars
        self.assign = [_UNASSIGNED] * n
        self.level = [0] * n
        self.reason = [-1] * n
        self.trail = []
        self.trail_lim = []
        self.queue_head = 0
        self.activity = [0.0] * n
        self.phase = [False] * n
        # (-activity, var) entries; all-zero activities in var order is
        # already a valid heap.
        self._order = [(-0.0, var) for var in range(n)]
        self.var_inc = 1.0
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.restarts = 0

        self._contradiction = self._base_empty
        for code in self._base_units:
            if not self._enqueue(code, reason=-1):
                self._contradiction = True

    # -- assignment / propagation -----------------------------------------

    def _enqueue(self, code: int, reason: int) -> bool:
        value = self._value(code)
        if value == 0:
            return False
        if value == 1:
            return True
        var = code >> 1
        self.assign[var] = 1 - (code & 1)
        self.level[var] = len(self.trail_lim)
        self.reason[var] = reason
        self.trail.append(code)
        return True

    def _propagate(self) -> int:
        """Unit propagation; returns a conflicting clause index or -1.

        The hottest loop in the solver: attribute lookups are hoisted
        and literal values computed inline (a literal code ``c`` is true
        iff ``assign[c >> 1] ^ (c & 1) == 1``, with -1 = unassigned).
        """
        trail = self.trail
        watches = self.watches
        clauses = self.clauses
        assign = self.assign
        while self.queue_head < len(trail):
            code = trail[self.queue_head]
            self.queue_head += 1
            self.propagations += 1
            false_code = code ^ 1
            watch_list = watches[false_code]
            i = 0
            while i < len(watch_list):
                clause_index = watch_list[i]
                clause = clauses[clause_index]
                # Normalise: watched literal under scrutiny at slot 1.
                if clause[0] == false_code:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                value = assign[first >> 1]
                if value != _UNASSIGNED and value ^ (first & 1):
                    i += 1
                    continue
                # Look for a replacement watch.
                moved = False
                for j in range(2, len(clause)):
                    other = clause[j]
                    value = assign[other >> 1]
                    if value == _UNASSIGNED or value ^ (other & 1):
                        clause[1], clause[j] = other, clause[1]
                        watch_list[i] = watch_list[-1]
                        watch_list.pop()
                        watches[other].append(clause_index)
                        moved = True
                        break
                if moved:
                    continue
                # Clause is unit (or conflicting) on `first`.
                if not self._enqueue(first, reason=clause_index):
                    self.queue_head = len(trail)
                    return clause_index
                i += 1
        return -1

    # -- conflict analysis -------------------------------------------------

    def _bump(self, var: int) -> None:
        self.activity[var] += self.var_inc
        if self.assign[var] == _UNASSIGNED:
            heapq.heappush(self._order, (-self.activity[var], var))
        if self.activity[var] > 1e100:
            for v in range(self.n_vars):
                self.activity[v] *= 1e-100
            self.var_inc *= 1e-100
            # Every heap entry is stale after a rescale: rebuild it from
            # the currently unassigned variables.
            self._order = [
                (-self.activity[v], v)
                for v in range(self.n_vars)
                if self.assign[v] == _UNASSIGNED
            ]
            heapq.heapify(self._order)

    def _analyze(self, conflict_index: int) -> tuple[list[int], int]:
        """First-UIP learning; returns (learned clause codes, backjump level)."""
        # MiniSat-style resolution walk.  Invariant: for every reason
        # clause, slot 0 holds the literal it propagated, so resolving on
        # that variable means skipping slot 0.
        learned: list[int] = [0]  # slot 0 reserved for the asserting literal
        seen = [False] * self.n_vars
        counter = 0  # literals of the current decision level still open
        code: int | None = None
        index = len(self.trail) - 1
        clause_index = conflict_index
        current_level = len(self.trail_lim)

        while True:
            clause = self.clauses[clause_index]
            start = 0 if code is None else 1
            for reason_code in clause[start:]:
                var = reason_code >> 1
                if not seen[var] and self.level[var] > 0:
                    seen[var] = True
                    self._bump(var)
                    if self.level[var] >= current_level:
                        counter += 1
                    else:
                        learned.append(reason_code)
            # Find the next trail literal to resolve on.
            while not seen[self.trail[index] >> 1]:
                index -= 1
            code = self.trail[index]
            index -= 1
            var = code >> 1
            seen[var] = False
            clause_index = self.reason[var]
            counter -= 1
            if counter == 0:
                break
        learned[0] = self._negate(code)

        if len(learned) == 1:
            return learned, 0
        # Backjump to the second-highest decision level in the clause.
        max_index = 1
        for j in range(2, len(learned)):
            if self.level[learned[j] >> 1] > self.level[learned[max_index] >> 1]:
                max_index = j
        learned[1], learned[max_index] = learned[max_index], learned[1]
        return learned, self.level[learned[1] >> 1]

    def _backtrack(self, target_level: int) -> None:
        order = self._order
        while len(self.trail_lim) > target_level:
            limit = self.trail_lim.pop()
            while len(self.trail) > limit:
                code = self.trail.pop()
                var = code >> 1
                self.phase[var] = self.assign[var] == 1
                self.assign[var] = _UNASSIGNED
                self.reason[var] = -1
                heapq.heappush(order, (-self.activity[var], var))
        self.queue_head = min(self.queue_head, len(self.trail))

    # -- decisions ----------------------------------------------------------

    def _decide(self) -> bool:
        # Lazy heap: pop entries that are assigned or carry a stale
        # activity.  Every unassigned variable always has one fresh
        # entry (pushed at reset, on unassignment, and on bumping), so
        # an empty heap means a complete assignment.  Ties break toward
        # the lowest variable index, like the linear scan this replaces.
        order = self._order
        assign = self.assign
        activity = self.activity
        best_var = -1
        while order:
            neg_act, var = order[0]
            if assign[var] == _UNASSIGNED and neg_act == -activity[var]:
                best_var = var
                heapq.heappop(order)
                break
            heapq.heappop(order)
        if best_var == -1:
            return False
        self.decisions += 1
        self.trail_lim.append(len(self.trail))
        code = 2 * best_var + (0 if self.phase[best_var] else 1)
        self._enqueue(code, reason=-1)
        return True

    # -- main loop ------------------------------------------------------------

    def solve(self, assumptions=None) -> SATResult:
        """Run the search to completion (or to the conflict budget).

        Parameters
        ----------
        assumptions:
            Optional iterable of DIMACS literals held true for this call
            only.  They are enqueued as root-level facts; an ``"unsat"``
            result then means *unsatisfiable under the assumptions*.
            Call :meth:`reset` before re-solving with different
            assumptions — it discards everything (learned clauses
            included) that this call derived from them.
        """
        if self._contradiction:
            return self._result("unsat")
        if assumptions is not None:
            for literal in assumptions:
                if not self._enqueue(self._encode(int(literal)), reason=-1):
                    return self._result("unsat")
        if self._propagate() != -1:
            return self._result("unsat")

        budget = self.max_conflicts
        base_conflicts = self.conflicts
        conflicts_until_restart = 100 * _luby(self.restarts + 1)
        while True:
            conflict = self._propagate()
            if conflict != -1:
                self.conflicts += 1
                if not self.trail_lim:
                    return self._result("unsat")
                if budget is not None and self.conflicts - base_conflicts >= budget:
                    return self._result("unknown")
                learned, backjump_level = self._analyze(conflict)
                self._backtrack(backjump_level)
                if len(learned) == 1:
                    if not self._enqueue(learned[0], reason=-1):
                        return self._result("unsat")
                else:
                    index = len(self.clauses)
                    self.clauses.append(learned)
                    self.watches[learned[0]].append(index)
                    self.watches[learned[1]].append(index)
                    self._enqueue(learned[0], reason=index)
                self.var_inc /= self.var_decay
                conflicts_until_restart -= 1
                if conflicts_until_restart <= 0:
                    self.restarts += 1
                    conflicts_until_restart = 100 * _luby(self.restarts + 1)
                    self._backtrack(0)
            else:
                if not self._decide():
                    model = {
                        var + 1: self.assign[var] == 1 for var in range(self.n_vars)
                    }
                    return self._result("sat", model)

    def _result(self, status: str, model: dict[int, bool] | None = None) -> SATResult:
        return SATResult(
            status=status,
            model=model,
            conflicts=self.conflicts,
            decisions=self.decisions,
            propagations=self.propagations,
            restarts=self.restarts,
        )


def solve_cnf(cnf: CNF, max_conflicts: int | None = None) -> SATResult:
    """Convenience wrapper: build a solver and run it."""
    if any(len(c) == 0 for c in cnf.clauses):
        return SATResult(status="unsat")
    return SATSolver(cnf, max_conflicts=max_conflicts).solve()
