"""Theory-specific DPLL over leaf boxes — the second forgery engine.

Forcing tree ``t_i`` to output label ``ℓ_i`` means placing the instance
inside one of ``t_i``'s ``ℓ_i``-labelled leaf boxes; the whole pattern
problem is therefore: *choose one box per tree so that the joint
intersection (further clipped to the ε-ball and domain) is non-empty*.

This solver searches that space directly: depth-first over trees
(smallest candidate list first), maintaining the running intersection
box, with forward-checking against the remaining trees' candidates.
It is independent of the CNF machinery, which makes it a genuine
cross-check for the eager SMT encoding (the two are compared in the
test suite and the solver ablation benchmark).
"""

from __future__ import annotations

import numpy as np

from ..trees.paths import Box
from .problem import PatternOutcome, PatternProblem

__all__ = ["solve_pattern_boxes"]


def _bounds_box(problem: PatternProblem) -> Box:
    """The ε-ball ∩ domain constraint as a Box."""
    lo, hi = problem.feature_bounds()
    box = Box()
    for feature in range(problem.n_features):
        if np.isfinite(hi[feature]):
            box.constrain_upper(feature, float(hi[feature]))
        if np.isfinite(lo[feature]):
            # Closed lower bound lo encoded as strict bound just below it.
            box.constrain_lower(feature, float(np.nextafter(lo[feature], -np.inf)))
    return box


def solve_pattern_boxes(
    problem: PatternProblem, max_nodes: int | None = 2_000_000
) -> PatternOutcome:
    """Decide a pattern problem by DPLL over per-tree leaf boxes.

    Parameters
    ----------
    max_nodes:
        Budget on search-tree nodes; exhausted ⇒ ``status="unknown"``.
    """
    candidates = problem.candidate_boxes()
    if candidates is None:
        return PatternOutcome(status="unsat", stats={"trivial": True})

    start = _bounds_box(problem)
    if start.is_empty():
        return PatternOutcome(status="unsat", stats={"trivial": True})

    # Clip candidates to the bounds up front and drop empties.
    clipped: list[list[Box]] = []
    for boxes in candidates:
        usable = []
        for box in boxes:
            merged = box.intersect(start)
            if not merged.is_empty():
                usable.append(merged)
        if not usable:
            return PatternOutcome(status="unsat", stats={"trivial": True})
        clipped.append(usable)

    # Most-constrained trees first shrinks the branching factor early.
    order = sorted(range(len(clipped)), key=lambda i: len(clipped[i]))
    ordered = [clipped[i] for i in order]

    nodes = 0

    def forward_check(current: Box, depth: int) -> bool:
        """Every remaining tree must keep at least one compatible box."""
        for boxes in ordered[depth:]:
            if not any(current.intersects(box) for box in boxes):
                return False
        return True

    def search(current: Box, depth: int) -> Box | str | None:
        """Returns a feasible Box, None (exhausted), or "budget"."""
        nonlocal nodes
        if depth == len(ordered):
            return current
        for box in ordered[depth]:
            nodes += 1
            if max_nodes is not None and nodes > max_nodes:
                return "budget"
            if not current.intersects(box):
                continue
            merged = current.intersect(box)
            if merged.is_empty():
                continue
            if not forward_check(merged, depth + 1):
                continue
            result = search(merged, depth + 1)
            if result is not None:
                return result
        return None

    outcome = search(start, 0)
    stats = {"nodes": nodes, "n_trees": len(ordered)}
    if outcome == "budget":
        return PatternOutcome(status="unknown", stats=stats)
    if outcome is None:
        return PatternOutcome(status="unsat", stats=stats)

    assert isinstance(outcome, Box)
    instance = outcome.sample_point(problem.n_features, reference=problem.center)
    if problem.domain is not None:
        instance = np.clip(instance, problem.domain[0], problem.domain[1])
    if not problem.check_solution(instance):
        # Extremely thin intervals can fall foul of float nudging; treat
        # as a solver failure loudly rather than returning a bad witness.
        from ..exceptions import SolverError

        raise SolverError("box-DPLL produced a non-verifying witness")
    return PatternOutcome(status="sat", instance=instance, stats=stats)
