"""Theory-specific DPLL over leaf boxes — the second forgery engine.

Forcing tree ``t_i`` to output label ``ℓ_i`` means placing the instance
inside one of ``t_i``'s ``ℓ_i``-labelled leaf boxes; the whole pattern
problem is therefore: *choose one box per tree so that the joint
intersection (further clipped to the ε-ball and domain) is non-empty*.

This solver searches that space directly: depth-first over trees
(smallest candidate list first), maintaining the running intersection
box, with forward-checking against the remaining trees' candidates.
It is independent of the CNF machinery, which makes it a genuine
cross-check for the eager SMT encoding (the two are compared in the
test suite, the solver ablation benchmark, and the standing
differential fuzz test).

The search core is exposed as :func:`solve_clipped_boxes` so the
compiled encoding (:mod:`repro.solver.compiled_encoding`) can reuse a
forest's leaf boxes across instances instead of re-enumerating them:
both entry points clip the same candidate lists the same way, which
keeps their witnesses bit-for-bit identical.
"""

from __future__ import annotations

import numpy as np

from ..trees.node import TreeNode
from ..trees.paths import Box
from .problem import PatternOutcome, PatternProblem, check_pattern

__all__ = ["solve_pattern_boxes", "solve_clipped_boxes", "bounds_box"]


def bounds_box(lo: np.ndarray, hi: np.ndarray) -> Box:
    """The closed per-feature bounds ``[lo, hi]`` as a Box."""
    box = Box()
    for feature in range(lo.shape[0]):
        if np.isfinite(hi[feature]):
            box.constrain_upper(feature, float(hi[feature]))
        if np.isfinite(lo[feature]):
            # Closed lower bound lo encoded as strict bound just below it.
            box.constrain_lower(feature, float(np.nextafter(lo[feature], -np.inf)))
    return box


def solve_clipped_boxes(
    clipped: list[list[Box]],
    start: Box,
    *,
    roots: list[TreeNode],
    required: list[int],
    n_features: int,
    center: np.ndarray | None,
    epsilon: float | None,
    domain: tuple[float, float] | None,
    max_nodes: int | None,
) -> PatternOutcome:
    """DPLL over per-tree candidate boxes already clipped to the bounds.

    ``clipped[i]`` must be non-empty for every tree (trivially
    unsatisfiable instances are the caller's fast path) and every box
    must already include the ball/domain constraints of ``start``.
    """
    # Most-constrained trees first shrinks the branching factor early.
    order = sorted(range(len(clipped)), key=lambda i: len(clipped[i]))
    ordered = [clipped[i] for i in order]

    nodes = 0

    def forward_check(current: Box, depth: int) -> bool:
        """Every remaining tree must keep at least one compatible box."""
        for boxes in ordered[depth:]:
            if not any(current.intersects(box) for box in boxes):
                return False
        return True

    def search(current: Box, depth: int) -> Box | str | None:
        """Returns a feasible Box, None (exhausted), or "budget"."""
        nonlocal nodes
        if depth == len(ordered):
            return current
        for box in ordered[depth]:
            nodes += 1
            if max_nodes is not None and nodes > max_nodes:
                return "budget"
            if not current.intersects(box):
                continue
            merged = current.intersect(box)
            if merged.is_empty():
                continue
            if not forward_check(merged, depth + 1):
                continue
            result = search(merged, depth + 1)
            if result is not None:
                return result
        return None

    outcome = search(start, 0)
    stats = {"nodes": nodes, "n_trees": len(ordered)}
    if outcome == "budget":
        return PatternOutcome(status="unknown", stats=stats)
    if outcome is None:
        return PatternOutcome(status="unsat", stats=stats)

    assert isinstance(outcome, Box)
    instance = outcome.sample_point(n_features, reference=center)
    if domain is not None:
        instance = np.clip(instance, domain[0], domain[1])
    if not check_pattern(roots, required, instance, center, epsilon, domain):
        # Extremely thin intervals can fall foul of float nudging; treat
        # as a solver failure loudly rather than returning a bad witness.
        from ..exceptions import SolverError

        raise SolverError("box-DPLL produced a non-verifying witness")
    return PatternOutcome(status="sat", instance=instance, stats=stats)


def solve_pattern_boxes(
    problem: PatternProblem, max_nodes: int | None = 2_000_000
) -> PatternOutcome:
    """Decide a pattern problem by DPLL over per-tree leaf boxes.

    Parameters
    ----------
    max_nodes:
        Budget on search-tree nodes; exhausted ⇒ ``status="unknown"``.
    """
    candidates = problem.candidate_boxes()
    if candidates is None:
        return PatternOutcome(status="unsat", stats={"trivial": True})

    lo, hi = problem.feature_bounds()
    start = bounds_box(lo, hi)
    if start.is_empty():
        return PatternOutcome(status="unsat", stats={"trivial": True})

    # Clip candidates to the bounds up front and drop empties.
    clipped: list[list[Box]] = []
    for boxes in candidates:
        usable = []
        for box in boxes:
            merged = box.intersect(start)
            if not merged.is_empty():
                usable.append(merged)
        if not usable:
            return PatternOutcome(status="unsat", stats={"trivial": True})
        clipped.append(usable)

    return solve_clipped_boxes(
        clipped,
        start,
        roots=problem.roots,
        required=problem.required,
        n_features=problem.n_features,
        center=problem.center,
        epsilon=problem.epsilon,
        domain=problem.domain,
        max_nodes=max_nodes,
    )
