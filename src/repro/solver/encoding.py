"""Eager SMT encoding of pattern problems into propositional CNF.

The forgery formulas of the paper are Boolean combinations of threshold
predicates ``x_f ≤ v`` plus per-feature interval bounds.  Over this
fragment the classic *eager* reduction to SAT is sound and complete:

1. one Boolean **atom** per distinct predicate ``x_f ≤ v``;
2. **ordering axioms**: for consecutive thresholds ``v₁ < v₂`` of the
   same feature, ``(x ≤ v₁) → (x ≤ v₂)``;
3. **bound units**: atoms entailed (or refuted) by the ``L∞``-ball and
   domain bounds become unit clauses;
4. each tree's requirement "output label ℓ" becomes a disjunction over
   its ℓ-leaves, each leaf a conjunction of its box's atom literals
   (one-directional Tseitin, which preserves satisfiability).

Any propositional model then induces, per feature, a non-empty interval
of real values; :func:`decode_model` picks the point closest to the
ball centre.  This gives a decision procedure equivalent to Z3 on the
paper's forgery queries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import SolverError
from .cnf import CNF
from .problem import PatternOutcome, PatternProblem
from .sat import solve_cnf

__all__ = [
    "PatternEncoding",
    "encode_pattern_problem",
    "decode_model",
    "decode_atom_intervals",
    "solve_pattern_smt",
]


@dataclass
class PatternEncoding:
    """A CNF together with the atom bookkeeping needed for decoding."""

    cnf: CNF
    atom_vars: dict[tuple[int, float], int]  # (feature, threshold) -> var
    lo: np.ndarray
    hi: np.ndarray
    trivially_unsat: bool = False


def encode_pattern_problem(problem: PatternProblem) -> PatternEncoding:
    """Build the eager CNF encoding of a :class:`PatternProblem`."""
    cnf = CNF()
    lo, hi = problem.feature_bounds()
    candidates = problem.candidate_boxes()
    if candidates is None:
        return PatternEncoding(
            cnf=cnf, atom_vars={}, lo=lo, hi=hi, trivially_unsat=True
        )

    atom_vars: dict[tuple[int, float], int] = {}

    def atom(feature: int, threshold: float) -> int:
        key = (feature, float(threshold))
        if key not in atom_vars:
            atom_vars[key] = cnf.new_var()
        return atom_vars[key]

    # Tree constraints: one selector variable per candidate leaf box.
    for boxes in candidates:
        selectors = []
        for box in boxes:
            selector = cnf.new_var()
            selectors.append(selector)
            for feature, upper in box.upper.items():
                if upper < hi[feature]:  # bounds already imply looser atoms
                    cnf.add_clause([-selector, atom(feature, upper)])
            for feature, lower in box.lower.items():
                if lower >= lo[feature]:
                    cnf.add_clause([-selector, -atom(feature, lower)])
        cnf.add_clause(selectors)

    # Ordering axioms per feature over the atoms actually used.
    thresholds_by_feature: dict[int, list[float]] = {}
    for feature, threshold in atom_vars:
        thresholds_by_feature.setdefault(feature, []).append(threshold)
    for feature, thresholds in thresholds_by_feature.items():
        thresholds.sort()
        for smaller, larger in zip(thresholds, thresholds[1:]):
            cnf.add_clause(
                [-atom_vars[(feature, smaller)], atom_vars[(feature, larger)]]
            )

    # Bound units: ball/domain decide atoms outside [lo, hi).
    for (feature, threshold), var in atom_vars.items():
        if threshold >= hi[feature]:
            cnf.add_clause([var])
        elif threshold < lo[feature]:
            cnf.add_clause([-var])

    return PatternEncoding(cnf=cnf, atom_vars=atom_vars, lo=lo, hi=hi)


def decode_atom_intervals(
    atom_features: np.ndarray,
    atom_thresholds: np.ndarray,
    atom_truth: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
    n_features: int,
    center: np.ndarray | None,
) -> np.ndarray:
    """Vectorised core of model decoding, shared with the compiled path.

    ``atom_features``/``atom_thresholds`` describe every threshold atom
    ``x_f <= v`` and ``atom_truth`` its value in the propositional
    model.  True atoms give per-feature upper bounds (their minimum
    threshold), false atoms strict lower bounds (their maximum); the
    result is the point of the induced interval ∩ ``[lo, hi]`` closest
    to ``center`` (or to the bound midpoint when no ball is involved).
    """
    if center is not None:
        x = center.astype(np.float64).copy()
    else:
        # Bound midpoint where finite; an infinite side falls back to
        # the finite one (or 0) so unbounded features stay NaN-free.
        x = np.zeros(n_features, dtype=np.float64)
        finite_lo = np.isfinite(lo)
        finite_hi = np.isfinite(hi)
        both = finite_lo & finite_hi
        x[both] = 0.5 * (lo[both] + hi[both])
        x[finite_lo & ~finite_hi] = lo[finite_lo & ~finite_hi]
        x[~finite_lo & finite_hi] = hi[~finite_lo & finite_hi]
    # Features without atoms keep their default; clamp into bounds.
    x = np.clip(x, lo, hi)

    upper_bound = hi.astype(np.float64).copy()
    np.minimum.at(upper_bound, atom_features[atom_truth], atom_thresholds[atom_truth])
    strict_lower = np.full(n_features, -np.inf)
    falsity = ~atom_truth
    np.maximum.at(strict_lower, atom_features[falsity], atom_thresholds[falsity])

    low = lo.astype(np.float64).copy()
    bounded = strict_lower > -np.inf
    low[bounded] = np.maximum(low[bounded], np.nextafter(strict_lower[bounded], np.inf))
    broken = low > upper_bound
    if broken.any():
        feature = int(np.argmax(broken))
        raise SolverError(
            f"inconsistent decoded interval for feature {feature}: "
            f"[{low[feature]}, {upper_bound[feature]}] — encoding invariant violated"
        )
    return np.minimum(np.maximum(x, low), upper_bound)


def decode_model(
    encoding: PatternEncoding,
    model: dict[int, bool],
    n_features: int,
    center: np.ndarray | None,
) -> np.ndarray:
    """Extract a concrete instance from a propositional model.

    For each feature the true atoms give an upper bound (their minimum
    threshold) and the false atoms a strict lower bound (their maximum);
    ordering axioms and bound units guarantee the resulting interval
    intersected with ``[lo, hi]`` is non-empty.  Within it we take the
    point closest to ``center`` (or to the interval's midpoint when no
    ball is involved).
    """
    n_atoms = len(encoding.atom_vars)
    atom_features = np.empty(n_atoms, dtype=np.int64)
    atom_thresholds = np.empty(n_atoms, dtype=np.float64)
    atom_truth = np.empty(n_atoms, dtype=bool)
    for i, ((feature, threshold), var) in enumerate(encoding.atom_vars.items()):
        atom_features[i] = feature
        atom_thresholds[i] = threshold
        atom_truth[i] = model[var]
    return decode_atom_intervals(
        atom_features, atom_thresholds, atom_truth,
        encoding.lo, encoding.hi, n_features, center,
    )


def solve_pattern_smt(
    problem: PatternProblem, max_conflicts: int | None = 200_000
) -> PatternOutcome:
    """Decide a pattern problem via the eager SAT encoding.

    Returns a satisfying instance (verified against the actual trees),
    ``unsat``, or ``unknown`` when the conflict budget runs out.
    """
    encoding = encode_pattern_problem(problem)
    if encoding.trivially_unsat:
        return PatternOutcome(status="unsat", stats={"trivial": True})

    result = solve_cnf(encoding.cnf, max_conflicts=max_conflicts)
    stats = {
        "conflicts": result.conflicts,
        "decisions": result.decisions,
        "propagations": result.propagations,
        "n_vars": encoding.cnf.n_vars,
        "n_clauses": len(encoding.cnf),
    }
    if result.status != "sat":
        return PatternOutcome(status=result.status, stats=stats)

    assert result.model is not None
    instance = decode_model(encoding, result.model, problem.n_features, problem.center)
    if not problem.check_solution(instance):
        raise SolverError(
            "decoded instance does not realise the required pattern — "
            "eager encoding bug"
        )
    return PatternOutcome(status="sat", instance=instance, stats=stats)
