"""Compiled, instance-independent forgery encodings.

The forgery attack (§4.2.2) solves one :class:`PatternProblem` per test
instance, but across a sweep only the ``L∞`` box around the test point
changes — the forest, the fake signature and hence the required
per-tree labels stay fixed.  The per-instance encoder
(:mod:`repro.solver.encoding`) nevertheless re-enumerates every leaf
box, re-discretises every threshold and rebuilds the clause skeleton
from scratch on every call.

:class:`CompiledPatternEncoding` hoists all of that out of the loop.
Built once per ``(forest, required-label pattern)`` it precomputes:

- the per-tree candidate leaf boxes (leaves carrying the required
  label), in the same enumeration order the one-shot encoders use;
- the threshold **atom table** — one propositional variable per
  distinct ``x_f <= v`` predicate — as flat feature/threshold/variable
  arrays, so the atoms decided by an instance's bounds fall out of two
  vectorised comparisons;
- the **clause skeleton**: selector-variable clauses for every
  candidate leaf and the per-feature ordering axioms — everything
  except the bound units, which are exactly the instance-specific part;
- flattened constraint arrays for a vectorised **prescreen** that
  detects trivially unsatisfiable instances (some tree keeps no
  box compatible with the bounds) without touching the solver.

Per instance the engine then computes the feature bounds, turns them
into *assumptions* (see :meth:`repro.solver.sat.SATSolver.solve`), and
re-solves the persistent solver after a :meth:`~repro.solver.sat.SATSolver.reset`
— no clause re-encoding, no re-allocation.

**Determinism contract.**  A reset solver is bit-for-bit equivalent to
a freshly constructed one (learned clauses and heuristic state are
discarded), so every instance solve is a pure function of the skeleton
and the instance bounds.  Consequently ``reuse=True`` (cached skeleton
+ persistent solver) and ``reuse=False`` (rebuild per instance) return
*identical* outcomes — statuses and witnesses — and the forgery attack
can fan instances out over worker processes without changing results.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import SolverError
from ..trees.node import TreeNode
from ..trees.paths import Box, leaf_boxes
from .boxdpll import bounds_box, solve_clipped_boxes
from .cnf import CNF
from .encoding import decode_atom_intervals
from .portfolio import merge_portfolio_outcomes
from .problem import PatternOutcome, check_pattern, compute_feature_bounds
from .sat import SATSolver

__all__ = ["CompiledPatternEncoding", "compile_pattern_encoding", "EncodingCache"]

_DEFAULT_CONFLICTS = 200_000
_DEFAULT_NODES = 2_000_000


@dataclass
class _TreeScreen:
    """Flattened box constraints of one tree, for vectorised screening."""

    n_boxes: int
    upper_box: np.ndarray  # box index per upper constraint
    upper_feature: np.ndarray
    upper_value: np.ndarray
    lower_box: np.ndarray  # box index per lower constraint
    lower_feature: np.ndarray
    lower_value: np.ndarray

    def compatible(self, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        """Mask of boxes intersecting the closed bounds ``[lo, hi]``."""
        bad = np.zeros(self.n_boxes, dtype=bool)
        if self.upper_box.size:
            violated = self.upper_value < lo[self.upper_feature]
            bad[self.upper_box[violated]] = True
        if self.lower_box.size:
            violated = self.lower_value >= hi[self.lower_feature]
            bad[self.lower_box[violated]] = True
        return ~bad


def _tree_screen(boxes: list[Box]) -> _TreeScreen:
    upper_box: list[int] = []
    upper_feature: list[int] = []
    upper_value: list[float] = []
    lower_box: list[int] = []
    lower_feature: list[int] = []
    lower_value: list[float] = []
    for index, box in enumerate(boxes):
        for feature, value in box.upper.items():
            upper_box.append(index)
            upper_feature.append(feature)
            upper_value.append(value)
        for feature, value in box.lower.items():
            lower_box.append(index)
            lower_feature.append(feature)
            lower_value.append(value)
    return _TreeScreen(
        n_boxes=len(boxes),
        upper_box=np.asarray(upper_box, dtype=np.int64),
        upper_feature=np.asarray(upper_feature, dtype=np.int64),
        upper_value=np.asarray(upper_value, dtype=np.float64),
        lower_box=np.asarray(lower_box, dtype=np.int64),
        lower_feature=np.asarray(lower_feature, dtype=np.int64),
        lower_value=np.asarray(lower_value, dtype=np.float64),
    )


@dataclass
class CompiledPatternEncoding:
    """The instance-independent part of a forgery query, precompiled.

    Use :func:`compile_pattern_encoding` to build one; then call
    :meth:`solve` once per test instance with only the box constraints.
    """

    roots: list[TreeNode]
    required: list[int]
    n_features: int
    domain: tuple[float, float] | None
    candidates: list[list[Box]]
    cnf: CNF
    atom_vars: dict[tuple[int, float], int]
    # Atom table sorted by (feature, threshold); slices index per feature.
    atom_features: np.ndarray
    atom_thresholds: np.ndarray
    atom_variables: np.ndarray
    screens: list[_TreeScreen]
    always_unsat: bool
    _solver: SATSolver | None = field(default=None, repr=False)
    _solver_dirty: bool = field(default=False, repr=False)

    # -- per-instance pieces --------------------------------------------

    def feature_bounds(
        self, center: np.ndarray | None, epsilon: float | None
    ) -> tuple[np.ndarray, np.ndarray]:
        return compute_feature_bounds(self.n_features, center, epsilon, self.domain)

    def compatible_masks(
        self, lo: np.ndarray, hi: np.ndarray
    ) -> list[np.ndarray] | None:
        """Per-tree masks of bounds-compatible boxes; ``None`` when some
        tree keeps no compatible box (trivially unsatisfiable)."""
        masks: list[np.ndarray] = []
        for screen in self.screens:
            mask = screen.compatible(lo, hi)
            if not mask.any():
                return None
            masks.append(mask)
        return masks

    def bound_assumptions(self, lo: np.ndarray, hi: np.ndarray) -> list[int]:
        """Atoms decided by the bounds, as assumption literals.

        Exactly the bound units of the one-shot encoder: an atom
        ``x_f <= v`` is forced true when ``v >= hi_f`` and false when
        ``v < lo_f``; atoms with ``v`` inside ``[lo_f, hi_f)`` stay free.
        """
        forced_false = self.atom_thresholds < lo[self.atom_features]
        forced_true = self.atom_thresholds >= hi[self.atom_features]
        return np.concatenate(
            [-self.atom_variables[forced_false], self.atom_variables[forced_true]]
        ).tolist()

    def warm(self) -> "CompiledPatternEncoding":
        """Prebuild the persistent solver (encode clauses, set watches).

        The forgery attack calls this before forking workers so every
        child inherits the encoded clause database copy-on-write
        instead of re-encoding it.
        """
        if self._solver is None:
            self._solver = SATSolver(self.cnf)
            self._solver_dirty = False
        return self

    # -- engines ---------------------------------------------------------

    def solve_smt(
        self,
        center: np.ndarray | None = None,
        epsilon: float | None = None,
        max_conflicts: int | None = _DEFAULT_CONFLICTS,
        reuse: bool = True,
    ) -> PatternOutcome:
        """Decide one instance via assumption-style CDCL re-solving."""
        lo, hi = self.feature_bounds(center, epsilon)
        if self.always_unsat or (lo > hi).any():
            return PatternOutcome(status="unsat", stats={"trivial": True})
        if self.compatible_masks(lo, hi) is None:
            return PatternOutcome(status="unsat", stats={"trivial": True})

        if reuse:
            solver = self.warm()._solver
            assert solver is not None
            if self._solver_dirty:
                solver.reset()
            self._solver_dirty = True
        else:
            solver = SATSolver(self.cnf)
        solver.max_conflicts = max_conflicts

        result = solver.solve(self.bound_assumptions(lo, hi))
        stats = {
            "conflicts": result.conflicts,
            "decisions": result.decisions,
            "propagations": result.propagations,
            "n_vars": self.cnf.n_vars,
            "n_clauses": len(self.cnf),
            "reused": reuse,
        }
        if result.status != "sat":
            return PatternOutcome(status=result.status, stats=stats)

        assert result.model is not None
        model = result.model
        truth = np.fromiter(
            (model[int(var)] for var in self.atom_variables),
            dtype=bool,
            count=self.atom_variables.shape[0],
        )
        instance = decode_atom_intervals(
            self.atom_features, self.atom_thresholds, truth,
            lo, hi, self.n_features, center,
        )
        if not check_pattern(
            self.roots, self.required, instance, center, epsilon, self.domain
        ):
            raise SolverError(
                "decoded instance does not realise the required pattern — "
                "compiled encoding bug"
            )
        return PatternOutcome(status="sat", instance=instance, stats=stats)

    def solve_boxes(
        self,
        center: np.ndarray | None = None,
        epsilon: float | None = None,
        max_nodes: int | None = _DEFAULT_NODES,
    ) -> PatternOutcome:
        """Decide one instance via box DPLL over the cached candidates."""
        lo, hi = self.feature_bounds(center, epsilon)
        if self.always_unsat or (lo > hi).any():
            return PatternOutcome(status="unsat", stats={"trivial": True})
        masks = self.compatible_masks(lo, hi)
        if masks is None:
            return PatternOutcome(status="unsat", stats={"trivial": True})

        start = bounds_box(lo, hi)
        clipped: list[list[Box]] = []
        for boxes, mask in zip(self.candidates, masks):
            usable = []
            for box, ok in zip(boxes, mask):
                if not ok:
                    continue
                merged = box.intersect(start)
                if not merged.is_empty():
                    usable.append(merged)
            if not usable:
                return PatternOutcome(status="unsat", stats={"trivial": True})
            clipped.append(usable)

        return solve_clipped_boxes(
            clipped,
            start,
            roots=self.roots,
            required=self.required,
            n_features=self.n_features,
            center=center,
            epsilon=epsilon,
            domain=self.domain,
            max_nodes=max_nodes,
        )

    def solve(
        self,
        center: np.ndarray | None = None,
        epsilon: float | None = None,
        engine: str = "smt",
        budget: int | None = None,
        reuse: bool = True,
    ) -> PatternOutcome:
        """Engine dispatcher mirroring :func:`repro.solver.solve_pattern`.

        ``budget`` maps to the engine's natural knob: conflicts for
        ``smt``, search nodes for ``boxes``, both for ``portfolio``.
        ``None`` keeps the module defaults.
        """
        if engine == "smt":
            max_conflicts = _DEFAULT_CONFLICTS if budget is None else budget
            return self.solve_smt(center, epsilon, max_conflicts, reuse=reuse)
        if engine == "boxes":
            max_nodes = _DEFAULT_NODES if budget is None else budget
            return self.solve_boxes(center, epsilon, max_nodes)
        if engine == "portfolio":
            max_conflicts = _DEFAULT_CONFLICTS if budget is None else budget
            max_nodes = _DEFAULT_NODES if budget is None else budget
            smt = self.solve_smt(center, epsilon, max_conflicts, reuse=reuse)
            boxes = self.solve_boxes(center, epsilon, max_nodes)
            return merge_portfolio_outcomes(smt, boxes)
        from ..exceptions import ValidationError

        raise ValidationError(
            f"unknown engine {engine!r}; expected 'smt', 'boxes' or 'portfolio'"
        )


def compile_pattern_encoding(
    roots: list[TreeNode],
    required: list[int],
    n_features: int,
    domain: tuple[float, float] | None = (0.0, 1.0),
) -> CompiledPatternEncoding:
    """Build the instance-independent encoding of a signature pattern.

    Enumeration order matches the one-shot encoders exactly (leaf boxes
    in :func:`repro.trees.paths.leaf_boxes` order, trees in ensemble
    order), which is what keeps compiled and fresh solves bit-for-bit
    interchangeable.
    """
    if len(roots) != len(required):
        from ..exceptions import ValidationError

        raise ValidationError(
            f"{len(roots)} trees but {len(required)} required labels"
        )

    candidates: list[list[Box]] = []
    always_unsat = False
    for root, label in zip(roots, required):
        boxes = [box for leaf, box in leaf_boxes(root) if leaf.prediction == label]
        if not boxes:
            always_unsat = True
        candidates.append(boxes)

    cnf = CNF()
    atom_vars: dict[tuple[int, float], int] = {}

    def atom(feature: int, threshold: float) -> int:
        key = (feature, float(threshold))
        if key not in atom_vars:
            atom_vars[key] = cnf.new_var()
        return atom_vars[key]

    # Tree constraints: one selector variable per candidate leaf box.
    # Unlike the one-shot encoder no clause is pruned against the
    # bounds — the bounds arrive per instance as assumptions, and unit
    # propagation performs the same pruning inside the solver.
    for boxes in candidates:
        selectors = []
        for box in boxes:
            selector = cnf.new_var()
            selectors.append(selector)
            for feature, upper in box.upper.items():
                cnf.add_clause([-selector, atom(feature, upper)])
            for feature, lower in box.lower.items():
                cnf.add_clause([-selector, -atom(feature, lower)])
        cnf.add_clause(selectors)

    # Ordering axioms per feature over all atoms.
    thresholds_by_feature: dict[int, list[float]] = {}
    for feature, threshold in atom_vars:
        thresholds_by_feature.setdefault(feature, []).append(threshold)
    for feature, thresholds in sorted(thresholds_by_feature.items()):
        thresholds.sort()
        for smaller, larger in zip(thresholds, thresholds[1:]):
            cnf.add_clause(
                [-atom_vars[(feature, smaller)], atom_vars[(feature, larger)]]
            )

    # Atom table sorted by (feature, threshold) with per-feature slices.
    items = sorted(atom_vars.items())
    atom_features = np.array([key[0] for key, _ in items], dtype=np.int64)
    atom_thresholds = np.array([key[1] for key, _ in items], dtype=np.float64)
    atom_variables = np.array([var for _, var in items], dtype=np.int64)
    return CompiledPatternEncoding(
        roots=roots,
        required=list(required),
        n_features=n_features,
        domain=domain,
        candidates=candidates,
        cnf=cnf,
        atom_vars=atom_vars,
        atom_features=atom_features,
        atom_thresholds=atom_thresholds,
        atom_variables=atom_variables,
        screens=[_tree_screen(boxes) for boxes in candidates],
        always_unsat=always_unsat,
    )


class EncodingCache:
    """Compiled encodings for one forest, keyed by required-label pattern.

    The forgery attack needs at most two patterns per fake signature
    (one per test label ±1); this cache builds each lazily and hands
    the same compiled object back for every subsequent instance.
    """

    def __init__(
        self,
        roots: list[TreeNode],
        n_features: int,
        domain: tuple[float, float] | None = (0.0, 1.0),
    ) -> None:
        self.roots = roots
        self.n_features = n_features
        self.domain = domain
        self._by_pattern: dict[tuple[int, ...], CompiledPatternEncoding] = {}

    def for_required(self, required: list[int]) -> CompiledPatternEncoding:
        key = tuple(required)
        encoding = self._by_pattern.get(key)
        if encoding is None:
            encoding = compile_pattern_encoding(
                self.roots, list(required), self.n_features, self.domain
            )
            self._by_pattern[key] = encoding
        return encoding
