"""CNF preprocessing and DIMACS interchange.

The forgery encodings contain many unit clauses (ball/domain bounds)
and chained ordering axioms; the preprocessor shrinks them before the
CDCL search:

- **unit propagation** to fixpoint at the formula level;
- **pure-literal elimination** (a variable occurring with one polarity
  only can be satisfied for free);
- **subsumption** (a clause that is a superset of another is redundant).

All transformations are satisfiability-preserving, and the simplifier
records the assignments it fixed so full models can be reconstructed.
A DIMACS parser/printer rounds out the module so formulas can be
exchanged with external tools.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exceptions import SolverError
from .cnf import CNF

__all__ = ["SimplifiedCNF", "simplify_cnf", "parse_dimacs"]


@dataclass
class SimplifiedCNF:
    """Result of preprocessing.

    ``forced`` holds the assignments fixed by the simplifier (units and
    pure literals); ``restore`` extends a model of the simplified
    formula to a model of the original.  ``unsat`` short-circuits when
    preprocessing already derived a contradiction.
    """

    cnf: CNF
    forced: dict[int, bool] = field(default_factory=dict)
    unsat: bool = False

    def restore(self, model: dict[int, bool] | None, n_vars: int) -> dict[int, bool] | None:
        """Extend a model of the simplified CNF to all original variables.

        Unconstrained variables default to ``False``.
        """
        if self.unsat:
            return None
        full = {var: False for var in range(1, n_vars + 1)}
        if model:
            full.update(model)
        full.update(self.forced)
        return full


def _propagate_units(clauses: list[list[int]], forced: dict[int, bool]) -> list[list[int]] | None:
    """Unit propagation to fixpoint; returns None on contradiction."""
    changed = True
    while changed:
        changed = False
        units = [clause[0] for clause in clauses if len(clause) == 1]
        for literal in units:
            var, value = abs(literal), literal > 0
            if var in forced and forced[var] != value:
                return None
            if var not in forced:
                forced[var] = value
                changed = True
        if not changed:
            break
        next_clauses: list[list[int]] = []
        for clause in clauses:
            satisfied = False
            reduced: list[int] = []
            for literal in clause:
                var = abs(literal)
                if var in forced:
                    if forced[var] == (literal > 0):
                        satisfied = True
                        break
                else:
                    reduced.append(literal)
            if satisfied:
                continue
            if not reduced:
                return None
            next_clauses.append(reduced)
        clauses = next_clauses
    return clauses


def _eliminate_pure_literals(
    clauses: list[list[int]], forced: dict[int, bool]
) -> list[list[int]]:
    """Remove clauses containing literals of single-polarity variables."""
    while True:
        polarity: dict[int, set[bool]] = {}
        for clause in clauses:
            for literal in clause:
                polarity.setdefault(abs(literal), set()).add(literal > 0)
        pure = {
            var: next(iter(signs)) for var, signs in polarity.items() if len(signs) == 1
        }
        if not pure:
            return clauses
        for var, value in pure.items():
            if var not in forced:
                forced[var] = value
        clauses = [
            clause
            for clause in clauses
            if not any(abs(literal) in pure for literal in clause)
        ]


def _remove_subsumed(clauses: list[list[int]]) -> list[list[int]]:
    """Drop clauses that are supersets of some other clause."""
    as_sets = [frozenset(clause) for clause in clauses]
    order = sorted(range(len(clauses)), key=lambda i: len(as_sets[i]))
    kept: list[int] = []
    kept_sets: list[frozenset[int]] = []
    for index in order:
        candidate = as_sets[index]
        if any(small <= candidate for small in kept_sets):
            continue
        kept.append(index)
        kept_sets.append(candidate)
    kept.sort()
    return [clauses[i] for i in kept]


def simplify_cnf(cnf: CNF) -> SimplifiedCNF:
    """Preprocess a CNF; the result is equisatisfiable with the input."""
    forced: dict[int, bool] = {}
    clauses = [list(clause) for clause in cnf.clauses]
    if any(not clause for clause in clauses):
        return SimplifiedCNF(cnf=CNF(), unsat=True)

    propagated = _propagate_units(clauses, forced)
    if propagated is None:
        return SimplifiedCNF(cnf=CNF(), forced=forced, unsat=True)
    clauses = _eliminate_pure_literals(propagated, forced)
    clauses = _remove_subsumed(clauses)

    result = CNF()
    result.n_vars = cnf.n_vars
    for clause in clauses:
        result.add_clause(clause)
    return SimplifiedCNF(cnf=result, forced=forced)


def parse_dimacs(text: str) -> CNF:
    """Parse DIMACS CNF text into a :class:`CNF`.

    Accepts comment lines (``c ...``) and requires the standard
    ``p cnf <vars> <clauses>`` header.
    """
    cnf = CNF()
    declared_clauses: int | None = None
    pending: list[int] = []
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise SolverError(f"malformed DIMACS header: {line!r}")
            cnf.n_vars = int(parts[2])
            declared_clauses = int(parts[3])
            continue
        if declared_clauses is None:
            raise SolverError("DIMACS clauses appear before the 'p cnf' header")
        for token in line.split():
            literal = int(token)
            if literal == 0:
                cnf.add_clause(pending)
                pending = []
            else:
                pending.append(literal)
    if pending:
        raise SolverError("DIMACS input ends inside an unterminated clause")
    return cnf
