"""Portfolio solving with online cross-checking.

The two pattern engines (eager SMT and box DPLL) are independent
implementations of the same decision procedure.  The portfolio runs
both on every query and:

- raises :class:`SolverError` if they *disagree* on a decided instance
  (a bug in one of them — this must never pass silently);
- returns the decided answer when one engine times out and the other
  decides, making the portfolio strictly more complete than either
  engine under a budget.

The forgery experiments accept ``engine="portfolio"`` anywhere an
engine name is taken.
"""

from __future__ import annotations

from ..exceptions import SolverError
from .boxdpll import solve_pattern_boxes
from .encoding import solve_pattern_smt
from .problem import PatternOutcome, PatternProblem

__all__ = ["solve_pattern_portfolio", "merge_portfolio_outcomes"]

_DECIDED = ("sat", "unsat")


def solve_pattern_portfolio(
    problem: PatternProblem,
    max_conflicts: int | None = 200_000,
    max_nodes: int | None = 2_000_000,
) -> PatternOutcome:
    """Run both engines, cross-check, and merge their verdicts.

    Parameters
    ----------
    max_conflicts:
        Budget for the SMT engine.
    max_nodes:
        Budget for the box-DPLL engine.
    """
    smt = solve_pattern_smt(problem, max_conflicts=max_conflicts)
    boxes = solve_pattern_boxes(problem, max_nodes=max_nodes)
    return merge_portfolio_outcomes(smt, boxes)


def merge_portfolio_outcomes(
    smt: PatternOutcome, boxes: PatternOutcome
) -> PatternOutcome:
    """Cross-check and merge the two engines' verdicts.

    Shared by the one-shot portfolio above and the compiled forgery
    engine (:mod:`repro.solver.compiled_encoding`), so both enforce the
    same disagreement-is-a-bug contract.
    """
    if smt.status in _DECIDED and boxes.status in _DECIDED:
        if smt.status != boxes.status:
            raise SolverError(
                f"engine disagreement: smt={smt.status} boxes={boxes.status} — "
                f"one of the solvers is buggy on this instance"
            )
        chosen = smt if smt.is_sat else boxes
        return PatternOutcome(
            status=chosen.status,
            instance=smt.instance if smt.is_sat else None,
            stats={"smt": smt.stats, "boxes": boxes.stats, "agreement": True},
        )

    decided = smt if smt.status in _DECIDED else boxes
    if decided.status in _DECIDED:
        return PatternOutcome(
            status=decided.status,
            instance=decided.instance,
            stats={"smt": smt.stats, "boxes": boxes.stats, "agreement": None},
        )
    return PatternOutcome(
        status="unknown",
        stats={"smt": smt.stats, "boxes": boxes.stats, "agreement": None},
    )
