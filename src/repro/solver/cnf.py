"""CNF formula container with DIMACS-style literals.

Variables are positive integers ``1..n``; a literal is ``+v`` (variable
true) or ``-v`` (variable false).  The container performs light
normalisation on insertion: duplicate literals are removed and
tautological clauses (containing ``v`` and ``-v``) are dropped.
"""

from __future__ import annotations

from ..exceptions import SolverError

__all__ = ["CNF"]


class CNF:
    """A growable conjunction of disjunctive clauses."""

    def __init__(self) -> None:
        self.n_vars = 0
        self.clauses: list[list[int]] = []

    def new_var(self) -> int:
        """Allocate a fresh variable and return its index (1-based)."""
        self.n_vars += 1
        return self.n_vars

    def new_vars(self, count: int) -> list[int]:
        """Allocate ``count`` fresh variables."""
        return [self.new_var() for _ in range(count)]

    def add_clause(self, literals) -> None:
        """Add a clause (any iterable of non-zero ints).

        An empty clause is allowed and makes the formula trivially
        unsatisfiable — solvers detect it up front.
        """
        seen: set[int] = set()
        clause: list[int] = []
        for literal in literals:
            literal = int(literal)
            if literal == 0:
                raise SolverError("0 is not a valid DIMACS literal")
            if abs(literal) > self.n_vars:
                raise SolverError(
                    f"literal {literal} references variable beyond n_vars={self.n_vars}; "
                    f"allocate variables with new_var() first"
                )
            if -literal in seen:
                return  # tautology: drop the clause entirely
            if literal not in seen:
                seen.add(literal)
                clause.append(literal)
        self.clauses.append(clause)

    def evaluate(self, assignment: dict[int, bool]) -> bool:
        """Check a *complete* assignment against all clauses.

        Used by tests and by the encoders' internal sanity checks.
        """
        for clause in self.clauses:
            satisfied = False
            for literal in clause:
                var = abs(literal)
                if var not in assignment:
                    raise SolverError(f"assignment is missing variable {var}")
                if assignment[var] == (literal > 0):
                    satisfied = True
                    break
            if not satisfied:
                return False
        return True

    def to_dimacs(self) -> str:
        """Serialise to DIMACS CNF text (for debugging / external solvers)."""
        lines = [f"p cnf {self.n_vars} {len(self.clauses)}"]
        for clause in self.clauses:
            lines.append(" ".join(str(literal) for literal in clause) + " 0")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.clauses)

    def __repr__(self) -> str:
        return f"CNF(n_vars={self.n_vars}, n_clauses={len(self.clauses)})"
