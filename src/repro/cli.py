"""Command-line interface for the watermarking workflow.

Four subcommands cover the owner/judge/attacker lifecycle end to end::

    # Owner: train a watermarked forest on a stand-in dataset and save
    # the model + secret (+ a published commitment digest).
    repro watermark --dataset breast-cancer --trees 16 \
        --trigger-size 8 --out-dir ./artifacts

    # Judge: verify a claim against a (possibly stolen) model file.
    repro verify --model ./artifacts/model.json \
        --secret ./artifacts/secret.json \
        --commitment ./artifacts/commitment.json

    # Operator: re-export / convert artefacts between formats (json
    # escape hatch, mmap-able .rfbin, sklearn-interop .npz).
    repro convert ./artifacts/model.json ./artifacts/model.rfbin
    repro export --model ./artifacts/model.rfbin --out ./interop.npz

    # Anyone: regenerate one of the paper's experiments at small scale.
    repro experiment --name table2

    # Attacker: run any registry attack against a freshly watermarked
    # model (uniform AttackReport JSON with --json).
    repro attack --list
    repro attack --name flip --strength 0.05 --strength 0.3 --json

    # Operator: replay a named adversarial traffic scenario against a
    # freshly watermarked deployment with the online defenders attached.
    repro traffic --list
    repro traffic --scenario verification-probe --queries 20000 --json

    # Operator: serve saved model artefacts over HTTP (micro-batched
    # predict/predict_all plus a judge-facing /verify endpoint).
    repro serve --model demo=./artifacts/model.rfbin --port 8080

    # Maintainer: statically check the tree against the repo's own
    # determinism/JSON/atomicity/concurrency contracts (exit 1 on
    # findings; every suppression must carry a reason).
    repro lint src benchmarks examples
    repro lint --explain RPR003

(``repro`` is the installed console script; ``python -m repro`` and
``python -m repro.cli`` are equivalent.)  The CLI works on the
synthetic stand-in datasets; library users with real data call
:class:`repro.Watermarker` directly.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

import numpy as np

from ._jsonsafe import dumps
from .analysis.cli import add_lint_parser, run_lint
from .api import available_attacks, make_attack
from .core import (
    WatermarkSecret,
    commit_secret,
    random_signature,
    verify_commitment,
    verify_ownership,
    watermark,
)
from .datasets import DATASET_NAMES, load_dataset
from .exceptions import ReproError, ValidationError
from .experiments import (
    SMALL,
    detection_table,
    format_table,
    forgery_tabular_results,
    run_scenario_matrix,
)
from .model_selection import train_test_split
from .persistence import (
    available_formats,
    load_json,
    save_json,
    secret_from_dict,
    secret_to_dict,
)
from .persistence import load as load_model
from .persistence import save as save_model

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Watermarking decision-tree ensembles (EDBT 2025 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    cmd_watermark = commands.add_parser(
        "watermark", help="train a watermarked forest and save model + secret"
    )
    cmd_watermark.add_argument("--dataset", choices=DATASET_NAMES, required=True)
    cmd_watermark.add_argument("--samples", type=int, default=500,
                               help="stand-in dataset size (default 500)")
    cmd_watermark.add_argument("--trees", type=int, default=16,
                               help="ensemble size m = signature length")
    cmd_watermark.add_argument("--trigger-size", type=int, default=8)
    cmd_watermark.add_argument("--ones-fraction", type=float, default=0.5)
    cmd_watermark.add_argument("--max-depth", type=int, default=10)
    cmd_watermark.add_argument("--n-jobs", type=int, default=None,
                               help="worker processes for tree fitting "
                               "(-1 = all cores; default serial); results "
                               "are identical across settings")
    cmd_watermark.add_argument("--full-retrain", action="store_true",
                               help="disable incremental embedding and refit "
                               "every tree each re-weighting round (the "
                               "paper's literal loop; slower, same guarantees)")
    cmd_watermark.add_argument("--seed", type=int, default=0)
    cmd_watermark.add_argument("--out-dir", type=Path, required=True)
    cmd_watermark.add_argument("--format", choices=("json", "binary"),
                               default="json", dest="model_format",
                               help="model artefact format: json (inspectable, "
                               "default) or binary (.rfbin, mmap-able for "
                               "serving)")

    cmd_verify = commands.add_parser(
        "verify", help="verify an ownership claim against a model file"
    )
    cmd_verify.add_argument("--model", type=Path, required=True,
                            help="model artefact in any registered format "
                            "(detected from its content)")
    cmd_verify.add_argument("--secret", type=Path, required=True)
    cmd_verify.add_argument("--commitment", type=Path, default=None,
                            help="optional commitment file to check the reveal against")
    cmd_verify.add_argument("--mode", choices=("strict", "iff"), default="strict")

    cmd_export = commands.add_parser(
        "export",
        help="re-export a model artefact in another registered format",
    )
    cmd_export.add_argument("--model", type=Path, required=True,
                            help="source artefact (format detected from content)")
    cmd_export.add_argument("--out", type=Path, required=True,
                            help="destination path; format inferred from the "
                            "extension unless --format is given")
    cmd_export.add_argument("--format", default=None, dest="out_format",
                            help="destination format "
                            f"({', '.join(available_formats())})")
    cmd_export.add_argument("--ensemble-only", action="store_true",
                            help="export only the forest of a watermarked "
                            "model (strips the secret — required for "
                            "formats that refuse to carry it)")

    cmd_convert = commands.add_parser(
        "convert",
        help="convert a model artefact between registered formats",
    )
    cmd_convert.add_argument("input", type=Path,
                             help="source artefact (format detected from content)")
    cmd_convert.add_argument("output", type=Path,
                             help="destination path; format inferred from the "
                             "extension unless --to is given")
    cmd_convert.add_argument("--to", default=None, dest="to_format",
                             help="destination format "
                             f"({', '.join(available_formats())})")

    cmd_experiment = commands.add_parser(
        "experiment", help="regenerate a paper experiment at small scale"
    )
    cmd_experiment.add_argument(
        "--name", choices=("table2", "sec422"), required=True
    )
    cmd_experiment.add_argument(
        "--n-jobs", type=int, default=None,
        help="worker processes for forest training and the forgery "
        "solver sweep (-1 = all cores; default serial); results are "
        "identical across settings",
    )

    cmd_attack = commands.add_parser(
        "attack",
        help="run a registry attack against a freshly watermarked model",
    )
    cmd_attack.add_argument("--list", action="store_true", dest="list_attacks",
                            help="list the registered attacks and exit")
    cmd_attack.add_argument("--name", choices=available_attacks(), default=None,
                            help="registry name of the attack to run")
    cmd_attack.add_argument("--dataset", choices=DATASET_NAMES,
                            default="breast-cancer")
    cmd_attack.add_argument("--strength", type=float, action="append",
                            default=None,
                            help="strength value for the attack's strength "
                            "parameter (truncate: depth, flip: probability, "
                            "prune: alpha, extract: query budget, forgery: "
                            "epsilon); repeat to sweep")
    cmd_attack.add_argument("--json", action="store_true",
                            help="emit the uniform AttackReport cells as JSON "
                            "instead of a table")
    cmd_attack.add_argument("--n-jobs", type=int, default=None,
                            help="worker processes for forest training "
                            "(-1 = all cores; default serial)")
    cmd_attack.add_argument("--seed", type=int, default=None,
                            help="override the experiment config seed")

    cmd_traffic = commands.add_parser(
        "traffic",
        help="replay an adversarial traffic scenario against a "
        "watermarked deployment with online defenders attached",
    )
    cmd_traffic.add_argument("--list", action="store_true", dest="list_scenarios",
                             help="list the named traffic scenarios and exit")
    cmd_traffic.add_argument("--scenario", default=None,
                             help="named scenario to replay (see --list)")
    cmd_traffic.add_argument("--dataset", choices=DATASET_NAMES,
                             default="breast-cancer")
    cmd_traffic.add_argument("--queries", type=int, default=10_000,
                             help="stream length (default 10000)")
    cmd_traffic.add_argument("--batch-size", type=int, default=1024,
                             help="queries served per chunk (default 1024)")
    cmd_traffic.add_argument("--alpha", type=float, default=0.05,
                             help="defenders' overall false-alarm budget")
    cmd_traffic.add_argument("--json", action="store_true",
                             help="emit the TrafficReport as JSON instead of "
                             "a summary")
    cmd_traffic.add_argument("--n-jobs", type=int, default=None,
                             help="worker processes for forest training "
                             "(-1 = all cores; default serial)")
    cmd_traffic.add_argument("--seed", type=int, default=None,
                             help="override the experiment config seed")

    cmd_serve = commands.add_parser(
        "serve",
        help="serve saved model artefacts over HTTP with request "
        "micro-batching and a judge-facing verification endpoint",
    )
    cmd_serve.add_argument("--model", action="append", required=True,
                           metavar="NAME=PATH", dest="models",
                           help="artefact to host, as name=path; repeat to "
                           "host several (.rfbin artefacts are mmap-loaded)")
    cmd_serve.add_argument("--host", default="127.0.0.1")
    cmd_serve.add_argument("--port", type=int, default=8080,
                           help="TCP port (0 picks an ephemeral port, "
                           "printed on startup)")
    cmd_serve.add_argument("--flush-window", type=float, default=0.002,
                           help="seconds a request may wait for co-batched "
                           "neighbours (default 2ms; 0 disables coalescing)")
    cmd_serve.add_argument("--max-batch-rows", type=int, default=512,
                           help="rows that force an immediate flush")
    cmd_serve.add_argument("--max-queue-rows", type=int, default=8192,
                           help="per-model backlog before requests are "
                           "rejected with 429 + Retry-After")
    cmd_serve.add_argument("--max-concurrent-batches", type=int, default=2,
                           help="fused predict_all calls in flight per model")
    cmd_serve.add_argument("--alpha", type=float, default=0.05,
                           help="false-alarm budget of the per-model "
                           "traffic observer")
    cmd_serve.add_argument("--request-timeout", type=float, default=30.0,
                           help="seconds an engine call may run before the "
                           "request answers 504 (0 disables the bound)")
    cmd_serve.add_argument("--read-timeout", type=float, default=30.0,
                           help="seconds a peer may take to send its request "
                           "before the connection is cut (slow-loris "
                           "defence; 0 disables)")
    cmd_serve.add_argument("--failure-budget", type=int, default=5,
                           help="engine failures inside a 30s window before "
                           "a model is quarantined")
    cmd_serve.add_argument("--quarantine", type=float, default=5.0,
                           help="seconds a quarantined model answers 503 + "
                           "Retry-After before traffic probes it again")

    add_lint_parser(commands)

    return parser


def _cmd_watermark(args) -> int:
    dataset = load_dataset(args.dataset, n_samples=args.samples, random_state=args.seed)
    X_train, X_test, y_train, y_test = train_test_split(
        dataset.X, dataset.y, test_size=0.3, random_state=args.seed + 1
    )
    signature = random_signature(
        args.trees, ones_fraction=args.ones_fraction, random_state=args.seed + 2
    )
    model = watermark(
        X_train,
        y_train,
        signature,
        trigger_size=args.trigger_size,
        base_params={"max_depth": args.max_depth},
        incremental=not args.full_retrain,
        n_jobs=args.n_jobs,
        random_state=args.seed + 3,
    )

    args.out_dir.mkdir(parents=True, exist_ok=True)
    model_name = "model.rfbin" if args.model_format == "binary" else "model.json"
    save_model(model.ensemble, args.out_dir / model_name, format=args.model_format)
    secret = WatermarkSecret(
        signature=model.signature,
        trigger_X=model.trigger.X,
        trigger_y=model.trigger.y,
    )
    save_json(secret_to_dict(secret), args.out_dir / "secret.json")
    commitment = commit_secret(secret)
    save_json(
        {"digest": commitment.digest, "salt": commitment.salt},
        args.out_dir / "commitment.json",
    )

    accuracy = model.ensemble.score(X_test, y_test)
    print(f"watermarked model written to {args.out_dir / model_name}")
    print(f"secret written to          {args.out_dir / 'secret.json'}  (keep private!)")
    print(f"commitment digest          {commitment.digest}  (publish/timestamp this)")
    print(f"test accuracy              {accuracy:.3f}")
    return 0


def _cmd_verify(args) -> int:
    # Any registered artefact format works; a watermarked artefact is
    # verified through its embedded ensemble.
    model = load_model(args.model)
    model = getattr(model, "ensemble", model)
    secret = secret_from_dict(load_json(args.secret))

    if args.commitment is not None:
        data = load_json(args.commitment)
        if not verify_commitment(data["digest"], secret, data["salt"]):
            print("commitment check       FAILED — revealed secret does not "
                  "match the published digest")
            return 2
        print("commitment check       ok")

    report = verify_ownership(
        model, secret.signature, secret.trigger_X, secret.trigger_y, mode=args.mode
    )
    print(f"verification           {report.summary()}")
    return 0 if report.accepted else 1


def _cmd_export(args) -> int:
    model = load_model(args.model)
    if args.ensemble_only:
        model = getattr(model, "ensemble", model)
    args.out.parent.mkdir(parents=True, exist_ok=True)
    save_model(model, args.out, format=args.out_format)
    print(f"exported {args.model} -> {args.out}")
    return 0


def _cmd_convert(args) -> int:
    model = load_model(args.input)
    args.output.parent.mkdir(parents=True, exist_ok=True)
    save_model(model, args.output, format=args.to_format)
    print(f"converted {args.input} -> {args.output}")
    return 0


def _cmd_experiment(args) -> int:
    config = SMALL.with_overrides(n_jobs=args.n_jobs)
    if args.name == "table2":
        rows = detection_table(config)
        print(
            format_table(
                ["Dataset", "Statistic", "Strategy", "(mean - std)",
                 "#correct", "#wrong", "#uncertain"],
                [
                    [r.dataset, r.statistic, r.strategy,
                     f"({r.mean:.2f} - {r.std:.2f})", r.n_correct, r.n_wrong,
                     r.n_uncertain]
                    for r in rows
                ],
            )
        )
    else:
        rows = forgery_tabular_results(
            config, epsilons=(0.1,), n_signatures=1, max_instances=10
        )
        print(
            format_table(
                ["Dataset", "eps", "forged", "original k"],
                [[r.dataset, r.epsilon, r.mean_forged_size, r.original_trigger_size]
                 for r in rows],
            )
        )
    return 0


def _cmd_attack(args) -> int:
    if args.list_attacks:
        for name in available_attacks():
            attack = make_attack(name)
            strength = getattr(attack, "strength_param", None)
            knob = f"strength = {strength}" if strength else "no strength sweep"
            print(f"{name:<12} {knob:<24} defaults: {attack}")
        return 0
    if args.name is None:
        raise ValidationError("attack needs --name (or --list)")

    config = SMALL.with_overrides(
        **({"n_jobs": args.n_jobs} if args.n_jobs is not None else {}),
        **({"seed": args.seed} if args.seed is not None else {}),
    )
    # The CLI runs at demo scale: cap the forgery solver sweep so a
    # one-line invocation answers in seconds, not hours.
    overrides = {"forgery": {"max_instances": 10, "solver_budget": 20_000}}
    attack = make_attack(args.name, **overrides.get(args.name, {}))
    strengths = (
        {args.name: args.strength} if args.strength is not None else None
    )
    cells = run_scenario_matrix(
        config, attacks=(attack,), strengths=strengths, datasets=(args.dataset,)
    )
    if args.json:
        print(dumps([cell.to_dict() for cell in cells], indent=2))
    else:
        print(
            format_table(
                ["Dataset", "Attack", "Strength", "Acc before", "Acc after",
                 "WM match", "WM accepted", "Attack succeeded"],
                [
                    [c.dataset, c.attack,
                     "-" if c.strength is None else c.strength,
                     c.report.baseline_accuracy, c.report.attacked_accuracy,
                     c.report.watermark_match_rate,
                     c.report.watermark_accepted, c.report.succeeded]
                    for c in cells
                ],
            )
        )
    return 0


def _cmd_traffic(args) -> int:
    from .experiments.scenarios import _cell_seed, build_attack_target
    from .traffic import replay_scenario, scenario_description, traffic_scenarios

    if args.list_scenarios:
        for name in traffic_scenarios():
            print(f"{name:<20} {scenario_description(name)}")
        return 0
    if args.scenario is None:
        raise ValidationError("traffic needs --scenario (or --list)")

    config = SMALL.with_overrides(
        **({"n_jobs": args.n_jobs} if args.n_jobs is not None else {}),
        **({"seed": args.seed} if args.seed is not None else {}),
    )
    target = build_attack_target(config, args.dataset)
    report = replay_scenario(
        args.scenario,
        target.model,
        target.X_train,
        n_queries=args.queries,
        batch_size=args.batch_size,
        random_state=_cell_seed(config.seed, args.dataset, f"traffic:{args.scenario}"),
        alpha=args.alpha,
    )
    if args.json:
        # One line of strict JSON: pipeline-friendly (`... --json | head -1`
        # stays parseable) and free of Infinity/NaN literals even when a
        # zero-elapsed replay makes queries_per_second non-finite.
        print(dumps(report.to_dict()))
        return 0

    print(f"scenario    {args.scenario} — {scenario_description(args.scenario)}")
    print(f"served      {report.n_queries} queries in {report.n_batches} batches "
          f"({report.queries_per_second:,.0f} queries/sec)")
    sources = ", ".join(f"{k}: {v}" for k, v in sorted(report.source_counts.items()))
    print(f"sources     {sources}")
    print(f"triggers    {report.n_trigger_queries} trigger queries in the stream")
    for verdict in report.verdicts:
        status = (
            f"FIRED at query {verdict.fired_at}" if verdict.fired else "silent"
        )
        print(f"defender    {verdict.defender:<28} {status}  "
              f"(stat {verdict.statistic:.4f} vs threshold {verdict.threshold:.4f})")
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from .serve import ModelRegistry, ServingDaemon

    registry = ModelRegistry(
        max_failures=args.failure_budget,
        quarantine_seconds=args.quarantine,
    )
    for spec in args.models:
        name, sep, path = spec.partition("=")
        if not sep or not name or not path:
            raise ValidationError(f"--model expects NAME=PATH, got {spec!r}")
        registry.load(name, Path(path), alpha=args.alpha)

    daemon = ServingDaemon(
        registry,
        host=args.host,
        port=args.port,
        flush_window=args.flush_window,
        max_batch_rows=args.max_batch_rows,
        max_queue_rows=args.max_queue_rows,
        max_concurrent_batches=args.max_concurrent_batches,
        request_timeout=args.request_timeout or None,
        read_timeout=args.read_timeout or None,
    )
    return asyncio.run(_serve_forever(daemon, registry))


async def _serve_forever(daemon, registry) -> int:
    import asyncio
    import signal

    await daemon.start()
    host, port = daemon.address
    for served in registry:
        print(f"model {served.name}: {served.describe()}", flush=True)
    print(f"listening on http://{host}:{port}", flush=True)

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except NotImplementedError:  # pragma: no cover - non-unix loops
            pass
    await stop.wait()
    print("draining: refusing new connections, flushing in-flight batches",
          flush=True)
    await daemon.drain()
    print("drained cleanly", flush=True)
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    Exit codes follow unix conventions: 0 success, 1 semantic failure
    (e.g. rejected verification), 2 usage/``ReproError``, 130 on
    SIGINT.  ``BrokenPipeError`` is silenced so ``--json`` output can be
    piped through ``head`` without a traceback.
    """
    args = build_parser().parse_args(argv)
    handlers = {
        "watermark": _cmd_watermark,
        "verify": _cmd_verify,
        "export": _cmd_export,
        "convert": _cmd_convert,
        "experiment": _cmd_experiment,
        "attack": _cmd_attack,
        "traffic": _cmd_traffic,
        "serve": _cmd_serve,
        "lint": run_lint,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # The reader (`head`, a closed pager) went away mid-write —
        # normal pipeline behaviour, not an error.  Re-point stdout at
        # devnull so the interpreter's shutdown flush cannot raise a
        # second time, and exit quietly.
        try:
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        except (OSError, ValueError):
            pass
        return 0
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":
    sys.exit(main())
