"""Attack suite against the watermarking scheme.

- :mod:`~repro.attacks.detection` — structural signature recovery
  (Table 2);
- :mod:`~repro.attacks.forgery` — solver-based trigger forgery
  (Fig. 4/5, §4.2.2);
- :mod:`~repro.attacks.suppression` — trigger-query distinguishers;
- :mod:`~repro.attacks.modification` — model-modification attacks
  (the paper's future-work threat model).
"""

from .detection import (
    DetectionResult,
    behavioural_rates,
    detect_bits,
    detection_report,
)
from .extraction import ExtractionOutcome, extract_surrogate, extraction_study
from .forgery import ForgeryAttackResult, forge_trigger_set, forgery_distortion
from .modification import (
    ModificationOutcome,
    flip_forest_leaves,
    flip_leaves,
    modification_robustness,
    truncate_forest,
    truncate_tree,
)
from .suppression import (
    SuppressionAnalysis,
    auc_from_scores,
    disagreement_score,
    input_distance_score,
    suppression_analysis,
)

__all__ = [
    "DetectionResult",
    "ExtractionOutcome",
    "ForgeryAttackResult",
    "ModificationOutcome",
    "SuppressionAnalysis",
    "auc_from_scores",
    "behavioural_rates",
    "detect_bits",
    "detection_report",
    "disagreement_score",
    "flip_forest_leaves",
    "flip_leaves",
    "extract_surrogate",
    "extraction_study",
    "forge_trigger_set",
    "forgery_distortion",
    "input_distance_score",
    "modification_robustness",
    "suppression_analysis",
    "truncate_forest",
    "truncate_tree",
]
