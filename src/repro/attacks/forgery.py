"""The watermark forgery attack (§4.2.2 / Fig. 4 / Fig. 5).

The attacker invents a fake signature ``σ'`` and tries to build a
trigger set ``D'_trigger`` on which the *stolen, unmodified* model
exhibits the output pattern ``σ'`` requires.  Per the paper's
experiment, the attacker iterates over real test instances and asks a
solver for a satisfying instance within ``L∞`` distance ``ε`` of each —
the distance budget keeps forged triggers "reminiscent of real test
instances".

Two engine-level speedups apply on top of the paper's loop, neither of
which changes what is computed:

- **Encoding reuse** (``reuse_encoding=True``, the default): the
  forest's leaf boxes, threshold atoms and clause skeleton are
  compiled once per required-label pattern
  (:class:`repro.solver.CompiledPatternEncoding`) and re-solved per
  instance with only the ``L∞`` box supplied as assumptions.
- **Parallel fan-out** (``n_jobs``): instance attempts are dispatched
  in deterministic contiguous chunks over a process pool.  Every
  per-instance solve is a pure function of the forest, the signature
  and the instance bounds, so ``forged_X``, ``source_index`` and
  ``statuses`` are bitwise identical for a fixed ``random_state``
  regardless of worker count or the ``reuse_encoding`` flag — the
  early stop at ``target_size`` consumes results in serial attempt
  order and discards any speculative surplus the pool solved.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from .._validation import check_random_state, check_X_y
from ..core.signature import Signature
from ..exceptions import ValidationError
from ..parallel import (
    fork_available,
    partition,
    resolve_n_jobs,
    run_batches,
    shared_payload,
)
from ..solver import EncodingCache, compile_pattern_encoding, required_labels

__all__ = ["ForgeryAttackResult", "forge_trigger_set", "forgery_distortion"]

_ENGINES = ("smt", "boxes", "portfolio")

#: Instances dispatched per worker per wave when an early-stop target
#: is set.  Larger waves amortise pool/pickling overhead; smaller waves
#: waste less speculative work once the target is reached.
_WAVE_CHUNK = 8


@dataclass
class ForgeryAttackResult:
    """Outcome of one forgery attempt with one fake signature.

    ``forged_X`` stacks the successfully forged instances (the attack's
    ``D'_trigger``); ``source_index[i]`` is the test-set row the ``i``-th
    forged instance was derived from.  ``statuses`` counts solver
    outcomes over all attempted instances.
    """

    epsilon: float
    signature: Signature
    n_attempted: int
    forged_X: np.ndarray
    source_index: np.ndarray
    statuses: dict[str, int] = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    @property
    def n_forged(self) -> int:
        """Size of the forged trigger set ``|D'_trigger|``."""
        return int(self.forged_X.shape[0])


def _solve_instance(
    cache: EncodingCache | None,
    roots,
    signature: Signature,
    label: int,
    center: np.ndarray,
    epsilon: float,
    n_features: int,
    engine: str,
    budget: int | None,
):
    """Solve one forgery instance — a pure function of its arguments.

    ``cache`` carries compiled encodings when reuse is on; ``None``
    recompiles the skeleton for this instance alone.  Both paths run
    the identical per-instance procedure, which is what the serial ==
    parallel == fresh-encoding determinism contract rests on.
    """
    required = required_labels(signature, label)
    if cache is not None:
        encoding = cache.for_required(required)
        return encoding.solve(
            center=center, epsilon=epsilon, engine=engine, budget=budget, reuse=True
        )
    encoding = compile_pattern_encoding(roots, required, n_features)
    return encoding.solve(
        center=center, epsilon=epsilon, engine=engine, budget=budget, reuse=False
    )


def _forge_batch(
    roots,
    signature: Signature,
    labels: np.ndarray,
    centers: np.ndarray,
    epsilon: float,
    n_features: int,
    engine: str,
    budget: int | None,
    reuse_encoding: bool,
) -> list[tuple[str, np.ndarray | None]]:
    """Worker entry point: solve a contiguous batch of instances.

    Under a fork-based pool the parent's compiled encodings arrive for
    free via :func:`repro.parallel.shared_payload`; otherwise (spawn
    platforms, or reuse disabled) the worker builds its own.  Either
    way each instance solve is the same pure function, so results do
    not depend on which path was taken.
    """
    cache = None
    if reuse_encoding:
        inherited = shared_payload()
        if isinstance(inherited, EncodingCache):
            cache = inherited
        else:
            if roots is None:
                raise RuntimeError(
                    "forgery worker received no tree roots and no shared "
                    "encoding cache — fork detection went wrong"
                )
            cache = EncodingCache(roots, n_features)
    out: list[tuple[str, np.ndarray | None]] = []
    for label, center in zip(labels, centers):
        outcome = _solve_instance(
            cache, roots, signature, int(label), center, epsilon,
            n_features, engine, budget,
        )
        out.append((outcome.status, outcome.instance))
    return out


def forge_trigger_set(
    forest,
    fake_signature: Signature,
    X_test,
    y_test,
    epsilon: float,
    engine: str = "smt",
    target_size: int | None = None,
    max_instances: int | None = None,
    solver_budget: int | None = 100_000,
    n_jobs: int | None = None,
    reuse_encoding: bool = True,
    random_state=None,
) -> ForgeryAttackResult:
    """Attempt to forge a trigger set against a (stolen) forest.

    Parameters
    ----------
    forest:
        The watermarked model (attacker has white-box read access).
    fake_signature:
        The attacker's invented signature ``σ'`` (length = #trees).
    X_test, y_test:
        Real test data the forged instances must stay close to.
    epsilon:
        ``L∞`` distortion budget relative to each test instance.
    engine:
        Forgery solver: ``"smt"`` (eager encoding + CDCL), ``"boxes"``
        (DPLL over leaf boxes) or ``"portfolio"`` (both, cross-checked).
    target_size:
        Stop once this many instances were forged (the paper compares
        against the original trigger-set size).  ``None`` = no target.
    max_instances:
        Cap on test instances attempted (``None`` = all of them).
    solver_budget:
        Per-instance solver budget (conflicts for ``smt``, nodes for
        ``boxes``, both for ``portfolio``); exhausted attempts count as
        ``"unknown"``.
    n_jobs:
        Worker processes for the instance sweep (``None``/``1`` serial,
        ``-1`` all cores).  Results are identical across settings.
    reuse_encoding:
        Compile the forest's path/threshold encoding once per
        required-label pattern and re-solve it per instance (default),
        instead of rebuilding it from scratch every time.  Results are
        identical either way; reuse is simply faster.
    random_state:
        Shuffles the attempt order over the test set.
    """
    X_test, y_test = check_X_y(X_test, y_test)
    if len(fake_signature) != forest.n_trees_:
        raise ValidationError(
            f"fake signature has {len(fake_signature)} bits but the forest has "
            f"{forest.n_trees_} trees"
        )
    if not 0.0 < epsilon < 1.0:
        raise ValidationError(f"epsilon must be in (0, 1), got {epsilon}")
    if engine not in _ENGINES:
        raise ValidationError(
            f"unknown engine {engine!r}; expected one of {sorted(_ENGINES)}"
        )

    rng = check_random_state(random_state)
    order = rng.permutation(X_test.shape[0])
    if max_instances is not None:
        order = order[:max_instances]

    roots = forest.roots()
    n_features = int(X_test.shape[1])
    n_workers = resolve_n_jobs(n_jobs, n_tasks=len(order))

    forged: list[np.ndarray] = []
    sources: list[int] = []
    statuses: dict[str, int] = {"sat": 0, "unsat": 0, "unknown": 0}
    started = time.perf_counter()
    n_attempted = 0

    def consume(row: int, status: str, instance: np.ndarray | None) -> bool:
        """Fold one attempt into the result; False once the target is hit."""
        nonlocal n_attempted
        if target_size is not None and len(forged) >= target_size:
            return False
        n_attempted += 1
        statuses[status] = statuses.get(status, 0) + 1
        if status == "sat":
            assert instance is not None
            forged.append(instance)
            sources.append(int(row))
        return True

    if n_workers == 1:
        cache = EncodingCache(roots, n_features) if reuse_encoding else None
        for row in order:
            if target_size is not None and len(forged) >= target_size:
                break
            outcome = _solve_instance(
                cache, roots, fake_signature, int(y_test[row]), X_test[row],
                float(epsilon), n_features, engine, solver_budget,
            )
            consume(int(row), outcome.status, outcome.instance)
    else:
        # Deterministic waves: solve a contiguous slice of the attempt
        # order across the pool, then fold results back *in attempt
        # order*.  Without a target one wave covers everything; with a
        # target the wave size bounds the speculative surplus.  The
        # parent compiles the encodings once and shares them with every
        # fork-based worker copy-on-write.
        shared_cache = None
        payload_roots = roots
        if reuse_encoding and fork_available():
            # Workers inherit the warmed cache copy-on-write; don't
            # also pickle the tree roots into every payload.  On
            # spawn-only platforms pre-compiling here would be wasted
            # work — workers there build their own cache per batch.
            shared_cache = EncodingCache(roots, n_features)
            for label in np.unique(y_test[order]):
                shared_cache.for_required(
                    required_labels(fake_signature, int(label))
                ).warm()
            payload_roots = None
        wave_size = (
            len(order) if target_size is None else n_workers * _WAVE_CHUNK
        )
        position = 0
        running = True
        while running and position < len(order):
            if target_size is not None and len(forged) >= target_size:
                break
            wave = order[position : position + wave_size]
            position += len(wave)
            batches = partition(list(wave), n_workers)
            payloads = [
                (
                    payload_roots,
                    fake_signature,
                    y_test[batch],
                    X_test[batch],
                    float(epsilon),
                    n_features,
                    engine,
                    solver_budget,
                    reuse_encoding,
                )
                for batch in batches
            ]
            results = run_batches(
                _forge_batch, payloads, n_workers, shared=shared_cache
            )
            rows = (int(row) for batch in batches for row in batch)
            for row, (status, instance) in zip(
                rows, (item for batch in results for item in batch)
            ):
                if not consume(row, status, instance):
                    running = False
                    break

    forged_X = (
        np.stack(forged, axis=0)
        if forged
        else np.empty((0, X_test.shape[1]), dtype=np.float64)
    )
    return ForgeryAttackResult(
        epsilon=float(epsilon),
        signature=fake_signature,
        n_attempted=n_attempted,
        forged_X=forged_X,
        source_index=np.array(sources, dtype=np.int64),
        statuses=statuses,
        elapsed_seconds=time.perf_counter() - started,
    )


def forgery_distortion(result: ForgeryAttackResult, X_test) -> dict[str, float]:
    """Distortion statistics of the forged set relative to its sources.

    The paper's Fig. 5 shows forged MNIST images becoming blurrier as
    ``ε`` grows; without a display we report the quantitative analogue:
    mean/max ``L∞`` and mean ``L2`` displacement, plus the fraction of
    coordinates actually moved.
    """
    X_test = np.asarray(X_test, dtype=np.float64)
    if result.n_forged == 0:
        return {
            "mean_linf": 0.0,
            "max_linf": 0.0,
            "mean_l2": 0.0,
            "moved_fraction": 0.0,
        }
    originals = X_test[result.source_index]
    delta = result.forged_X - originals
    linf = np.abs(delta).max(axis=1)
    l2 = np.linalg.norm(delta, axis=1)
    moved = (np.abs(delta) > 1e-12).mean(axis=1)
    return {
        "mean_linf": float(linf.mean()),
        "max_linf": float(linf.max()),
        "mean_l2": float(l2.mean()),
        "moved_fraction": float(moved.mean()),
    }
