"""The watermark forgery attack (§4.2.2 / Fig. 4 / Fig. 5).

The attacker invents a fake signature ``σ'`` and tries to build a
trigger set ``D'_trigger`` on which the *stolen, unmodified* model
exhibits the output pattern ``σ'`` requires.  Per the paper's
experiment, the attacker iterates over real test instances and asks a
solver for a satisfying instance within ``L∞`` distance ``ε`` of each —
the distance budget keeps forged triggers "reminiscent of real test
instances".
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from .._validation import check_random_state, check_X_y
from ..core.signature import Signature
from ..exceptions import ValidationError
from ..solver import PatternProblem, required_labels, solve_pattern

__all__ = ["ForgeryAttackResult", "forge_trigger_set", "forgery_distortion"]


@dataclass
class ForgeryAttackResult:
    """Outcome of one forgery attempt with one fake signature.

    ``forged_X`` stacks the successfully forged instances (the attack's
    ``D'_trigger``); ``source_index[i]`` is the test-set row the ``i``-th
    forged instance was derived from.  ``statuses`` counts solver
    outcomes over all attempted instances.
    """

    epsilon: float
    signature: Signature
    n_attempted: int
    forged_X: np.ndarray
    source_index: np.ndarray
    statuses: dict[str, int] = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    @property
    def n_forged(self) -> int:
        """Size of the forged trigger set ``|D'_trigger|``."""
        return int(self.forged_X.shape[0])


def forge_trigger_set(
    forest,
    fake_signature: Signature,
    X_test,
    y_test,
    epsilon: float,
    engine: str = "smt",
    target_size: int | None = None,
    max_instances: int | None = None,
    solver_budget: int | None = 100_000,
    random_state=None,
) -> ForgeryAttackResult:
    """Attempt to forge a trigger set against a (stolen) forest.

    Parameters
    ----------
    forest:
        The watermarked model (attacker has white-box read access).
    fake_signature:
        The attacker's invented signature ``σ'`` (length = #trees).
    X_test, y_test:
        Real test data the forged instances must stay close to.
    epsilon:
        ``L∞`` distortion budget relative to each test instance.
    engine:
        Forgery solver: ``"smt"`` (eager encoding + CDCL) or ``"boxes"``.
    target_size:
        Stop once this many instances were forged (the paper compares
        against the original trigger-set size).  ``None`` = no target.
    max_instances:
        Cap on test instances attempted (``None`` = all of them).
    solver_budget:
        Per-instance solver budget (conflicts for ``smt``, nodes for
        ``boxes``); exhausted attempts count as ``"unknown"``.
    random_state:
        Shuffles the attempt order over the test set.
    """
    X_test, y_test = check_X_y(X_test, y_test)
    if len(fake_signature) != forest.n_trees_:
        raise ValidationError(
            f"fake signature has {len(fake_signature)} bits but the forest has "
            f"{forest.n_trees_} trees"
        )
    if not 0.0 < epsilon < 1.0:
        raise ValidationError(f"epsilon must be in (0, 1), got {epsilon}")

    rng = check_random_state(random_state)
    order = rng.permutation(X_test.shape[0])
    if max_instances is not None:
        order = order[:max_instances]

    roots = forest.roots()
    budget_kwargs = (
        {"max_conflicts": solver_budget} if engine == "smt" else {"max_nodes": solver_budget}
    )

    forged: list[np.ndarray] = []
    sources: list[int] = []
    statuses: dict[str, int] = {"sat": 0, "unsat": 0, "unknown": 0}
    started = time.perf_counter()
    n_attempted = 0
    for row in order:
        if target_size is not None and len(forged) >= target_size:
            break
        n_attempted += 1
        label = int(y_test[row])
        problem = PatternProblem(
            roots=roots,
            required=required_labels(fake_signature, label),
            n_features=X_test.shape[1],
            center=X_test[row],
            epsilon=float(epsilon),
        )
        outcome = solve_pattern(problem, engine=engine, **budget_kwargs)
        statuses[outcome.status] = statuses.get(outcome.status, 0) + 1
        if outcome.is_sat:
            assert outcome.instance is not None
            forged.append(outcome.instance)
            sources.append(int(row))

    forged_X = (
        np.stack(forged, axis=0)
        if forged
        else np.empty((0, X_test.shape[1]), dtype=np.float64)
    )
    return ForgeryAttackResult(
        epsilon=float(epsilon),
        signature=fake_signature,
        n_attempted=n_attempted,
        forged_X=forged_X,
        source_index=np.array(sources, dtype=np.int64),
        statuses=statuses,
        elapsed_seconds=time.perf_counter() - started,
    )


def forgery_distortion(result: ForgeryAttackResult, X_test) -> dict[str, float]:
    """Distortion statistics of the forged set relative to its sources.

    The paper's Fig. 5 shows forged MNIST images becoming blurrier as
    ``ε`` grows; without a display we report the quantitative analogue:
    mean/max ``L∞`` and mean ``L2`` displacement, plus the fraction of
    coordinates actually moved.
    """
    X_test = np.asarray(X_test, dtype=np.float64)
    if result.n_forged == 0:
        return {
            "mean_linf": 0.0,
            "max_linf": 0.0,
            "mean_l2": 0.0,
            "moved_fraction": 0.0,
        }
    originals = X_test[result.source_index]
    delta = result.forged_X - originals
    linf = np.abs(delta).max(axis=1)
    l2 = np.linalg.norm(delta, axis=1)
    moved = (np.abs(delta) > 1e-12).mean(axis=1)
    return {
        "mean_linf": float(linf.mean()),
        "max_linf": float(linf.max()),
        "mean_l2": float(l2.mean()),
        "moved_fraction": float(moved.mean()),
    }
