"""Watermark-suppression analysis.

The paper argues suppression is defeated *by construction*: trigger
instances are sampled from the training distribution, so the attacker
cannot tell trigger queries from ordinary test queries by looking at
the inputs.  This module makes that argument measurable — and also
probes a stronger attacker the paper does not evaluate: one who scores
queries by the *model's own per-tree disagreement*, since trigger
instances provoke an unusual vote split (the bit-1 trees all vote
wrong) that natural inputs rarely produce.

Both analyses report an AUC: 0.5 means the attacker's score carries no
signal; 1.0 means triggers are perfectly identifiable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_X
from ..ensemble.voting import vote_margin
from ..exceptions import ValidationError

__all__ = [
    "SuppressionAnalysis",
    "auc_from_scores",
    "disagreement_score",
    "input_distance_score",
    "suppression_analysis",
]


def auc_from_scores(positive_scores, negative_scores) -> float:
    """Mann–Whitney AUC of separating positives from negatives.

    Ties contribute 1/2, the standard rank treatment.
    """
    positive_scores = np.asarray(positive_scores, dtype=np.float64)
    negative_scores = np.asarray(negative_scores, dtype=np.float64)
    if positive_scores.size == 0 or negative_scores.size == 0:
        raise ValidationError("both score groups must be non-empty")
    greater = (positive_scores[:, None] > negative_scores[None, :]).sum()
    equal = (positive_scores[:, None] == negative_scores[None, :]).sum()
    return float(
        (greater + 0.5 * equal) / (positive_scores.size * negative_scores.size)
    )


def disagreement_score(forest, X) -> np.ndarray:
    """Per-query tree-vote disagreement in ``[0, 1]``.

    0 = unanimous trees, 1 = an even split.  Watermarked trigger
    queries sit near ``2 * min(m0, m1) / m`` by construction.
    """
    margin = vote_margin(forest.predict_all(check_X(X)))
    return 1.0 - np.abs(2.0 * margin - 1.0)


def input_distance_score(X_queries, X_reference) -> np.ndarray:
    """Distance of each query to its nearest reference instance.

    This is the *input-side* distinguisher the paper's argument rules
    out: triggers drawn from the data distribution should look exactly
    as close to the data manifold as genuine test points.
    """
    X_queries = check_X(X_queries, name="X_queries")
    X_reference = check_X(X_reference, name="X_reference")
    scores = np.empty(X_queries.shape[0], dtype=np.float64)
    for i, query in enumerate(X_queries):
        deltas = X_reference - query[None, :]
        distances = np.sqrt(np.sum(deltas * deltas, axis=1))
        # A query identical to a reference row (distance 0) is the
        # reference itself when triggers come from the training set;
        # use the second-nearest in that case.
        distances.sort()
        scores[i] = distances[1] if distances[0] < 1e-12 and distances.size > 1 else distances[0]
    return scores


@dataclass
class SuppressionAnalysis:
    """AUCs of the two suppression distinguishers.

    ``input_auc`` tests the paper's claim (should be ≈ 0.5: triggers are
    distributionally indistinguishable).  ``disagreement_auc`` measures
    the stronger model-behaviour attacker (an extension of ours; values
    near 1.0 show verification queries should never be answered with
    per-tree outputs by a suspicious party).
    """

    input_auc: float
    disagreement_auc: float


def suppression_analysis(forest, trigger_X, X_test, X_background) -> SuppressionAnalysis:
    """Run both distinguishers.

    Parameters
    ----------
    forest:
        The watermarked (stolen) model.
    trigger_X:
        The true trigger instances (positives the attacker hunts for).
    X_test:
        Ordinary test queries (negatives).
    X_background:
        Data the attacker uses as a reference sample of the input
        distribution (e.g. queries observed in production).
    """
    trigger_X = check_X(trigger_X, name="trigger_X")
    X_test = check_X(X_test, name="X_test")

    # The disagreement distinguisher queries the model twice (triggers
    # and test queries); compile once up front when the model supports it.
    compile_model = getattr(forest, "compile", None)
    if callable(compile_model):
        compile_model()

    input_auc = auc_from_scores(
        input_distance_score(trigger_X, X_background),
        input_distance_score(X_test, X_background),
    )
    disagreement_auc = auc_from_scores(
        disagreement_score(forest, trigger_X),
        disagreement_score(forest, X_test),
    )
    return SuppressionAnalysis(input_auc=input_auc, disagreement_auc=disagreement_auc)
