"""Model-modification attacks (the paper's future-work threat model).

The paper assumes the attacker does not modify the stolen model and
names "more powerful attackers, e.g., who are able to modify the
watermarked model" as future work.  This module implements two such
attackers and measures whether the watermark survives:

- **depth truncation** — every tree is cut at a target depth, replacing
  subtrees with their majority leaf (a classic compression attack);
- **leaf flipping** — each leaf's label flips with probability ``p``
  (random behavioural noise).

Both trade model accuracy against watermark damage; the robustness
benchmark sweeps their strength and reports the trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_random_state, check_X_y
from ..core.embedding import WatermarkedModel
from ..core.verification import verify_ownership
from ..exceptions import ValidationError
from ..trees.node import InternalNode, Leaf, TreeNode

__all__ = [
    "ModificationOutcome",
    "truncate_tree",
    "flip_leaves",
    "truncate_forest",
    "flip_forest_leaves",
    "modification_robustness",
]


def _majority_leaf(root: TreeNode) -> Leaf:
    """Collapse a subtree into its weighted-majority leaf."""
    totals: dict[int, float] = {}
    stack = [root]
    while stack:
        node = stack.pop()
        if node.is_leaf:
            weights = node.class_weights or {node.prediction: 1.0}  # type: ignore[union-attr]
            for label, mass in weights.items():
                totals[label] = totals.get(label, 0.0) + mass
        else:
            stack.append(node.left)
            stack.append(node.right)
    # Deterministic tie-break: smaller label wins.
    prediction = min(sorted(totals), key=lambda label: (-totals[label], label))
    return Leaf(prediction=int(prediction), class_weights=totals)


def truncate_tree(root: TreeNode, max_depth: int) -> TreeNode:
    """A copy of the tree cut at ``max_depth`` (0 = a single leaf)."""
    if max_depth < 0:
        raise ValidationError(f"max_depth must be >= 0, got {max_depth}")

    def walk(node: TreeNode, depth: int) -> TreeNode:
        if node.is_leaf:
            return Leaf(prediction=node.prediction, class_weights=dict(node.class_weights))  # type: ignore[union-attr]
        if depth >= max_depth:
            return _majority_leaf(node)
        return InternalNode(
            feature=node.feature,
            threshold=node.threshold,
            left=walk(node.left, depth + 1),
            right=walk(node.right, depth + 1),
        )

    return walk(root, 0)


def flip_leaves(root: TreeNode, flip_probability: float, rng: np.random.Generator) -> TreeNode:
    """A copy of the tree where each leaf's ±1 label flips with prob. ``p``."""
    if not 0.0 <= flip_probability <= 1.0:
        raise ValidationError(
            f"flip_probability must be in [0, 1], got {flip_probability}"
        )

    def walk(node: TreeNode) -> TreeNode:
        if node.is_leaf:
            prediction = node.prediction  # type: ignore[union-attr]
            weights = dict(node.class_weights)  # type: ignore[union-attr]
            if rng.uniform() < flip_probability:
                flipped = -prediction
                if weights:
                    # Swap the mass of the old and new label so the
                    # recorded distribution still names the flipped
                    # label as its majority: ``predict`` (leaf label)
                    # and ``predict_proba`` (leaf distribution) must
                    # agree on attacked models, on both the object and
                    # the compiled inference paths.
                    weights[prediction], weights[flipped] = (
                        weights.get(flipped, 0.0),
                        weights.get(prediction, 0.0),
                    )
                prediction = flipped
            return Leaf(prediction=int(prediction), class_weights=weights)
        return InternalNode(
            feature=node.feature,
            threshold=node.threshold,
            left=walk(node.left),
            right=walk(node.right),
        )

    return walk(root)


def truncate_forest(forest, max_depth: int):
    """Apply depth truncation to every tree of a fitted forest."""
    return forest.with_roots([truncate_tree(r, max_depth) for r in forest.roots()])


def flip_forest_leaves(forest, flip_probability: float, random_state=None):
    """Apply random leaf flipping to every tree of a fitted forest."""
    rng = check_random_state(random_state)
    return forest.with_roots(
        [flip_leaves(r, flip_probability, rng) for r in forest.roots()]
    )


@dataclass
class ModificationOutcome:
    """Effect of one modification attack.

    ``watermark_match_rate`` is the fraction of trees still matching
    their signature bit (1.0 = watermark fully intact); ``accuracy`` is
    the modified model's test accuracy (the attacker's cost).
    """

    attack: str
    strength: float
    accuracy: float
    watermark_match_rate: float
    watermark_accepted: bool


def modification_robustness(
    model: WatermarkedModel,
    X_test,
    y_test,
    attack: str,
    strength: float,
    mode: str = "strict",
    random_state=None,
) -> ModificationOutcome:
    """Attack a watermarked model and measure watermark survival.

    Parameters
    ----------
    attack:
        ``"truncate"`` (``strength`` = retained depth, as an int) or
        ``"flip"`` (``strength`` = per-leaf flip probability).
    """
    X_test, y_test = check_X_y(X_test, y_test)
    if attack == "truncate":
        attacked = truncate_forest(model.ensemble, int(strength))
    elif attack == "flip":
        attacked = flip_forest_leaves(model.ensemble, float(strength), random_state)
    else:
        raise ValidationError(f"attack must be 'truncate' or 'flip', got {attack!r}")

    # One compiled table serves both the trigger verification below and
    # the test-set scoring; the attacked forest is fresh, so the lazy
    # path would otherwise skip compiling for the small trigger batch.
    attacked.compile()
    report = verify_ownership(
        attacked, model.signature, model.trigger.X, model.trigger.y, mode=mode
    )
    return ModificationOutcome(
        attack=attack,
        strength=float(strength),
        accuracy=attacked.score(X_test, y_test),
        watermark_match_rate=report.n_matching / report.n_trees,
        watermark_accepted=report.accepted,
    )
