"""Structural watermark-detection attacks (Table 2 of the paper).

The attacker holds white-box access to the ensemble and tries to
reconstruct the signature from per-tree structure: trees forced to
misclassify the trigger set (bit 1) might overfit and grow larger.
Two strategies from §4.2.1:

- ``"bands"`` — trees below ``mean − std`` are guessed as bit 0, above
  ``mean + std`` as bit 1, the rest are *uncertain*;
- ``"mean"`` — the mean is a sharp threshold: ``≤ mean`` ⇒ 0, else 1.

The attack is evaluated against the true signature; the scheme defeats
it when the counts of correct guesses carry no usable signal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.embedding import WatermarkedModel
from ..ensemble.voting import majority_vote
from ..exceptions import ValidationError

__all__ = [
    "DetectionResult",
    "behavioural_rates",
    "detect_bits",
    "detection_report",
]

STRATEGIES = ("bands", "mean")
STATISTICS = ("depth", "n_leaves")


@dataclass
class DetectionResult:
    """Outcome of one detection attempt.

    ``predicted[i]`` is the attacker's guess for bit ``i`` (``None`` =
    uncertain, only produced by the ``"bands"`` strategy).  The counts
    mirror the paper's ``#correct / #wrong / #uncertain`` columns, and
    ``mean``/``std`` the bracketed statistics of Table 2.
    """

    strategy: str
    statistic: str
    mean: float
    std: float
    predicted: list[int | None]
    n_correct: int
    n_wrong: int
    n_uncertain: int

    @property
    def recovery_rate(self) -> float:
        """Fraction of *decided* guesses that are correct (0.5 = coin flip)."""
        decided = self.n_correct + self.n_wrong
        return self.n_correct / decided if decided else 0.0


def detect_bits(values: np.ndarray, true_bits, strategy: str) -> DetectionResult:
    """Run one detection strategy against the true signature bits.

    Parameters
    ----------
    values:
        Per-tree statistic (depth or leaf count), length ``m``.
    true_bits:
        The real signature bits (ground truth for scoring the attack).
    strategy:
        ``"bands"`` or ``"mean"``.
    """
    values = np.asarray(values, dtype=np.float64)
    bits = np.asarray(list(true_bits), dtype=np.int64)
    if values.shape != bits.shape:
        raise ValidationError(
            f"values and bits must have equal length, got {values.shape} and "
            f"{bits.shape}"
        )
    if strategy not in STRATEGIES:
        raise ValidationError(
            f"strategy must be one of {STRATEGIES}, got {strategy!r}"
        )

    mean = float(np.mean(values))
    std = float(np.std(values))

    predicted: list[int | None] = []
    if strategy == "bands":
        for value in values:
            if value < mean - std:
                predicted.append(0)
            elif value > mean + std:
                predicted.append(1)
            else:
                predicted.append(None)
    else:
        predicted = [0 if value <= mean else 1 for value in values]

    n_correct = sum(
        1 for guess, bit in zip(predicted, bits) if guess is not None and guess == bit
    )
    n_wrong = sum(
        1 for guess, bit in zip(predicted, bits) if guess is not None and guess != bit
    )
    n_uncertain = sum(1 for guess in predicted if guess is None)
    return DetectionResult(
        strategy=strategy,
        statistic="",
        mean=mean,
        std=std,
        predicted=predicted,
        n_correct=n_correct,
        n_wrong=n_wrong,
        n_uncertain=n_uncertain,
    )


def behavioural_rates(all_predictions) -> np.ndarray:
    """Per-tree rate of disagreement with the ensemble majority vote.

    The *behavioural* analogue of the structural statistics above: the
    attacker watches the deployed per-tree interface instead of the
    white-box structure.  On benign traffic every tree disagrees with
    the majority at roughly its own error rate; trigger queries force
    the bit-1 trees (or, on a tied vote, the bit-0 trees) to split off
    sharply, so the per-tree rates are a Table-2 statistic that can be
    *streamed*: the counts are integers, so accumulating them chunk by
    chunk and dividing at the end is bit-for-bit equal to this batch
    computation under any chunking of the query stream
    (:class:`repro.traffic.OnlineSuppressionDistinguisher` does exactly
    that; ``tests/traffic/test_batch_equivalence.py`` pins the
    equality).

    Parameters
    ----------
    all_predictions:
        Per-tree ±1 labels, shape ``(n_trees, n_queries)`` — the
        ``predict_all`` matrix of the observed queries.
    """
    predictions = np.asarray(all_predictions)
    if predictions.ndim != 2:
        raise ValidationError(
            f"all_predictions must be 2-D (n_trees, n_queries), got shape "
            f"{predictions.shape}"
        )
    majority = majority_vote(predictions, np.array([-1, 1]))
    counts = (predictions != majority[None, :]).sum(axis=1)
    return counts / predictions.shape[1]


def detection_report(model: WatermarkedModel) -> list[DetectionResult]:
    """Run both strategies on both structural statistics (one Table 2 cell
    block for a single watermarked model)."""
    structure = model.ensemble.structure()
    results: list[DetectionResult] = []
    for statistic in STATISTICS:
        for strategy in STRATEGIES:
            result = detect_bits(structure[statistic], model.signature, strategy)
            result.statistic = statistic
            results.append(result)
    return results
