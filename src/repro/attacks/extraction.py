"""Model-extraction (surrogate-training) attack.

A thief who fears watermark verification can avoid serving the stolen
model directly: query it black-box on unlabelled data, train a
*surrogate* forest on the answers, and deploy the surrogate.  This is
the classic extraction attack from the neural-network watermarking
literature, applied to tree ensembles.

Two questions the experiment answers:

1. **Does the watermark transfer?**  It should not: the signature lives
   in the *per-tree* behaviour of the original ensemble, and a
   surrogate's trees have no alignment with it — so verification
   against the surrogate fails.  (This is an honest limitation of the
   scheme the paper inherits from its threat model, where the attacker
   serves the model unmodified.)
2. **What does extraction cost the thief?**  The surrogate's accuracy
   deficit relative to the stolen model, as a function of the query
   budget.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_random_state, check_X, check_X_y
from ..core.embedding import WatermarkedModel
from ..core.verification import verify_ownership
from ..ensemble.forest import RandomForestClassifier
from ..exceptions import ValidationError

__all__ = ["ExtractionOutcome", "extract_surrogate", "extraction_study"]


@dataclass
class ExtractionOutcome:
    """Result of one surrogate-training run.

    ``agreement`` is the fidelity of the surrogate to the stolen model
    on held-out data; ``watermark_match_rate`` measures how much of the
    signature pattern survives in the surrogate (expected: chance level).
    """

    query_budget: int
    surrogate: RandomForestClassifier
    agreement: float
    surrogate_accuracy: float
    victim_accuracy: float
    watermark_accepted: bool
    watermark_match_rate: float


def extract_surrogate(
    victim,
    X_queries,
    n_estimators: int | None = None,
    max_depth: int | None = 12,
    random_state=None,
) -> RandomForestClassifier:
    """Train a surrogate forest on the victim's majority-vote answers.

    The attacker never sees true labels — only what the stolen model
    answers on the query set.
    """
    X_queries = check_X(X_queries, name="X_queries")
    stolen_labels = victim.predict(X_queries)
    if np.unique(stolen_labels).shape[0] < 2:
        raise ValidationError(
            "the victim answered all queries with one class; the surrogate "
            "needs a more diverse query set"
        )
    surrogate = RandomForestClassifier(
        n_estimators=n_estimators or victim.n_trees_,
        max_depth=max_depth,
        tree_feature_fraction=0.7,
        random_state=random_state,
    )
    return surrogate.fit(X_queries, stolen_labels)


def extraction_study(
    model: WatermarkedModel,
    X_pool,
    X_test,
    y_test,
    query_budgets=(100, 300),
    random_state=None,
) -> list[ExtractionOutcome]:
    """Sweep query budgets and measure fidelity + watermark survival.

    Each budget cell draws from its own RNG, spawned from one root seed
    keyed by the budget *value* — so the 120-query cell of a
    ``(60, 120)`` sweep is bitwise identical to a standalone
    ``(120,)`` run, and reordering the sweep never changes any cell.
    (The previous implementation threaded one mutating generator
    through the loop, making every cell depend on which budgets ran
    before it.)
    """
    X_pool = check_X(X_pool, name="X_pool")
    X_test, y_test = check_X_y(X_test, y_test)
    rng = check_random_state(random_state)
    root = np.random.SeedSequence(int(rng.integers(2**63)))

    victim = model.ensemble
    # The victim answers every query batch of the sweep; pack it into
    # its compiled node table once instead of lazily mid-sweep.
    victim.compile()
    victim_accuracy = victim.score(X_test, y_test)
    outcomes: list[ExtractionOutcome] = []
    for budget in query_budgets:
        if not 1 <= budget <= X_pool.shape[0]:
            raise ValidationError(
                f"query budget {budget} exceeds the attacker pool "
                f"({X_pool.shape[0]} instances)"
            )
        cell_rng = np.random.default_rng(
            np.random.SeedSequence(
                entropy=root.entropy, spawn_key=root.spawn_key + (int(budget),)
            )
        )
        chosen = cell_rng.choice(X_pool.shape[0], size=budget, replace=False)
        surrogate = extract_surrogate(
            victim, X_pool[chosen], random_state=int(cell_rng.integers(2**31 - 1))
        )
        agreement = float(
            np.mean(surrogate.predict(X_test) == victim.predict(X_test))
        )
        report = verify_ownership(
            surrogate, model.signature, model.trigger.X, model.trigger.y
        )
        outcomes.append(
            ExtractionOutcome(
                query_budget=int(budget),
                surrogate=surrogate,
                agreement=agreement,
                surrogate_accuracy=surrogate.score(X_test, y_test),
                victim_accuracy=victim_accuracy,
                watermark_accepted=report.accepted,
                watermark_match_rate=report.n_matching / report.n_trees,
            )
        )
    return outcomes
