"""Request micro-batching onto single compiled ``predict_all`` calls.

The compiled engine's descent cost is per *level*, not per row: one
fused call over 256 coalesced rows costs barely more than one call over
a single row.  The :class:`MicroBatcher` exploits that — concurrent
requests enqueue their row blocks, and everything that arrives within
``flush_window`` seconds (or until ``max_batch_rows`` accumulate) runs
through the runner as one matrix, each request getting back its own
column slice of the ``(n_trees, rows)`` result.

Backpressure is row-based: when the backlog (queued + executing rows)
exceeds ``max_queue_rows``, :meth:`submit` raises :class:`Backpressure`
immediately instead of letting latency grow without bound; the HTTP
layer translates that into ``429`` + ``Retry-After``.  ``max_concurrent``
bounds fused engine calls in flight so a single model cannot monopolise
the executor.

All coordination state lives on the event loop (submit/flush run only
there); the blocking engine call is pushed to a thread executor.
"""

from __future__ import annotations

import asyncio
import math

import numpy as np

__all__ = ["Backpressure", "MicroBatcher"]


class Backpressure(Exception):
    """Raised by :meth:`MicroBatcher.submit` when the backlog is full."""

    def __init__(self, retry_after: float, depth: int) -> None:
        super().__init__(
            f"backlog full ({depth} rows queued); retry in {retry_after:.3f}s"
        )
        self.retry_after = float(retry_after)
        self.depth = int(depth)

    @property
    def retry_after_seconds(self) -> int:
        """``Retry-After`` header value (whole seconds, at least 1)."""
        return max(1, math.ceil(self.retry_after))


class MicroBatcher:
    """Coalesce concurrent row blocks into fused runner calls.

    ``runner`` maps an ``(n, n_features)`` matrix to an ``(n_trees, n)``
    per-tree prediction matrix; it executes on ``executor`` (the loop's
    default thread pool when ``None``).  ``flush_window <= 0`` disables
    coalescing: every request flushes immediately (the "naive" serving
    baseline the benchmark compares against).
    """

    def __init__(
        self,
        runner,
        *,
        flush_window: float = 0.002,
        max_batch_rows: int = 512,
        max_queue_rows: int = 8192,
        max_concurrent: int = 2,
        executor=None,
        fault_injector=None,
    ) -> None:
        self._runner = runner
        #: Optional :class:`repro.faults.FaultInjector`; ``None`` in
        #: production.  Fires at the fused-call boundary
        #: (``batcher.flush``), so an injected failure is observed by
        #: every request coalesced into the flush — the exact fan-out
        #: path a real engine crash takes.
        self._fault_injector = fault_injector
        self._flush_window = float(flush_window)
        self._max_batch_rows = max(1, int(max_batch_rows))
        self._max_queue_rows = max(1, int(max_queue_rows))
        self._executor = executor
        self._semaphore = asyncio.Semaphore(max(1, int(max_concurrent)))

        self._pending: list[tuple[np.ndarray, asyncio.Future]] = []
        self._pending_rows = 0
        self._inflight_rows = 0
        self._flush_handle: asyncio.TimerHandle | None = None
        self._tasks: set[asyncio.Task] = set()

        # Telemetry for /v1/models and the benchmark table.
        self.n_requests = 0
        self.n_calls = 0
        self.n_rows = 0
        self.n_rejected = 0

    # -- introspection --------------------------------------------------

    @property
    def backlog_rows(self) -> int:
        """Rows queued or executing right now."""
        return self._pending_rows + self._inflight_rows

    @property
    def coalescing(self) -> float:
        """Mean rows per fused engine call so far (1.0 = no batching)."""
        return self.n_rows / self.n_calls if self.n_calls else 0.0

    def stats(self) -> dict:
        return {
            "n_requests": self.n_requests,
            "n_calls": self.n_calls,
            "n_rows": self.n_rows,
            "n_rejected": self.n_rejected,
            "backlog_rows": self.backlog_rows,
            "rows_per_call": self.coalescing,
        }

    # -- the hot path ---------------------------------------------------

    async def submit(self, X: np.ndarray) -> np.ndarray:
        """Enqueue ``X`` and await its ``(n_trees, len(X))`` result slice.

        Raises :class:`Backpressure` without queueing when the backlog
        cannot absorb the block.
        """
        n = int(X.shape[0])
        if n == 0:
            raise ValueError("cannot submit an empty batch")
        if self.backlog_rows + n > self._max_queue_rows:
            self.n_rejected += 1
            raise Backpressure(
                retry_after=max(2.0 * self._flush_window, 0.05),
                depth=self.backlog_rows,
            )
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.append((X, future))
        self._pending_rows += n
        self.n_requests += 1

        if self._pending_rows >= self._max_batch_rows or self._flush_window <= 0:
            self._flush_now()
        # repro: allow[RPR006] MicroBatcher state is event-loop-confined by design (docs/serving.md): every touch happens on the daemon's loop thread, so check-then-set cannot race
        elif self._flush_handle is None:
            self._flush_handle = loop.call_later(self._flush_window, self._flush_now)
        return await future

    def _flush_now(self) -> None:
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None
        if not self._pending:
            return
        pending = self._pending
        rows = self._pending_rows
        self._pending = []
        self._pending_rows = 0
        self._inflight_rows += rows
        task = asyncio.ensure_future(self._run(pending, rows))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _run(self, pending, rows: int) -> None:
        try:
            async with self._semaphore:
                loop = asyncio.get_running_loop()
                if len(pending) == 1:
                    X = pending[0][0]
                else:
                    X = np.concatenate([block for block, _ in pending], axis=0)
                try:
                    if self._fault_injector is not None:
                        self._fault_injector.fire("batcher.flush")
                    y_all = await loop.run_in_executor(
                        self._executor, self._runner, X
                    )
                except Exception as exc:  # noqa: BLE001 - forwarded per request
                    for _, future in pending:
                        if not future.done():
                            future.set_exception(exc)
                    return
                self.n_calls += 1
                self.n_rows += rows
                offset = 0
                for block, future in pending:
                    stop = offset + block.shape[0]
                    if not future.done():
                        future.set_result(y_all[:, offset:stop])
                    offset = stop
        finally:
            self._inflight_rows -= rows

    async def drain(self) -> None:
        """Flush the queue and wait for every in-flight call to finish."""
        self._flush_now()
        while self._tasks:
            await asyncio.gather(*tuple(self._tasks), return_exceptions=True)
