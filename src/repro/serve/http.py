"""Asyncio HTTP/1.1 serving daemon — stdlib only, no framework.

The deployment surface the paper's threat model assumes: the owner
hosts watermarked forests behind a per-tree query interface, millions of
black-box queries stream through it, and the judge can run the Table-2
verification protocol over exactly that served traffic.

Endpoints (all JSON; strict RFC 8259 — never ``Infinity``/``NaN``):

``GET  /healthz``
    Liveness + drain state.
``GET  /v1/models``
    Registry listing with per-model batcher statistics.
``POST /v1/models/{name}/predict``
    ``{"rows": [[...], ...]}`` → majority-vote labels.
``POST /v1/models/{name}/predict_all``
    ``{"rows": [[...], ...]}`` → per-tree label matrix
    (``(n_trees, n_rows)``) — the ``predict.all`` interface.
``POST /v1/models/{name}/verify``
    Judge protocol: ``{"signature": "0101...", "strategy": "bands",
    "mode": "strict", "trigger_rows": [[...]], "trigger_labels":
    [...]}``.  Trigger probes are served through the same micro-batched
    path as any other traffic (they *are* traffic); the response carries
    the trigger-set ownership report and the Table-2 detection verdict
    over everything the model has served.
``POST /v1/models/{name}/calibrate``
    ``{"rows": [[...]]}`` → calibrate the streaming observer's benign
    baseline so its sequential alarm becomes meaningful.

Framing is hand-rolled over ``asyncio`` streams: request line, headers,
``Content-Length`` body, persistent connections.  Engine calls run on a
thread executor via the per-model :class:`~repro.serve.batching.MicroBatcher`,
which also provides row-based backpressure (full backlog → ``429`` with
``Retry-After``).  :meth:`ServingDaemon.drain` implements graceful
shutdown: stop accepting, flush every batcher, let in-flight responses
complete, then close lingering connections.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np

from .._jsonsafe import dumps, finite_or_none, json_safe
from ..attacks.detection import DetectionResult
from ..core.signature import Signature
from ..core.verification import match_signature
from ..exceptions import ReproError, ValidationError
from .batching import Backpressure, MicroBatcher
from .registry import ModelRegistry, ServedModel

__all__ = ["HTTPError", "ServingDaemon"]

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

_MAX_HEADERS = 100


class HTTPError(Exception):
    """A request failure with a definite status code."""

    def __init__(self, status: int, message: str, headers: tuple = ()) -> None:
        super().__init__(message)
        self.status = int(status)
        self.message = message
        self.headers = tuple(headers)


async def _read_request(reader: asyncio.StreamReader, *, max_body: int):
    """Parse one request; ``None`` when the peer closed the connection."""
    # One await for the whole request head: at thousands of requests
    # per second the per-await event-loop hop is a measurable cost, so
    # the request line and headers are read with a single ``readuntil``
    # (the reader's buffer limit bounds the head size → 431 beyond it).
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HTTPError(400, "truncated request head") from None
    except asyncio.LimitOverrunError:
        raise HTTPError(431, "request head too large") from None
    except ConnectionResetError:
        return None
    lines = head[:-4].split(b"\r\n")
    try:
        method, target, _version = lines[0].decode("latin-1").split()
    except ValueError:
        raise HTTPError(400, "malformed request line") from None
    if len(lines) - 1 > _MAX_HEADERS:
        raise HTTPError(431, "too many header fields")

    headers: dict[str, str] = {}
    for raw in lines[1:]:
        name, sep, value = raw.decode("latin-1").partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()

    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise HTTPError(400, "bad Content-Length") from None
    if length < 0:
        raise HTTPError(400, "bad Content-Length")
    if length > max_body:
        raise HTTPError(413, f"body of {length} bytes exceeds limit {max_body}")
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except (ConnectionResetError, asyncio.IncompleteReadError):
            return None
    return method.upper(), target, headers, body


def _encode_response(
    status: int, payload: dict, *, keep_alive: bool, extra: tuple = ()
) -> bytes:
    try:
        # Fast path: handlers build plain-typed payloads, and strict
        # ``dumps`` (allow_nan=False) rejects anything that is not —
        # the ``json_safe`` walk is only paid on the rare payload that
        # still carries numpy scalars or non-finite floats.
        body = dumps(payload).encode("utf-8")
    except (TypeError, ValueError):
        body = dumps(json_safe(payload)).encode("utf-8")
    lines = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    lines.extend(f"{name}: {value}" for name, value in extra)
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def _parse_json(body: bytes) -> dict:
    try:
        data = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise HTTPError(400, f"request body is not valid JSON: {exc}") from None
    if not isinstance(data, dict):
        raise HTTPError(400, "request body must be a JSON object")
    return data


def _parse_rows(data: dict, served: ServedModel, key: str = "rows") -> np.ndarray:
    if key not in data:
        raise HTTPError(400, f"request needs a {key!r} array")
    try:
        X = np.asarray(data[key], dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise HTTPError(400, f"{key!r} is not a numeric matrix: {exc}") from None
    if X.ndim == 1:
        X = X.reshape(1, -1)
    if X.ndim != 2 or X.shape[0] == 0:
        raise HTTPError(400, f"{key!r} must be a non-empty 2-D matrix")
    if served.n_features is not None and X.shape[1] != served.n_features:
        raise HTTPError(
            400,
            f"model {served.name!r} expects {served.n_features} features, "
            f"rows have {X.shape[1]}",
        )
    return X


def _detection_to_dict(result: DetectionResult) -> dict:
    return {
        "strategy": result.strategy,
        "statistic": result.statistic,
        "mean": finite_or_none(result.mean),
        "std": finite_or_none(result.std),
        "predicted": list(result.predicted),
        "n_correct": int(result.n_correct),
        "n_wrong": int(result.n_wrong),
        "n_uncertain": int(result.n_uncertain),
        "recovery_rate": finite_or_none(result.recovery_rate),
    }


class ServingDaemon:
    """Serve a :class:`~repro.serve.registry.ModelRegistry` over HTTP."""

    def __init__(
        self,
        registry: ModelRegistry,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        flush_window: float = 0.002,
        max_batch_rows: int = 512,
        max_queue_rows: int = 8192,
        max_concurrent_batches: int = 2,
        max_body_bytes: int = 16 << 20,
        drain_grace: float = 5.0,
    ) -> None:
        if len(registry) == 0:
            raise ValidationError("the registry hosts no models")
        self.registry = registry
        self._host = host
        self._port = int(port)
        self._flush_window = float(flush_window)
        self._max_batch_rows = int(max_batch_rows)
        self._max_queue_rows = int(max_queue_rows)
        self._max_concurrent = int(max_concurrent_batches)
        self._max_body_bytes = int(max_body_bytes)
        self._drain_grace = float(drain_grace)

        self._server: asyncio.AbstractServer | None = None
        self._batchers: dict[str, MicroBatcher] = {}
        self._connections: set[asyncio.StreamWriter] = set()
        self._busy: set[asyncio.StreamWriter] = set()
        self._handlers: set[asyncio.Task] = set()
        self._draining = False

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        for served in self.registry:
            self._batchers[served.name] = MicroBatcher(
                served.serve_batch,
                flush_window=self._flush_window,
                max_batch_rows=self._max_batch_rows,
                max_queue_rows=self._max_queue_rows,
                max_concurrent=self._max_concurrent,
            )
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — resolves ``port=0`` ephemera."""
        assert self._server is not None, "daemon not started"
        name = self._server.sockets[0].getsockname()
        return name[0], name[1]

    @property
    def draining(self) -> bool:
        return self._draining

    def batcher(self, name: str) -> MicroBatcher:
        return self._batchers[name]

    async def drain(self) -> None:
        """Graceful shutdown: refuse, flush, finish, close.

        Stops accepting connections, flushes every model's pending
        micro-batches, gives in-flight requests ``drain_grace`` seconds
        to write their responses, then closes whatever remains.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for batcher in self._batchers.values():
            await batcher.drain()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self._drain_grace
        while True:
            # Idle keep-alive connections are parked in readline();
            # close them so only in-flight requests hold the drain.
            for writer in list(self._connections):
                if writer not in self._busy:
                    writer.close()
            if not self._busy or loop.time() >= deadline:
                break
            await asyncio.sleep(0.02)
        for writer in list(self._connections):
            writer.close()
        # Closed transports wake their parked handlers; wait for them so
        # the caller can stop the loop without destroying pending tasks.
        if self._handlers:
            await asyncio.wait(tuple(self._handlers), timeout=2.0)

    # -- connection handling --------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
            task.add_done_callback(self._handlers.discard)
        self._connections.add(writer)
        try:
            while True:
                try:
                    request = await _read_request(
                        reader, max_body=self._max_body_bytes
                    )
                except HTTPError as exc:
                    writer.write(
                        _encode_response(
                            exc.status,
                            {"error": exc.message},
                            keep_alive=False,
                            extra=exc.headers,
                        )
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                method, target, headers, body = request
                self._busy.add(writer)
                try:
                    keep_alive = (
                        not self._draining
                        and headers.get("connection", "keep-alive").lower()
                        != "close"
                    )
                    status, payload, extra = await self._respond(
                        method, target, body
                    )
                    writer.write(
                        _encode_response(
                            status, payload, keep_alive=keep_alive, extra=extra
                        )
                    )
                    await writer.drain()
                finally:
                    self._busy.discard(writer)
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        finally:
            self._connections.discard(writer)
            self._busy.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _respond(self, method: str, target: str, body: bytes):
        """Dispatch and translate failures into status codes."""
        try:
            payload = await self._dispatch(method, target, body)
            return 200, payload, ()
        except HTTPError as exc:
            return exc.status, {"error": exc.message}, exc.headers
        except Backpressure as exc:
            payload = {"error": str(exc), "retry_after": exc.retry_after}
            return 429, payload, (("Retry-After", str(exc.retry_after_seconds)),)
        except ReproError as exc:
            return 400, {"error": str(exc)}, ()
        except Exception as exc:  # noqa: BLE001 - a 500 must not kill the loop
            return 500, {"error": f"internal error: {exc!r}"}, ()

    # -- routing --------------------------------------------------------

    async def _dispatch(self, method: str, target: str, body: bytes) -> dict:
        path = target.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz":
            self._require(method, "GET")
            return {
                "status": "draining" if self._draining else "ok",
                "models": self.registry.names(),
            }
        if path == "/v1/models":
            self._require(method, "GET")
            return {
                "models": [
                    {**served.info(), "batching": self._batchers[served.name].stats()}
                    for served in self.registry
                ]
            }
        parts = path.strip("/").split("/")
        if len(parts) == 4 and parts[0] == "v1" and parts[1] == "models":
            name, action = parts[2], parts[3]
            try:
                served = self.registry.get(name)
            except ValidationError:
                raise HTTPError(
                    404,
                    f"no model named {name!r}; hosting: {self.registry.names()}",
                ) from None
            if action == "predict":
                self._require(method, "POST")
                return await self._predict(served, body, per_tree=False)
            if action == "predict_all":
                self._require(method, "POST")
                return await self._predict(served, body, per_tree=True)
            if action == "verify":
                self._require(method, "POST")
                return await self._verify(served, body)
            if action == "calibrate":
                self._require(method, "POST")
                return self._calibrate(served, body)
        raise HTTPError(404, f"no route for {path!r}")

    @staticmethod
    def _require(method: str, expected: str) -> None:
        if method != expected:
            raise HTTPError(405, f"method {method} not allowed; use {expected}")

    # -- handlers -------------------------------------------------------

    async def _predict(self, served: ServedModel, body: bytes, *, per_tree: bool):
        X = _parse_rows(_parse_json(body), served)
        y_all = await self._batchers[served.name].submit(X)
        if per_tree:
            return {
                "model": served.name,
                "n_trees": int(y_all.shape[0]),
                "n_rows": int(y_all.shape[1]),
                "per_tree": y_all.tolist(),
            }
        labels = served.labels(y_all)
        return {
            "model": served.name,
            "n_rows": int(labels.shape[0]),
            "predictions": labels.tolist(),
        }

    async def _verify(self, served: ServedModel, body: bytes) -> dict:
        data = _parse_json(body)
        if "signature" not in data:
            raise HTTPError(400, "verify needs a 'signature' bit string")
        try:
            signature = Signature.from_string(str(data["signature"]))
        except ReproError as exc:
            raise HTTPError(400, f"bad signature: {exc}") from None
        strategy = str(data.get("strategy", "bands"))
        mode = str(data.get("mode", "strict"))

        response: dict = {
            "model": served.name,
            "signature_length": len(signature),
        }

        if "trigger_rows" in data or "trigger_labels" in data:
            if "trigger_rows" not in data or "trigger_labels" not in data:
                raise HTTPError(
                    400, "trigger_rows and trigger_labels must come together"
                )
            X = _parse_rows(data, served, key="trigger_rows")
            try:
                y = np.asarray(data["trigger_labels"], dtype=np.int64)
            except (TypeError, ValueError) as exc:
                raise HTTPError(
                    400, f"trigger_labels is not an integer vector: {exc}"
                ) from None
            # The judge's probe is traffic like any other: it goes
            # through the micro-batched serving path and is folded into
            # the streaming observer before the verdict below is taken.
            y_all = await self._batchers[served.name].submit(X)
            report = match_signature(y_all, y, signature, mode=mode)
            response["ownership"] = {
                "accepted": bool(report.accepted),
                "mode": report.mode,
                "n_matching": int(report.n_matching),
                "n_trees": int(report.n_trees),
                "per_tree_accuracy": report.per_tree_accuracy.tolist(),
                "recovered_bits": list(report.recovered_bits),
            }

        if served.observer is not None and served.n_queries > 0:
            result = served.detection(signature.bits, strategy)
            response["traffic"] = _detection_to_dict(result)
        response["observer"] = served.traffic_summary()
        return response

    def _calibrate(self, served: ServedModel, body: bytes) -> dict:
        if served.observer is None:
            raise HTTPError(
                409,
                f"model {served.name!r} has no traffic observer to calibrate",
            )
        X = _parse_rows(_parse_json(body), served)
        served.calibrate(X)
        return {"model": served.name, "calibrated": True, "n_reference": len(X)}
