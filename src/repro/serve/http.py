"""Asyncio HTTP/1.1 serving daemon — stdlib only, no framework.

The deployment surface the paper's threat model assumes: the owner
hosts watermarked forests behind a per-tree query interface, millions of
black-box queries stream through it, and the judge can run the Table-2
verification protocol over exactly that served traffic.

Endpoints (all JSON; strict RFC 8259 — never ``Infinity``/``NaN``):

``GET  /healthz``
    Liveness + drain state.
``GET  /v1/models``
    Registry listing with per-model batcher statistics.
``POST /v1/models/{name}/predict``
    ``{"rows": [[...], ...]}`` → majority-vote labels.
``POST /v1/models/{name}/predict_all``
    ``{"rows": [[...], ...]}`` → per-tree label matrix
    (``(n_trees, n_rows)``) — the ``predict.all`` interface.
``POST /v1/models/{name}/verify``
    Judge protocol: ``{"signature": "0101...", "strategy": "bands",
    "mode": "strict", "trigger_rows": [[...]], "trigger_labels":
    [...]}``.  Trigger probes are served through the same micro-batched
    path as any other traffic (they *are* traffic); the response carries
    the trigger-set ownership report and the Table-2 detection verdict
    over everything the model has served.
``POST /v1/models/{name}/calibrate``
    ``{"rows": [[...]]}`` → calibrate the streaming observer's benign
    baseline so its sequential alarm becomes meaningful.

``POST /admin/reload``
    ``{"model": "name", "path": "new.rfbin"}`` → hot-swap the served
    engine.  The artefact is fully loaded and CRC-verified *before*
    the swap; a corrupt or missing file answers ``409`` and the old
    engine keeps serving.

Framing is hand-rolled over ``asyncio`` streams: request line, headers,
``Content-Length`` body, persistent connections.  Engine calls run on a
thread executor via the per-model :class:`~repro.serve.batching.MicroBatcher`,
which also provides row-based backpressure (full backlog → ``429`` with
``Retry-After``).  :meth:`ServingDaemon.drain` implements graceful
shutdown: stop accepting, flush every batcher, let in-flight responses
complete, then close lingering connections.

Failure modes are first-class (PR 9):

- ``read_timeout`` bounds how long a peer may dribble its request head
  or body (slow-loris defence); ``request_timeout`` bounds each engine
  call, answering an honest ``503`` when the executor hangs;
- engine failures are charged to the model's
  :class:`~repro.serve.resilience.FailureBudget` — a repeatedly-failing
  model is quarantined (``503`` + ``Retry-After`` for that model only;
  ``/healthz`` reports ``healthy``/``degraded``/``quarantined`` per
  model) instead of taking the daemon down;
- requests carrying an ``Idempotency-Key`` header are deduplicated via
  an :class:`~repro.serve.resilience.IdempotencyCache`: concurrent
  duplicates coalesce onto the original's outcome and retries replay
  the stored response, so a retried ``predict_all``/``verify`` is
  served exactly once and the streamed suppression statistic is never
  double-counted;
- a seeded :class:`repro.faults.FaultInjector` can be threaded through
  ``fault_injector=`` (daemon → batchers, registry → models) to make
  all of the above deterministically testable; the production default
  is ``None`` — no overhead.
"""

from __future__ import annotations

import asyncio
import json
import math

import numpy as np

from .._jsonsafe import dumps, finite_or_none, json_safe
from ..attacks.detection import DetectionResult
from ..core.signature import Signature
from ..core.verification import match_signature
from ..exceptions import ReproError, ValidationError
from .batching import Backpressure, MicroBatcher
from .registry import ModelRegistry, ServedModel
from .resilience import IdempotencyCache, RequestAbandoned

__all__ = ["HTTPError", "ServingDaemon"]

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

_MAX_HEADERS = 100


class HTTPError(Exception):
    """A request failure with a definite status code."""

    def __init__(self, status: int, message: str, headers: tuple = ()) -> None:
        super().__init__(message)
        self.status = int(status)
        self.message = message
        self.headers = tuple(headers)


async def _read_request(reader: asyncio.StreamReader, *, max_body: int):
    """Parse one request; ``None`` when the peer closed the connection."""
    # One await for the whole request head: at thousands of requests
    # per second the per-await event-loop hop is a measurable cost, so
    # the request line and headers are read with a single ``readuntil``
    # (the reader's buffer limit bounds the head size → 431 beyond it).
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HTTPError(400, "truncated request head") from None
    except asyncio.LimitOverrunError:
        raise HTTPError(431, "request head too large") from None
    except ConnectionResetError:
        return None
    lines = head[:-4].split(b"\r\n")
    try:
        method, target, _version = lines[0].decode("latin-1").split()
    except ValueError:
        raise HTTPError(400, "malformed request line") from None
    if len(lines) - 1 > _MAX_HEADERS:
        raise HTTPError(431, "too many header fields")

    headers: dict[str, str] = {}
    for raw in lines[1:]:
        name, sep, value = raw.decode("latin-1").partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()

    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise HTTPError(400, "bad Content-Length") from None
    if length < 0:
        raise HTTPError(400, "bad Content-Length")
    if length > max_body:
        raise HTTPError(413, f"body of {length} bytes exceeds limit {max_body}")
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except (ConnectionResetError, asyncio.IncompleteReadError):
            return None
    return method.upper(), target, headers, body


def _encode_response(
    status: int, payload: dict, *, keep_alive: bool, extra: tuple = ()
) -> bytes:
    try:
        # Fast path: handlers build plain-typed payloads, and strict
        # ``dumps`` (allow_nan=False) rejects anything that is not —
        # the ``json_safe`` walk is only paid on the rare payload that
        # still carries numpy scalars or non-finite floats.
        body = dumps(payload).encode("utf-8")
    except (TypeError, ValueError):
        body = dumps(json_safe(payload)).encode("utf-8")
    lines = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    lines.extend(f"{name}: {value}" for name, value in extra)
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def _parse_json(body: bytes) -> dict:
    try:
        data = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise HTTPError(400, f"request body is not valid JSON: {exc}") from None
    if not isinstance(data, dict):
        raise HTTPError(400, "request body must be a JSON object")
    return data


def _parse_rows(data: dict, served: ServedModel, key: str = "rows") -> np.ndarray:
    if key not in data:
        raise HTTPError(400, f"request needs a {key!r} array")
    try:
        X = np.asarray(data[key], dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise HTTPError(400, f"{key!r} is not a numeric matrix: {exc}") from None
    if X.ndim == 1:
        X = X.reshape(1, -1)
    if X.ndim != 2 or X.shape[0] == 0:
        raise HTTPError(400, f"{key!r} must be a non-empty 2-D matrix")
    if served.n_features is not None and X.shape[1] != served.n_features:
        raise HTTPError(
            400,
            f"model {served.name!r} expects {served.n_features} features, "
            f"rows have {X.shape[1]}",
        )
    return X


def _detection_to_dict(result: DetectionResult) -> dict:
    return {
        "strategy": result.strategy,
        "statistic": result.statistic,
        "mean": finite_or_none(result.mean),
        "std": finite_or_none(result.std),
        "predicted": list(result.predicted),
        "n_correct": int(result.n_correct),
        "n_wrong": int(result.n_wrong),
        "n_uncertain": int(result.n_uncertain),
        "recovery_rate": finite_or_none(result.recovery_rate),
    }


class ServingDaemon:
    """Serve a :class:`~repro.serve.registry.ModelRegistry` over HTTP."""

    def __init__(
        self,
        registry: ModelRegistry,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        flush_window: float = 0.002,
        max_batch_rows: int = 512,
        max_queue_rows: int = 8192,
        max_concurrent_batches: int = 2,
        max_body_bytes: int = 16 << 20,
        drain_grace: float = 5.0,
        request_timeout: float | None = 30.0,
        read_timeout: float | None = 30.0,
        fault_injector=None,
        idempotency_entries: int = 4096,
    ) -> None:
        if len(registry) == 0:
            raise ValidationError("the registry hosts no models")
        self.registry = registry
        self._host = host
        self._port = int(port)
        self._flush_window = float(flush_window)
        self._max_batch_rows = int(max_batch_rows)
        self._max_queue_rows = int(max_queue_rows)
        self._max_concurrent = int(max_concurrent_batches)
        self._max_body_bytes = int(max_body_bytes)
        self._drain_grace = float(drain_grace)
        self._request_timeout = (
            None if request_timeout is None else float(request_timeout)
        )
        self._read_timeout = (
            None if read_timeout is None else float(read_timeout)
        )
        self._fault_injector = fault_injector
        self._idempotency = IdempotencyCache(max_entries=idempotency_entries)

        self._server: asyncio.AbstractServer | None = None
        self._batchers: dict[str, MicroBatcher] = {}
        self._connections: set[asyncio.StreamWriter] = set()
        self._busy: set[asyncio.StreamWriter] = set()
        self._handlers: set[asyncio.Task] = set()
        self._draining = False

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        for served in self.registry:
            self._batchers[served.name] = MicroBatcher(
                served.serve_batch,
                flush_window=self._flush_window,
                max_batch_rows=self._max_batch_rows,
                max_queue_rows=self._max_queue_rows,
                max_concurrent=self._max_concurrent,
                fault_injector=self._fault_injector,
            )
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — resolves ``port=0`` ephemera."""
        assert self._server is not None, "daemon not started"
        name = self._server.sockets[0].getsockname()
        return name[0], name[1]

    @property
    def draining(self) -> bool:
        return self._draining

    def batcher(self, name: str) -> MicroBatcher:
        return self._batchers[name]

    async def drain(self) -> None:
        """Graceful shutdown: refuse, flush, finish, close.

        Stops accepting connections, flushes every model's pending
        micro-batches, gives in-flight requests ``drain_grace`` seconds
        to write their responses, then closes whatever remains.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for batcher in self._batchers.values():
            await batcher.drain()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self._drain_grace
        while True:
            # Idle keep-alive connections are parked in readline();
            # close them so only in-flight requests hold the drain.
            for writer in list(self._connections):
                if writer not in self._busy:
                    writer.close()
            if not self._busy or loop.time() >= deadline:
                break
            await asyncio.sleep(0.02)
        for writer in list(self._connections):
            writer.close()
        # Closed transports wake their parked handlers; wait for them so
        # the caller can stop the loop without destroying pending tasks.
        if self._handlers:
            await asyncio.wait(tuple(self._handlers), timeout=2.0)

    # -- connection handling --------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
            task.add_done_callback(self._handlers.discard)
        self._connections.add(writer)
        try:
            while True:
                try:
                    # The read timeout bounds the whole request head +
                    # body: a slow-loris peer dribbling one header per
                    # minute (or an idle keep-alive connection) is cut
                    # off instead of holding a handler forever.
                    request = await asyncio.wait_for(
                        _read_request(reader, max_body=self._max_body_bytes),
                        timeout=self._read_timeout,
                    )
                except asyncio.TimeoutError:
                    break
                except HTTPError as exc:
                    writer.write(
                        _encode_response(
                            exc.status,
                            {"error": exc.message},
                            keep_alive=False,
                            extra=exc.headers,
                        )
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                method, target, headers, body = request
                self._busy.add(writer)
                try:
                    keep_alive = (
                        not self._draining
                        and headers.get("connection", "keep-alive").lower()
                        != "close"
                    )
                    status, payload, extra = await self._respond(
                        method, target, body, headers
                    )
                    encoded = _encode_response(
                        status, payload, keep_alive=keep_alive, extra=extra
                    )
                    if await self._maybe_break_connection(writer, encoded):
                        break
                    writer.write(encoded)
                    await writer.drain()
                finally:
                    self._busy.discard(writer)
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        finally:
            self._connections.discard(writer)
            self._busy.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _maybe_break_connection(self, writer, encoded: bytes) -> bool:
        """Connection-level fault injection (reset / slow peer).

        ``conn.reset`` writes half the response and aborts the
        transport — the client sees a reset mid-body, the canonical
        "did my request happen?" ambiguity idempotency keys resolve.
        ``conn.slow`` stalls before writing, exercising client read
        timeouts.  Returns True when the connection was torn down.
        """
        if self._fault_injector is None:
            return False
        decision = self._fault_injector.decide("conn.reset")
        if decision is not None:
            writer.write(encoded[: max(1, len(encoded) // 2)])
            transport = writer.transport
            if transport is not None:
                transport.abort()
            return True
        decision = self._fault_injector.decide("conn.slow")
        if decision is not None:
            await asyncio.sleep(decision.delay)
        return False

    async def _respond(
        self, method: str, target: str, body: bytes, headers: dict | None = None
    ):
        """Dispatch and translate failures into status codes.

        Requests carrying an ``Idempotency-Key`` go through the dedup
        cache: the first arrival executes, concurrent duplicates await
        its outcome, and later retries replay the stored response —
        the model's engine and traffic observer see each logical
        request at most once.
        """
        key = (headers or {}).get("idempotency-key")
        if not key:
            return await self._respond_once(method, target, body)
        # Scope the key by route so one client key cannot collide
        # across endpoints.
        scoped = f"{method} {target} {key}"
        while True:
            state, value = self._idempotency.claim(scoped)
            if state == "replay":
                return value
            if state == "await":
                try:
                    return await asyncio.shield(value)
                except RequestAbandoned:
                    continue  # the original died without a response; re-claim
            try:
                response = await self._respond_once(method, target, body)
            except BaseException:
                # _respond_once only raises on cancellation (it maps
                # ordinary failures to status tuples): release the key
                # so a retry can re-execute.
                self._idempotency.abandon(scoped)
                raise
            self._idempotency.complete(scoped, response)
            return response

    async def _respond_once(self, method: str, target: str, body: bytes):
        try:
            payload = await self._dispatch(method, target, body)
            return 200, payload, ()
        except HTTPError as exc:
            return exc.status, {"error": exc.message}, exc.headers
        except Backpressure as exc:
            payload = {"error": str(exc), "retry_after": exc.retry_after}
            return 429, payload, (("Retry-After", str(exc.retry_after_seconds)),)
        except ReproError as exc:
            return 400, {"error": str(exc)}, ()
        except Exception as exc:  # noqa: BLE001 - a 500 must not kill the loop
            return 500, {"error": f"internal error: {exc!r}"}, ()

    # -- routing --------------------------------------------------------

    async def _dispatch(self, method: str, target: str, body: bytes) -> dict:
        path = target.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz":
            self._require(method, "GET")
            health = {
                served.name: served.health_state() for served in self.registry
            }
            if self._draining:
                status = "draining"
            elif all(state == "healthy" for state in health.values()):
                status = "ok"
            else:
                status = "degraded"
            return {
                "status": status,
                "models": self.registry.names(),
                "model_health": health,
            }
        if path == "/admin/reload":
            self._require(method, "POST")
            return await self._reload(body)
        if path == "/v1/models":
            self._require(method, "GET")
            return {
                "models": [
                    {**served.info(), "batching": self._batchers[served.name].stats()}
                    for served in self.registry
                ]
            }
        parts = path.strip("/").split("/")
        if len(parts) == 4 and parts[0] == "v1" and parts[1] == "models":
            name, action = parts[2], parts[3]
            try:
                served = self.registry.get(name)
            except ValidationError:
                raise HTTPError(
                    404,
                    f"no model named {name!r}; hosting: {self.registry.names()}",
                ) from None
            if action == "predict":
                self._require(method, "POST")
                return await self._predict(served, body, per_tree=False)
            if action == "predict_all":
                self._require(method, "POST")
                return await self._predict(served, body, per_tree=True)
            if action == "verify":
                self._require(method, "POST")
                return await self._verify(served, body)
            if action == "calibrate":
                self._require(method, "POST")
                return self._calibrate(served, body)
        raise HTTPError(404, f"no route for {path!r}")

    @staticmethod
    def _require(method: str, expected: str) -> None:
        if method != expected:
            raise HTTPError(405, f"method {method} not allowed; use {expected}")

    # -- handlers -------------------------------------------------------

    async def _serve_rows(self, served: ServedModel, X) -> np.ndarray:
        """One guarded engine call: quarantine gate, timeout, budget.

        Engine failures and timeouts answer an *honest* 5xx (the
        request definitively did not produce a served answer — the
        observer never saw it) and are charged to the model's failure
        budget; once the budget is spent the model is quarantined and
        requests fail fast with 503 + ``Retry-After`` until the
        cooldown lapses, leaving the daemon and its other models up.
        """
        if served.health_state() == "quarantined":
            retry_after = max(1, math.ceil(served.budget.retry_after()))
            raise HTTPError(
                503,
                f"model {served.name!r} is quarantined after repeated "
                "engine failures",
                headers=(("Retry-After", str(retry_after)),),
            )
        try:
            y_all = await asyncio.wait_for(
                self._batchers[served.name].submit(X),
                timeout=self._request_timeout,
            )
        except Backpressure:
            raise
        except asyncio.TimeoutError:
            served.budget.record_failure()
            raise HTTPError(
                504,
                f"engine call for model {served.name!r} exceeded the "
                f"{self._request_timeout}s request timeout",
                headers=(("Retry-After", "1"),),
            ) from None
        except Exception as exc:  # noqa: BLE001 - engine failure → honest 5xx
            served.budget.record_failure()
            raise HTTPError(
                503,
                f"engine call for model {served.name!r} failed: {exc}",
                headers=(("Retry-After", "1"),),
            ) from exc
        served.budget.record_success()
        return y_all

    async def _reload(self, body: bytes) -> dict:
        data = _parse_json(body)
        for field in ("model", "path"):
            if field not in data:
                raise HTTPError(400, f"reload needs a {field!r} field")
        name = str(data["model"])
        if name not in self.registry:
            raise HTTPError(
                404,
                f"no model named {name!r}; hosting: {self.registry.names()}",
            )
        loop = asyncio.get_running_loop()
        try:
            # Loading + CRC verification + compile is blocking disk and
            # CPU work — keep it off the event loop.  The swap happens
            # only after the artefact proved loadable, so any failure
            # here leaves the old engine serving.
            served = await loop.run_in_executor(
                None, self.registry.reload, name, str(data["path"])
            )
        except ReproError as exc:
            raise HTTPError(
                409, f"reload of {name!r} rejected, old engine kept: {exc}"
            ) from exc
        return {"reloaded": True, **served.info()}

    async def _predict(self, served: ServedModel, body: bytes, *, per_tree: bool):
        X = _parse_rows(_parse_json(body), served)
        y_all = await self._serve_rows(served, X)
        if per_tree:
            return {
                "model": served.name,
                "n_trees": int(y_all.shape[0]),
                "n_rows": int(y_all.shape[1]),
                "per_tree": y_all.tolist(),
            }
        labels = served.labels(y_all)
        return {
            "model": served.name,
            "n_rows": int(labels.shape[0]),
            "predictions": labels.tolist(),
        }

    async def _verify(self, served: ServedModel, body: bytes) -> dict:
        data = _parse_json(body)
        if "signature" not in data:
            raise HTTPError(400, "verify needs a 'signature' bit string")
        try:
            signature = Signature.from_string(str(data["signature"]))
        except ReproError as exc:
            raise HTTPError(400, f"bad signature: {exc}") from None
        strategy = str(data.get("strategy", "bands"))
        mode = str(data.get("mode", "strict"))

        response: dict = {
            "model": served.name,
            "signature_length": len(signature),
        }

        if "trigger_rows" in data or "trigger_labels" in data:
            if "trigger_rows" not in data or "trigger_labels" not in data:
                raise HTTPError(
                    400, "trigger_rows and trigger_labels must come together"
                )
            X = _parse_rows(data, served, key="trigger_rows")
            try:
                y = np.asarray(data["trigger_labels"], dtype=np.int64)
            except (TypeError, ValueError) as exc:
                raise HTTPError(
                    400, f"trigger_labels is not an integer vector: {exc}"
                ) from None
            # The judge's probe is traffic like any other: it goes
            # through the micro-batched serving path (guarded like any
            # other engine call) and is folded into the streaming
            # observer before the verdict below is taken.
            y_all = await self._serve_rows(served, X)
            report = match_signature(y_all, y, signature, mode=mode)
            response["ownership"] = {
                "accepted": bool(report.accepted),
                "mode": report.mode,
                "n_matching": int(report.n_matching),
                "n_trees": int(report.n_trees),
                "per_tree_accuracy": report.per_tree_accuracy.tolist(),
                "recovered_bits": list(report.recovered_bits),
            }

        if served.observer is not None and served.n_queries > 0:
            result = served.detection(signature.bits, strategy)
            response["traffic"] = _detection_to_dict(result)
        response["observer"] = served.traffic_summary()
        return response

    def _calibrate(self, served: ServedModel, body: bytes) -> dict:
        if served.observer is None:
            raise HTTPError(
                409,
                f"model {served.name!r} has no traffic observer to calibrate",
            )
        X = _parse_rows(_parse_json(body), served)
        served.calibrate(X)
        return {"model": served.name, "calibrated": True, "n_reference": len(X)}
